//! Cross-crate integration: the superposition property that the entire
//! distributed framework rests on, property-tested over randomized
//! circuits and source partitions.

use matex::circuit::{MnaSystem, Netlist};
use matex::core::{MatexOptions, MatexSolver, TransientEngine, TransientSpec, Trapezoidal};
use matex::dist::{run_distributed, DistributedOptions};
use matex::waveform::{GroupingStrategy, Pulse, Waveform};
use proptest::prelude::*;

/// Builds a random-but-valid RC network with `n_nodes` nodes in a ring +
/// chords topology and `n_loads` pulse loads with randomized parameters.
fn random_circuit(
    n_nodes: usize,
    n_loads: usize,
    caps: &[f64],
    resistances: &[f64],
    delays: &[f64],
    peaks: &[f64],
) -> MnaSystem {
    let mut nl = Netlist::new();
    let nodes: Vec<_> = (0..n_nodes).map(|i| nl.node(&format!("n{i}"))).collect();
    // Ring of resistors + one grounding resistor, caps everywhere.
    for i in 0..n_nodes {
        let r = resistances[i % resistances.len()].abs().max(0.1);
        nl.add_resistor(&format!("r{i}"), nodes[i], nodes[(i + 1) % n_nodes], r)
            .expect("valid R");
        let c = caps[i % caps.len()].abs().max(1e-16);
        nl.add_capacitor(&format!("c{i}"), nodes[i], Netlist::ground(), c)
            .expect("valid C");
    }
    nl.add_resistor("rg", nodes[0], Netlist::ground(), 0.5)
        .expect("valid R");
    // VDD supply at node 0 through a small resistor.
    let vdd = nl.node("vddp");
    nl.add_vsource("vs", vdd, Netlist::ground(), Waveform::Dc(1.0))
        .expect("valid V");
    nl.add_resistor("rv", vdd, nodes[0], 0.05).expect("valid R");
    for k in 0..n_loads {
        let delay = delays[k % delays.len()].abs() % 4e-10;
        let peak = 1e-4 + (peaks[k % peaks.len()].abs() % 1e-3);
        let p = Pulse::new(0.0, peak, delay, 2e-11, 5e-11, 2e-11).expect("valid pulse");
        nl.add_isource(
            &format!("i{k}"),
            nodes[(k * 3 + 1) % n_nodes],
            Netlist::ground(),
            Waveform::Pulse(p),
        )
        .expect("valid I");
    }
    MnaSystem::assemble(&nl).expect("assembles")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sum of per-source masked MATEX runs == full MATEX run.
    #[test]
    fn matex_superposition_randomized(
        n_nodes in 4usize..10,
        n_loads in 1usize..4,
        caps in prop::collection::vec(1e-15..5e-13_f64, 3),
        resistances in prop::collection::vec(0.5..20.0_f64, 3),
        delays in prop::collection::vec(0.0..4e-10_f64, 3),
        peaks in prop::collection::vec(1e-4..1e-3_f64, 3),
    ) {
        let sys = random_circuit(n_nodes, n_loads, &caps, &resistances, &delays, &peaks);
        let spec = TransientSpec::new(0.0, 8e-10, 2e-11).expect("valid spec");
        let opts = || MatexOptions::default().tol(1e-10);
        let full = MatexSolver::new(opts()).run(&sys, &spec).expect("full run");
        let mut sum = None;
        for col in 0..sys.num_sources() {
            let part = MatexSolver::new(opts())
                .with_source_mask(vec![col])
                .run(&sys, &spec)
                .expect("masked run");
            match &mut sum {
                None => sum = Some(part),
                Some(acc) => acc.add_scaled(&part, 1.0).expect("same grid"),
            }
        }
        let (max_err, _) = sum.expect("at least one source").error_vs(&full).expect("comparable");
        // Scale-aware bound: the state is O(1) volts.
        prop_assert!(max_err < 1e-6, "superposition violated: {max_err:.3e}");
    }

    /// The same property must hold for the trapezoidal engine: it is a
    /// statement about MNA linearity, not about MATEX.
    #[test]
    fn tr_superposition_randomized(
        n_nodes in 4usize..8,
        caps in prop::collection::vec(1e-15..5e-13_f64, 3),
        resistances in prop::collection::vec(0.5..20.0_f64, 3),
    ) {
        let sys = random_circuit(n_nodes, 2, &caps, &resistances, &[1e-10, 3e-10], &[5e-4]);
        let spec = TransientSpec::new(0.0, 5e-10, 2.5e-11).expect("valid spec");
        let full = Trapezoidal::new(5e-12).run(&sys, &spec).expect("full run");
        let mut sum = None;
        for col in 0..sys.num_sources() {
            let part = Trapezoidal::new(5e-12)
                .with_source_mask(vec![col])
                .run(&sys, &spec)
                .expect("masked run");
            match &mut sum {
                None => sum = Some(part),
                Some(acc) => acc.add_scaled(&part, 1.0).expect("same grid"),
            }
        }
        let (max_err, _) = sum.expect("sources exist").error_vs(&full).expect("comparable");
        prop_assert!(max_err < 1e-9, "TR superposition violated: {max_err:.3e}");
    }
}

#[test]
fn distributed_framework_matches_monolithic_and_tr() {
    // One deterministic end-to-end check at a useful size.
    let sys = matex::circuit::PdnBuilder::new(12, 12)
        .num_loads(30)
        .num_features(5)
        .window(2e-9)
        .cap_spread(10.0)
        .build()
        .expect("grid builds");
    let spec = TransientSpec::new(0.0, 2e-9, 2e-11).expect("valid spec");
    let dist = run_distributed(
        &sys,
        &spec,
        &DistributedOptions {
            matex: MatexOptions::default().tol(1e-9),
            strategy: GroupingStrategy::ByBumpFeature,
            workers: Some(4),
            ..DistributedOptions::default()
        },
    )
    .expect("distributed run");
    let tr = Trapezoidal::new(2e-12).run(&sys, &spec).expect("TR run");
    let (max_err, avg_err) = dist.result.error_vs(&tr).expect("comparable");
    assert!(
        max_err < 5e-5,
        "distributed vs TR: max {max_err:.3e} avg {avg_err:.3e}"
    );
    assert!(dist.num_groups() >= 6); // 5 features + supplies
}
