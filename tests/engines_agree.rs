//! All five engines agree on realistic PDN workloads, and their cost
//! signatures differ exactly the way the paper says they do.

use matex::circuit::PdnBuilder;
use matex::core::{
    BackwardEuler, KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec,
    Trapezoidal, TrapezoidalAdaptive,
};

fn grid() -> matex::circuit::MnaSystem {
    PdnBuilder::new(10, 10)
        .num_loads(20)
        .num_features(4)
        .window(2e-9)
        .cap_spread(10.0)
        .seed(3)
        .build()
        .expect("grid builds")
}

#[test]
fn five_engines_same_waveforms() {
    let sys = grid();
    let spec = TransientSpec::new(0.0, 2e-9, 2e-11).expect("valid spec");
    let reference = Trapezoidal::new(1e-12).run(&sys, &spec).expect("fine TR");

    let engines: Vec<(Box<dyn TransientEngine>, f64)> = vec![
        (Box::new(BackwardEuler::new(1e-12)), 3e-3),
        (Box::new(Trapezoidal::new(1e-11)), 1e-3),
        (Box::new(TrapezoidalAdaptive::new(1e-6, 1e-12)), 3e-3),
        (
            Box::new(MatexSolver::new(
                MatexOptions::new(KrylovKind::Inverted).tol(1e-9),
            )),
            1e-4,
        ),
        (
            Box::new(MatexSolver::new(
                MatexOptions::new(KrylovKind::Rational).tol(1e-9),
            )),
            1e-4,
        ),
    ];
    for (engine, tol) in engines {
        let result = engine.run(&sys, &spec).expect("engine runs");
        let (max_err, _) = result.error_vs(&reference).expect("comparable");
        assert!(
            max_err < tol,
            "{}: max error {max_err:.3e} exceeds {tol:.0e}",
            result.engine
        );
    }
}

#[test]
fn cost_signatures_match_paper_claims() {
    let sys = grid();
    let spec = TransientSpec::new(0.0, 2e-9, 2e-11).expect("valid spec");

    let tr = Trapezoidal::new(1e-11).run(&sys, &spec).expect("TR");
    let adpt = TrapezoidalAdaptive::new(1e-6, 1e-12)
        .run(&sys, &spec)
        .expect("TR-adpt");
    let matex = MatexSolver::new(MatexOptions::default())
        .run(&sys, &spec)
        .expect("R-MATEX");

    // Fixed TR: exactly 2 factorizations (G for DC + the stepping matrix).
    assert_eq!(tr.stats.factorizations, 2);
    // Adaptive TR: refactorizes many times — its defining cost.
    assert!(
        adpt.stats.factorizations > 10,
        "adaptive TR only factored {} times",
        adpt.stats.factorizations
    );
    // MATEX: 2 factorizations total, far fewer substitution pairs than TR.
    assert_eq!(matex.stats.factorizations, 2);
    assert!(
        matex.stats.substitution_pairs < tr.stats.substitution_pairs / 2,
        "MATEX pairs {} vs TR pairs {}",
        matex.stats.substitution_pairs,
        tr.stats.substitution_pairs
    );
    // And it pays instead in small exponential evaluations.
    assert!(matex.stats.expm_evals > 0);
}

#[test]
fn observation_subset_consistent_with_full() {
    let sys = grid();
    let full_spec = TransientSpec::new(0.0, 1e-9, 2e-11).expect("valid spec");
    let sub_spec = TransientSpec::new(0.0, 1e-9, 2e-11)
        .expect("valid spec")
        .observing(vec![0, 5, 17]);
    let solver = MatexSolver::new(MatexOptions::default().tol(1e-9));
    let full = solver.run(&sys, &full_spec).expect("full observation");
    let sub = solver.run(&sys, &sub_spec).expect("subset observation");
    for &row in sub.rows() {
        let a = sub.waveform(row).expect("recorded");
        let b = full.waveform(row).expect("recorded");
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-12, "row {row} differs");
        }
    }
}

#[test]
fn longer_window_leaves_matex_lts_bound() {
    // Paper Sec. 3.4: elongating the span grows TR's N but not MATEX's
    // per-window work (k is span-independent for one-shot pulses).
    let sys = grid();
    let short = TransientSpec::new(0.0, 2e-9, 2e-11).expect("valid spec");
    let long = TransientSpec::new(0.0, 8e-9, 8e-11).expect("valid spec");
    let solver = MatexSolver::new(MatexOptions::default());
    let a = solver.run(&sys, &short).expect("short run");
    let b = solver.run(&sys, &long).expect("long run");
    // Krylov bases are driven by the (fixed) LTS count, not the window.
    assert!(
        b.stats.krylov_bases <= a.stats.krylov_bases + 2,
        "bases grew with span: {} -> {}",
        a.stats.krylov_bases,
        b.stats.krylov_bases
    );
}
