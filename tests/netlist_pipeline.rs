//! End-to-end pipeline: SPICE text → parser → MNA → engines → solution
//! file, in the IBM power-grid dialect.

use matex::circuit::ibmpg::{PgNodeName, Solution};
use matex::circuit::{parse_netlist, MnaSystem};
use matex::core::{MatexOptions, MatexSolver, TransientEngine, TransientSpec, Trapezoidal};

const RAIL: &str = "\
* three-segment rail with two switching loads (IBM PG dialect)
v0 n2_0_0 0 1.8
r_pad n2_0_0 n1_0_0 0.01
r1 n1_0_0 n1_1_0 0.04
r2 n1_1_0 n1_2_0 0.04
r3 n1_2_0 n1_3_0 0.04
c1 n1_1_0 0 50p
c2 n1_2_0 0 50p
c3 n1_3_0 0 30p
i1 n1_1_0 0 PULSE(0 2m 0.5n 0.05n 0.05n 1n)
i2 n1_3_0 0 PULSE(0 1m 2.5n 0.05n 0.05n 0.5n)
.tran 20p 5n
.end
";

#[test]
fn parse_assemble_simulate_export() {
    let parsed = parse_netlist(RAIL).expect("parses");
    assert_eq!(parsed.netlist.num_nodes(), 5);
    let tran = parsed.tran.expect(".tran present");
    let sys = MnaSystem::assemble(&parsed.netlist).expect("assembles");
    let spec = TransientSpec::new(0.0, tran.stop, tran.step).expect("valid spec");

    let matex = MatexSolver::new(MatexOptions::default().tol(1e-9))
        .run(&sys, &spec)
        .expect("MATEX run");
    let tr = Trapezoidal::new(tran.step / 10.0)
        .run(&sys, &spec)
        .expect("TR run");
    let (max_err, _) = matex.error_vs(&tr).expect("comparable");
    assert!(max_err < 1e-4, "engines disagree: {max_err:.3e}");

    // Droop sanity: the far node dips when its load fires.
    let far = sys.node_row("n1_3_0").expect("node exists");
    let wave = matex.waveform(far).expect("recorded");
    let vmin = wave.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(vmin < 1.8 - 1e-5, "no droop observed (min {vmin})");
    assert!(vmin > 1.0, "implausible droop (min {vmin})");

    // Export, re-import, compare — the reference-solution workflow.
    let names: Vec<String> = (0..sys.num_nodes())
        .map(|r| sys.row_name(r).to_string())
        .collect();
    let data: Vec<Vec<f64>> = (0..sys.num_nodes())
        .map(|r| matex.waveform(r).expect("recorded").to_vec())
        .collect();
    let sol = Solution::new(matex.times().to_vec(), names, data).expect("valid shape");
    let tsv = sol.to_tsv();
    let back = Solution::from_tsv(&tsv).expect("round-trips");
    let (max_rt, _) = sol.error_vs(&back).expect("same axes");
    assert!(
        max_rt < 1e-12,
        "TSV round-trip lost precision: {max_rt:.3e}"
    );
}

#[test]
fn geometric_node_names_survive_pipeline() {
    let parsed = parse_netlist(RAIL).expect("parses");
    let sys = MnaSystem::assemble(&parsed.netlist).expect("assembles");
    let mut geo = 0;
    for r in 0..sys.num_nodes() {
        if let Some(g) = PgNodeName::parse(sys.row_name(r)) {
            assert!(g.layer == 1 || g.layer == 2);
            geo += 1;
        }
    }
    assert_eq!(geo, 5, "all five nodes follow the IBM naming convention");
}

#[test]
fn netlist_file_roundtrip_via_fs() {
    // load_ibmpg_netlist reads from disk — exercise the file path.
    let dir = std::env::temp_dir().join("matex_test_netlists");
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("rail.sp");
    std::fs::write(&path, RAIL).expect("write netlist");
    let parsed = matex::circuit::ibmpg::load_ibmpg_netlist(&path).expect("loads");
    assert_eq!(parsed.netlist.num_elements(), 10);
    std::fs::remove_file(&path).ok();
}
