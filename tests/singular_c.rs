//! Regularization-free handling of singular `C` (paper Sec. 3.3.3).
//!
//! RLC circuits with inductors and voltage sources have structurally
//! singular `C` matrices. The paper's claim: I-MATEX and R-MATEX never
//! need the MEXP-style regularization, because their Arnoldi only factors
//! `G` or `C + γG` and the input terms only need `G⁻¹`.

use matex::circuit::{MnaSystem, Netlist, PdnBuilder};
use matex::core::{
    KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec, Trapezoidal,
};
use matex::waveform::{Pulse, Waveform};

/// RLC ladder: VDD — L — R — node chain with caps, one pulse load, and a
/// cap-less intermediate node. `C` is singular three ways: inductor
/// branch, vsource branch, cap-less node.
fn rlc_ladder() -> MnaSystem {
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let mid = nl.node("mid");
    let a = nl.node("a");
    let b = nl.node("b"); // cap-less
    let c = nl.node("c");
    nl.add_vsource("vs", vdd, Netlist::ground(), Waveform::Dc(1.0))
        .unwrap();
    nl.add_inductor("lpkg", vdd, mid, 1e-10).unwrap();
    nl.add_resistor("r0", mid, a, 0.5).unwrap();
    nl.add_resistor("r1", a, b, 0.5).unwrap();
    nl.add_resistor("r2", b, c, 0.5).unwrap();
    nl.add_capacitor("ca", a, Netlist::ground(), 2e-13).unwrap();
    nl.add_capacitor("cc", c, Netlist::ground(), 4e-13).unwrap();
    let p = Pulse::new(0.0, 2e-3, 2e-10, 3e-11, 1e-10, 3e-11).unwrap();
    nl.add_isource("iload", c, Netlist::ground(), Waveform::Pulse(p))
        .unwrap();
    MnaSystem::assemble(&nl).unwrap()
}

#[test]
fn c_is_structurally_singular() {
    let sys = rlc_ladder();
    // vsource row, cap-less node row and... the inductor row has L on
    // its diagonal, so exactly two zero rows here.
    assert!(!sys.zero_c_rows().is_empty());
    assert!(
        matex::sparse::SparseLu::factor(sys.c(), &matex::sparse::LuOptions::default()).is_err(),
        "C must be singular for this test to be meaningful"
    );
}

#[test]
fn inverted_and_rational_run_without_regularization() {
    let sys = rlc_ladder();
    let spec = TransientSpec::new(0.0, 2e-9, 2e-11).unwrap();
    let reference = Trapezoidal::new(1e-12).run(&sys, &spec).unwrap();
    for kind in [KrylovKind::Inverted, KrylovKind::Rational] {
        let result = MatexSolver::new(MatexOptions::new(kind).tol(1e-9))
            .run(&sys, &spec)
            .unwrap();
        let (max_err, _) = result.error_vs(&reference).unwrap();
        // LC oscillation makes both sides carry ~1e-4-scale error (the
        // paper's own Table-3 error level).
        assert!(
            max_err < 1e-3,
            "{} on singular-C RLC: err {max_err:.3e}",
            kind.label()
        );
        // Crucially: no extra factorization of a regularized C happened.
        let expected_factor = match kind {
            KrylovKind::Inverted => 1, // G only
            _ => 2,                    // G + (C + γG)
        };
        assert_eq!(result.stats.factorizations, expected_factor);
    }
}

#[test]
fn standard_needs_and_gets_regularization() {
    let sys = rlc_ladder();
    let spec = TransientSpec::new(0.0, 2e-9, 2e-11).unwrap();
    let reference = Trapezoidal::new(1e-12).run(&sys, &spec).unwrap();
    let result = MatexSolver::new(MatexOptions::new(KrylovKind::Standard).tol(1e-9))
        .run(&sys, &spec)
        .unwrap();
    let (max_err, _) = result.error_vs(&reference).unwrap();
    // The ε-regularized MEXP is usable but visibly less accurate — the
    // paper's argument for going regularization-free.
    assert!(
        max_err < 0.5,
        "regularized MEXP unusable: err {max_err:.3e}"
    );
}

#[test]
fn rlc_grid_with_package_inductance_runs_distributed() {
    use matex::dist::{run_distributed, DistributedOptions};
    let sys = PdnBuilder::new(10, 10)
        .num_loads(16)
        .num_features(4)
        .window(2e-9)
        .pad_inductance(1e-11)
        .build()
        .unwrap();
    assert!(!sys.zero_c_rows().is_empty(), "pads add inductor branches");
    let spec = TransientSpec::new(0.0, 2e-9, 4e-11).unwrap();
    let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
    let tr = Trapezoidal::new(2e-12).run(&sys, &spec).unwrap();
    let (max_err, _) = run.result.error_vs(&tr).unwrap();
    assert!(max_err < 2e-3, "distributed RLC vs TR: {max_err:.3e}");
}

#[test]
fn inductor_current_continuity() {
    // The inductor current is a state: after the pulse it must relax
    // smoothly back to the DC value (no jumps from the exponential
    // stepping).
    let sys = rlc_ladder();
    let spec = TransientSpec::new(0.0, 4e-9, 2e-11).unwrap();
    let result = MatexSolver::new(MatexOptions::default().tol(1e-9))
        .run(&sys, &spec)
        .unwrap();
    // Find the inductor branch row.
    let il_row = (0..sys.dim())
        .find(|&r| sys.row_name(r) == "i(lpkg)")
        .expect("inductor row exists");
    let wave = result.waveform(il_row).expect("recorded");
    // Steady-state current is 0 (load off at both ends of the window).
    let first = wave[0];
    let last = *wave.last().unwrap();
    assert!(first.abs() < 1e-9, "initial inductor current {first}");
    assert!(last.abs() < 1e-4, "final inductor current {last}");
    // No single-sample jumps larger than the full pulse scale.
    // Sample-to-sample changes stay at the physical (mA) scale — this
    // catches solver garbage (NaN/overflow spikes), not smoothness.
    for w in wave.windows(2) {
        assert!(
            (w[1] - w[0]).abs() < 2e-2,
            "inductor current jumped by {}",
            (w[1] - w[0]).abs()
        );
    }
}
