//! IR-drop analysis of an IBM-like power grid with distributed MATEX.
//!
//! Builds a two-layer PDN with thousands of pulse loads drawn from a
//! small bump-feature library, runs the distributed framework, and
//! reports the grid's IR-drop statistics plus the cluster accounting the
//! paper's Table 3 is made of.
//!
//! Run with: `cargo run --release --example pdn_ir_drop`

use matex::circuit::PdnBuilder;
use matex::core::{MatexOptions, TransientSpec};
use matex::dist::{run_distributed, DistributedOptions};
use matex::waveform::GroupingStrategy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 5e-9;
    let grid = PdnBuilder::new(40, 40)
        .num_loads(400)
        .num_features(12)
        .window(window)
        .vdd(1.8)
        .seed(7)
        .build()?;
    println!(
        "grid: {} unknowns, {} loads + {} supplies",
        grid.dim(),
        grid.num_sources() - grid.num_vsources(),
        grid.num_vsources()
    );

    // Observe all node voltages, sampled every 10 ps.
    let spec = TransientSpec::new(0.0, window, 1e-11)?;
    let opts = DistributedOptions {
        matex: MatexOptions::default().tol(1e-7),
        strategy: GroupingStrategy::ByBumpFeature,
        workers: None, // all cores
        ..DistributedOptions::default()
    };
    let run = run_distributed(&grid, &spec, &opts)?;

    println!("\n-- cluster --");
    println!("groups (slave nodes): {}", run.num_groups());
    println!("GTS points:           {}", run.gts.len());
    for node in &run.nodes {
        println!(
            "  group {:>3}: {:>4} sources, {:>3} LTS, wall {:>10.3?}",
            node.group, node.num_sources, node.num_lts, node.wall
        );
    }
    println!(
        "emulated transient (max node): {:?}",
        run.emulated_transient
    );
    println!("emulated total     (max node): {:?}", run.emulated_total);
    println!(
        "superposition:                 {:?}",
        run.superposition_time
    );
    println!("actual wall (threaded):        {:?}", run.wall_time);

    // IR drop: VDD minus the minimum voltage each node reaches.
    let vdd = 1.8;
    let mut worst_drop = 0.0_f64;
    let mut worst_node = 0usize;
    for (k, &row) in run.result.rows().iter().enumerate() {
        if row >= grid.num_nodes() {
            continue; // branch currents
        }
        let vmin = run.result.series()[k]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let drop = vdd - vmin;
        if drop > worst_drop {
            worst_drop = drop;
            worst_node = row;
        }
    }
    println!("\n-- IR drop --");
    println!(
        "worst IR drop: {:.3} mV at node {}",
        worst_drop * 1e3,
        grid.row_name(worst_node)
    );
    Ok(())
}
