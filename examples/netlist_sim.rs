//! Parse a SPICE netlist (IBM power-grid dialect) and simulate it.
//!
//! Reads a netlist from the path given as the first CLI argument, or
//! falls back to a built-in demo netlist. Honors the `.tran` directive
//! and prints the solution as TSV (the repo's reference-solution format).
//!
//! Run with: `cargo run --release --example netlist_sim [netlist.sp]`

use matex::circuit::ibmpg::Solution;
use matex::circuit::{parse_netlist, MnaSystem};
use matex::core::{MatexOptions, MatexSolver, TransientEngine, TransientSpec};

const DEMO: &str = "\
* demo power rail: VDD -> R ladder -> switching load
v1 vdd 0 1.8
r1 vdd n1 0.05
r2 n1 n2 0.05
r3 n2 n3 0.05
c1 n1 0 20p
c2 n2 0 20p
c3 n3 0 20p
iload n3 0 PULSE(0 0.5 1n 0.1n 0.1n 2n)
.tran 10p 5n
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };
    let parsed = parse_netlist(&text)?;
    let tran = parsed.tran.ok_or("netlist has no .tran directive")?;
    println!(
        "* parsed {} elements over {} nodes; .tran {:.3e} {:.3e}",
        parsed.netlist.num_elements(),
        parsed.netlist.num_nodes(),
        tran.step,
        tran.stop
    );
    let sys = MnaSystem::assemble(&parsed.netlist)?;
    let spec = TransientSpec::new(0.0, tran.stop, tran.step)?;
    let result = MatexSolver::new(MatexOptions::default()).run(&sys, &spec)?;

    // Print node-voltage waveforms as TSV.
    let node_rows: Vec<usize> = result
        .rows()
        .iter()
        .copied()
        .filter(|&r| r < sys.num_nodes())
        .collect();
    let names: Vec<String> = node_rows
        .iter()
        .map(|&r| sys.row_name(r).to_string())
        .collect();
    let data: Vec<Vec<f64>> = node_rows
        .iter()
        .map(|&r| result.waveform(r).expect("recorded").to_vec())
        .collect();
    let solution = Solution::new(result.times().to_vec(), names, data)?;
    print!("{}", solution.to_tsv());
    eprintln!(
        "* {} time points, {} krylov bases (avg dim {:.1})",
        result.num_time_points(),
        result.stats.krylov_bases,
        result.stats.krylov_dim_avg()
    );
    Ok(())
}
