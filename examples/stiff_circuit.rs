//! Stiffness study: why rational Krylov wins (paper Table 1 in miniature).
//!
//! Builds RC meshes of increasing stiffness and compares the Krylov
//! dimensions the three variants need for the same accuracy target.
//!
//! Run with: `cargo run --release --example stiff_circuit`

use matex::circuit::RcMeshBuilder;
use matex::core::{
    measure_stiffness, reference_solution, KrylovKind, MatexOptions, MatexSolver, ReferenceMethod,
    TransientEngine, TransientSpec,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>10}  {:>9}  {:>8}  {:>6}  {:>6}  {:>10}",
        "stiffness", "variant", "err", "m_avg", "m_peak", "subst.pairs"
    );
    for &ratio in &[1.0, 1e4, 1e8] {
        let sys = RcMeshBuilder::new(6, 6).stiffness_ratio(ratio).build()?;
        let stiffness = measure_stiffness(&sys, 100)?;
        // Short window, 5 ps steps as in the paper's Table 1 setup.
        let spec = TransientSpec::new(0.0, 3e-10, 5e-12)?;
        let reference = reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 50)?;
        for kind in [
            KrylovKind::Standard,
            KrylovKind::Inverted,
            KrylovKind::Rational,
        ] {
            let result = MatexSolver::new(MatexOptions::new(kind).tol(1e-7)).run(&sys, &spec)?;
            let (err, _) = result.error_vs(&reference)?;
            println!(
                "{:>10.2e}  {:>9}  {:>8.1e}  {:>6.1}  {:>6}  {:>10}",
                stiffness,
                kind.label(),
                err,
                result.stats.krylov_dim_avg(),
                result.stats.krylov_dim_peak,
                result.stats.substitution_pairs,
            );
        }
    }
    println!("\nThe standard subspace (MEXP) needs ever larger bases as stiffness");
    println!("grows, while the inverted/rational variants stay small — the");
    println!("paper's Sec. 3.3 observation that motivates R-MATEX.");
    Ok(())
}
