//! Distributed MATEX vs fixed-step trapezoidal, with the paper's
//! speedup accounting and the Sec. 3.4 model prediction.
//!
//! Run with: `cargo run --release --example distributed_sim`

use matex::circuit::PdnBuilder;
use matex::core::{MatexOptions, TransientEngine, TransientSpec, Trapezoidal};
use matex::dist::{run_distributed, DistributedOptions, SpeedupModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let window = 1e-8; // 10 ns, like the paper's 1000 x 10 ps
    let grid = PdnBuilder::new(30, 30)
        .num_loads(200)
        .num_features(10)
        .window(window)
        .build()?;
    println!(
        "grid: {} unknowns, {} sources",
        grid.dim(),
        grid.num_sources()
    );

    // Observe a subset of nodes to keep memory flat. Output sampling is
    // 100 points; the TR baseline still *steps* at 10 ps internally
    // (1000 substitution pairs — the paper's t1000), while MATEX only
    // evaluates at samples ∪ transition spots, as in the paper.
    let rows: Vec<usize> = (0..grid.num_nodes()).step_by(17).collect();
    let spec = TransientSpec::new(0.0, window, window / 100.0)?.observing(rows);

    // Baseline: TR with h = 10 ps -> 1000 substitution pairs.
    let tr = Trapezoidal::new(1e-11).run(&grid, &spec)?;
    println!(
        "\nTR(h=10ps):    transient {:?} ({} pairs), total {:?}",
        tr.stats.transient_time,
        tr.stats.substitution_pairs,
        tr.stats.total_time()
    );

    // Distributed R-MATEX. Workers = 1 emulates dedicated cluster nodes
    // faithfully: each node's reported wall time is uncontended, exactly
    // like the paper's one-MATLAB-instance-per-node setup; the reported
    // makespan is still the *maximum* over nodes.
    let run = run_distributed(
        &grid,
        &spec,
        &DistributedOptions {
            matex: MatexOptions::default().tol(1e-6),
            workers: Some(1),
            ..DistributedOptions::default()
        },
    )?;
    println!(
        "MATEX-dist:    transient {:?} (max node), total {:?} (max node), {} groups",
        run.emulated_transient,
        run.emulated_total,
        run.num_groups()
    );
    let (max_err, avg_err) = run.result.error_vs(&tr)?;
    println!("accuracy vs TR: max {max_err:.2e}, avg {avg_err:.2e}");

    let spdp4 =
        tr.stats.transient_time.as_secs_f64() / run.emulated_transient.as_secs_f64().max(1e-12);
    let spdp5 = tr.stats.total_time().as_secs_f64() / run.emulated_total.as_secs_f64().max(1e-12);
    println!("Spdp4 (transient): {spdp4:.1}x   Spdp5 (total): {spdp5:.1}x");

    // Sec. 3.4 model prediction from measured per-operation costs.
    let max_node = run
        .nodes
        .iter()
        .max_by_key(|n| n.stats.transient_time)
        .expect("nodes");
    let st = &max_node.stats;
    let t_bs = st.transient_time.as_secs_f64() / st.substitution_pairs.max(1) as f64; // rough per-pair cost incl. overheads
    let model = SpeedupModel {
        gts_points: run.gts.len(),
        lts_points: max_node.num_lts,
        m: st.krylov_dim_avg().max(1.0),
        fixed_steps: tr.stats.substitution_pairs,
        t_bs,
        t_h: 2e-5,
        t_e: 2e-5,
        t_serial: tr.stats.factor_time.as_secs_f64(),
    };
    println!(
        "Eq.(12) model predicts {:.1}x over fixed TR (measured {spdp4:.1}x)",
        model.speedup_over_fixed()
    );
    Ok(())
}
