//! Quickstart: simulate a pulse-loaded RC power mesh with R-MATEX and
//! print the worst voltage droop.
//!
//! Run with: `cargo run --release --example quickstart`

use matex::circuit::{dc_operating_point, RcMeshBuilder};
use matex::core::{KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a 16x16 RC mesh with the default center pulse load.
    let sys = RcMeshBuilder::new(16, 16)
        .segment_resistance(0.5)
        .node_capacitance(5e-15)
        .build()?;
    println!(
        "circuit: {} unknowns, {} sources",
        sys.dim(),
        sys.num_sources()
    );

    // 2. DC operating point.
    let x0 = dc_operating_point(&sys)?;
    println!("DC voltage at node 0: {:.6} V", x0[0]);

    // 3. Transient: 1 ns window, output every 10 ps.
    let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
    let solver = MatexSolver::new(MatexOptions::new(KrylovKind::Rational).tol(1e-8));
    let result = solver.run(&sys, &spec)?;

    // 4. Report the worst droop (most negative node voltage) anywhere.
    let mut worst = (0usize, 0usize, 0.0_f64);
    for (k, series) in result.series().iter().enumerate() {
        for (i, &v) in series.iter().enumerate() {
            if v < worst.2 {
                worst = (k, i, v);
            }
        }
    }
    let (row_idx, t_idx, v) = worst;
    println!(
        "worst droop: {:.4} mV at node {} (t = {:.2} ps)",
        v * 1e3,
        sys.row_name(result.rows()[row_idx]),
        result.times()[t_idx] * 1e12
    );

    // 5. Cost accounting — the numbers the paper's comparisons use.
    let s = &result.stats;
    println!("factorizations:        {}", s.factorizations);
    println!("substitution pairs:    {}", s.substitution_pairs);
    println!(
        "krylov bases:          {} (avg dim {:.1}, peak {})",
        s.krylov_bases,
        s.krylov_dim_avg(),
        s.krylov_dim_peak
    );
    println!("small expm evals:      {}", s.expm_evals);
    println!("transient wall time:   {:?}", s.transient_time);
    Ok(())
}
