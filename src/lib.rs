//! # MATEX — matrix-exponential transient simulation of power grids
//!
//! A from-scratch Rust reproduction of *"MATEX: A Distributed Framework
//! for Transient Simulation of Power Distribution Networks"* (Zhuang,
//! Weng, Lin, Cheng — DAC 2014), including every substrate the paper
//! builds on. This facade crate re-exports the workspace:
//!
//! * [`dense`] — small dense kernels (LU, QR, eig, Padé `expm`)
//! * [`sparse`] — sparse matrices, AMD/RCM orderings, Gilbert–Peierls LU
//! * [`waveform`] — PULSE/PWL sources, transition spots, bump grouping
//! * [`circuit`] — netlists, SPICE parser, MNA assembly, PDN generators
//! * [`krylov`] — Arnoldi + standard/inverted/rational expm kernels
//! * [`par`] — std-only worker pool + deterministic tiled kernels
//! * [`core`] — transient engines (BE, TR, TR-adaptive, MATEX solver)
//! * [`dist`] — the distributed scheduler / superposition framework
//! * [`store`] — the disk-backed artifact store (versioned records)
//! * [`serve`] — the service layer: scenario engine + TCP job service
//!
//! ## Quickstart
//!
//! ```
//! use matex::circuit::RcMeshBuilder;
//! use matex::core::{KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small RC mesh driven by a pulse current source.
//! let circuit = RcMeshBuilder::new(4, 4).build()?;
//! let spec = TransientSpec::new(0.0, 1e-9, 1e-11)?;
//! let solver = MatexSolver::new(MatexOptions::new(KrylovKind::Rational));
//! let result = solver.run(&circuit, &spec)?;
//! assert_eq!(result.num_time_points(), 101);
//! // One factorization of G, one of (C + γG) — and none thereafter.
//! assert_eq!(result.stats.factorizations, 2);
//! # Ok(())
//! # }
//! ```
//!
//! ## Distributed quickstart
//!
//! ```
//! use matex::circuit::PdnBuilder;
//! use matex::core::TransientSpec;
//! use matex::dist::{run_distributed, DistributedOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = PdnBuilder::new(10, 10).num_loads(12).num_features(4).window(2e-9).build()?;
//! let spec = TransientSpec::new(0.0, 2e-9, 2e-11)?;
//! let run = run_distributed(&grid, &spec, &DistributedOptions::default())?;
//! assert_eq!(run.num_groups(), 5); // 4 bump shapes + supplies
//! # Ok(())
//! # }
//! ```

// Compile the README's code blocks as doctests so the documented
// quickstarts can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

pub use matex_circuit as circuit;
pub use matex_core as core;
pub use matex_dense as dense;
pub use matex_dist as dist;
pub use matex_krylov as krylov;
pub use matex_obs as obs;
pub use matex_par as par;
pub use matex_serve as serve;
pub use matex_sparse as sparse;
pub use matex_store as store;
pub use matex_waveform as waveform;
