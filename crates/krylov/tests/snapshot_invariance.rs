//! Property-based proof of the batched snapshot-evaluation contract
//! (ISSUE 4): `eval_many_into` is **bitwise** the per-call `eval`
//! sequence on the serial path, and bitwise-invariant across pool
//! widths {1, 2, 4, 7}. The ladder is *not* required to match the
//! standalone evaluation bitwise (it pins the degree-13 Padé kernel);
//! waveform-level accuracy is asserted in `matex-core` against the
//! Trapezoidal reference instead.

use matex_krylov::{build_basis_multi, ExpmParams, KrylovBasis, RationalOp, SnapshotEvaluator};
use matex_par::ParPool;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use proptest::prelude::*;

const THREADS: [usize; 4] = [1, 2, 4, 7];

/// RC-ladder style system scaled O(1); returns a converged multi-step
/// basis for the drawn snapshot window.
fn window_basis(n: usize, cap_spread: f64, coupling: f64, hs: &[f64]) -> KrylovBasis {
    let mut ct = Vec::new();
    let mut gt = Vec::new();
    for i in 0..n {
        ct.push((i, i, 1.0 + cap_spread * ((i * 13 % 17) as f64) / 17.0));
        gt.push((i, i, 2.0 + 0.03 * i as f64));
        if i + 1 < n {
            gt.push((i, i + 1, -coupling));
            gt.push((i + 1, i, -coupling));
        }
    }
    let c = CsrMatrix::from_triplets(n, n, &ct);
    let g = CsrMatrix::from_triplets(n, n, &gt);
    let gamma = 0.05;
    let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
    let lu = SparseLu::factor(&shifted, &LuOptions::default()).unwrap();
    let op = RationalOp::new(&lu, &c, gamma);
    let v: Vec<f64> = (0..n).map(|i| ((i * 11 % 23) as f64) - 11.0).collect();
    let params = ExpmParams {
        tol: 1e-8,
        ..ExpmParams::default()
    };
    build_basis_multi(&op, &v, hs, &params).unwrap().basis
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Serial `eval_many_into` ≡ the per-call `eval` sequence, bitwise,
    /// and the batch is bitwise-invariant in the pool width.
    #[test]
    fn eval_many_is_bitwise_per_call_and_pool_invariant(
        n in 60usize..200,
        cap_spread in 1.0f64..40.0,
        coupling in 0.2f64..1.5,
        h_max in 0.05f64..0.4,
        k in 2usize..7,
    ) {
        let hs: Vec<f64> = (1..=k).map(|j| h_max * j as f64 / k as f64).collect();
        let basis = window_basis(n, cap_spread, coupling, &hs);
        let mut ev = SnapshotEvaluator::new();
        let mut batch = vec![0.0; n * k];
        ev.eval_many_into(&basis, &hs, None, &mut batch).unwrap();

        // Bitwise ≡ the per-call sequence.
        for (j, &h) in hs.iter().enumerate() {
            let single = basis.eval(h).unwrap();
            prop_assert_eq!(
                bits(&single),
                bits(&batch[j * n..(j + 1) * n]),
                "per-call eval diverged at h = {}",
                h
            );
        }

        // Bitwise-invariant across pool widths.
        let reference = bits(&batch);
        for threads in THREADS {
            let pool = ParPool::new(threads);
            let mut pooled = vec![f64::NAN; n * k];
            ev.eval_many_into(&basis, &hs, Some(&pool), &mut pooled).unwrap();
            prop_assert_eq!(
                &reference,
                &bits(&pooled),
                "batch diverged at {} threads (n = {})",
                threads,
                n
            );
        }
    }

    /// Ladder rungs agree with the standalone evaluation to rounding
    /// and the rung combination is pool-width bitwise-invariant.
    #[test]
    fn ladder_is_accurate_and_rung_combination_pool_invariant(
        n in 60usize..160,
        cap_spread in 1.0f64..30.0,
        h in 0.1f64..0.5,
        s_max in 1usize..6,
    ) {
        let basis = window_basis(n, cap_spread, 0.8, &[h]);
        let mut ev = SnapshotEvaluator::new();
        ev.eval_ladder(&basis, h, s_max, f64::INFINITY).unwrap();
        let mut serial = vec![0.0; n];
        for s in 0..=s_max {
            ev.combine_rung(&basis, s, None, &mut serial);
            let reference = basis.eval(h * 0.5f64.powi(s as i32)).unwrap();
            let scale = reference.iter().fold(1.0f64, |m, v| m.max(v.abs()));
            for (p, q) in serial.iter().zip(&reference) {
                prop_assert!(
                    (p - q).abs() <= 1e-10 * scale,
                    "rung {} deviates: {} vs {}",
                    s, p, q
                );
            }
            for threads in THREADS {
                let pool = ParPool::new(threads);
                let mut pooled = vec![f64::NAN; n];
                ev.combine_rung(&basis, s, Some(&pool), &mut pooled);
                prop_assert_eq!(bits(&serial), bits(&pooled));
            }
        }
    }
}
