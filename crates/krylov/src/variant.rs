//! Variant selection and the Ĥ → Hm mapping.

use crate::KrylovError;
use matex_dense::{DMat, DenseLu};

/// Which Krylov subspace the matrix exponential is projected onto.
///
/// * `Standard` — `K_m(A, v)`: the MEXP baseline [Weng et al. TCAD'12].
///   Cheap per step but needs large `m` on stiff circuits and a
///   nonsingular `C`.
/// * `Inverted` — `K_m(A⁻¹, v)` (I-MATEX): captures the small-magnitude
///   eigenvalues that dominate the transient.
/// * `Rational` — `K_m((I−γA)⁻¹, v)` (R-MATEX): shift-and-invert basis,
///   the paper's best performer; insensitive to γ near the step-size
///   scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KrylovKind {
    /// Standard Krylov subspace on `A` (MEXP).
    Standard,
    /// Inverted Krylov subspace on `A⁻¹` (I-MATEX).
    Inverted,
    /// Rational (shift-and-invert) Krylov subspace (R-MATEX).
    #[default]
    Rational,
}

impl KrylovKind {
    /// Human-readable name used in reports (matches the paper's naming).
    pub fn label(self) -> &'static str {
        match self {
            KrylovKind::Standard => "MEXP",
            KrylovKind::Inverted => "I-MATEX",
            KrylovKind::Rational => "R-MATEX",
        }
    }

    /// Maps the Arnoldi Hessenberg matrix `Ĥm` of this variant's operator
    /// to the matrix `Hm` whose exponential approximates `e^{hA}`:
    ///
    /// * standard:  `Hm = Ĥm`
    /// * inverted:  `Hm = Ĥm⁻¹`
    /// * rational:  `Hm = (I − Ĥm⁻¹) / γ`
    ///
    /// # Errors
    ///
    /// Returns [`KrylovError::Dense`] if `Ĥm` is numerically singular
    /// (inverted/rational only).
    pub fn map_hessenberg(self, h_hat: &DMat, gamma: f64) -> Result<DMat, KrylovError> {
        Ok(self.map_hessenberg_with_inverse(h_hat, gamma)?.0)
    }

    /// Like [`KrylovKind::map_hessenberg`] but also returns `Ĥm⁻¹` when
    /// the variant computes it (inverted/rational) — the posterior error
    /// estimates of Eqs. (8)/(10) need its last row.
    ///
    /// # Errors
    ///
    /// As [`KrylovKind::map_hessenberg`].
    pub fn map_hessenberg_with_inverse(
        self,
        h_hat: &DMat,
        gamma: f64,
    ) -> Result<(DMat, Option<DMat>), KrylovError> {
        match self {
            KrylovKind::Standard => Ok((h_hat.clone(), None)),
            KrylovKind::Inverted => {
                let inv = DenseLu::factor(h_hat)?.inverse()?;
                Ok((inv.clone(), Some(inv)))
            }
            KrylovKind::Rational => {
                let inv = DenseLu::factor(h_hat)?.inverse()?;
                let m = h_hat.nrows();
                let mut out = DMat::zeros(m, m);
                for i in 0..m {
                    for j in 0..m {
                        let id = if i == j { 1.0 } else { 0.0 };
                        out[(i, j)] = (id - inv[(i, j)]) / gamma;
                    }
                }
                Ok((out, Some(inv)))
            }
        }
    }
}

impl std::fmt::Display for KrylovKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_mapping_is_identity() {
        let h = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let m = KrylovKind::Standard.map_hessenberg(&h, 0.0).unwrap();
        assert_eq!(m, h);
    }

    #[test]
    fn inverted_mapping_inverts() {
        let h = DMat::from_diag(&[2.0, 4.0]);
        let m = KrylovKind::Inverted.map_hessenberg(&h, 0.0).unwrap();
        assert!((m[(0, 0)] - 0.5).abs() < 1e-15);
        assert!((m[(1, 1)] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn rational_mapping_formula() {
        // Ĥ = (I - γA)^{-1} projected; for scalar a: ĥ = 1/(1-γa)
        // → (1 - 1/ĥ)/γ = a.
        let a = -3.0;
        let gamma = 0.05;
        let h_hat = DMat::from_diag(&[1.0 / (1.0 - gamma * a)]);
        let m = KrylovKind::Rational.map_hessenberg(&h_hat, gamma).unwrap();
        assert!((m[(0, 0)] - a).abs() < 1e-12);
    }

    #[test]
    fn singular_hessenberg_reports() {
        let h = DMat::zeros(2, 2);
        assert!(KrylovKind::Inverted.map_hessenberg(&h, 0.0).is_err());
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(KrylovKind::Standard.label(), "MEXP");
        assert_eq!(KrylovKind::Inverted.label(), "I-MATEX");
        assert_eq!(KrylovKind::Rational.to_string(), "R-MATEX");
        assert_eq!(KrylovKind::default(), KrylovKind::Rational);
    }
}
