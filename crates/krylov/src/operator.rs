//! Krylov iteration operators for the three MATEX variants.
//!
//! Each variant of the paper's Alg. 1 is "the same Arnoldi skeleton with
//! different input matrices `X1` (factored) and `X2` (multiplied)":
//!
//! | variant  | operator applied per step            | `X1` (LU)   | `X2` |
//! |----------|--------------------------------------|-------------|------|
//! | standard | `A v   = −C⁻¹ (G v)`                 | `C`         | `G`  |
//! | inverted | `A⁻¹ v = −G⁻¹ (C v)`                 | `G`         | `C`  |
//! | rational | `(I−γA)⁻¹ v = (C+γG)⁻¹ (C v)`        | `C + γG`    | `C`  |

use crate::KrylovKind;
use matex_par::ParPool;
use matex_sparse::{
    CsrMatrix, LuOptions, SmwUpdate, SolveSchedule, SparseError, SparseLu, SymbolicLu,
};

/// Parallel execution context for a Krylov operator: the pool the
/// kernels dispatch on plus the level-scheduled substitution plan of the
/// operator's factored matrix (`X1`).
///
/// Attach with the operators' `with_parallelism` builders; the operator
/// then advertises the pool through [`KrylovOp::pool`], which is how the
/// Arnoldi orthogonalization picks its tiled path.
#[derive(Debug, Clone, Copy)]
pub struct ParApply<'a> {
    /// The shared worker pool.
    pub pool: &'a ParPool,
    /// Substitution plan built from the operator's `X1` factorization.
    pub sched: &'a SolveSchedule,
}

/// One application of the Arnoldi iteration matrix.
///
/// Implementations wrap a pre-computed sparse LU of `X1` and a sparse
/// `X2`; `apply` costs one mat-vec plus one forward/backward substitution
/// pair (`T_bs`).
pub trait KrylovOp {
    /// Dimension of the state space.
    fn dim(&self) -> usize;

    /// Computes `out = Op(v)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from [`KrylovOp::dim`].
    fn apply(&self, v: &[f64], out: &mut [f64]);

    /// Which variant this operator implements.
    fn kind(&self) -> KrylovKind;

    /// The shift parameter γ (rational variant only).
    fn gamma(&self) -> Option<f64> {
        None
    }

    /// The pool this operator's kernels dispatch on, when the operator
    /// was built with a [`ParApply`] context. The Arnoldi process uses
    /// the same pool for its orthogonalization kernels, so one setting
    /// parallelizes the whole Krylov phase.
    fn pool(&self) -> Option<&ParPool> {
        None
    }
}

/// Standard-Krylov operator `v ↦ A v = −C⁻¹(G v)` (the MEXP baseline).
///
/// Requires a *nonsingular* `C` — regularize first when the circuit has
/// cap-less nodes (see `matex_circuit::regularize_c`).
#[derive(Debug)]
pub struct StandardOp<'a> {
    lu_c: &'a SparseLu,
    g: &'a CsrMatrix,
    par: Option<ParApply<'a>>,
    smw: Option<&'a SmwUpdate>,
}

impl<'a> StandardOp<'a> {
    /// Wraps `LU(C)` and `G`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(lu_c: &'a SparseLu, g: &'a CsrMatrix) -> Self {
        assert_eq!(lu_c.dim(), g.nrows(), "dimension mismatch");
        StandardOp {
            lu_c,
            g,
            par: None,
            smw: None,
        }
    }

    /// Runs this operator's mat-vec and substitutions on a pool
    /// (`par.sched` must come from `lu_c`).
    pub fn with_parallelism(mut self, par: ParApply<'a>) -> Self {
        self.par = Some(par);
        self
    }

    /// Applies a Sherman–Morrison–Woodbury correction (built against
    /// `lu_c`) after every substitution pair: the operator then acts
    /// for the *edited* `C` without refactoring (what-if fast path).
    pub fn with_correction(mut self, smw: &'a SmwUpdate) -> Self {
        assert_eq!(smw.dim(), self.lu_c.dim(), "correction dimension mismatch");
        self.smw = Some(smw);
        self
    }
}

impl KrylovOp for StandardOp<'_> {
    fn dim(&self) -> usize {
        self.g.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let mut gv = vec![0.0; self.dim()];
        let mut work = vec![0.0; self.dim()];
        match &self.par {
            None => {
                self.g.matvec_into(v, &mut gv);
                self.lu_c.solve_into(&gv, out, &mut work);
            }
            Some(p) => {
                self.g.matvec_into_par(v, &mut gv, p.pool);
                self.lu_c
                    .solve_into_par(&gv, out, &mut work, p.sched, p.pool);
            }
        }
        if let Some(smw) = self.smw {
            smw.correct_in_place(out);
        }
        for x in out.iter_mut() {
            *x = -*x;
        }
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Standard
    }

    fn pool(&self) -> Option<&ParPool> {
        self.par.as_ref().map(|p| p.pool)
    }
}

/// Inverted-Krylov operator `v ↦ A⁻¹ v = −G⁻¹(C v)` (I-MATEX).
///
/// Works with singular `C`: only `G` is factored (Sec. 3.3.3).
#[derive(Debug)]
pub struct InvertedOp<'a> {
    lu_g: &'a SparseLu,
    c: &'a CsrMatrix,
    par: Option<ParApply<'a>>,
    smw: Option<&'a SmwUpdate>,
}

impl<'a> InvertedOp<'a> {
    /// Wraps `LU(G)` and `C`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(lu_g: &'a SparseLu, c: &'a CsrMatrix) -> Self {
        assert_eq!(lu_g.dim(), c.nrows(), "dimension mismatch");
        InvertedOp {
            lu_g,
            c,
            par: None,
            smw: None,
        }
    }

    /// Runs this operator's mat-vec and substitutions on a pool
    /// (`par.sched` must come from `lu_g`).
    pub fn with_parallelism(mut self, par: ParApply<'a>) -> Self {
        self.par = Some(par);
        self
    }

    /// Applies a Sherman–Morrison–Woodbury correction (built against
    /// `lu_g`) after every substitution pair: the operator then acts
    /// for the *edited* `G` without refactoring (what-if fast path).
    pub fn with_correction(mut self, smw: &'a SmwUpdate) -> Self {
        assert_eq!(smw.dim(), self.lu_g.dim(), "correction dimension mismatch");
        self.smw = Some(smw);
        self
    }
}

impl KrylovOp for InvertedOp<'_> {
    fn dim(&self) -> usize {
        self.c.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let mut cv = vec![0.0; self.dim()];
        let mut work = vec![0.0; self.dim()];
        match &self.par {
            None => {
                self.c.matvec_into(v, &mut cv);
                self.lu_g.solve_into(&cv, out, &mut work);
            }
            Some(p) => {
                self.c.matvec_into_par(v, &mut cv, p.pool);
                self.lu_g
                    .solve_into_par(&cv, out, &mut work, p.sched, p.pool);
            }
        }
        if let Some(smw) = self.smw {
            smw.correct_in_place(out);
        }
        for x in out.iter_mut() {
            *x = -*x;
        }
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Inverted
    }

    fn pool(&self) -> Option<&ParPool> {
        self.par.as_ref().map(|p| p.pool)
    }
}

/// Rational (shift-and-invert) Krylov operator
/// `v ↦ (I − γA)⁻¹ v = (C + γG)⁻¹ (C v)` (R-MATEX).
///
/// Works with singular `C`: only `C + γG` is factored.
#[derive(Debug)]
pub struct RationalOp<'a> {
    lu_shift: &'a SparseLu,
    c: &'a CsrMatrix,
    gamma: f64,
    par: Option<ParApply<'a>>,
    smw: Option<&'a SmwUpdate>,
}

impl<'a> RationalOp<'a> {
    /// Wraps `LU(C + γG)` and `C`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or `gamma` is not a positive finite
    /// number.
    pub fn new(lu_shift: &'a SparseLu, c: &'a CsrMatrix, gamma: f64) -> Self {
        assert_eq!(lu_shift.dim(), c.nrows(), "dimension mismatch");
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be positive and finite"
        );
        RationalOp {
            lu_shift,
            c,
            gamma,
            par: None,
            smw: None,
        }
    }

    /// Runs this operator's mat-vec and substitutions on a pool
    /// (`par.sched` must come from `lu_shift`).
    pub fn with_parallelism(mut self, par: ParApply<'a>) -> Self {
        self.par = Some(par);
        self
    }

    /// Applies a Sherman–Morrison–Woodbury correction (built against
    /// `lu_shift`) after every substitution pair: the operator then
    /// acts for the *edited* `C + γG` without refactoring — the
    /// rational-Krylov inner solves of the what-if fast path. `C` must
    /// already be the edited system's `C`.
    pub fn with_correction(mut self, smw: &'a SmwUpdate) -> Self {
        assert_eq!(
            smw.dim(),
            self.lu_shift.dim(),
            "correction dimension mismatch"
        );
        self.smw = Some(smw);
        self
    }
}

/// Builds and factors the rational variant's shifted system `C + γG`
/// for a [`RationalOp`].
///
/// When a [`SymbolicLu`] analyzed on the same pattern (any other γ of
/// the same `C`/`G` pair) is supplied, the factorization is a cheap
/// numeric replay — the γ-sweep fast path. Returns the shifted matrix,
/// its factorization, and whether the symbolic replay was used (`false`
/// means a full factorization ran, either because no symbolic object
/// was given or because a pinned pivot degraded).
///
/// # Errors
///
/// Propagates [`SparseError`] from the combination or factorization.
pub fn shifted_system(
    c: &CsrMatrix,
    g: &CsrMatrix,
    gamma: f64,
    symbolic: Option<&SymbolicLu>,
    opts: &LuOptions,
) -> Result<(CsrMatrix, SparseLu, bool), SparseError> {
    let shifted = CsrMatrix::linear_combination(1.0, c, gamma, g)?;
    match symbolic {
        Some(sym) => match sym.try_refactor(&shifted)? {
            Some(lu) => Ok((shifted, lu, true)),
            None => {
                let lu = SparseLu::factor(&shifted, sym.options())?;
                Ok((shifted, lu, false))
            }
        },
        None => {
            let lu = SparseLu::factor(&shifted, opts)?;
            Ok((shifted, lu, false))
        }
    }
}

impl KrylovOp for RationalOp<'_> {
    fn dim(&self) -> usize {
        self.c.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let mut cv = vec![0.0; self.dim()];
        let mut work = vec![0.0; self.dim()];
        match &self.par {
            None => {
                self.c.matvec_into(v, &mut cv);
                self.lu_shift.solve_into(&cv, out, &mut work);
            }
            Some(p) => {
                self.c.matvec_into_par(v, &mut cv, p.pool);
                self.lu_shift
                    .solve_into_par(&cv, out, &mut work, p.sched, p.pool);
            }
        }
        if let Some(smw) = self.smw {
            smw.correct_in_place(out);
        }
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Rational
    }

    fn gamma(&self) -> Option<f64> {
        Some(self.gamma)
    }

    fn pool(&self) -> Option<&ParPool> {
        self.par.as_ref().map(|p| p.pool)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_sparse::LuOptions;

    fn small_system() -> (CsrMatrix, CsrMatrix) {
        // C = diag(1, 2), G = [[3, -1], [-1, 2]]
        let c = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let g = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 3.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
        );
        (c, g)
    }

    #[test]
    fn standard_applies_minus_cinv_g() {
        let (c, g) = small_system();
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let op = StandardOp::new(&lu, &g);
        let mut out = vec![0.0; 2];
        op.apply(&[1.0, 0.0], &mut out);
        // A e1 = -C^{-1} G e1 = -[3, -1/2]
        assert!((out[0] + 3.0).abs() < 1e-12);
        assert!((out[1] - 0.5).abs() < 1e-12);
        assert_eq!(op.kind(), KrylovKind::Standard);
        assert_eq!(op.gamma(), None);
    }

    #[test]
    fn inverted_is_inverse_of_standard() {
        let (c, g) = small_system();
        let lu_c = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let lu_g = SparseLu::factor(&g, &LuOptions::default()).unwrap();
        let std_op = StandardOp::new(&lu_c, &g);
        let inv_op = InvertedOp::new(&lu_g, &c);
        let v = vec![0.7, -0.3];
        let mut av = vec![0.0; 2];
        std_op.apply(&v, &mut av);
        let mut back = vec![0.0; 2];
        inv_op.apply(&av, &mut back);
        for (a, b) in back.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_matches_shifted_inverse() {
        let (c, g) = small_system();
        let gamma = 0.1;
        let shift = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu_s = SparseLu::factor(&shift, &LuOptions::default()).unwrap();
        let op = RationalOp::new(&lu_s, &c, gamma);
        // (I - γA) out = v  with A = -C^{-1}G  ⇔  (C + γG) out = C v.
        let v = vec![1.0, 1.0];
        let mut out = vec![0.0; 2];
        op.apply(&v, &mut out);
        let lhs = shift.matvec(&out);
        let rhs = c.matvec(&v);
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(op.gamma(), Some(0.1));
    }

    #[test]
    fn shifted_system_reuses_symbolic_across_gammas() {
        let (c, g) = small_system();
        let opts = LuOptions::default();
        let analyzed = CsrMatrix::linear_combination(1.0, &c, 0.1, &g).unwrap();
        let sym = SymbolicLu::analyze(&analyzed, &opts).unwrap();
        for gamma in [0.02, 0.1, 0.7] {
            let (m, lu, reused) = shifted_system(&c, &g, gamma, Some(&sym), &opts).unwrap();
            assert!(reused, "γ={gamma} should replay the analysis");
            let (m2, lu_full, reused_full) = shifted_system(&c, &g, gamma, None, &opts).unwrap();
            assert!(!reused_full);
            assert_eq!(m, m2);
            // Bitwise-identical factors → bitwise-identical solves.
            assert_eq!(lu.solve(&[1.0, 2.0]), lu_full.solve(&[1.0, 2.0]));
        }
    }

    #[test]
    fn parallel_apply_is_pool_width_invariant() {
        // The pooled apply (tiled mat-vec + level-scheduled solve) must
        // agree bitwise with the serial apply at every pool width.
        let n = 400;
        let mut ct = Vec::new();
        let mut gt = Vec::new();
        for i in 0..n {
            ct.push((i, i, 1e-13 * (1.0 + 0.1 * (i % 7) as f64)));
            gt.push((i, i, 2.0 + 0.01 * i as f64));
            if i + 1 < n {
                gt.push((i, i + 1, -1.0));
                gt.push((i + 1, i, -1.0));
            }
        }
        let c = CsrMatrix::from_triplets(n, n, &ct);
        let g = CsrMatrix::from_triplets(n, n, &gt);
        let gamma = 1e-10;
        let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factor(&shifted, &LuOptions::default()).unwrap();
        let sched = lu.solve_schedule();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13 % 31) as f64) - 15.0).collect();
        let mut serial_out = vec![0.0; n];
        RationalOp::new(&lu, &c, gamma).apply(&v, &mut serial_out);
        for threads in [1usize, 2, 4] {
            let pool = matex_par::ParPool::new(threads);
            let op = RationalOp::new(&lu, &c, gamma).with_parallelism(ParApply {
                pool: &pool,
                sched: &sched,
            });
            assert!(op.pool().is_some());
            let mut out = vec![0.0; n];
            op.apply(&v, &mut out);
            assert!(
                serial_out
                    .iter()
                    .zip(&out)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "{threads}-thread apply diverged"
            );
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rational_rejects_bad_gamma() {
        let (c, _) = small_system();
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let _ = RationalOp::new(&lu, &c, -1.0);
    }
}
