//! Krylov iteration operators for the three MATEX variants.
//!
//! Each variant of the paper's Alg. 1 is "the same Arnoldi skeleton with
//! different input matrices `X1` (factored) and `X2` (multiplied)":
//!
//! | variant  | operator applied per step            | `X1` (LU)   | `X2` |
//! |----------|--------------------------------------|-------------|------|
//! | standard | `A v   = −C⁻¹ (G v)`                 | `C`         | `G`  |
//! | inverted | `A⁻¹ v = −G⁻¹ (C v)`                 | `G`         | `C`  |
//! | rational | `(I−γA)⁻¹ v = (C+γG)⁻¹ (C v)`        | `C + γG`    | `C`  |

use crate::KrylovKind;
use matex_sparse::{CsrMatrix, LuOptions, SparseError, SparseLu, SymbolicLu};

/// One application of the Arnoldi iteration matrix.
///
/// Implementations wrap a pre-computed sparse LU of `X1` and a sparse
/// `X2`; `apply` costs one mat-vec plus one forward/backward substitution
/// pair (`T_bs`).
pub trait KrylovOp {
    /// Dimension of the state space.
    fn dim(&self) -> usize;

    /// Computes `out = Op(v)`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from [`KrylovOp::dim`].
    fn apply(&self, v: &[f64], out: &mut [f64]);

    /// Which variant this operator implements.
    fn kind(&self) -> KrylovKind;

    /// The shift parameter γ (rational variant only).
    fn gamma(&self) -> Option<f64> {
        None
    }
}

/// Standard-Krylov operator `v ↦ A v = −C⁻¹(G v)` (the MEXP baseline).
///
/// Requires a *nonsingular* `C` — regularize first when the circuit has
/// cap-less nodes (see `matex_circuit::regularize_c`).
#[derive(Debug)]
pub struct StandardOp<'a> {
    lu_c: &'a SparseLu,
    g: &'a CsrMatrix,
}

impl<'a> StandardOp<'a> {
    /// Wraps `LU(C)` and `G`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(lu_c: &'a SparseLu, g: &'a CsrMatrix) -> Self {
        assert_eq!(lu_c.dim(), g.nrows(), "dimension mismatch");
        StandardOp { lu_c, g }
    }
}

impl KrylovOp for StandardOp<'_> {
    fn dim(&self) -> usize {
        self.g.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let gv = self.g.matvec(v);
        let mut work = vec![0.0; self.dim()];
        self.lu_c.solve_into(&gv, out, &mut work);
        for x in out.iter_mut() {
            *x = -*x;
        }
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Standard
    }
}

/// Inverted-Krylov operator `v ↦ A⁻¹ v = −G⁻¹(C v)` (I-MATEX).
///
/// Works with singular `C`: only `G` is factored (Sec. 3.3.3).
#[derive(Debug)]
pub struct InvertedOp<'a> {
    lu_g: &'a SparseLu,
    c: &'a CsrMatrix,
}

impl<'a> InvertedOp<'a> {
    /// Wraps `LU(G)` and `C`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn new(lu_g: &'a SparseLu, c: &'a CsrMatrix) -> Self {
        assert_eq!(lu_g.dim(), c.nrows(), "dimension mismatch");
        InvertedOp { lu_g, c }
    }
}

impl KrylovOp for InvertedOp<'_> {
    fn dim(&self) -> usize {
        self.c.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let cv = self.c.matvec(v);
        let mut work = vec![0.0; self.dim()];
        self.lu_g.solve_into(&cv, out, &mut work);
        for x in out.iter_mut() {
            *x = -*x;
        }
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Inverted
    }
}

/// Rational (shift-and-invert) Krylov operator
/// `v ↦ (I − γA)⁻¹ v = (C + γG)⁻¹ (C v)` (R-MATEX).
///
/// Works with singular `C`: only `C + γG` is factored.
#[derive(Debug)]
pub struct RationalOp<'a> {
    lu_shift: &'a SparseLu,
    c: &'a CsrMatrix,
    gamma: f64,
}

impl<'a> RationalOp<'a> {
    /// Wraps `LU(C + γG)` and `C`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or `gamma` is not a positive finite
    /// number.
    pub fn new(lu_shift: &'a SparseLu, c: &'a CsrMatrix, gamma: f64) -> Self {
        assert_eq!(lu_shift.dim(), c.nrows(), "dimension mismatch");
        assert!(
            gamma.is_finite() && gamma > 0.0,
            "gamma must be positive and finite"
        );
        RationalOp { lu_shift, c, gamma }
    }
}

/// Builds and factors the rational variant's shifted system `C + γG`
/// for a [`RationalOp`].
///
/// When a [`SymbolicLu`] analyzed on the same pattern (any other γ of
/// the same `C`/`G` pair) is supplied, the factorization is a cheap
/// numeric replay — the γ-sweep fast path. Returns the shifted matrix,
/// its factorization, and whether the symbolic replay was used (`false`
/// means a full factorization ran, either because no symbolic object
/// was given or because a pinned pivot degraded).
///
/// # Errors
///
/// Propagates [`SparseError`] from the combination or factorization.
pub fn shifted_system(
    c: &CsrMatrix,
    g: &CsrMatrix,
    gamma: f64,
    symbolic: Option<&SymbolicLu>,
    opts: &LuOptions,
) -> Result<(CsrMatrix, SparseLu, bool), SparseError> {
    let shifted = CsrMatrix::linear_combination(1.0, c, gamma, g)?;
    match symbolic {
        Some(sym) => match sym.try_refactor(&shifted)? {
            Some(lu) => Ok((shifted, lu, true)),
            None => {
                let lu = SparseLu::factor(&shifted, sym.options())?;
                Ok((shifted, lu, false))
            }
        },
        None => {
            let lu = SparseLu::factor(&shifted, opts)?;
            Ok((shifted, lu, false))
        }
    }
}

impl KrylovOp for RationalOp<'_> {
    fn dim(&self) -> usize {
        self.c.nrows()
    }

    fn apply(&self, v: &[f64], out: &mut [f64]) {
        let cv = self.c.matvec(v);
        let mut work = vec![0.0; self.dim()];
        self.lu_shift.solve_into(&cv, out, &mut work);
    }

    fn kind(&self) -> KrylovKind {
        KrylovKind::Rational
    }

    fn gamma(&self) -> Option<f64> {
        Some(self.gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_sparse::LuOptions;

    fn small_system() -> (CsrMatrix, CsrMatrix) {
        // C = diag(1, 2), G = [[3, -1], [-1, 2]]
        let c = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let g = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 3.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
        );
        (c, g)
    }

    #[test]
    fn standard_applies_minus_cinv_g() {
        let (c, g) = small_system();
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let op = StandardOp::new(&lu, &g);
        let mut out = vec![0.0; 2];
        op.apply(&[1.0, 0.0], &mut out);
        // A e1 = -C^{-1} G e1 = -[3, -1/2]
        assert!((out[0] + 3.0).abs() < 1e-12);
        assert!((out[1] - 0.5).abs() < 1e-12);
        assert_eq!(op.kind(), KrylovKind::Standard);
        assert_eq!(op.gamma(), None);
    }

    #[test]
    fn inverted_is_inverse_of_standard() {
        let (c, g) = small_system();
        let lu_c = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let lu_g = SparseLu::factor(&g, &LuOptions::default()).unwrap();
        let std_op = StandardOp::new(&lu_c, &g);
        let inv_op = InvertedOp::new(&lu_g, &c);
        let v = vec![0.7, -0.3];
        let mut av = vec![0.0; 2];
        std_op.apply(&v, &mut av);
        let mut back = vec![0.0; 2];
        inv_op.apply(&av, &mut back);
        for (a, b) in back.iter().zip(&v) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn rational_matches_shifted_inverse() {
        let (c, g) = small_system();
        let gamma = 0.1;
        let shift = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu_s = SparseLu::factor(&shift, &LuOptions::default()).unwrap();
        let op = RationalOp::new(&lu_s, &c, gamma);
        // (I - γA) out = v  with A = -C^{-1}G  ⇔  (C + γG) out = C v.
        let v = vec![1.0, 1.0];
        let mut out = vec![0.0; 2];
        op.apply(&v, &mut out);
        let lhs = shift.matvec(&out);
        let rhs = c.matvec(&v);
        for (a, b) in lhs.iter().zip(&rhs) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_eq!(op.gamma(), Some(0.1));
    }

    #[test]
    fn shifted_system_reuses_symbolic_across_gammas() {
        let (c, g) = small_system();
        let opts = LuOptions::default();
        let analyzed = CsrMatrix::linear_combination(1.0, &c, 0.1, &g).unwrap();
        let sym = SymbolicLu::analyze(&analyzed, &opts).unwrap();
        for gamma in [0.02, 0.1, 0.7] {
            let (m, lu, reused) = shifted_system(&c, &g, gamma, Some(&sym), &opts).unwrap();
            assert!(reused, "γ={gamma} should replay the analysis");
            let (m2, lu_full, reused_full) = shifted_system(&c, &g, gamma, None, &opts).unwrap();
            assert!(!reused_full);
            assert_eq!(m, m2);
            // Bitwise-identical factors → bitwise-identical solves.
            assert_eq!(lu.solve(&[1.0, 2.0]), lu_full.solve(&[1.0, 2.0]));
        }
    }

    #[test]
    #[should_panic(expected = "gamma")]
    fn rational_rejects_bad_gamma() {
        let (c, _) = small_system();
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let _ = RationalOp::new(&lu, &c, -1.0);
    }
}
