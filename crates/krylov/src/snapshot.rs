//! Batched snapshot evaluation: the engine behind MATEX's "one basis,
//! many eval times" economy.
//!
//! Every snapshot evaluation costs a small projected exponential
//! (`T_H = O(m³)`) plus a basis combination (`T_e = O(n·m)`). This
//! module makes both allocation-free and batchable:
//!
//! * [`SnapshotEvaluator::weights_many`] computes the combination
//!   weights `β·e^{hⱼ·Hm}e₁` **and** the posterior error estimate for a
//!   whole window of eval times through one reusable
//!   [`ExpmScratch`](matex_dense::ExpmScratch),
//! * [`SnapshotEvaluator::combine_into`] turns the accepted weight
//!   columns into state vectors with one pooled, tile-deterministic
//!   [`combine_columns`](matex_par::combine_columns) call,
//! * [`SnapshotEvaluator::eval_ladder`] replaces the per-trial sub-step
//!   search: the squaring intermediates of a **single** scaling-and-
//!   squaring pass are exactly the exponentials at the halved distances
//!   `h/2^s`, so the whole halving ladder costs one Padé evaluation
//!   plus one `O(m³)` square per rung.
//!
//! Determinism contract: the serial (`pool = None`) combination is
//! byte-for-byte the legacy [`KrylovBasis::eval`] loop, and the pooled
//! combination is bitwise-invariant in the pool width (see
//! `matex_par`'s kernel contract). The weight and ladder computations
//! are small dense serial code, identical on every path.

use crate::{KrylovBasis, KrylovError};
use matex_dense::{expm_col0_into, expm_col0_ladder, DMat, DenseError, ExpmScratch};
use matex_par::ParPool;
use std::cell::RefCell;

/// Reusable scratch and weight storage for batched snapshot evaluation.
///
/// One evaluator serves any number of bases (buffers re-size lazily on
/// dimension changes); after warm-up at a given `(m, k)` every call is
/// allocation-free (counting-allocator proof in
/// `matex-core/tests/alloc_free.rs`).
///
/// # Example
///
/// ```
/// use matex_krylov::{build_basis_multi, ExpmParams, SnapshotEvaluator, StandardOp};
/// use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let c = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 2.0)]);
/// let g = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
/// let lu = SparseLu::factor(&c, &LuOptions::default())?;
/// let op = StandardOp::new(&lu, &g);
/// let hs = [0.05, 0.1, 0.2];
/// let out = build_basis_multi(&op, &[1.0, 0.5], &hs, &ExpmParams::with_tol(1e-12))?;
///
/// let mut ev = SnapshotEvaluator::new();
/// let mut batch = vec![0.0; 2 * hs.len()];
/// ev.eval_many_into(&out.basis, &hs, None, &mut batch)?;
/// // Bitwise identical to the per-call sequence.
/// for (j, &h) in hs.iter().enumerate() {
///     assert_eq!(out.basis.eval(h)?, batch[j * 2..(j + 1) * 2]);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotEvaluator {
    /// `h·Hm` scratch.
    scaled: DMat,
    /// Dense expm scratch shared by every weight/ladder computation.
    scratch: ExpmScratch,
    /// Batch weights, snapshot `j` at `[j·m, (j+1)·m)`, scaled by `β`.
    weights: Vec<f64>,
    /// Posterior estimate per batch snapshot (`∞` where the projected
    /// exponential overflowed).
    estimates: Vec<f64>,
    /// Ladder weights, rung `s` at `[s·m, (s+1)·m)`, scaled by `β`.
    ladder_weights: Vec<f64>,
    /// Posterior estimate per rung (`∞` for rungs never computed).
    ladder_estimates: Vec<f64>,
    /// Lowest (longest-step) rung the last ladder ascent reached.
    ladder_lo: usize,
}

impl SnapshotEvaluator {
    /// Creates an evaluator with empty buffers (sized on first use).
    pub fn new() -> SnapshotEvaluator {
        SnapshotEvaluator {
            scaled: DMat::zeros(0, 0),
            scratch: ExpmScratch::new(),
            weights: Vec::new(),
            estimates: Vec::new(),
            ladder_weights: Vec::new(),
            ladder_estimates: Vec::new(),
            ladder_lo: 0,
        }
    }

    fn ensure_m(&mut self, m: usize) {
        if self.scaled.nrows() != m {
            self.scaled = DMat::zeros(m, m);
        }
    }

    /// Weights and estimate for a single step `h`, written to the first
    /// batch column. Unlike [`SnapshotEvaluator::weights_many`] this
    /// propagates a non-finite projected exponential as an error — the
    /// legacy per-call contract the [`KrylovBasis`] wrappers keep.
    pub(crate) fn weights_one(&mut self, basis: &KrylovBasis, h: f64) -> Result<(), KrylovError> {
        let m = basis.m();
        self.ensure_m(m);
        if self.weights.len() < m {
            self.weights.resize(m, 0.0);
        }
        if self.estimates.is_empty() {
            self.estimates.push(0.0);
        }
        basis.hm().scaled_into(h, &mut self.scaled);
        let col = &mut self.weights[..m];
        expm_col0_into(&self.scaled, &mut self.scratch, col)?;
        self.estimates[0] = basis.estimate_from_col(col);
        for c in col.iter_mut() {
            *c *= basis.beta();
        }
        Ok(())
    }

    /// Phase 1 (`T_H`): combination weights `β·e^{hⱼ·Hm}e₁` and the
    /// posterior error estimate for **every** snapshot time in `hs`.
    ///
    /// A snapshot whose projected exponential overflows (sign-flipped
    /// Ritz artifacts at long reuse distances) is recorded with zero
    /// weights and an `∞` estimate instead of failing the batch — the
    /// same "treat as rejected, sub-step" semantics the solver applied
    /// per call.
    ///
    /// # Errors
    ///
    /// [`KrylovError::Dense`] for structural dense failures (singular
    /// Padé denominator).
    pub fn weights_many(&mut self, basis: &KrylovBasis, hs: &[f64]) -> Result<(), KrylovError> {
        let m = basis.m();
        self.ensure_m(m);
        self.weights.resize(hs.len() * m, 0.0);
        self.estimates.resize(hs.len(), 0.0);
        for (j, &h) in hs.iter().enumerate() {
            basis.hm().scaled_into(h, &mut self.scaled);
            let col = &mut self.weights[j * m..(j + 1) * m];
            match expm_col0_into(&self.scaled, &mut self.scratch, col) {
                Ok(()) => {
                    self.estimates[j] = basis.estimate_from_col(col);
                    for c in col.iter_mut() {
                        *c *= basis.beta();
                    }
                }
                Err(DenseError::NotFinite) => {
                    col.fill(0.0);
                    self.estimates[j] = f64::INFINITY;
                }
                Err(e) => return Err(KrylovError::Dense(e)),
            }
        }
        Ok(())
    }

    /// Posterior estimates of the last [`SnapshotEvaluator::weights_many`]
    /// batch, in snapshot order.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// The β-scaled weight columns of the last batch (snapshot `j` at
    /// `[j·m, (j+1)·m)`).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Phase 2 (`T_e`): combines the first `k` batch columns into state
    /// vectors: `out[j·n .. (j+1)·n] = Σᵢ wⱼ[i]·vᵢ`.
    ///
    /// With a pool this is one tiled [`combine_columns`]
    /// (bitwise-invariant in the pool width); without, byte-for-byte the
    /// legacy per-call combination loop.
    ///
    /// [`combine_columns`]: matex_par::combine_columns
    ///
    /// # Panics
    ///
    /// Panics when fewer than `k` columns were computed or
    /// `out.len() != k·n`.
    pub fn combine_into(
        &self,
        basis: &KrylovBasis,
        k: usize,
        pool: Option<&ParPool>,
        out: &mut [f64],
    ) {
        self.combine_range(basis, 0, k, pool, out);
    }

    /// Combines the contiguous batch columns `[start, end)` — the
    /// general form behind [`SnapshotEvaluator::combine_into`], for
    /// callers whose accepted snapshots are not a prefix (on stiff
    /// bases the *short* distances are the ones that reject).
    ///
    /// # Panics
    ///
    /// Panics when the range exceeds the computed columns or
    /// `out.len() != (end - start)·n`.
    pub fn combine_range(
        &self,
        basis: &KrylovBasis,
        start: usize,
        end: usize,
        pool: Option<&ParPool>,
        out: &mut [f64],
    ) {
        let m = basis.m();
        assert!(start <= end, "combine_range: inverted range");
        assert!(
            end * m <= self.weights.len(),
            "combine_range: only {} weight columns available",
            self.weights.len() / m.max(1)
        );
        combine_slice(
            basis.vectors(),
            &self.weights[start * m..end * m],
            end - start,
            pool,
            out,
        );
    }

    /// Combines a single batch column `j` (the best-effort acceptance
    /// path of an exhausted sub-step search).
    ///
    /// # Panics
    ///
    /// As [`SnapshotEvaluator::combine_into`].
    pub fn combine_one(
        &self,
        basis: &KrylovBasis,
        j: usize,
        pool: Option<&ParPool>,
        out: &mut [f64],
    ) {
        let m = basis.m();
        assert!(
            (j + 1) * m <= self.weights.len(),
            "combine_one: column {j} not computed"
        );
        combine_slice(
            basis.vectors(),
            &self.weights[j * m..(j + 1) * m],
            1,
            pool,
            out,
        );
    }

    /// Convenience: [`SnapshotEvaluator::weights_many`] +
    /// [`SnapshotEvaluator::combine_into`] over the full batch. The
    /// result is bitwise-identical to the per-call
    /// [`KrylovBasis::eval`] sequence.
    ///
    /// # Errors
    ///
    /// As [`SnapshotEvaluator::weights_many`].
    ///
    /// # Panics
    ///
    /// Panics when `out.len() != hs.len()·n`.
    pub fn eval_many_into(
        &mut self,
        basis: &KrylovBasis,
        hs: &[f64],
        pool: Option<&ParPool>,
        out: &mut [f64],
    ) -> Result<(), KrylovError> {
        self.weights_many(basis, hs)?;
        self.combine_into(basis, hs.len(), pool, out);
        Ok(())
    }

    /// Squaring-ladder evaluation of `h, h/2, …, h/2^{s_max}` from one
    /// scaling-and-squaring pass ([`expm_col0_ladder`]).
    ///
    /// Rungs are produced bottom-up (deepest first); the ascent stops at
    /// the first rung whose posterior estimate exceeds `stop_above`
    /// (pass `f64::INFINITY` to force the full ladder). Per-rung
    /// weights and estimates are kept on the evaluator —
    /// [`SnapshotEvaluator::best_rung`] then picks the longest passing
    /// step and [`SnapshotEvaluator::combine_rung`] materializes it.
    ///
    /// # Errors
    ///
    /// [`KrylovError::Dense`] when the base Padé evaluation fails.
    pub fn eval_ladder(
        &mut self,
        basis: &KrylovBasis,
        h: f64,
        s_max: usize,
        stop_above: f64,
    ) -> Result<(), KrylovError> {
        let m = basis.m();
        self.ensure_m(m);
        self.ladder_weights.resize((s_max + 1) * m, 0.0);
        self.ladder_estimates.clear();
        self.ladder_estimates.resize(s_max + 1, f64::INFINITY);
        basis.hm().scaled_into(h, &mut self.scaled);
        let ests = &mut self.ladder_estimates;
        let lo = expm_col0_ladder(
            &self.scaled,
            s_max,
            &mut self.scratch,
            &mut self.ladder_weights,
            |s, col| {
                let e = basis.estimate_from_col(col);
                ests[s] = e;
                e <= stop_above
            },
        )
        .map_err(KrylovError::Dense)?;
        self.ladder_lo = lo;
        for c in self.ladder_weights[lo * m..].iter_mut() {
            *c *= basis.beta();
        }
        Ok(())
    }

    /// Per-rung posterior estimates of the last ladder (`∞` for rungs
    /// the early exit never computed), indexed by `s` (rung `s`
    /// evaluates `h/2^s`).
    pub fn ladder_estimates(&self) -> &[f64] {
        &self.ladder_estimates
    }

    /// The longest step of the last ladder whose estimate passes `tol`:
    /// the smallest rung index `s` with `estimate ≤ tol`.
    pub fn best_rung(&self, tol: f64) -> Option<usize> {
        self.ladder_estimates.iter().position(|&e| e <= tol)
    }

    /// Combines ladder rung `s` into a state vector.
    ///
    /// # Panics
    ///
    /// Panics when rung `s` was not computed by the last ladder ascent.
    pub fn combine_rung(
        &self,
        basis: &KrylovBasis,
        s: usize,
        pool: Option<&ParPool>,
        out: &mut [f64],
    ) {
        let m = basis.m();
        assert!(
            s >= self.ladder_lo && (s + 1) * m <= self.ladder_weights.len(),
            "combine_rung: rung {s} not computed (ladder reached {})",
            self.ladder_lo
        );
        combine_slice(
            basis.vectors(),
            &self.ladder_weights[s * m..(s + 1) * m],
            1,
            pool,
            out,
        );
    }
}

impl Default for SnapshotEvaluator {
    fn default() -> Self {
        SnapshotEvaluator::new()
    }
}

/// Shared combination body: pooled tiled kernel, or the byte-for-byte
/// legacy serial loop when no pool is set.
fn combine_slice(
    vs: &[Vec<f64>],
    weights: &[f64],
    k: usize,
    pool: Option<&ParPool>,
    out: &mut [f64],
) {
    let m = vs.len();
    let n = vs.first().map_or(0, Vec::len);
    assert_eq!(out.len(), k * n, "combine: output length mismatch");
    match pool {
        Some(pool) => matex_par::combine_columns(pool, vs, weights, k, out),
        None => {
            for j in 0..k {
                let w = &weights[j * m..(j + 1) * m];
                let x = &mut out[j * n..(j + 1) * n];
                x.fill(0.0);
                for (wi, vi) in w.iter().zip(vs) {
                    if *wi == 0.0 {
                        continue;
                    }
                    for (xe, ve) in x.iter_mut().zip(vi) {
                        *xe += wi * ve;
                    }
                }
            }
        }
    }
}

thread_local! {
    /// Per-thread evaluator backing the legacy [`KrylovBasis`] per-call
    /// API, so even `eval`/`eval_weights`/`error_estimate` stop
    /// allocating their dense intermediates.
    static SHARED: RefCell<SnapshotEvaluator> = RefCell::new(SnapshotEvaluator::new());
}

/// Runs `f` against this thread's shared evaluator.
pub(crate) fn with_shared<R>(f: impl FnOnce(&mut SnapshotEvaluator) -> R) -> R {
    SHARED.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_basis_multi, ExpmParams, RationalOp};
    use matex_sparse::{CsrMatrix, LuOptions, SparseLu};

    fn basis(n: usize, hs: &[f64]) -> (KrylovBasis, SparseLu, CsrMatrix) {
        let mut ct = Vec::new();
        let mut gt = Vec::new();
        for i in 0..n {
            ct.push((i, i, 1.0 + 0.1 * i as f64));
            gt.push((i, i, 2.0 + 0.05 * i as f64));
            if i + 1 < n {
                gt.push((i, i + 1, -1.0));
                gt.push((i + 1, i, -1.0));
            }
        }
        let c = CsrMatrix::from_triplets(n, n, &ct);
        let g = CsrMatrix::from_triplets(n, n, &gt);
        let gamma = 0.07;
        let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factor(&shifted, &LuOptions::default()).unwrap();
        let op = RationalOp::new(&lu, &c, gamma);
        let v: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 5 % 11) as f64) * 0.3).collect();
        let params = ExpmParams {
            tol: 1e-11,
            m_max: n,
            ..ExpmParams::default()
        };
        let out = build_basis_multi(&op, &v, hs, &params).unwrap();
        (out.basis, lu, c)
    }

    #[test]
    fn eval_many_matches_per_call_eval_bitwise() {
        let hs = [0.02, 0.05, 0.11, 0.2];
        let (b, _lu, _c) = basis(12, &hs);
        let n = 12;
        let mut ev = SnapshotEvaluator::new();
        let mut out = vec![0.0; n * hs.len()];
        ev.eval_many_into(&b, &hs, None, &mut out).unwrap();
        for (j, &h) in hs.iter().enumerate() {
            let single = b.eval(h).unwrap();
            for (p, q) in single.iter().zip(&out[j * n..(j + 1) * n]) {
                assert_eq!(p.to_bits(), q.to_bits(), "h = {h}");
            }
        }
        // Estimates match the per-call error_estimate.
        for (j, &h) in hs.iter().enumerate() {
            let est = b.error_estimate(h).unwrap();
            assert_eq!(est.to_bits(), ev.estimates()[j].to_bits());
        }
    }

    #[test]
    fn pooled_combination_is_pool_width_invariant() {
        let hs = [0.03, 0.09, 0.18];
        let (b, _lu, _c) = basis(16, &hs);
        let n = 16;
        let mut ev = SnapshotEvaluator::new();
        let mut reference = vec![0.0; n * hs.len()];
        ev.eval_many_into(&b, &hs, None, &mut reference).unwrap();
        for threads in [1usize, 2, 4, 7] {
            let pool = ParPool::new(threads);
            let mut out = vec![f64::NAN; n * hs.len()];
            ev.eval_many_into(&b, &hs, Some(&pool), &mut out).unwrap();
            assert!(
                reference
                    .iter()
                    .zip(&out)
                    .all(|(p, q)| p.to_bits() == q.to_bits()),
                "pool width {threads} diverged"
            );
        }
    }

    #[test]
    fn ladder_rungs_agree_with_per_call_eval() {
        let (b, _lu, _c) = basis(10, &[0.4]);
        let mut ev = SnapshotEvaluator::new();
        let h = 0.4;
        let s_max = 4;
        ev.eval_ladder(&b, h, s_max, f64::INFINITY).unwrap();
        // Every rung passes with an infinite threshold; rung values agree
        // with the standalone evaluation to rounding.
        assert_eq!(ev.best_rung(f64::INFINITY), Some(0));
        let mut out = vec![0.0; 10];
        for s in 0..=s_max {
            ev.combine_rung(&b, s, None, &mut out);
            let hs = h * 0.5_f64.powi(s as i32);
            let reference = b.eval(hs).unwrap();
            let scale = reference.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
            for (p, q) in out.iter().zip(&reference) {
                assert!((p - q).abs() <= 1e-11 * scale, "rung {s}: {p} vs {q}");
            }
            // And the rung estimate tracks the per-call estimate.
            let est = b.error_estimate(hs).unwrap();
            let lest = ev.ladder_estimates()[s];
            assert!(
                (est - lest).abs() <= 1e-6 * est.max(1e-300) + 1e-300,
                "rung {s}: estimate {lest:.3e} vs per-call {est:.3e}"
            );
        }
    }

    #[test]
    fn ladder_early_exit_reports_unreached_rungs_as_infinite() {
        let (b, _lu, _c) = basis(10, &[0.4]);
        let mut ev = SnapshotEvaluator::new();
        // Threshold below every estimate: the ascent stops right above
        // the deepest rung.
        ev.eval_ladder(&b, 0.4, 6, -1.0).unwrap();
        let ests = ev.ladder_estimates();
        assert!(ests[6].is_finite());
        assert!(ests[..6].iter().all(|e| e.is_infinite()));
        assert_eq!(ev.best_rung(1e300), Some(6));
        assert_eq!(ev.best_rung(0.0), None);
    }
}
