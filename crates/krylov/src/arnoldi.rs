//! Incremental Arnoldi process (paper Alg. 1, "MATEX Arnoldi").

use crate::{KrylovError, KrylovOp};
use matex_dense::{dot, norm2, DMat};

/// An incrementally extensible Arnoldi factorization
/// `Op·V_m = V_m·Ĥ_m + ĥ_{m+1,m}·v_{m+1}·e_mᵀ`.
///
/// Uses modified Gram–Schmidt with one optional re-orthogonalization pass
/// (on by default — stiff PDN systems quickly lose orthogonality without
/// it). The basis can be *extended* after a convergence check fails, which
/// is how the solver grows `m` without restarting (Alg. 1 lines 10–12).
///
/// When the operator advertises a pool ([`KrylovOp::pool`]), the
/// orthogonalization switches to a **fused, tiled classical
/// Gram–Schmidt** with the same number of passes: each pass computes all
/// projection coefficients in one dispatch ([`matex_par::multi_dot`])
/// and removes them in a second ([`matex_par::subtract_combination`]).
/// With two passes (`reorth`, the default) this is the classical
/// "CGS2/twice-is-enough" scheme, numerically equivalent to MGS with
/// re-orthogonalization but with `O(m)` pool dispatches per step instead
/// of `O(m²)` — the shape that actually scales over threads. The tiled
/// reductions make the result bitwise-invariant in the pool width
/// (`MATEX_THREADS` ∈ {1, 2, …} all agree exactly); the pool-less path
/// remains byte-for-byte the historical serial MGS.
pub struct Arnoldi<'a> {
    op: &'a dyn KrylovOp,
    beta: f64,
    /// Basis vectors `v_1 .. v_{j+1}` (one more than completed columns,
    /// except after breakdown).
    vs: Vec<Vec<f64>>,
    /// Hessenberg columns; `hcols[j]` holds `ĥ_{1..j+2, j+1}`.
    hcols: Vec<Vec<f64>>,
    /// Set when an invariant subspace was hit at dimension `m`.
    breakdown: Option<usize>,
    reorth: bool,
}

impl<'a> Arnoldi<'a> {
    /// Starts the process from vector `v` (not necessarily normalized).
    ///
    /// # Errors
    ///
    /// * [`KrylovError::ZeroStartVector`] when `‖v‖ = 0`.
    /// * [`KrylovError::NotFinite`] when `v` contains NaN/inf.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != op.dim()`.
    pub fn new(op: &'a dyn KrylovOp, v: &[f64], reorth: bool) -> Result<Self, KrylovError> {
        assert_eq!(v.len(), op.dim(), "arnoldi: vector length mismatch");
        if v.iter().any(|x| !x.is_finite()) {
            return Err(KrylovError::NotFinite { step: 0 });
        }
        // With a pool, β comes from the tiled norm so the whole process
        // is invariant in the pool width; the division is elementwise
        // (identical at any width) either way.
        let beta = match op.pool() {
            None => norm2(v),
            Some(pool) => matex_par::norm2(pool, v),
        };
        if beta == 0.0 {
            return Err(KrylovError::ZeroStartVector);
        }
        let v1: Vec<f64> = v.iter().map(|x| x / beta).collect();
        Ok(Arnoldi {
            op,
            beta,
            vs: vec![v1],
            hcols: Vec::new(),
            breakdown: None,
            reorth,
        })
    }

    /// `‖v‖` of the starting vector.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Number of completed Arnoldi columns (current subspace dimension).
    pub fn m(&self) -> usize {
        self.hcols.len()
    }

    /// `true` once an invariant subspace has been found; further
    /// [`Arnoldi::step`]s are no-ops.
    pub fn broke_down(&self) -> bool {
        self.breakdown.is_some()
    }

    /// Performs one Arnoldi step, extending the subspace dimension by one.
    ///
    /// # Errors
    ///
    /// Returns [`KrylovError::NotFinite`] if the operator output blows up.
    pub fn step(&mut self) -> Result<(), KrylovError> {
        if self.breakdown.is_some() {
            return Ok(());
        }
        let j = self.hcols.len();
        let vj = &self.vs[j];
        let mut w = vec![0.0; self.op.dim()];
        self.op.apply(vj, &mut w);
        if w.iter().any(|x| !x.is_finite()) {
            return Err(KrylovError::NotFinite { step: j + 1 });
        }
        let mut hcol = vec![0.0; j + 2];
        let (w_scale, hnext) = match self.op.pool() {
            None => {
                let w_scale = norm2(&w);
                // Modified Gram–Schmidt.
                for (i, vi) in self.vs.iter().enumerate() {
                    let hij = dot(&w, vi);
                    hcol[i] = hij;
                    for (wk, vk) in w.iter_mut().zip(vi) {
                        *wk -= hij * vk;
                    }
                }
                if self.reorth {
                    // Second MGS pass: corrections fold into the same
                    // coefficients.
                    for (i, vi) in self.vs.iter().enumerate() {
                        let corr = dot(&w, vi);
                        hcol[i] += corr;
                        for (wk, vk) in w.iter_mut().zip(vi) {
                            *wk -= corr * vk;
                        }
                    }
                }
                (w_scale, norm2(&w))
            }
            Some(pool) => {
                let w_scale = matex_par::norm2(pool, &w);
                // Fused classical Gram–Schmidt: all coefficients in one
                // tiled dispatch, all projections removed in a second.
                matex_par::multi_dot(pool, &w, &self.vs, &mut hcol[..j + 1]);
                matex_par::subtract_combination(pool, &mut w, &self.vs, &hcol[..j + 1]);
                if self.reorth {
                    // CGS2: the correction pass restores orthogonality to
                    // working precision ("twice is enough").
                    let mut corr = vec![0.0; j + 1];
                    matex_par::multi_dot(pool, &w, &self.vs, &mut corr);
                    matex_par::subtract_combination(pool, &mut w, &self.vs, &corr);
                    for (h, c) in hcol.iter_mut().zip(&corr) {
                        *h += c;
                    }
                }
                (w_scale, matex_par::norm2(pool, &w))
            }
        };
        hcol[j + 1] = hnext;
        self.hcols.push(hcol);
        // Happy breakdown: the subspace is invariant; the projection is
        // exact from here on.
        if hnext <= f64::EPSILON * w_scale.max(1e-300) * 100.0 {
            self.breakdown = Some(j + 1);
            return Ok(());
        }
        match self.op.pool() {
            None => {
                for x in w.iter_mut() {
                    *x /= hnext;
                }
            }
            Some(pool) => matex_par::div_in_place(pool, &mut w, hnext),
        }
        self.vs.push(w);
        Ok(())
    }

    /// The `m × m` leading Hessenberg block `Ĥ_m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the completed dimension.
    pub fn h_hat(&self, m: usize) -> DMat {
        assert!(m <= self.hcols.len(), "h_hat: m exceeds current dimension");
        DMat::from_fn(m, m, |i, j| {
            if i < self.hcols[j].len() {
                self.hcols[j][i]
            } else {
                0.0
            }
        })
    }

    /// The subdiagonal entry `ĥ_{m+1,m}` (0 after breakdown at `m`).
    ///
    /// # Panics
    ///
    /// Panics if `m` is 0 or exceeds the completed dimension.
    pub fn subdiag(&self, m: usize) -> f64 {
        assert!(m >= 1 && m <= self.hcols.len(), "subdiag: bad m");
        self.hcols[m - 1][m]
    }

    /// The first `m` basis vectors.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the stored basis size.
    pub fn basis(&self, m: usize) -> &[Vec<f64>] {
        assert!(m <= self.vs.len(), "basis: m exceeds stored vectors");
        &self.vs[..m]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{KrylovKind, StandardOp};
    use matex_sparse::{CsrMatrix, LuOptions, SparseLu};

    /// Dense operator for testing: applies an explicit matrix.
    struct DenseOp {
        a: DMat,
    }

    impl KrylovOp for DenseOp {
        fn dim(&self) -> usize {
            self.a.nrows()
        }
        fn apply(&self, v: &[f64], out: &mut [f64]) {
            out.copy_from_slice(&self.a.matvec(v));
        }
        fn kind(&self) -> KrylovKind {
            KrylovKind::Standard
        }
    }

    fn test_matrix(n: usize) -> DMat {
        DMat::from_fn(n, n, |i, j| {
            if i == j {
                -((i + 1) as f64)
            } else if i.abs_diff(j) == 1 {
                0.3
            } else {
                0.0
            }
        })
    }

    #[test]
    fn basis_is_orthonormal() {
        let op = DenseOp { a: test_matrix(12) };
        let v: Vec<f64> = (0..12).map(|i| (i as f64 + 1.0).sin()).collect();
        let mut ar = Arnoldi::new(&op, &v, true).unwrap();
        for _ in 0..6 {
            ar.step().unwrap();
        }
        let basis = ar.basis(7);
        for i in 0..7 {
            for j in 0..7 {
                let d = dot(&basis[i], &basis[j]);
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((d - expect).abs() < 1e-12, "V^T V [{i},{j}] = {d}");
            }
        }
    }

    #[test]
    fn hessenberg_recurrence_holds() {
        // Op·V_m = V_m·Ĥ_m + ĥ_{m+1,m} v_{m+1} e_mᵀ
        let op = DenseOp { a: test_matrix(10) };
        let v: Vec<f64> = (0..10).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let mut ar = Arnoldi::new(&op, &v, true).unwrap();
        let m = 5;
        for _ in 0..m {
            ar.step().unwrap();
        }
        let h = ar.h_hat(m);
        let basis = ar.basis(m + 1);
        for j in 0..m {
            let mut avj = vec![0.0; 10];
            op.apply(&basis[j], &mut avj);
            // Σ_i V[:,i] H[i,j] (+ subdiag term when j = m-1)
            let mut rhs = [0.0; 10];
            for i in 0..m {
                for k in 0..10 {
                    rhs[k] += basis[i][k] * h[(i, j)];
                }
            }
            if j == m - 1 {
                let sub = ar.subdiag(m);
                for k in 0..10 {
                    rhs[k] += sub * basis[m][k];
                }
            }
            for k in 0..10 {
                assert!((avj[k] - rhs[k]).abs() < 1e-10, "col {j} row {k}");
            }
        }
    }

    #[test]
    fn zero_vector_rejected() {
        let op = DenseOp { a: test_matrix(3) };
        assert!(matches!(
            Arnoldi::new(&op, &[0.0; 3], true),
            Err(KrylovError::ZeroStartVector)
        ));
    }

    #[test]
    fn eigenvector_causes_happy_breakdown() {
        // Diagonal operator, axis start vector: invariant after 1 step.
        let op = DenseOp {
            a: DMat::from_diag(&[-1.0, -2.0, -3.0]),
        };
        let mut ar = Arnoldi::new(&op, &[0.0, 1.0, 0.0], true).unwrap();
        ar.step().unwrap();
        assert!(ar.broke_down());
        assert_eq!(ar.m(), 1);
        assert_eq!(ar.subdiag(1), 0.0);
        assert!((ar.h_hat(1)[(0, 0)] + 2.0).abs() < 1e-14);
        // Further steps are no-ops.
        ar.step().unwrap();
        assert_eq!(ar.m(), 1);
    }

    #[test]
    fn works_with_sparse_standard_op() {
        let c = CsrMatrix::identity(4);
        let g = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 2.0),
                (1, 1, 2.0),
                (2, 2, 2.0),
                (3, 3, 2.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
            ],
        );
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let op = StandardOp::new(&lu, &g);
        let mut ar = Arnoldi::new(&op, &[1.0, 2.0, 3.0, 4.0], true).unwrap();
        for _ in 0..3 {
            ar.step().unwrap();
        }
        assert_eq!(ar.m(), 3);
        assert!((norm2(&ar.basis(1)[0]) - 1.0).abs() < 1e-14);
        assert!((ar.beta() - (30.0_f64).sqrt()).abs() < 1e-12);
    }
}
