//! Krylov-projected matrix exponential with reusable bases.
//!
//! The paper's key computational object: from a vector `v`, build a Krylov
//! subspace whose projected exponential satisfies
//! `e^{hA} v ≈ ‖v‖ · V_m · e^{h·H_m} · e₁` — then *reuse* `(‖v‖, V_m, H_m)`
//! for every snapshot time until the next input transition, by only
//! rescaling `h` (Sec. 2.4 / Alg. 2 line 11).

use crate::snapshot::with_shared;
use crate::{Arnoldi, KrylovError, KrylovKind, KrylovOp};
use matex_dense::DMat;

/// Parameters for building a Krylov basis.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpmParams {
    /// Posterior error tolerance, *relative* to `‖v‖`.
    pub tol: f64,
    /// Minimum subspace dimension before convergence checks begin.
    pub m_min: usize,
    /// Maximum subspace dimension.
    pub m_max: usize,
    /// Re-orthogonalize the Arnoldi basis (second MGS pass).
    pub reorth: bool,
}

impl Default for ExpmParams {
    fn default() -> Self {
        ExpmParams {
            tol: 1e-6,
            m_min: 2,
            m_max: 100,
            reorth: true,
        }
    }
}

impl ExpmParams {
    /// Parameters with a given tolerance and the defaults otherwise.
    pub fn with_tol(tol: f64) -> Self {
        ExpmParams {
            tol,
            ..ExpmParams::default()
        }
    }
}

/// A converged (or best-effort) Krylov basis for `e^{hA} v`.
///
/// Holds `(β, V_m, H_m, ĥ_{m+1,m})`; evaluation at any step `h` costs one
/// small `expm` (`T_H = O(m³)`) plus the basis combination
/// (`T_e = O(n·m)`) — the reuse the whole MATEX framework is built on.
#[derive(Debug, Clone)]
pub struct KrylovBasis {
    kind: KrylovKind,
    gamma: f64,
    beta: f64,
    vm: Vec<Vec<f64>>,
    hm: DMat,
    h_sub: f64,
    breakdown: bool,
    /// Last row of `Ĥm⁻¹` (inverted/rational variants): the residual
    /// estimates of Eqs. (8)/(10) weight the exponential column with it.
    inv_last_row: Option<Vec<f64>>,
    /// Residual prefactor: 1 for the standard variant (Eq. (7) is the
    /// exact residual norm); a surrogate for `‖A v_{m+1}‖` (inverted,
    /// Eq. (8)) resp. `‖(I−γA)v_{m+1}‖/γ` (rational, Eq. (10)) otherwise.
    prefactor: f64,
}

impl KrylovBasis {
    /// Subspace dimension `m`.
    pub fn m(&self) -> usize {
        self.hm.nrows()
    }

    /// `‖v‖` of the vector the basis was built from.
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// The projected (mapped) matrix `H_m`.
    pub fn hm(&self) -> &DMat {
        &self.hm
    }

    /// Which variant built this basis.
    pub fn kind(&self) -> KrylovKind {
        self.kind
    }

    /// The shift γ used by the rational variant (0 otherwise).
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// The orthonormal basis vectors `V_m` (each of the state dimension).
    ///
    /// Empty for estimate-only probe bases built during Arnoldi
    /// convergence checks.
    pub fn vectors(&self) -> &[Vec<f64>] {
        &self.vm
    }

    /// State dimension `n` of the basis vectors.
    ///
    /// # Panics
    ///
    /// Panics on an estimate-only probe basis (no vectors).
    pub fn dim(&self) -> usize {
        self.vm[0].len()
    }

    /// Evaluates `e^{hA} v ≈ β · V_m · e^{h·H_m} · e₁`.
    ///
    /// A thin wrapper over the batched [`SnapshotEvaluator`] (this
    /// thread's shared instance), so the per-call API no longer
    /// allocates its dense intermediates — only the returned vector.
    ///
    /// [`SnapshotEvaluator`]: crate::SnapshotEvaluator
    ///
    /// # Errors
    ///
    /// Returns [`KrylovError::Dense`] if the small exponential fails
    /// (non-finite `h·H_m`).
    pub fn eval(&self, h: f64) -> Result<Vec<f64>, KrylovError> {
        with_shared(|ev| {
            ev.weights_one(self, h)?;
            let mut x = vec![0.0; self.dim()];
            ev.combine_into(self, 1, None, &mut x);
            Ok(x)
        })
    }

    /// The combination weights `β · e^{h·H_m} · e₁` (an `m`-vector).
    ///
    /// # Errors
    ///
    /// As [`KrylovBasis::eval`].
    pub fn eval_weights(&self, h: f64) -> Result<Vec<f64>, KrylovError> {
        with_shared(|ev| {
            ev.weights_one(self, h)?;
            Ok(ev.weights()[..self.m()].to_vec())
        })
    }

    /// Evaluates `e^{hA} v` and the posterior error estimate in one small
    /// `expm` (the estimate reuses the same `e^{h·H_m}` column).
    ///
    /// # Errors
    ///
    /// As [`KrylovBasis::eval`].
    pub fn eval_with_estimate(&self, h: f64) -> Result<(Vec<f64>, f64), KrylovError> {
        with_shared(|ev| {
            ev.weights_one(self, h)?;
            let est = ev.estimates()[0];
            let mut x = vec![0.0; self.dim()];
            ev.combine_into(self, 1, None, &mut x);
            Ok((x, est))
        })
    }

    /// Posterior error estimate at step `h` (paper Eqs. (7)/(8)/(10),
    /// regularization-free form of Sec. 3.3.3):
    ///
    /// `‖r_m(h)‖ ≈ ‖v‖ · |ĥ_{m+1,m} · e_mᵀ e^{h·H_m} e₁|`
    ///
    /// Returns `0` after a happy breakdown (projection is exact).
    ///
    /// # Errors
    ///
    /// As [`KrylovBasis::eval`].
    pub fn error_estimate(&self, h: f64) -> Result<f64, KrylovError> {
        if self.breakdown {
            return Ok(0.0);
        }
        with_shared(|ev| {
            ev.weights_one(self, h)?;
            Ok(ev.estimates()[0])
        })
    }

    /// Residual estimate from a **raw** (not β-scaled) `e^{h·Hm} e₁`
    /// column — the reusable core of [`KrylovBasis::error_estimate`],
    /// public so batched callers and benches can estimate from columns
    /// they already hold.
    pub fn residual_estimate(&self, col: &[f64]) -> f64 {
        self.estimate_from_col(col)
    }

    /// Residual estimate from an already computed `e^{h·Hm} e₁` column.
    pub(crate) fn estimate_from_col(&self, col: &[f64]) -> f64 {
        if self.breakdown {
            return 0.0;
        }
        let weighted = match &self.inv_last_row {
            None => col[self.m() - 1],
            Some(row) => row.iter().zip(col).map(|(r, c)| r * c).sum::<f64>(),
        };
        self.beta * self.prefactor * (self.h_sub * weighted).abs()
    }
}

/// Residual prefactor for the Eq. (8)/(10)-style estimates.
///
/// Eq. (7) is the exact residual norm for the standard variant
/// (`‖v_{m+1}‖ = 1`). For inverted/rational the true residual carries a
/// `‖A v_{m+1}‖`-type factor; for dissipative circuits that factor is
/// compensated by the decaying error propagator `∫ e^{(h−s)A} r(s) ds`,
/// so multiplying it in wildly over-estimates on stiff systems. We keep
/// the `e_mᵀ Ĥ⁻¹ …` weighting (which already contains the restriction's
/// magnitude) and a unit prefactor — matching the paper's practical use
/// of these formulas as step-acceptance heuristics against ε.
fn residual_prefactor(kind: KrylovKind, hm: &DMat, gamma: f64) -> f64 {
    let _ = (hm, gamma);
    match kind {
        KrylovKind::Standard | KrylovKind::Inverted | KrylovKind::Rational => 1.0,
    }
}

/// Outcome of [`build_basis`]: the basis plus convergence diagnostics.
#[derive(Debug, Clone)]
pub struct BuildOutcome {
    /// The (possibly best-effort) basis.
    pub basis: KrylovBasis,
    /// Whether the posterior estimate met the tolerance.
    pub converged: bool,
    /// The final posterior estimate, relative to `‖v‖`.
    pub rel_estimate: f64,
    /// Forward/backward substitution pairs consumed (= Arnoldi steps).
    pub substitutions: usize,
}

/// Builds a Krylov basis for `e^{hA} v` adequate for step size `h`.
///
/// Extends the Arnoldi factorization one vector at a time, checking the
/// posterior error estimate (relative to `‖v‖`) against `params.tol`; the
/// basis is returned *best effort* if `m_max` is reached, with
/// `converged = false` — callers decide whether to sub-step or accept
/// (Table 1's MEXP rows report exactly such large-`m` best-effort runs).
///
/// # Errors
///
/// * [`KrylovError::ZeroStartVector`] for `v = 0`.
/// * [`KrylovError::NotFinite`] if the operator output blows up.
/// * [`KrylovError::Dense`] if every Hessenberg mapping fails (singular
///   `Ĥ_m` at all checked dimensions).
pub fn build_basis(
    op: &dyn KrylovOp,
    v: &[f64],
    h: f64,
    params: &ExpmParams,
) -> Result<BuildOutcome, KrylovError> {
    build_basis_multi(op, v, &[h], params)
}

/// Like [`build_basis`] but requires the posterior estimate to meet the
/// tolerance at *every* step in `hs` — used when one basis will be reused
/// across a whole snapshot window (paper Alg. 2 line 11).
///
/// # Errors
///
/// As [`build_basis`].
pub fn build_basis_multi(
    op: &dyn KrylovOp,
    v: &[f64],
    hs: &[f64],
    params: &ExpmParams,
) -> Result<BuildOutcome, KrylovError> {
    let gamma = op.gamma().unwrap_or(0.0);
    let kind = op.kind();
    let mut arnoldi = Arnoldi::new(op, v, params.reorth)?;
    let beta = arnoldi.beta();
    // (m, hm, h_sub, rel_est, inv_last_row, prefactor)
    #[allow(clippy::type_complexity)]
    let mut best: Option<(usize, DMat, f64, f64, Option<Vec<f64>>, f64)> = None;
    let mut steps = 0usize;
    let mut last_dense_err: Option<KrylovError> = None;
    // The subspace cannot usefully exceed the state dimension: past it
    // the basis is numerically dependent and the recurrence degrades.
    let m_cap = params.m_max.min(op.dim());
    while arnoldi.m() < m_cap && !arnoldi.broke_down() {
        arnoldi.step()?;
        steps += 1;
        let m = arnoldi.m();
        // Convergence checks are O(m³); check every step while small,
        // then stride to amortize (large m only happens for MEXP on
        // stiff circuits, where per-step checks would dominate).
        let check =
            m >= params.m_min && (m <= 32 || m % 4 == 0 || m == m_cap || arnoldi.broke_down());
        if !check {
            continue;
        }
        let h_hat = arnoldi.h_hat(m);
        let (hm, inv) = match kind.map_hessenberg_with_inverse(&h_hat, gamma) {
            Ok(pair) => pair,
            Err(e) => {
                last_dense_err = Some(e);
                continue; // ill-conditioned at this m; extend further
            }
        };
        let h_sub = arnoldi.subdiag(m);
        let inv_last_row = inv.map(|i| i.row(m - 1).to_vec());
        let prefactor = residual_prefactor(kind, &hm, gamma);
        let basis_probe = KrylovBasis {
            kind,
            gamma,
            beta,
            vm: Vec::new(), // not needed for the estimate
            hm: hm.clone(),
            h_sub,
            breakdown: arnoldi.broke_down(),
            inv_last_row: inv_last_row.clone(),
            prefactor,
        };
        let mut est = 0.0_f64;
        let mut est_failed = false;
        for &h in hs {
            match basis_probe.error_estimate(h) {
                Ok(e) => est = est.max(e),
                Err(e) => {
                    last_dense_err = Some(e);
                    est_failed = true;
                    break;
                }
            }
        }
        if est_failed {
            continue;
        }
        let rel = est / beta;
        match &best {
            Some((_, _, _, prev, _, _)) if *prev <= rel => {}
            _ => best = Some((m, hm.clone(), h_sub, rel, inv_last_row.clone(), prefactor)),
        }
        if rel <= params.tol {
            let vm = arnoldi.basis(m).to_vec();
            return Ok(BuildOutcome {
                basis: KrylovBasis {
                    kind,
                    gamma,
                    beta,
                    vm,
                    hm,
                    h_sub,
                    breakdown: arnoldi.broke_down(),
                    inv_last_row,
                    prefactor,
                },
                converged: true,
                rel_estimate: rel,
                substitutions: steps,
            });
        }
    }
    // Breakdown: exact projection at the current dimension.
    if arnoldi.broke_down() {
        let m = arnoldi.m();
        let h_hat = arnoldi.h_hat(m);
        let hm = kind.map_hessenberg(&h_hat, gamma)?;
        let vm = arnoldi.basis(m).to_vec();
        return Ok(BuildOutcome {
            basis: KrylovBasis {
                kind,
                gamma,
                beta,
                vm,
                hm,
                h_sub: 0.0,
                breakdown: true,
                inv_last_row: None,
                prefactor: 1.0,
            },
            converged: true,
            rel_estimate: 0.0,
            substitutions: steps,
        });
    }
    // Best effort at m_max.
    match best {
        Some((m, hm, h_sub, rel, inv_last_row, prefactor)) => {
            let vm = arnoldi.basis(m).to_vec();
            Ok(BuildOutcome {
                basis: KrylovBasis {
                    kind,
                    gamma,
                    beta,
                    vm,
                    hm,
                    h_sub,
                    breakdown: false,
                    inv_last_row,
                    prefactor,
                },
                converged: false,
                rel_estimate: rel,
                substitutions: steps,
            })
        }
        None => Err(last_dense_err.unwrap_or(KrylovError::NoConvergence {
            m: arnoldi.m(),
            estimate: f64::INFINITY,
            tolerance: params.tol,
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InvertedOp, RationalOp, StandardOp};
    use matex_dense::expm;
    use matex_sparse::{CsrMatrix, LuOptions, SparseLu};

    /// Small RC-like test system: C diagonal, G tridiagonal SPD.
    fn system(n: usize) -> (CsrMatrix, CsrMatrix) {
        let mut ct = Vec::new();
        let mut gt = Vec::new();
        for i in 0..n {
            ct.push((i, i, 1.0 + 0.1 * i as f64));
            gt.push((i, i, 2.0 + 0.05 * i as f64));
            if i + 1 < n {
                gt.push((i, i + 1, -1.0));
                gt.push((i + 1, i, -1.0));
            }
        }
        (
            CsrMatrix::from_triplets(n, n, &ct),
            CsrMatrix::from_triplets(n, n, &gt),
        )
    }

    /// Dense reference e^{hA} v with A = -C^{-1} G.
    fn dense_reference(c: &CsrMatrix, g: &CsrMatrix, v: &[f64], h: f64) -> Vec<f64> {
        let cd = c.to_dense();
        let gd = g.to_dense();
        let cinv = matex_dense::DenseLu::factor(&cd)
            .unwrap()
            .inverse()
            .unwrap();
        let a = cinv.matmul(&gd).unwrap().scaled(-1.0);
        expm(&a.scaled(h)).unwrap().matvec(v)
    }

    fn check_variant(op: &dyn KrylovOp, c: &CsrMatrix, g: &CsrMatrix, tol: f64) {
        let n = c.nrows();
        let v: Vec<f64> = (0..n).map(|i| ((i * 3 % 7) as f64) - 3.0).collect();
        let h = 0.15;
        let params = ExpmParams {
            tol: 1e-10,
            m_max: n,
            ..ExpmParams::default()
        };
        let out = build_basis(op, &v, h, &params).unwrap();
        let x = out.basis.eval(h).unwrap();
        let x_ref = dense_reference(c, g, &v, h);
        let err = x
            .iter()
            .zip(&x_ref)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(
            err < tol,
            "{:?}: err {err} (m = {})",
            op.kind(),
            out.basis.m()
        );
    }

    #[test]
    fn standard_matches_dense_expm() {
        let (c, g) = system(10);
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let op = StandardOp::new(&lu, &g);
        check_variant(&op, &c, &g, 1e-8);
    }

    #[test]
    fn inverted_matches_dense_expm() {
        let (c, g) = system(10);
        let lu = SparseLu::factor(&g, &LuOptions::default()).unwrap();
        let op = InvertedOp::new(&lu, &c);
        check_variant(&op, &c, &g, 1e-8);
    }

    #[test]
    fn rational_matches_dense_expm() {
        let (c, g) = system(10);
        let gamma = 0.1;
        let shift = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factor(&shift, &LuOptions::default()).unwrap();
        let op = RationalOp::new(&lu, &c, gamma);
        check_variant(&op, &c, &g, 1e-8);
    }

    #[test]
    fn basis_reuse_across_steps() {
        // One basis, evaluated at several h values, matches dense expm at
        // each: the snapshot-reuse property.
        let (c, g) = system(8);
        let gamma = 0.05;
        let shift = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu = SparseLu::factor(&shift, &LuOptions::default()).unwrap();
        let op = RationalOp::new(&lu, &c, gamma);
        let v: Vec<f64> = (0..8).map(|i| 1.0 + (i as f64).cos()).collect();
        let params = ExpmParams {
            tol: 1e-11,
            m_max: 8,
            ..ExpmParams::default()
        };
        let out = build_basis(&op, &v, 0.2, &params).unwrap();
        for &h in &[0.02, 0.05, 0.1, 0.2] {
            let x = out.basis.eval(h).unwrap();
            let x_ref = dense_reference(&c, &g, &v, h);
            let err = x
                .iter()
                .zip(&x_ref)
                .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
            assert!(err < 1e-8, "h = {h}: err {err}");
        }
    }

    #[test]
    fn rational_needs_smaller_m_than_standard_on_stiff() {
        // Stiff system: C entries spread over 6 decades.
        let n = 24;
        let mut ct = Vec::new();
        let mut gt = Vec::new();
        for i in 0..n {
            let cval = if i % 4 == 0 { 1e-6 } else { 1.0 };
            ct.push((i, i, cval));
            gt.push((i, i, 2.0));
            if i + 1 < n {
                gt.push((i, i + 1, -1.0));
                gt.push((i + 1, i, -1.0));
            }
        }
        let c = CsrMatrix::from_triplets(n, n, &ct);
        let g = CsrMatrix::from_triplets(n, n, &gt);
        let v: Vec<f64> = (0..n).map(|i| 1.0 + (i % 3) as f64).collect();
        let h = 0.5;
        let params = ExpmParams {
            tol: 1e-8,
            m_max: n,
            ..ExpmParams::default()
        };

        let lu_c = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let std_op = StandardOp::new(&lu_c, &g);
        let std_out = build_basis(&std_op, &v, h, &params).unwrap();

        let gamma = 0.1;
        let shift = CsrMatrix::linear_combination(1.0, &c, gamma, &g).unwrap();
        let lu_s = SparseLu::factor(&shift, &LuOptions::default()).unwrap();
        let rat_op = RationalOp::new(&lu_s, &c, gamma);
        let rat_out = build_basis(&rat_op, &v, h, &params).unwrap();

        assert!(rat_out.converged);
        // On this small system both variants converge; rational must not
        // need a larger basis (on genuinely stiff meshes the gap is
        // dramatic — see the table1_stiff_rc bench).
        assert!(
            rat_out.basis.m() <= std_out.basis.m() || !std_out.converged,
            "rational m = {} should not exceed standard m = {} (std converged: {})",
            rat_out.basis.m(),
            std_out.basis.m(),
            std_out.converged
        );
    }

    #[test]
    fn best_effort_when_m_max_too_small() {
        let (c, g) = system(20);
        let lu = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let op = StandardOp::new(&lu, &g);
        let v = vec![1.0; 20];
        let params = ExpmParams {
            tol: 1e-14,
            m_max: 3,
            ..ExpmParams::default()
        };
        let out = build_basis(&op, &v, 5.0, &params).unwrap();
        assert!(!out.converged);
        assert!(out.basis.m() <= 3);
        assert!(out.rel_estimate > 1e-14);
    }

    #[test]
    fn weights_scale_with_beta() {
        let (c, g) = system(6);
        let lu = SparseLu::factor(&g, &LuOptions::default()).unwrap();
        let op = InvertedOp::new(&lu, &c);
        let v = vec![2.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        let out = build_basis(&op, &v, 0.1, &ExpmParams::with_tol(1e-10)).unwrap();
        let w = out.basis.eval_weights(0.0).unwrap();
        // At h = 0, e^{0} e1 = e1, so weights = (beta, 0, ..., 0).
        assert!((w[0] - 2.0).abs() < 1e-12);
        for wi in &w[1..] {
            assert!(wi.abs() < 1e-12);
        }
    }
}
