//! Krylov-subspace matrix-exponential kernels for MATEX.
//!
//! Implements the paper's Alg. 1 ("MATEX Arnoldi") and its three operator
//! variants, plus the reusable-basis evaluation that powers Alg. 2:
//!
//! * [`Arnoldi`] — incremental Arnoldi factorization with MGS +
//!   re-orthogonalization,
//! * [`StandardOp`] / [`InvertedOp`] / [`RationalOp`] — MEXP, I-MATEX and
//!   R-MATEX iteration operators (each one forward/backward substitution
//!   pair per step),
//! * [`KrylovKind::map_hessenberg`] — `Ĥ → Hm` mappings
//!   (`Ĥ`, `Ĥ⁻¹`, `(I−Ĥ⁻¹)/γ`),
//! * [`build_basis`] — tolerance-driven subspace construction with the
//!   paper's posterior error estimates,
//! * [`KrylovBasis`] — `(β, V_m, H_m)` with `eval(h)` for snapshot reuse,
//! * [`SnapshotEvaluator`] — batched, allocation-free snapshot
//!   evaluation: pooled `Vᵀ·W` combination over a whole window of eval
//!   times plus the `expm` squaring ladder that subsumes the sub-step
//!   search (see `README.md` for the model).
//!
//! # Example
//!
//! ```
//! use matex_krylov::{build_basis, ExpmParams, RationalOp};
//! use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A 2-node RC system: C x' = -G x.
//! let c = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
//! let g = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
//! let gamma = 0.1;
//! let shifted = CsrMatrix::linear_combination(1.0, &c, gamma, &g)?;
//! let lu = SparseLu::factor(&shifted, &LuOptions::default())?;
//! let op = RationalOp::new(&lu, &c, gamma);
//!
//! let v = vec![1.0, 0.0];
//! let out = build_basis(&op, &v, 0.5, &ExpmParams::with_tol(1e-10))?;
//! let x = out.basis.eval(0.5)?; // ≈ e^{0.5 A} v
//! assert!(x[0] < 1.0 && x[1] > 0.0); // charge spreads to node 2
//! # Ok(())
//! # }
//! ```

mod arnoldi;
mod error;
mod expmv;
mod operator;
mod snapshot;
mod variant;

pub use arnoldi::Arnoldi;
pub use error::KrylovError;
pub use expmv::{build_basis, build_basis_multi, BuildOutcome, ExpmParams, KrylovBasis};
pub use operator::{shifted_system, InvertedOp, KrylovOp, ParApply, RationalOp, StandardOp};
pub use snapshot::SnapshotEvaluator;
pub use variant::KrylovKind;

// Compile the crate README's code blocks as doctests so the documented
// snapshot-evaluation model can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
