use std::fmt;

/// Errors from Krylov-subspace matrix-exponential computation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum KrylovError {
    /// The posterior error estimate stayed above the tolerance at the
    /// maximum allowed subspace dimension.
    NoConvergence {
        /// Dimension reached.
        m: usize,
        /// Error estimate at that dimension.
        estimate: f64,
        /// Requested tolerance.
        tolerance: f64,
    },
    /// The starting vector was zero (nothing to approximate).
    ZeroStartVector,
    /// A projected dense computation failed (Hessenberg inversion /
    /// exponential).
    Dense(matex_dense::DenseError),
    /// The operator produced a non-finite vector (badly scaled system).
    NotFinite {
        /// Arnoldi step at which it occurred.
        step: usize,
    },
}

impl fmt::Display for KrylovError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KrylovError::NoConvergence {
                m,
                estimate,
                tolerance,
            } => write!(
                f,
                "krylov expm did not converge: estimate {estimate:.3e} > tol {tolerance:.3e} at m = {m}"
            ),
            KrylovError::ZeroStartVector => write!(f, "krylov starting vector is zero"),
            KrylovError::Dense(e) => write!(f, "projected dense computation failed: {e}"),
            KrylovError::NotFinite { step } => {
                write!(f, "operator produced non-finite values at arnoldi step {step}")
            }
        }
    }
}

impl std::error::Error for KrylovError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KrylovError::Dense(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matex_dense::DenseError> for KrylovError {
    fn from(e: matex_dense::DenseError) -> Self {
        KrylovError::Dense(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_numbers() {
        let e = KrylovError::NoConvergence {
            m: 30,
            estimate: 1e-3,
            tolerance: 1e-6,
        };
        let s = e.to_string();
        assert!(s.contains("m = 30"));
        assert!(s.contains("1.000e-3"));
    }
}
