//! Property test: any job run through the [`ScenarioEngine`] — cold or
//! cache-hit, monolithic or distributed, any worker/kernel-thread count
//! — yields **bitwise-identical** waveforms to a standalone
//! `MatexSolver` / `run_distributed` call with the same parallelism
//! setting.
//!
//! This is the engine's whole contract: caching and admission are
//! performance machinery, never numerics. Cold paths build exactly what
//! a standalone run builds; hit paths replay the identical factors (the
//! two-phase LU replay re-verifies its pinned pivot order, so a replay
//! that survives *is* the fresh factorization).

use matex_circuit::PdnBuilder;
use matex_core::{MatexSolver, TransientEngine, TransientSpec};
use matex_dist::{run_distributed, DistributedOptions};
use matex_par::{ParOptions, ParPool};
use matex_serve::{EngineOptions, ExecutionMode, JobSpec, ScenarioEngine};
use matex_waveform::GroupingStrategy;
use proptest::prelude::*;
use std::sync::Arc;

/// Runs the job standalone — no engine, no cache — with the engine's
/// parallelism setting mirrored exactly.
fn standalone(job: &JobSpec, kernel_threads: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let sys = job.effective_circuit().expect("circuit");
    let opts = job.effective_options();
    match &job.mode {
        ExecutionMode::Monolithic => {
            let mut solver = MatexSolver::new(opts);
            if kernel_threads > 0 {
                solver = solver.with_parallelism(Arc::new(ParPool::new(kernel_threads)));
            }
            let r = solver.run(&sys, &job.spec).expect("standalone mono run");
            (r.series().to_vec(), r.final_state().to_vec())
        }
        ExecutionMode::Distributed { strategy, workers } => {
            let dist = DistributedOptions {
                matex: opts,
                strategy: *strategy,
                workers: Some(workers.unwrap_or(2).max(1)),
                par: ParOptions::with_threads(kernel_threads),
                ..DistributedOptions::default()
            };
            let r = run_distributed(&sys, &job.spec, &dist).expect("standalone dist run");
            (r.result.series().to_vec(), r.result.final_state().to_vec())
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn engine_jobs_match_standalone_bitwise(
        nx in 4usize..7,
        ny in 4usize..7,
        loads in 3usize..8,
        features in 1usize..4,
        seed in 0usize..1000,
        gamma_mul in 0.3..8.0_f64,
        scale in 0.5..2.0_f64,
        kernel_threads in 0usize..3,
        workers in 1usize..3,
        flags in (0usize..2, 0usize..2, 0usize..2),
    ) {
        let (use_gamma, use_scale, use_dist) = flags;
        let circuit = Arc::new(
            PdnBuilder::new(nx, ny)
                .num_loads(loads)
                .num_features(features)
                .window(1e-9)
                .seed(seed as u64)
                .build()
                .expect("grid builds"),
        );
        let spec = TransientSpec::new(0.0, 1e-9, 2.5e-11).expect("spec");
        let engine = ScenarioEngine::new(EngineOptions {
            threads: Some(4),
            kernel_threads,
            ..EngineOptions::default()
        });

        // The fleet: a base job (plants the anchors), then a scenario
        // variation, then the variation again (the pure cache-hit path).
        let base = JobSpec::new(circuit.clone(), spec.clone());
        let mut varied = JobSpec::new(circuit, spec);
        if use_gamma == 1 {
            // Same or neighbouring γ decade of the 1e-10 default:
            // exercises exact-anchor and nearest-anchor replays.
            varied = varied.gamma(1e-10 * gamma_mul);
        }
        if use_scale == 1 {
            varied = varied.source_scale(scale);
        }
        if use_dist == 1 {
            varied = varied.mode(ExecutionMode::Distributed {
                strategy: GroupingStrategy::ByBumpFeature,
                workers: Some(workers),
            });
        }

        for job in [&base, &varied] {
            let (want_series, want_final) = standalone(job, kernel_threads);
            let cold = engine.run(job).expect("engine run");
            prop_assert_eq!(
                cold.result.series(),
                &want_series[..],
                "engine deviated from standalone"
            );
            prop_assert_eq!(cold.result.final_state(), &want_final[..]);
            let hit = engine.run(job).expect("engine re-run");
            prop_assert!(
                hit.cache.setup.is_hit() || hit.cache.is_warm(),
                "second identical run missed the setup cache: {:?}",
                hit.cache
            );
            prop_assert_eq!(hit.result.series(), &want_series[..]);
            prop_assert_eq!(hit.result.final_state(), &want_final[..]);
        }
    }
}
