//! Overload-robust admission: priority ordering, EDF within a class,
//! bounded-queue rejection, cancellation of queued and running jobs —
//! and the contract that none of it ever changes an admitted job's
//! bits.
//!
//! The scheduler may only decide *when* a job runs. These tests pin
//! the observable consequences: no class is starved, tighter deadlines
//! run first among equals, shed load is rejected with a back-off hint
//! instead of queued unboundedly, cancellation returns the thread
//! lease promptly and leaves the engine's counters and artifact cache
//! consistent, and admitted waveforms are bitwise-invariant to queue
//! pressure, priorities, and concurrent cancellations of other jobs.

use matex_circuit::PdnBuilder;
use matex_core::TransientSpec;
use matex_serve::{EngineOptions, JobSpec, JobStatus, Priority, ScenarioEngine, ServeError};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A small PDN job: `dim`×`dim` grid, distinct `seed` per distinct
/// circuit, ~41 output points.
fn job(dim: usize, seed: u64) -> JobSpec {
    let grid = Arc::new(
        PdnBuilder::new(dim, dim)
            .num_loads(dim)
            .num_features(2)
            .window(1e-9)
            .seed(seed)
            .build()
            .expect("grid builds"),
    );
    let spec = TransientSpec::new(0.0, 1e-9, 2.5e-11).expect("spec");
    JobSpec::new(grid, spec)
}

/// Polls until the job leaves `Queued` (i.e. an executor picked it
/// up), so later submissions are guaranteed to queue behind it.
fn wait_until_running(engine: &ScenarioEngine, id: u64) {
    let t0 = Instant::now();
    loop {
        match engine.status(id) {
            Some(JobStatus::Queued) => {}
            Some(_) => return,
            None => panic!("job {id} unknown"),
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "job {id} never ran");
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn no_priority_class_is_starved() {
    // One executor, an interleaved mix of classes. Strict priority
    // reorders the queue but never drops anyone: every job completes.
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(2),
        ..EngineOptions::default()
    });
    let mut ids = Vec::new();
    for i in 0..12u64 {
        let p = match i % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Low,
        };
        ids.push(engine.submit(job(5, 7).priority(p)).expect("submit"));
    }
    for id in ids {
        engine.wait(id).expect("every class completes");
    }
    let s = engine.stats();
    assert_eq!(s.completed, 12);
    assert_eq!(s.failed, 0);
    assert_eq!(s.cancelled, 0);
    assert_eq!(s.queue_depth, 0);
}

#[test]
fn edf_runs_the_tighter_deadline_first_within_a_class() {
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(2),
        ..EngineOptions::default()
    });
    // Occupy the single executor so the next two submissions queue.
    let blocker = engine.submit(job(7, 1)).expect("blocker");
    wait_until_running(&engine, blocker);
    // Far deadline submitted first, near deadline second: EDF must run
    // the near one first even though FIFO would not. Distinct seeds
    // keep both runs cold (non-trivial), so the order is observable.
    let far = engine
        .submit(job(7, 2).deadline(Duration::from_secs(60)))
        .expect("far submit");
    let near = engine
        .submit(job(7, 3).deadline(Duration::from_secs(30)))
        .expect("near submit");
    engine.wait(near).expect("near-deadline job completes");
    // The moment the near job resolved, the far one cannot already be
    // done — the lone executor runs them one at a time, near first.
    assert!(
        !matches!(engine.status(far), Some(JobStatus::Done(_))),
        "far-deadline job finished before the tighter one"
    );
    engine.wait(far).expect("far-deadline job completes too");
    assert!(engine.wait(blocker).is_ok());
}

#[test]
fn full_queue_and_unmeetable_deadlines_are_rejected_with_retry_hints() {
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(2),
        max_queue: 2,
        ..EngineOptions::default()
    });
    let blocker = engine.submit(job(7, 11)).expect("blocker");
    wait_until_running(&engine, blocker);
    // A deadline no schedule can meet is refused at submit, not queued
    // and dropped later: even an empty queue predicts more than a
    // nanosecond of service time.
    match engine.submit(job(5, 12).deadline(Duration::from_nanos(1))) {
        Err(ServeError::Rejected { reason, .. }) => {
            assert!(reason.contains("unmeetable"), "reason: {reason}");
        }
        other => panic!("expected deadline rejection, got {other:?}"),
    }
    let a = engine.submit(job(5, 12)).expect("fits");
    let b = engine.submit(job(5, 13)).expect("fits");
    // Queue is at max_queue: the next offer is shed at the door.
    match engine.submit(job(5, 14)) {
        Err(ServeError::Rejected {
            reason,
            retry_after,
        }) => {
            assert!(reason.contains("queue full"), "reason: {reason}");
            assert!(retry_after > Duration::ZERO);
        }
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    let s = engine.stats();
    assert_eq!(s.rejected, 2);
    for id in [blocker, a, b] {
        engine.wait(id).expect("admitted jobs still complete");
    }
    assert_eq!(engine.stats().failed, 0);
}

#[test]
fn retry_after_hints_are_clamped_to_the_configured_cap() {
    // A deep backlog predicts a long drain, but the hint handed to shed
    // clients never exceeds the configured ceiling — a polite client
    // must not be told to go away for minutes.
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(2),
        max_queue: 1,
        retry_after_cap: Duration::from_millis(5),
        ..EngineOptions::default()
    });
    let blocker = engine.submit(job(7, 31)).expect("blocker");
    wait_until_running(&engine, blocker);
    let queued = engine.submit(job(7, 32)).expect("fits the queue");
    match engine.submit(job(7, 33)) {
        Err(ServeError::Rejected { retry_after, .. }) => {
            assert!(
                retry_after <= Duration::from_millis(5),
                "hint {retry_after:?} exceeds the 5ms cap"
            );
            assert!(
                retry_after >= Duration::from_millis(1),
                "hint stays nonzero"
            );
        }
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    for id in [blocker, queued] {
        engine.wait(id).expect("admitted jobs complete");
    }
}

#[test]
fn cancelling_a_queued_job_resolves_it_and_leaves_the_engine_consistent() {
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(2),
        ..EngineOptions::default()
    });
    let blocker = engine.submit(job(7, 21)).expect("blocker");
    wait_until_running(&engine, blocker);
    let victim = engine.submit(job(6, 22)).expect("victim queues");
    let survivor = engine.submit(job(6, 23)).expect("survivor queues");
    assert!(matches!(engine.cancel(victim), Some(JobStatus::Cancelled)));
    match engine.wait(victim) {
        Err(e) => assert!(e.is_cancelled(), "unexpected error: {e}"),
        Ok(_) => panic!("cancelled job produced an outcome"),
    }
    // Everyone else is untouched.
    engine.wait(blocker).expect("blocker completes");
    let survived = engine.wait(survivor).expect("survivor completes");
    let s = engine.stats();
    assert_eq!(s.cancelled, 1);
    assert_eq!(s.completed, 2);
    assert_eq!(s.failed, 0);
    assert_eq!(s.queue_depth, 0);
    // The cache the cancelled job never touched still serves the same
    // bits a pristine engine computes.
    let pristine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        ..EngineOptions::default()
    });
    let fresh = pristine.run(&job(6, 23)).expect("pristine run");
    assert_eq!(survived.result.series(), fresh.result.series());
    // Resubmitting the cancelled job's spec runs it normally.
    let retry = engine.submit(job(6, 22)).expect("resubmit");
    let out = engine.wait(retry).expect("resubmitted job completes");
    let fresh = pristine.run(&job(6, 22)).expect("pristine run");
    assert_eq!(out.result.series(), fresh.result.series());
}

#[test]
fn cancelling_a_running_job_frees_the_budget_within_a_step_boundary() {
    // threads = 1: the whole budget belongs to the running job, so the
    // follow-up run() below can only succeed if cancellation returned
    // the lease.
    let engine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(1),
        ..EngineOptions::default()
    });
    // A deliberately long march: 400 output steps on a 12×12 grid.
    let grid = Arc::new(
        PdnBuilder::new(12, 12)
            .num_loads(18)
            .num_features(3)
            .window(4e-9)
            .seed(31)
            .build()
            .expect("grid builds"),
    );
    let spec = TransientSpec::new(0.0, 4e-9, 1e-11).expect("spec");
    let long = engine
        .submit(JobSpec::new(grid, spec))
        .expect("long job submits");
    wait_until_running(&engine, long);
    assert!(matches!(engine.cancel(long), Some(JobStatus::Running)));
    let t0 = Instant::now();
    match engine.wait(long) {
        Err(e) => assert!(e.is_cancelled(), "unexpected error: {e}"),
        Ok(_) => panic!("cancelled running job produced an outcome"),
    }
    // Cooperative, but prompt: the solver polls between transient
    // steps, each far shorter than this bound.
    assert!(
        t0.elapsed() < Duration::from_secs(30),
        "cancellation took {:?}",
        t0.elapsed()
    );
    let s = engine.stats();
    assert_eq!(s.cancelled, 1);
    assert_eq!(s.failed, 0);
    // The budget lease came back: a fresh job can acquire the single
    // thread and run to completion, with bits matching a pristine
    // engine (the aborted march poisoned nothing).
    let out = engine.run(&job(5, 32)).expect("engine still serves");
    let pristine = ScenarioEngine::new(EngineOptions {
        executors: 1,
        threads: Some(1),
        ..EngineOptions::default()
    });
    let fresh = pristine.run(&job(5, 32)).expect("pristine run");
    assert_eq!(out.result.series(), fresh.result.series());
    assert_eq!(out.result.final_state(), fresh.result.final_state());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Admitted jobs are bitwise-invariant to everything the scheduler
    /// does: queue pressure, their own priority class, deadlines, and
    /// concurrent cancellations of unrelated jobs. (The what-if fast
    /// path is disabled — it is an approximate correction, excluded
    /// from the bitwise contract by design.)
    #[test]
    fn admitted_waveforms_ignore_pressure_priority_and_cancellations(
        dim in 4usize..6,
        seed in 0usize..500,
        scale in 0.5..2.0_f64,
        prio in 0usize..3,
        crowd in 3usize..6,
        with_deadline in 0usize..2,
    ) {
        let target = job(dim, seed as u64).source_scale(scale);
        let quiet = ScenarioEngine::new(EngineOptions {
            executors: 1,
            whatif_max_rank: 0,
            whatif_bases: 0,
            ..EngineOptions::default()
        });
        let baseline = quiet.run(&target).expect("uncontended run");

        let busy = ScenarioEngine::new(EngineOptions {
            executors: 2,
            threads: Some(2),
            whatif_max_rank: 0,
            whatif_bases: 0,
            ..EngineOptions::default()
        });
        // A crowd of unrelated jobs around the target, some of which
        // get cancelled while the queue drains.
        let mut crowd_ids = Vec::new();
        for c in 0..crowd {
            let crowd_job = job(4 + (c % 2), 1000 + c as u64).source_scale(0.8 + 0.1 * c as f64);
            crowd_ids.push(busy.submit(crowd_job).expect("crowd submit"));
        }
        let mut pressured = target.clone().priority(match prio {
            0 => matex_serve::Priority::High,
            1 => matex_serve::Priority::Normal,
            _ => matex_serve::Priority::Low,
        });
        if with_deadline == 1 {
            pressured = pressured.deadline(Duration::from_secs(120));
        }
        let id = busy.submit(pressured).expect("target submit");
        for &c in crowd_ids.iter().skip(1).step_by(2) {
            busy.cancel(c);
        }
        let out = busy.wait(id).expect("target completes under pressure");
        prop_assert_eq!(out.result.series(), baseline.result.series());
        prop_assert_eq!(out.result.final_state(), baseline.result.final_state());
        // The crowd resolves too — completed or cleanly cancelled,
        // never wedged or failed.
        for c in crowd_ids {
            match busy.wait(c) {
                Ok(_) => {}
                Err(e) => prop_assert!(e.is_cancelled(), "crowd job failed: {}", e),
            }
        }
        prop_assert_eq!(busy.stats().failed, 0);
    }
}
