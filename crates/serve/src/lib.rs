//! The MATEX service layer: a scenario engine and TCP job service that
//! amortize per-circuit analysis across fleets of transient runs.
//!
//! MATEX's premise (paper Sec. 3) is that one circuit's expensive
//! artifacts — MNA structure, symbolic LU, numeric factors, DC operating
//! point, source-group schedule — are reusable across the many
//! per-input-source transients it spawns. Until this crate, every run
//! re-derived all of them. `matex-serve` turns that premise into a
//! serving system:
//!
//! * [`JobSpec`] — circuit + window + tolerances + scenario overrides
//!   (γ, scaled sources) + execution mode (monolithic or distributed),
//! * [`ScenarioEngine`] — runs jobs against a two-level
//!   structure-fingerprint cache (symbolic analyses anchored per
//!   γ decade, numeric setups per value fingerprint, DC solutions and
//!   group plans per source fingerprint), admission-controlled over a
//!   fixed thread budget ([`matex_par::ThreadBudget`]) so concurrent
//!   jobs never oversubscribe the host,
//! * [`serve`] / [`ServiceHandle`] — a versioned TCP front end
//!   (hello / submit / poll / wait / stream / stats) over
//!   [`std::net::TcpListener`]: JSON-lines protocol v1 by default, with
//!   a `hello` capability handshake upgrading a connection to protocol
//!   v2's length-prefixed binary waveform frames
//!   ([`matex_waveform::WaveFrame`]),
//! * [`run_load`] — a load generator measuring throughput, latency
//!   percentiles, bytes-on-wire per frame encoding, and cross-client
//!   (and cross-encoding) determinism.
//!
//! Pointing [`EngineOptions::store`] at a [`matex_store::ArtifactStore`]
//! directory persists every computed artifact: a restarted engine
//! hydrates its cache from disk and serves its first jobs warm, bitwise
//! identical to the run that populated it.
//!
//! **Determinism contract:** a job's waveform is bitwise identical to a
//! standalone [`matex_core::MatexSolver`] /
//! [`matex_dist::run_distributed`] call with the same parallelism
//! setting, whether the job ran cold or hit every cache. Cache hits
//! replay the very factors a fresh run would compute (see
//! `matex_sparse::SymbolicLu`'s replay re-verification).
//!
//! # Example
//!
//! ```
//! use matex_circuit::PdnBuilder;
//! use matex_core::TransientSpec;
//! use matex_serve::{EngineOptions, JobSpec, ScenarioEngine};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let engine = ScenarioEngine::new(EngineOptions::default());
//! let grid = Arc::new(PdnBuilder::new(8, 8).num_loads(10).window(1e-9).build()?);
//! let spec = TransientSpec::new(0.0, 1e-9, 2e-11)?;
//! // First job pays for analysis; the fleet replays it.
//! engine.run(&JobSpec::new(grid.clone(), spec.clone()))?;
//! for scale in [0.8, 1.0, 1.2] {
//!     let out = engine.run(&JobSpec::new(grid.clone(), spec.clone()).source_scale(scale))?;
//!     assert!(out.cache.is_warm());
//! }
//! assert!(engine.stats().warm_rate() >= 0.75);
//! # Ok(())
//! # }
//! ```

mod cache;
mod engine;
mod error;
mod job;
mod json;
mod loadgen;
mod service;

pub use cache::CacheSizes;
pub use engine::{EngineOptions, EngineStats, ScenarioEngine};
pub use error::ServeError;
pub use job::{
    CacheReport, ExecutionMode, Hit, HitPath, JobId, JobOutcome, JobSpec, JobSpecBuilder,
    JobStatus, ScenarioOverrides, ScenarioOverridesBuilder,
};
pub use json::{parse_flat_json, JsonValue};
pub use loadgen::{run_load, FrameMode, LoadJob, LoadMode, LoadReport, LoadSpec};
pub use service::{serve, ServiceHandle, ServiceOptions, ServiceOptionsBuilder};

// Admission vocabulary shared with the parallel layer: jobs carry a
// `Priority`, and the engine's thread budget speaks `AdmitRequest`.
pub use matex_core::CancelToken;
pub use matex_par::{AdmitError, AdmitRequest, Priority};

// Compile the crate README's code blocks as doctests so the documented
// quickstart can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
