//! Job specifications and outcomes.

use crate::ServeError;
use matex_circuit::MnaSystem;
use matex_core::{MatexOptions, TransientResult, TransientSpec};
use matex_par::Priority;
use matex_waveform::GroupingStrategy;
use std::sync::Arc;
use std::time::Duration;

/// Identifier of a submitted job (engine-scoped, monotonically
/// increasing).
pub type JobId = u64;

/// How a job's transient is computed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum ExecutionMode {
    /// One [`matex_core::MatexSolver`] over all sources.
    #[default]
    Monolithic,
    /// The paper's distributed framework
    /// ([`matex_dist::run_distributed`]): sources grouped into subtasks,
    /// superposed.
    Distributed {
        /// Source partitioning strategy.
        strategy: GroupingStrategy,
        /// Worker threads for this run's node pool (`None` lets the
        /// engine pick from its thread budget).
        workers: Option<usize>,
    },
}

/// Scenario overrides layered on top of a job's base circuit and
/// options. Overrides are what make a fleet of jobs out of one circuit:
/// they change the *question* without changing the expensive structure.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ScenarioOverrides {
    /// Override γ (R-MATEX shift). Cached symbolic analyses are keyed by
    /// γ decade, so same-decade overrides replay a cached anchor.
    pub gamma: Option<f64>,
    /// Override the Krylov tolerance.
    pub tol: Option<f64>,
    /// Scale every source waveform by this factor
    /// ([`MnaSystem::with_scaled_sources`]). Matrix fingerprints are
    /// unchanged, so scaled jobs still hit the factorization cache.
    pub source_scale: Option<f64>,
    /// Scale one node's ground capacitance (`(row, factor)`,
    /// [`MnaSystem::with_cap_scaled`]) — a what-if edit: same pattern,
    /// few changed values, so the engine can serve it by low-rank
    /// correction of a cached base factorization instead of
    /// refactoring.
    pub cap_scale: Option<(usize, f64)>,
}

impl ScenarioOverrides {
    /// A builder over the empty overrides — the preferred construction
    /// (field-struct literals are deprecated in favor of it: the
    /// builder stays source-compatible as override kinds grow).
    pub fn builder() -> ScenarioOverridesBuilder {
        ScenarioOverridesBuilder {
            overrides: ScenarioOverrides::default(),
        }
    }

    /// `true` when no override is set (the job runs the base scenario).
    pub fn is_empty(&self) -> bool {
        self.gamma.is_none()
            && self.tol.is_none()
            && self.source_scale.is_none()
            && self.cap_scale.is_none()
    }
}

/// Builder for [`ScenarioOverrides`] (see
/// [`ScenarioOverrides::builder`]).
#[derive(Debug, Clone, Default)]
pub struct ScenarioOverridesBuilder {
    overrides: ScenarioOverrides,
}

impl ScenarioOverridesBuilder {
    /// Overrides γ (the R-MATEX shift).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.overrides.gamma = Some(gamma);
        self
    }

    /// Overrides the Krylov tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.overrides.tol = Some(tol);
        self
    }

    /// Scales every source waveform.
    pub fn source_scale(mut self, k: f64) -> Self {
        self.overrides.source_scale = Some(k);
        self
    }

    /// Scales one node's ground capacitance (a what-if edit).
    pub fn cap_scale(mut self, row: usize, factor: f64) -> Self {
        self.overrides.cap_scale = Some((row, factor));
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ScenarioOverrides {
        self.overrides
    }
}

/// One unit of work for the [`ScenarioEngine`](crate::ScenarioEngine):
/// a circuit, a time window, solver options, an execution mode, and
/// scenario overrides.
///
/// # Example
///
/// ```
/// use matex_circuit::PdnBuilder;
/// use matex_core::TransientSpec;
/// use matex_serve::JobSpec;
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = Arc::new(PdnBuilder::new(6, 6).num_loads(8).window(1e-9).build()?);
/// let spec = TransientSpec::new(0.0, 1e-9, 2e-11)?;
/// let job = JobSpec::new(grid, spec).source_scale(1.5).gamma(2e-10);
/// assert!(!job.overrides.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The circuit (shared — many jobs typically reference one system).
    pub circuit: Arc<MnaSystem>,
    /// Time window and output sampling.
    pub spec: TransientSpec,
    /// Base solver options (kind, γ, tolerances) before overrides.
    pub matex: MatexOptions,
    /// Monolithic or distributed execution.
    pub mode: ExecutionMode,
    /// Scenario overrides applied on top of `circuit` / `matex`.
    pub overrides: ScenarioOverrides,
    /// Admission priority class (strict: queued high jobs always run
    /// before queued normal ones). Never affects the numerics — only
    /// *when* the job runs, so admitted waveforms are bitwise-invariant
    /// in it.
    pub priority: Priority,
    /// Optional deadline, relative to submission. A deadline orders the
    /// job EDF within its priority class, lets `submit` reject it when
    /// provably unmeetable, and makes the engine give up on it (counted
    /// as a deadline miss) rather than run it uselessly late.
    pub deadline: Option<Duration>,
}

impl JobSpec {
    /// A monolithic R-MATEX job with default options and no overrides.
    pub fn new(circuit: Arc<MnaSystem>, spec: TransientSpec) -> JobSpec {
        JobSpec {
            circuit,
            spec,
            matex: MatexOptions::default(),
            mode: ExecutionMode::Monolithic,
            overrides: ScenarioOverrides::default(),
            priority: Priority::Normal,
            deadline: None,
        }
    }

    /// A builder rooted at the required fields — the preferred
    /// construction when several options are set at once (field-struct
    /// literals are deprecated in favor of it: the builder stays
    /// source-compatible as the spec grows).
    ///
    /// ```
    /// use matex_circuit::PdnBuilder;
    /// use matex_core::TransientSpec;
    /// use matex_serve::{JobSpec, Priority};
    /// use std::sync::Arc;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let grid = Arc::new(PdnBuilder::new(6, 6).num_loads(8).window(1e-9).build()?);
    /// let spec = TransientSpec::new(0.0, 1e-9, 2e-11)?;
    /// let job = JobSpec::builder(grid, spec)
    ///     .gamma(2e-10)
    ///     .priority(Priority::High)
    ///     .build();
    /// assert!(!job.overrides.is_empty());
    /// # Ok(())
    /// # }
    /// ```
    pub fn builder(circuit: Arc<MnaSystem>, spec: TransientSpec) -> JobSpecBuilder {
        JobSpecBuilder {
            job: JobSpec::new(circuit, spec),
        }
    }

    /// Sets the execution mode (builder style).
    pub fn mode(mut self, mode: ExecutionMode) -> JobSpec {
        self.mode = mode;
        self
    }

    /// Sets the admission priority class (builder style).
    pub fn priority(mut self, p: Priority) -> JobSpec {
        self.priority = p;
        self
    }

    /// Sets a deadline relative to submission (builder style).
    pub fn deadline(mut self, d: Duration) -> JobSpec {
        self.deadline = Some(d);
        self
    }

    /// Overrides γ (builder style).
    pub fn gamma(mut self, gamma: f64) -> JobSpec {
        self.overrides.gamma = Some(gamma);
        self
    }

    /// Overrides the Krylov tolerance (builder style).
    pub fn tol(mut self, tol: f64) -> JobSpec {
        self.overrides.tol = Some(tol);
        self
    }

    /// Scales every source waveform (builder style).
    pub fn source_scale(mut self, k: f64) -> JobSpec {
        self.overrides.source_scale = Some(k);
        self
    }

    /// Scales one node's ground capacitance — a what-if edit (builder
    /// style).
    pub fn cap_scale(mut self, row: usize, factor: f64) -> JobSpec {
        self.overrides.cap_scale = Some((row, factor));
        self
    }

    /// The solver options with overrides folded in.
    pub fn effective_options(&self) -> MatexOptions {
        let mut opts = self.matex.clone();
        if let Some(g) = self.overrides.gamma {
            opts.gamma = g;
        }
        if let Some(t) = self.overrides.tol {
            opts.expm.tol = t;
        }
        opts
    }

    /// The circuit with overrides folded in (the same `Arc` when no
    /// source scaling is requested).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Circuit`] when the scale is not finite.
    pub fn effective_circuit(&self) -> Result<Arc<MnaSystem>, ServeError> {
        let mut sys = match self.overrides.source_scale {
            None => self.circuit.clone(),
            Some(k) => Arc::new(self.circuit.with_scaled_sources(k)?),
        };
        if let Some((row, factor)) = self.overrides.cap_scale {
            sys = Arc::new(sys.with_cap_scaled(row, factor)?);
        }
        Ok(sys)
    }
}

/// Builder for [`JobSpec`] (see [`JobSpec::builder`]).
#[derive(Debug, Clone)]
pub struct JobSpecBuilder {
    job: JobSpec,
}

impl JobSpecBuilder {
    /// Sets the base solver options (kind, γ, tolerances).
    pub fn matex(mut self, opts: MatexOptions) -> Self {
        self.job.matex = opts;
        self
    }

    /// Sets the execution mode.
    pub fn mode(mut self, mode: ExecutionMode) -> Self {
        self.job.mode = mode;
        self
    }

    /// Sets the admission priority class.
    pub fn priority(mut self, p: Priority) -> Self {
        self.job.priority = p;
        self
    }

    /// Sets a deadline relative to submission.
    pub fn deadline(mut self, d: Duration) -> Self {
        self.job.deadline = Some(d);
        self
    }

    /// Overrides γ (the R-MATEX shift).
    pub fn gamma(mut self, gamma: f64) -> Self {
        self.job.overrides.gamma = Some(gamma);
        self
    }

    /// Overrides the Krylov tolerance.
    pub fn tol(mut self, tol: f64) -> Self {
        self.job.overrides.tol = Some(tol);
        self
    }

    /// Scales every source waveform.
    pub fn source_scale(mut self, k: f64) -> Self {
        self.job.overrides.source_scale = Some(k);
        self
    }

    /// Scales one node's ground capacitance — a what-if edit.
    pub fn cap_scale(mut self, row: usize, factor: f64) -> Self {
        self.job.overrides.cap_scale = Some((row, factor));
        self
    }

    /// Replaces the whole override set (e.g. one built with
    /// [`ScenarioOverrides::builder`]).
    pub fn overrides(mut self, overrides: ScenarioOverrides) -> Self {
        self.job.overrides = overrides;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> JobSpec {
        self.job
    }
}

/// Whether an artifact lookup hit the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Hit {
    /// Not looked up on this path (e.g. DC for a distributed job, or a
    /// symbolic analysis short-circuited by a full setup hit).
    #[default]
    Skipped,
    /// Found in the cache.
    Hit,
    /// Found via a neighbouring γ-decade anchor (symbolic only).
    Neighbor,
    /// Served by low-rank correction of a cached base setup (the
    /// what-if fast path, setup only): no sparse factorization ran.
    Whatif,
    /// Built fresh (and inserted for the next job).
    Miss,
}

impl Hit {
    /// `true` for any flavor of reuse (`Hit`, `Neighbor`, or `Whatif`).
    pub fn is_hit(self) -> bool {
        matches!(self, Hit::Hit | Hit::Neighbor | Hit::Whatif)
    }
}

/// Where a job's numeric setup actually came from — the hit-path label
/// stamped on every job span and latency histogram, finer than [`Hit`]:
/// it separates in-memory cache hits from disk-store hydrations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HitPath {
    /// Built fresh: full factorization ran.
    #[default]
    Cold,
    /// In-memory cache hit (the warm fast path).
    Cache,
    /// Hydrated from the disk-backed artifact store.
    Store,
    /// Served by low-rank correction of a cached base (what-if).
    Whatif,
}

impl HitPath {
    /// Stable metric-label value (`cold` / `cache` / `store` /
    /// `whatif`).
    pub fn label(self) -> &'static str {
        match self {
            HitPath::Cold => "cold",
            HitPath::Cache => "cache",
            HitPath::Store => "store",
            HitPath::Whatif => "whatif",
        }
    }
}

/// Which cached artifacts a job reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheReport {
    /// Symbolic LU analysis (γ-decade anchored).
    pub symbolic: Hit,
    /// Full numeric setup (factors + schedules).
    pub setup: Hit,
    /// DC operating point (monolithic jobs only).
    pub dc: Hit,
    /// Group plan (distributed jobs only).
    pub plan: Hit,
    /// Where the setup came from (cache / store / what-if / cold).
    pub hit_path: HitPath,
}

impl CacheReport {
    /// `true` when the job skipped all factorization work (the
    /// cache-hit fast path: straight to the numeric march).
    pub fn is_warm(&self) -> bool {
        self.setup == Hit::Hit
    }

    /// `true` when the setup was served by the what-if fast path.
    pub fn is_whatif(&self) -> bool {
        self.setup == Hit::Whatif
    }
}

/// A completed job: the waveform plus reuse and timing accounting.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The transient result (bitwise identical to a standalone run with
    /// the same parallelism setting).
    pub result: TransientResult,
    /// Which artifacts were reused.
    pub cache: CacheReport,
    /// Number of distributed groups (`None` for monolithic jobs).
    pub groups: Option<usize>,
    /// Wall time of the execution itself (admission + solve).
    pub wall: Duration,
    /// Time spent queued before an executor picked the job up (zero for
    /// synchronous [`ScenarioEngine::run`](crate::ScenarioEngine::run)).
    pub queue_wait: Duration,
}

/// Lifecycle state of a submitted job.
#[derive(Debug, Clone)]
pub enum JobStatus {
    /// Waiting for an executor.
    Queued,
    /// An executor is running it.
    Running,
    /// Finished successfully.
    Done(Arc<JobOutcome>),
    /// Failed; carries the error text.
    Failed(String),
    /// Cancelled — removed from the queue, or stopped cooperatively at
    /// a transient-step boundary while running. Cancelled jobs never
    /// poison the artifact cache: partial results are dropped whole.
    Cancelled,
    /// Resolved long ago; the outcome was dropped under the engine's
    /// retention limit (`EngineOptions::max_retained`) so a long-running
    /// service's memory stays bounded by its recent traffic.
    Expired,
}

impl JobStatus {
    /// Short state label (`queued` / `running` / `done` / `failed` /
    /// `cancelled` / `expired`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done(_) => "done",
            JobStatus::Failed(_) => "failed",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Expired => "expired",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;

    #[test]
    fn overrides_fold_into_options_and_circuit() {
        let sys = Arc::new(RcMeshBuilder::new(3, 3).build().unwrap());
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let job = JobSpec::new(sys.clone(), spec).gamma(3e-10).tol(1e-8);
        let opts = job.effective_options();
        assert_eq!(opts.gamma, 3e-10);
        assert_eq!(opts.expm.tol, 1e-8);
        // No scale: the very same Arc comes back.
        assert!(Arc::ptr_eq(&job.effective_circuit().unwrap(), &sys));
        let scaled = job.source_scale(2.0);
        let eff = scaled.effective_circuit().unwrap();
        assert!(!Arc::ptr_eq(&eff, &sys));
        assert_eq!(eff.value_fingerprint(), sys.value_fingerprint());
    }

    #[test]
    fn builders_cover_every_field() {
        let sys = Arc::new(RcMeshBuilder::new(3, 3).build().unwrap());
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let ov = ScenarioOverrides::builder()
            .gamma(3e-10)
            .tol(1e-8)
            .source_scale(1.5)
            .cap_scale(2, 4.0)
            .build();
        assert_eq!(ov.gamma, Some(3e-10));
        assert_eq!(ov.cap_scale, Some((2, 4.0)));
        let job = JobSpec::builder(sys.clone(), spec)
            .mode(ExecutionMode::Distributed {
                strategy: GroupingStrategy::default(),
                workers: Some(2),
            })
            .priority(Priority::High)
            .deadline(Duration::from_secs(1))
            .overrides(ov.clone())
            .build();
        assert_eq!(job.overrides, ov);
        assert_eq!(job.priority, Priority::High);
        assert_eq!(job.deadline, Some(Duration::from_secs(1)));
        assert!(matches!(job.mode, ExecutionMode::Distributed { .. }));
        // Shorthand setters on the builder match the override builder.
        let short = JobSpec::builder(sys, job.spec.clone())
            .gamma(3e-10)
            .tol(1e-8)
            .source_scale(1.5)
            .cap_scale(2, 4.0)
            .build();
        assert_eq!(short.overrides, ov);
    }

    #[test]
    fn cache_report_warmth() {
        let mut r = CacheReport::default();
        assert!(!r.is_warm());
        r.setup = Hit::Hit;
        assert!(r.is_warm());
        assert!(Hit::Neighbor.is_hit());
        assert!(!Hit::Miss.is_hit());
    }
}
