//! The `matex-serve` binary: run the TCP job service, or load-test one.
//!
//! ```text
//! matex-serve serve [--addr 127.0.0.1:7171] [--threads N] [--executors N]
//!                   [--store-dir PATH] [--obs]
//! matex-serve load  --addr HOST:PORT [--clients 4] [--jobs 5] [--grids 2]
//!                   [--mode scale|whatif|burst|heavytail|slowreader]
//!                   [--frames json|binary|mixed]
//!                   [--deadline-ms MS] [--frame-delay-ms MS]
//!                   [--trace-out PATH]
//! ```
//!
//! `serve` prints `listening on <addr>` once bound (port 0 picks a free
//! port) and runs until killed. `--store-dir` opens (or creates) a
//! disk-backed artifact store there: computed symbolic analyses,
//! setups, DC solutions, and group plans persist across restarts, so a
//! relaunched service serves its first jobs warm — bitwise identical to
//! the run that populated the store. `load` drives `--clients`
//! concurrent connections through `--jobs` repetitions over `--grids`
//! distinct synthetic PDN circuits and prints throughput, latency
//! percentiles, rejection rate, bytes on the wire per frame encoding,
//! and the cross-client determinism verdict. `--frames` picks the frame
//! encoding clients negotiate: `json` (protocol v1, the default),
//! `binary` (protocol v2 `hello` handshake), or `mixed` (clients
//! alternate — the cross-encoding determinism check). Modes:
//!
//! * `scale` — each grid's sequence is a base job plus source-scale
//!   variants (the cache-friendly fleet workload).
//! * `whatif` — the variants are small cap edits served by low-rank
//!   correction of the cached base; the what-if hit rate is printed.
//! * `burst` — adversarial overload: every client rendezvouses before
//!   each submit so waves hit the admission queue simultaneously.
//!   Combine with `--deadline-ms` to watch admission shed the excess
//!   (rejections are reported, not failures).
//! * `heavytail` — a Pareto-ish job-size mix (mostly small grids, a
//!   few much larger ones from the `pdn_*` parameters), the workload
//!   where one elephant job can wreck everyone's p99.
//! * `slowreader` — clients drain stream frames slowly
//!   (`--frame-delay-ms` per frame), exercising the service's
//!   slow-peer write-timeout defenses.
//!
//! `serve --obs` turns on the engine's observability recorder: the
//! `metrics` verb then serves a live Prometheus page (job latency
//! histograms split by cache-hit path, solver phase timings, admission
//! counters) and the `trace` verb a Chrome-trace timeline. `load
//! --trace-out PATH` enables client-side recording too and writes the
//! merged trace (client job spans + server queue/solve phases) to
//! `PATH` — open it in `chrome://tracing` or <https://ui.perfetto.dev>
//! to read each job's T_H/T_e/factorization split next to the latency
//! the client observed; client latency quantiles are also printed.

use matex_serve::{
    run_load, serve, EngineOptions, FrameMode, LoadJob, LoadMode, LoadSpec, ScenarioEngine,
    ServiceOptions,
};
use matex_store::ArtifactStore;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("serve") => cmd_serve(args),
        Some("load") => cmd_load(args),
        _ => {
            eprintln!(
                "usage: matex-serve <serve|load> [options]   (see --help in the module docs)"
            );
            ExitCode::from(2)
        }
    }
}

fn take(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next()
        .unwrap_or_else(|| panic!("{flag} requires a value"))
}

fn cmd_serve(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut opts = EngineOptions::default();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = take(&mut args, "--addr"),
            "--threads" => {
                opts.threads = Some(take(&mut args, "--threads").parse().expect("--threads N"))
            }
            "--executors" => {
                opts.executors = take(&mut args, "--executors")
                    .parse()
                    .expect("--executors N")
            }
            "--kernel-threads" => {
                opts.kernel_threads = take(&mut args, "--kernel-threads")
                    .parse()
                    .expect("--kernel-threads N")
            }
            "--store-dir" => {
                let dir = take(&mut args, "--store-dir");
                match ArtifactStore::open(&dir) {
                    Ok(store) => opts.store = Some(Arc::new(store)),
                    Err(e) => {
                        eprintln!("matex-serve: cannot open store {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--obs" => opts.obs = matex_obs::Obs::enabled(),
            other => {
                eprintln!("unknown serve argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let engine = Arc::new(ScenarioEngine::new(opts));
    let handle = match serve(engine, &ServiceOptions::builder().addr(addr).build()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("matex-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", handle.addr());
    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn cmd_load(mut args: impl Iterator<Item = String>) -> ExitCode {
    let mut addr = None;
    let mut clients = 4usize;
    let mut jobs_per_grid = 5usize;
    let mut grids = 2usize;
    let mut mode = "scale".to_string();
    let mut frames = "json".to_string();
    let mut deadline_ms: Option<f64> = None;
    let mut frame_delay_ms = 5.0f64;
    let mut retries = 0usize;
    let mut trace_out: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(take(&mut args, "--addr")),
            "--clients" => clients = take(&mut args, "--clients").parse().expect("--clients N"),
            "--retries" => retries = take(&mut args, "--retries").parse().expect("--retries N"),
            "--jobs" => jobs_per_grid = take(&mut args, "--jobs").parse().expect("--jobs N"),
            "--grids" => grids = take(&mut args, "--grids").parse().expect("--grids N"),
            "--mode" => mode = take(&mut args, "--mode"),
            "--frames" => frames = take(&mut args, "--frames"),
            "--deadline-ms" => {
                deadline_ms = Some(
                    take(&mut args, "--deadline-ms")
                        .parse()
                        .expect("--deadline-ms MS"),
                )
            }
            "--frame-delay-ms" => {
                frame_delay_ms = take(&mut args, "--frame-delay-ms")
                    .parse()
                    .expect("--frame-delay-ms MS")
            }
            "--trace-out" => trace_out = Some(take(&mut args, "--trace-out")),
            other => {
                eprintln!("unknown load argument {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("load requires --addr HOST:PORT");
        return ExitCode::from(2);
    };
    if !["scale", "whatif", "burst", "heavytail", "slowreader"].contains(&mode.as_str()) {
        eprintln!("--mode must be scale, whatif, burst, heavytail, or slowreader, got {mode:?}");
        return ExitCode::from(2);
    }
    let frame_modes = match frames.as_str() {
        "json" => vec![FrameMode::Json],
        "binary" => vec![FrameMode::Binary],
        "mixed" => vec![FrameMode::Json, FrameMode::Binary],
        other => {
            eprintln!("--frames must be json, binary, or mixed, got {other:?}");
            return ExitCode::from(2);
        }
    };
    // `grids` distinct structures, `jobs_per_grid` scenario variations
    // each — the repeated-structure workload the cache exists for. In
    // whatif mode, the variations are small cap edits instead of source
    // scales: same pattern, few changed matrix values, so the engine
    // serves them by low-rank correction of the base factorization. In
    // heavytail mode the sizes themselves are the adversary: mostly
    // small grids with sparse much-larger elephants (a Pareto-ish mix
    // over the pdn_* parameters).
    let mut jobs = Vec::new();
    if mode == "heavytail" {
        let total = (grids.max(1) * jobs_per_grid.max(1)).max(1);
        for i in 0..total {
            // ~80% small, ~15% medium, ~5% elephants — deterministic.
            let dim = match i % 20 {
                19 => 20,
                15..=18 => 12,
                _ => 6,
            };
            let job = LoadJob::pdn(dim, dim, dim * dim / 8, 3, 100 + (i % grids.max(1)) as u64);
            jobs.push(if i % 4 == 0 {
                job
            } else {
                job.scaled(0.75 + 0.125 * (i % 4) as f64)
            });
        }
    } else {
        for g in 0..grids.max(1) {
            let dim = 6 + 2 * g;
            for j in 0..jobs_per_grid.max(1) {
                let job = LoadJob::pdn(dim, dim, 8 + 2 * g, 3, 100 + g as u64);
                jobs.push(if j == 0 {
                    job
                } else if mode == "whatif" {
                    job.cap_scaled(2 + j, 1.0 + 0.5 * j as f64)
                } else {
                    job.scaled(0.75 + 0.125 * j as f64)
                });
            }
        }
    }
    if let Some(ms) = deadline_ms {
        jobs = jobs.into_iter().map(|j| j.deadline_ms(ms)).collect();
    }
    let load_mode = match mode.as_str() {
        "burst" => LoadMode::Burst,
        "slowreader" => LoadMode::SlowReader {
            frame_delay: Duration::from_secs_f64(frame_delay_ms.max(0.0) / 1e3),
        },
        _ => LoadMode::Steady,
    };
    // --trace-out implies client-side recording: the report then
    // carries the merged client+server Chrome trace to dump.
    let client_obs = if trace_out.is_some() {
        matex_obs::Obs::enabled()
    } else {
        matex_obs::Obs::disabled()
    };
    match run_load(
        &LoadSpec::new(addr, clients, jobs)
            .mode(load_mode)
            .frames(frame_modes)
            .retries(retries)
            .obs(client_obs.clone()),
    ) {
        Ok(r) => {
            println!(
                "clients {clients}  jobs {}  failed {}  rejected {} ({:.0}%)  wall {:.3}s  {:.1} jobs/s",
                r.completed,
                r.failed,
                r.rejected,
                r.rejection_rate() * 1e2,
                r.wall.as_secs_f64(),
                r.jobs_per_s
            );
            println!(
                "latency p50 {:.1}ms  p99 {:.1}ms  deterministic: {}",
                r.p50.as_secs_f64() * 1e3,
                r.p99.as_secs_f64() * 1e3,
                r.deterministic
            );
            if r.retries > 0 || r.reconnects > 0 {
                println!("retries {}  reconnects {}", r.retries, r.reconnects);
            }
            println!(
                "stream bytes  json {}  binary {}{}",
                r.json_bytes,
                r.binary_bytes,
                if r.json_bytes > 0 && r.binary_bytes > 0 {
                    format!(
                        "  (binary saves {:.1}x)",
                        r.json_bytes as f64 / r.binary_bytes as f64
                    )
                } else {
                    String::new()
                }
            );
            if mode == "whatif" {
                println!("whatif hits {}  rate {:.2}", r.whatif_hits, r.whatif_rate());
            }
            if client_obs.is_enabled() {
                let (p50, p90, p99) = client_obs.quantiles("loadgen_job_seconds");
                println!(
                    "client histogram p50 {:.1}ms  p90 {:.1}ms  p99 {:.1}ms",
                    p50 * 1e3,
                    p90 * 1e3,
                    p99 * 1e3
                );
            }
            if let (Some(path), Some(trace)) = (&trace_out, &r.trace_json) {
                match std::fs::write(path, trace) {
                    Ok(()) => println!("merged trace written to {path}"),
                    Err(e) => {
                        eprintln!("matex-serve load: cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            // Rejections are shed load — expected under overload, not a
            // failure of the run.
            if r.deterministic && r.failed == 0 {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("matex-serve load: {e}");
            ExitCode::FAILURE
        }
    }
}
