//! Load generator for the TCP service.
//!
//! Drives N concurrent clients through identical job sequences and
//! measures what a serving system is judged on: throughput (jobs/s),
//! latency percentiles (p50/p99 of submit→stream-complete), overload
//! behavior (admission rejections are counted separately from
//! failures), and **determinism** — every client decodes each job's
//! streamed waveform frames and hashes their *canonical content* (the
//! encoding-independent [`WaveFrame`] fingerprint), and for every job
//! index the hashes must agree across all clients that completed it
//! (the engine's bitwise-replay contract, observed end to end through
//! the wire, robust to per-client shed load). Because the per-job hash
//! is canonical, the vote spans frame encodings: a mixed fleet of
//! protocol-v1 JSON clients and protocol-v2 binary clients (see
//! [`FrameMode`]) must agree bit for bit, which is exactly the
//! cross-encoding guarantee the wire protocol promises. Each client's
//! whole-run hash is additionally seeded with its negotiated frame
//! mode, so the hash domain records *how* the bytes arrived; the
//! report also totals stream bytes per mode (JSON vs binary), the
//! wire-size comparison the binary encoding exists for.
//!
//! Adversarial client behaviors are modeled by [`LoadMode`]:
//! synchronized [`LoadMode::Burst`] waves that hit the service's
//! admission queue all at once, and [`LoadMode::SlowReader`] clients
//! that drain stream frames with a per-frame delay (exercising the
//! service's write-timeout defenses). Heavy-tailed job-size mixes are
//! a property of the job *list*, not the client loop — build one from
//! spread-out `pdn_*` parameters (see the `matex-serve load` binary's
//! `heavytail` mode).

use crate::json::escape;
use crate::ServeError;
use matex_core::FaultHook;
use matex_par::Priority;
use matex_waveform::{Fnv64, WaveFrame};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// One client-side job template of a load run.
#[derive(Debug, Clone)]
pub struct LoadJob {
    /// Extra `submit` fields (for example
    /// `"pdn_nx": 8, "pdn_ny": 8` or a `"netlist"` — already escaped),
    /// joined into the request object.
    pub submit_fields: String,
    /// Window end (seconds).
    pub t_stop: f64,
    /// Output step (seconds).
    pub dt_out: f64,
    /// Optional uniform source scale.
    pub scale: Option<f64>,
    /// Optional what-if edit: scale one node's ground capacitance
    /// (`cap_row` / `cap_scale` submit fields).
    pub cap: Option<(usize, f64)>,
    /// Optional admission priority (the `priority` submit field).
    pub priority: Option<Priority>,
    /// Optional relative deadline in milliseconds (the `deadline_ms`
    /// submit field). Deadlined jobs may be rejected at submit under
    /// overload — that is the point: shed instead of queued late.
    pub deadline_ms: Option<f64>,
}

impl LoadJob {
    /// A synthetic-PDN job.
    pub fn pdn(nx: usize, ny: usize, loads: usize, features: usize, seed: u64) -> LoadJob {
        LoadJob {
            submit_fields: format!(
                "\"pdn_nx\": {nx}, \"pdn_ny\": {ny}, \"pdn_loads\": {loads}, \
                 \"pdn_features\": {features}, \"pdn_seed\": {seed}"
            ),
            t_stop: 1e-9,
            dt_out: 2e-11,
            scale: None,
            cap: None,
            priority: None,
            deadline_ms: None,
        }
    }

    /// An inline-netlist job.
    pub fn netlist(text: &str) -> LoadJob {
        LoadJob {
            submit_fields: format!("\"netlist\": \"{}\"", escape(text)),
            t_stop: 1e-9,
            dt_out: 2e-11,
            scale: None,
            cap: None,
            priority: None,
            deadline_ms: None,
        }
    }

    /// Sets the window (builder style).
    pub fn window(mut self, t_stop: f64, dt_out: f64) -> LoadJob {
        self.t_stop = t_stop;
        self.dt_out = dt_out;
        self
    }

    /// Sets the source scale (builder style).
    pub fn scaled(mut self, k: f64) -> LoadJob {
        self.scale = Some(k);
        self
    }

    /// Sets a what-if cap edit (builder style).
    pub fn cap_scaled(mut self, row: usize, factor: f64) -> LoadJob {
        self.cap = Some((row, factor));
        self
    }

    /// Sets the admission priority (builder style).
    pub fn priority(mut self, p: Priority) -> LoadJob {
        self.priority = Some(p);
        self
    }

    /// Sets a relative deadline in milliseconds (builder style).
    pub fn deadline_ms(mut self, ms: f64) -> LoadJob {
        self.deadline_ms = Some(ms);
        self
    }

    fn submit_line(&self) -> String {
        let mut line = format!(
            "{{\"cmd\": \"submit\", {}, \"t_stop\": {:e}, \"dt_out\": {:e}",
            self.submit_fields, self.t_stop, self.dt_out
        );
        if let Some(k) = self.scale {
            line.push_str(&format!(", \"scale\": {k:e}"));
        }
        if let Some((row, factor)) = self.cap {
            line.push_str(&format!(", \"cap_row\": {row}, \"cap_scale\": {factor:e}"));
        }
        if let Some(p) = self.priority {
            line.push_str(&format!(", \"priority\": \"{}\"", p.as_str()));
        }
        if let Some(ms) = self.deadline_ms {
            line.push_str(&format!(", \"deadline_ms\": {ms:e}"));
        }
        line.push('}');
        line
    }
}

/// How the clients drive their sequences.
#[derive(Debug, Clone, Default)]
pub enum LoadMode {
    /// Each client runs straight through its sequence at full speed.
    #[default]
    Steady,
    /// Synchronized waves: every client rendezvouses at a barrier
    /// before each job, so submissions hit the admission queue
    /// simultaneously — the adversarial overload pattern the engine's
    /// bounded queue and deadline triage exist for.
    Burst,
    /// Clients drain stream frames slowly, sleeping between frame
    /// reads. Exercises the service's slow-peer defenses (a delay
    /// beyond the service's `io_timeout` gets the connection dropped,
    /// which the report surfaces as failures).
    SlowReader {
        /// Sleep inserted after each received frame line.
        frame_delay: Duration,
    },
}

/// Which frame encoding a load client negotiates for its connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrameMode {
    /// Protocol v1 JSON text frames — no handshake, the wire default.
    #[default]
    Json,
    /// Protocol v2 binary frames: the client sends a
    /// `{"cmd": "hello", "proto": 2, "frames": "binary"}` handshake at
    /// connect and verifies the server's grant before submitting.
    Binary,
}

impl FrameMode {
    /// Stable wire-ish tag seeded into each client's whole-run stream
    /// hash, tying the hash domain to the negotiated encoding.
    fn tag(self) -> u8 {
        match self {
            FrameMode::Json => 0,
            FrameMode::Binary => 1,
        }
    }

    /// Short label for reports.
    pub fn as_str(self) -> &'static str {
        match self {
            FrameMode::Json => "json",
            FrameMode::Binary => "binary",
        }
    }
}

/// A load-generation request: `clients` concurrent connections each
/// running the whole `jobs` sequence, in order.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Service address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// The job sequence every client runs.
    pub jobs: Vec<LoadJob>,
    /// Client pacing/draining behavior.
    pub mode: LoadMode,
    /// Frame encodings, cycled over client index (client `i` uses
    /// `frames[i % frames.len()]`). Empty means every client speaks
    /// protocol v1 JSON. Mixing modes turns the determinism vote into
    /// a cross-encoding check: JSON and binary clients must decode to
    /// identical canonical frames.
    pub frames: Vec<FrameMode>,
    /// Per-job retry budget (default 0: shed load is final). A rejected
    /// submit sleeps the server's `retry_after_ms` hint and resubmits;
    /// a dropped connection reconnects (redoing the frame handshake)
    /// and resubmits the in-flight job. Retried jobs vote in the
    /// determinism check with the hash of their *successful* attempt
    /// only, so recovery must reproduce the fault-free bytes.
    pub max_retries: usize,
    /// Fault-injection hook consulted at `"loadgen.conn"` once per
    /// stream drain: a firing kills the TCP connection mid-stream, the
    /// failure mode `max_retries` exists to absorb. Disarmed by
    /// default. Shared by every client, so one seeded plan schedules
    /// faults fleet-wide.
    pub faults: FaultHook,
    /// Client-side observability (disabled by default). When enabled,
    /// every client records a `loadgen.job` span per attempt and feeds
    /// submit→stream-complete latency into the `loadgen_job_seconds`
    /// histogram (labeled by outcome and by client index), and the
    /// report carries a merged Chrome trace — the clients' spans
    /// concatenated with the server's own timeline fetched over the
    /// `trace` verb.
    pub obs: matex_obs::Obs,
}

impl LoadSpec {
    /// A steady-mode spec (the common case).
    pub fn new(addr: String, clients: usize, jobs: Vec<LoadJob>) -> LoadSpec {
        LoadSpec {
            addr,
            clients,
            jobs,
            mode: LoadMode::Steady,
            frames: Vec::new(),
            max_retries: 0,
            faults: FaultHook::default(),
            obs: matex_obs::Obs::disabled(),
        }
    }

    /// Sets the client mode (builder style).
    pub fn mode(mut self, mode: LoadMode) -> LoadSpec {
        self.mode = mode;
        self
    }

    /// Sets the per-client frame encoding cycle (builder style).
    pub fn frames(mut self, frames: Vec<FrameMode>) -> LoadSpec {
        self.frames = frames;
        self
    }

    /// Sets the per-job retry budget (builder style).
    pub fn retries(mut self, max_retries: usize) -> LoadSpec {
        self.max_retries = max_retries;
        self
    }

    /// Arms the connection-fault hook (builder style).
    pub fn faults(mut self, faults: FaultHook) -> LoadSpec {
        self.faults = faults;
        self
    }

    /// Enables client-side observability (builder style).
    pub fn obs(mut self, obs: matex_obs::Obs) -> LoadSpec {
        self.obs = obs;
        self
    }

    fn frame_mode(&self, client: usize) -> FrameMode {
        if self.frames.is_empty() {
            FrameMode::Json
        } else {
            self.frames[client % self.frames.len()]
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs completed successfully (across all clients).
    pub completed: usize,
    /// Jobs that failed (protocol/solve errors, dropped connections).
    pub failed: usize,
    /// Jobs admission rejected at submit (queue full / deadline
    /// unmeetable) — shed load, counted apart from failures.
    pub rejected: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Throughput over the whole run.
    pub jobs_per_s: f64,
    /// Median submit→stream-complete latency (completed jobs only).
    pub p50: Duration,
    /// 99th-percentile latency (max for small samples).
    pub p99: Duration,
    /// Per-client whole-run hash, in client order: seeded with the
    /// client's negotiated [`FrameMode`] tag, then fed every streamed
    /// frame's canonical content. Only comparable across clients of
    /// the same mode, and only when no load was shed.
    pub stream_hashes: Vec<u64>,
    /// `true` when, for every job index, all clients that completed it
    /// streamed canonically identical frames — across frame encodings
    /// (the per-job vote hashes decoded [`WaveFrame`] content, not wire
    /// bytes). Robust to per-client shed load: rejected/failed jobs
    /// simply don't vote.
    pub deterministic: bool,
    /// Jobs whose setup was served by the what-if fast path (from the
    /// per-job `wait` status lines).
    pub whatif_hits: usize,
    /// Stream frame bytes received by [`FrameMode::Json`] clients
    /// (text lines, newline included).
    pub json_bytes: u64,
    /// Stream frame bytes received by [`FrameMode::Binary`] clients
    /// (length prefix included). With a mixed-mode fleet the
    /// `json_bytes / binary_bytes` ratio is the binary encoding's
    /// wire saving, measured end to end.
    pub binary_bytes: u64,
    /// Resubmissions after a `retry_after_ms` rejection hint (jobs
    /// that eventually completed count under `completed`, not
    /// `rejected`).
    pub retries: usize,
    /// Reconnections after a dropped connection, each followed by a
    /// resubmit of the in-flight job.
    pub reconnects: usize,
    /// Merged Chrome trace JSON — the clients' `loadgen.job` spans
    /// concatenated with the server's timeline (fetched over the
    /// `trace` verb after the run). Present only when [`LoadSpec::obs`]
    /// was enabled. Each side's timestamps are relative to its own
    /// recorder epoch, so the two timelines align per-side, not to each
    /// other — good enough to read each job's queue/solve phase split
    /// next to the client-observed latency.
    pub trace_json: Option<String>,
}

impl LoadReport {
    /// Fraction of completed jobs served by the what-if fast path.
    pub fn whatif_rate(&self) -> f64 {
        self.whatif_hits as f64 / self.completed.max(1) as f64
    }

    /// Fraction of offered jobs admission shed.
    pub fn rejection_rate(&self) -> f64 {
        let offered = self.completed + self.failed + self.rejected;
        self.rejected as f64 / offered.max(1) as f64
    }
}

/// Runs the load: spawns the clients, drives the sequences, aggregates.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when a client cannot connect; per-job
/// failures and rejections are counted, not fatal.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, ServeError> {
    let t0 = Instant::now();
    let clients = spec.clients.max(1);
    // Burst mode synchronizes every client's submits through one
    // barrier — one wave per job index.
    let barrier = match spec.mode {
        LoadMode::Burst => Some(Arc::new(Barrier::new(clients))),
        _ => None,
    };
    let mut handles = Vec::new();
    for i in 0..clients {
        let addr = spec.addr.clone();
        let jobs = spec.jobs.clone();
        let mode = spec.mode.clone();
        let fmode = spec.frame_mode(i);
        let barrier = barrier.clone();
        let max_retries = spec.max_retries;
        // Clones share occurrence counters: one plan schedules the fleet.
        let faults = spec.faults.clone();
        // Clients share one recorder; each tags its spans by index.
        let obs = spec.obs.clone();
        handles.push(std::thread::spawn(move || {
            client_run(
                &addr,
                &jobs,
                &mode,
                fmode,
                barrier,
                max_retries,
                &faults,
                &obs,
                i,
            )
        }));
    }
    let mut latencies: Vec<Duration> = Vec::new();
    let mut stream_hashes = Vec::new();
    let mut job_hashes: Vec<Vec<Option<u64>>> = Vec::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut rejected = 0usize;
    let mut whatif_hits = 0usize;
    let mut json_bytes = 0u64;
    let mut binary_bytes = 0u64;
    let mut retries = 0usize;
    let mut reconnects = 0usize;
    for h in handles {
        let outcome = h
            .join()
            .map_err(|_| ServeError::Io("load client panicked".into()))??;
        completed += outcome.completed;
        failed += outcome.failed;
        rejected += outcome.rejected;
        whatif_hits += outcome.whatif_hits;
        retries += outcome.retries;
        reconnects += outcome.reconnects;
        match outcome.mode {
            FrameMode::Json => json_bytes += outcome.stream_bytes,
            FrameMode::Binary => binary_bytes += outcome.stream_bytes,
        }
        latencies.extend(outcome.latencies);
        stream_hashes.push(outcome.stream_hash);
        job_hashes.push(outcome.job_hashes);
    }
    let wall = t0.elapsed();
    latencies.sort();
    let pick = |q: f64| {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx]
        }
    };
    // Per-job-index agreement among the clients that completed that
    // job: the determinism verdict must survive partial shed.
    let deterministic = (0..spec.jobs.len()).all(|j| {
        let mut seen: Option<u64> = None;
        job_hashes
            .iter()
            .filter_map(|client| client.get(j).copied().flatten())
            .all(|h| *seen.get_or_insert(h) == h)
    });
    // Merge the fleet's client-side spans with the server's timeline
    // into one Chrome trace. A server without the `trace` verb (or an
    // unreachable one) degrades to a client-only trace.
    let trace_json = spec.obs.is_enabled().then(|| {
        let server = fetch_trace_events(&spec.addr).unwrap_or_else(|_| "[]".into());
        merge_chrome_traces(&[&spec.obs.chrome_trace_events(), &server])
    });
    Ok(LoadReport {
        completed,
        failed,
        rejected,
        jobs_per_s: completed as f64 / wall.as_secs_f64().max(1e-9),
        wall,
        p50: pick(0.5),
        p99: pick(0.99),
        stream_hashes,
        deterministic,
        whatif_hits,
        json_bytes,
        binary_bytes,
        retries,
        reconnects,
        trace_json,
    })
}

/// Fetches the server's Chrome-trace event array over the `trace` verb.
fn fetch_trace_events(addr: &str) -> Result<String, ServeError> {
    let mut conn = Conn::connect(addr, FrameMode::Json)?;
    writeln!(conn.writer, "{{\"cmd\": \"trace\"}}")?;
    conn.writer.flush()?;
    let line = conn.read_line()?;
    let pat = "\"events\": ";
    let at = line
        .find(pat)
        .ok_or_else(|| ServeError::Protocol(format!("no events in trace response: {line}")))?;
    // The array runs to the envelope's final closing brace.
    let events = line[at + pat.len()..].trim_end();
    Ok(events
        .strip_suffix('}')
        .unwrap_or(events)
        .trim()
        .to_string())
}

/// Concatenates Chrome-trace event arrays into one complete trace
/// document (openable in `chrome://tracing` / Perfetto).
fn merge_chrome_traces(parts: &[&str]) -> String {
    let mut events = String::from("[");
    for p in parts {
        let inner = p
            .trim()
            .strip_prefix('[')
            .and_then(|s| s.strip_suffix(']'))
            .unwrap_or("")
            .trim();
        if inner.is_empty() {
            continue;
        }
        if events.len() > 1 {
            events.push(',');
        }
        events.push_str(inner);
    }
    events.push(']');
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":{events}}}")
}

struct ClientOutcome {
    completed: usize,
    failed: usize,
    rejected: usize,
    latencies: Vec<Duration>,
    stream_hash: u64,
    /// Per job index: the canonical content hash of that job's decoded
    /// frames, `None` when the job was rejected or failed for this
    /// client.
    job_hashes: Vec<Option<u64>>,
    whatif_hits: usize,
    /// Negotiated frame encoding of this connection.
    mode: FrameMode,
    /// Stream frame bytes this client received off the wire.
    stream_bytes: u64,
    retries: usize,
    reconnects: usize,
}

/// One client connection, re-establishable after a drop: `connect`
/// redoes the TCP dial *and* the frame-mode handshake, so a reconnected
/// client speaks exactly the encoding it spoke before the fault.
struct Conn {
    writer: BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn connect(addr: &str, fmode: FrameMode) -> Result<Conn, ServeError> {
        let stream = TcpStream::connect(addr)?;
        let mut conn = Conn {
            writer: BufWriter::new(stream.try_clone()?),
            reader: BufReader::new(stream),
        };
        if fmode == FrameMode::Binary {
            // Upgrade the connection before any job traffic; a server
            // that does not grant binary frames would desynchronize
            // every stream read below, so the grant is verified, not
            // assumed.
            writeln!(
                conn.writer,
                "{{\"cmd\": \"hello\", \"proto\": 2, \"frames\": \"binary\"}}"
            )?;
            conn.writer.flush()?;
            let ack = conn.read_line()?;
            if !ack.contains("\"frames\": \"binary\"") {
                return Err(ServeError::Protocol(format!(
                    "server refused binary frames: {ack}"
                )));
            }
        }
        Ok(conn)
    }

    fn read_line(&mut self) -> Result<String, ServeError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    }
}

/// How one submit→wait→stream transaction ended. Connection-level
/// failures surface as `Err` from [`run_one_job`] instead — those are
/// the cases where the connection is dead and must be re-dialed.
enum JobTry {
    /// Completed: the canonical content hash of the streamed frames.
    Completed { job_hash: u64, whatif: bool },
    /// Admission shed the job; the server's back-off hint, when present.
    Rejected { retry_after_ms: Option<u64> },
    /// The server answered but the job failed (protocol/solve error).
    Failed,
}

/// Drives one job through submit→wait→stream on a live connection.
/// `Err` means the connection itself died (the injected
/// `"loadgen.conn"` fault severs it mid-stream, exactly like a crashed
/// network path) — the caller reconnects and resubmits.
#[allow(clippy::too_many_arguments)]
fn run_one_job(
    conn: &mut Conn,
    job: &LoadJob,
    fmode: FrameMode,
    frame_delay: Option<Duration>,
    faults: &FaultHook,
    run_hash: &mut Fnv64,
    stream_bytes: &mut u64,
) -> Result<JobTry, ServeError> {
    writeln!(conn.writer, "{}", job.submit_line())?;
    conn.writer.flush()?;
    let submitted = conn.read_line()?;
    if submitted.contains("\"code\": \"rejected\"") {
        return Ok(JobTry::Rejected {
            retry_after_ms: extract_uint(&submitted, "\"retry_after_ms\": "),
        });
    }
    let Some(id) = extract_uint(&submitted, "\"job\": ") else {
        return Ok(JobTry::Failed);
    };
    // Resolve through `wait` first: its status line reports whether
    // the setup came off the what-if fast path. (Status lines are
    // not part of the determinism hash — they carry wall times.)
    writeln!(conn.writer, "{{\"cmd\": \"wait\", \"job\": {id}}}")?;
    conn.writer.flush()?;
    let status = conn.read_line()?;
    let whatif = status.contains("\"whatif\": true");
    writeln!(conn.writer, "{{\"cmd\": \"stream\", \"job\": {id}}}")?;
    conn.writer.flush()?;
    let meta = conn.read_line()?;
    let Some(frames) = extract_uint(&meta, "\"frames\": ") else {
        return Ok(JobTry::Failed);
    };
    if faults.check("loadgen.conn").is_some() {
        // Sever the socket mid-stream: the reads below fail like a
        // killed network path, and recovery must reconnect + resubmit.
        conn.reader.get_ref().shutdown(Shutdown::Both).ok();
    }
    let mut ok = true;
    let mut job_hash = Fnv64::new();
    for _ in 0..frames {
        // Decode the frame in whichever encoding this connection
        // negotiated, then hash its canonical content — the
        // determinism witness, independent of the wire format.
        let wf = match fmode {
            FrameMode::Json => {
                let frame = conn.read_line()?;
                *stream_bytes += frame.len() as u64 + 1;
                if !frame.contains("\"ok\": true") {
                    ok = false;
                    continue;
                }
                parse_json_frame(&frame)
            }
            FrameMode::Binary => read_binary_frame(&mut conn.reader, stream_bytes)?,
        };
        match wf {
            Some(wf) => {
                wf.feed(run_hash);
                wf.feed(&mut job_hash);
            }
            None => ok = false,
        }
        if let Some(d) = frame_delay {
            std::thread::sleep(d);
        }
    }
    Ok(if ok {
        JobTry::Completed {
            job_hash: job_hash.finish(),
            whatif,
        }
    } else {
        JobTry::Failed
    })
}

#[allow(clippy::too_many_arguments)]
fn client_run(
    addr: &str,
    jobs: &[LoadJob],
    mode: &LoadMode,
    fmode: FrameMode,
    barrier: Option<Arc<Barrier>>,
    max_retries: usize,
    faults: &FaultHook,
    obs: &matex_obs::Obs,
    client: usize,
) -> Result<ClientOutcome, ServeError> {
    let mut conn = Conn::connect(addr, fmode)?;
    let mut hash = Fnv64::new();
    // The whole-run hash domain is keyed by the negotiated encoding:
    // same canonical frames through a different wire format hash apart.
    // (Under injected faults it also absorbs partial attempts, so only
    // the per-job hashes — successful attempts only — vote on
    // determinism.)
    hash.write_u8(fmode.tag());
    let mut latencies = Vec::with_capacity(jobs.len());
    let mut job_hashes: Vec<Option<u64>> = Vec::with_capacity(jobs.len());
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut rejected = 0usize;
    let mut whatif_hits = 0usize;
    let mut stream_bytes = 0u64;
    let mut retries = 0usize;
    let mut reconnects = 0usize;
    let frame_delay = match mode {
        LoadMode::SlowReader { frame_delay } => Some(*frame_delay),
        _ => None,
    };
    for (jidx, job) in jobs.iter().enumerate() {
        // Burst: rendezvous so every client's submit lands in the same
        // instant — a synchronized wave against the admission queue.
        if let Some(b) = &barrier {
            b.wait();
        }
        let t0 = Instant::now();
        // Bounded per-job recovery: rejections sleep the server's hint
        // and resubmit; dead connections re-dial and resubmit. Either
        // way the job's determinism vote comes from the attempt that
        // completed.
        let mut attempts = 0usize;
        let mut outcome = "failed";
        let vote = loop {
            match run_one_job(
                &mut conn,
                job,
                fmode,
                frame_delay,
                faults,
                &mut hash,
                &mut stream_bytes,
            ) {
                Ok(JobTry::Completed { job_hash, whatif }) => {
                    if whatif {
                        whatif_hits += 1;
                    }
                    completed += 1;
                    latencies.push(t0.elapsed());
                    outcome = "completed";
                    break Some(job_hash);
                }
                Ok(JobTry::Rejected { retry_after_ms }) => {
                    if attempts >= max_retries {
                        rejected += 1;
                        outcome = "rejected";
                        break None;
                    }
                    attempts += 1;
                    retries += 1;
                    // Honor the hint, but never sleep unboundedly on a
                    // hostile or confused server.
                    let ms = retry_after_ms.unwrap_or(1).clamp(1, 1_000);
                    std::thread::sleep(Duration::from_millis(ms));
                }
                Ok(JobTry::Failed) => {
                    failed += 1;
                    break None;
                }
                Err(_) => {
                    // The connection died (dropped, or the injected
                    // mid-stream kill). Re-dial — the handshake is part
                    // of `connect` — and resubmit unless the budget is
                    // spent. A failed re-dial is fatal for the client.
                    conn = Conn::connect(addr, fmode)?;
                    reconnects += 1;
                    if attempts >= max_retries {
                        failed += 1;
                        break None;
                    }
                    attempts += 1;
                }
            }
        };
        // The client-observed latency: submit through stream-complete,
        // retries and reconnects included — what a caller would feel.
        if obs.is_enabled() {
            let d = t0.elapsed();
            let client_label = client.to_string();
            obs.record_span(
                "loadgen.job",
                jidx as u64,
                t0,
                d,
                &[("client", &client_label), ("outcome", outcome)],
            );
            obs.observe_labeled("loadgen_job_seconds", &[("outcome", outcome)], d);
        }
        job_hashes.push(vote);
    }
    Ok(ClientOutcome {
        completed,
        failed,
        rejected,
        latencies,
        stream_hash: hash.finish(),
        job_hashes,
        whatif_hits,
        mode: fmode,
        stream_bytes,
        retries,
        reconnects,
    })
}

/// Reads one length-prefixed binary [`WaveFrame`] record off the
/// connection. I/O failures are fatal (the stream is desynchronized);
/// a malformed payload decodes to `None` (counted as a job failure).
fn read_binary_frame(
    reader: &mut BufReader<TcpStream>,
    stream_bytes: &mut u64,
) -> Result<Option<WaveFrame>, ServeError> {
    let mut prefix = [0u8; 8];
    reader.read_exact(&mut prefix)?;
    let Ok((len, _)) = WaveFrame::decode_len(&prefix) else {
        return Ok(None);
    };
    let mut payload = vec![0u8; len];
    reader.read_exact(&mut payload)?;
    *stream_bytes += 8 + len as u64;
    Ok(WaveFrame::decode_payload(&payload).ok())
}

/// Parses a protocol-v1 JSON frame line back into its canonical
/// [`WaveFrame`]. The server prints floats with round-trip precision,
/// so the decoded values are bit-exact.
pub(crate) fn parse_json_frame(line: &str) -> Option<WaveFrame> {
    let frame = extract_uint(line, "\"frame\": ")?;
    let start = extract_uint(line, "\"start\": ")?;
    let pat = "\"times\": [";
    let rest = &line[line.find(pat)? + pat.len()..];
    let (times, rest) = parse_floats(rest)?;
    let mut rest = rest.strip_prefix(", \"series\": [")?;
    let mut series = Vec::new();
    while !rest.starts_with(']') {
        let (row, after) = parse_floats(rest.strip_prefix('[')?)?;
        series.push(row);
        rest = after.strip_prefix(',').unwrap_or(after);
    }
    Some(WaveFrame {
        frame,
        start,
        times,
        series,
    })
}

/// Parses a comma-separated float list up to its closing `]`; returns
/// the values and the remainder after the bracket.
fn parse_floats(s: &str) -> Option<(Vec<f64>, &str)> {
    let end = s.find(']')?;
    let mut vals = Vec::new();
    for tok in s[..end].split(',') {
        let tok = tok.trim();
        if !tok.is_empty() {
            vals.push(tok.parse().ok()?);
        }
    }
    Some((vals, &s[end + 1..]))
}

/// Pulls the unsigned integer following `pat` out of a response line.
fn extract_uint(line: &str, pat: &str) -> Option<u64> {
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serve, EngineOptions, ScenarioEngine, ServiceOptions};
    use std::sync::Arc;

    #[test]
    fn four_clients_are_deterministic() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 4,
            threads: Some(4),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 1),
            LoadJob::pdn(6, 6, 8, 3, 1).scaled(1.25),
            LoadJob::pdn(5, 7, 6, 2, 2),
        ];
        let report = run_load(&LoadSpec::new(handle.addr().to_string(), 4, jobs)).unwrap();
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        assert_eq!(report.rejected, 0);
        assert_eq!(report.rejection_rate(), 0.0);
        assert_eq!(report.stream_hashes.len(), 4);
        assert!(
            report.deterministic,
            "clients saw different bytes: {:x?}",
            report.stream_hashes
        );
        assert!(report.p99 >= report.p50);
        assert!(report.jobs_per_s > 0.0);
        handle.stop();
    }

    #[test]
    fn mixed_frame_modes_vote_together_and_binary_halves_the_wire() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 4,
            threads: Some(4),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 1),
            LoadJob::pdn(6, 6, 8, 3, 1).scaled(1.25),
        ];
        // Clients alternate JSON / binary: 0 and 2 speak v1 text, 1 and
        // 3 negotiate v2 binary frames. The determinism vote is over
        // canonical frame content, so it spans the two encodings.
        let spec = LoadSpec::new(handle.addr().to_string(), 4, jobs)
            .frames(vec![FrameMode::Json, FrameMode::Binary]);
        let report = run_load(&spec).unwrap();
        assert_eq!(report.completed, 8, "{report:?}");
        assert_eq!(report.failed, 0);
        assert!(
            report.deterministic,
            "encodings decoded different content: {:x?}",
            report.stream_hashes
        );
        // Same-mode clients agree on the whole-run hash; the mode seed
        // separates the two encodings' hash domains.
        assert_eq!(report.stream_hashes[0], report.stream_hashes[2]);
        assert_eq!(report.stream_hashes[1], report.stream_hashes[3]);
        assert_ne!(report.stream_hashes[0], report.stream_hashes[1]);
        // Binary frames must at least halve the bytes on the wire
        // (equal client counts per mode, identical job sequences).
        assert!(report.json_bytes > 0 && report.binary_bytes > 0);
        assert!(
            report.binary_bytes * 2 <= report.json_bytes,
            "json {} vs binary {}",
            report.json_bytes,
            report.binary_bytes
        );
        handle.stop();
    }

    #[test]
    fn json_frames_parse_back_to_canonical_waveframes() {
        let line = "{\"ok\": true, \"frame\": 1, \"start\": 20, \"count\": 2, \
                    \"times\": [1e-11,2e-11], \"series\": [[1.5e0,-2.25e0],[0e0,3e0]]}";
        let wf = parse_json_frame(line).unwrap();
        assert_eq!(wf.frame, 1);
        assert_eq!(wf.start, 20);
        assert_eq!(wf.times, vec![1e-11, 2e-11]);
        assert_eq!(wf.series, vec![vec![1.5, -2.25], vec![0.0, 3.0]]);
        // Canonical hash matches the binary path's decode of the same
        // content.
        let encoded = wf.encode();
        let (len, _) = WaveFrame::decode_len(&encoded[..8]).unwrap();
        let back = WaveFrame::decode_payload(&encoded[8..8 + len]).unwrap();
        assert_eq!(back.content_hash(), wf.content_hash());
        assert!(parse_json_frame("{\"ok\": true}").is_none());
    }

    #[test]
    fn whatif_burst_hits_fast_path_and_stays_deterministic() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 3,
            threads: Some(3),
            ..EngineOptions::default()
        }));
        let handle = serve(engine.clone(), &ServiceOptions::default()).unwrap();
        // Base job first, then a burst of small cap edits. Each client
        // resolves its base before submitting the variants, so every
        // variant finds a cached base setup to correct against.
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 5),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(3, 1.5),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(7, 2.0),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(11, 2.5),
        ];
        let report = run_load(&LoadSpec::new(handle.addr().to_string(), 3, jobs)).unwrap();
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        assert!(
            report.deterministic,
            "clients saw different bytes: {:x?}",
            report.stream_hashes
        );
        // Every edit variant is corrected once; the repeats across
        // clients are direct setup hits. At least the first client's
        // burst rode the fast path.
        assert!(report.whatif_hits >= 3, "hits {}", report.whatif_hits);
        assert!(report.whatif_rate() > 0.0);
        let stats = engine.stats();
        // Exactly 3 corrections unless clients raced the same edit
        // (both miss, both correct; the duplicate insert is dropped).
        assert!(stats.whatif_hits >= 3);
        assert_eq!(stats.whatif_fallbacks, 0);
        handle.stop();
    }

    #[test]
    fn burst_waves_stay_deterministic_and_slow_readers_finish() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 2,
            threads: Some(2),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 9),
            LoadJob::pdn(6, 6, 8, 3, 9).scaled(1.5),
        ];
        let burst = run_load(
            &LoadSpec::new(handle.addr().to_string(), 3, jobs.clone()).mode(LoadMode::Burst),
        )
        .unwrap();
        assert_eq!(burst.completed, 6, "burst: {burst:?}");
        assert!(burst.deterministic);
        // A slow reader drains the same bytes, just later — it must
        // neither fail (delay ≪ io_timeout) nor diverge.
        let slow = run_load(&LoadSpec::new(handle.addr().to_string(), 2, jobs).mode(
            LoadMode::SlowReader {
                frame_delay: Duration::from_millis(2),
            },
        ))
        .unwrap();
        assert_eq!(slow.completed, 4, "slow: {slow:?}");
        assert!(slow.deterministic);
        handle.stop();
    }

    #[test]
    fn observed_load_run_merges_client_and_server_traces() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 2,
            threads: Some(2),
            obs: matex_obs::Obs::enabled(),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 1),
            LoadJob::pdn(6, 6, 8, 3, 1).scaled(1.25),
        ];
        let client_obs = matex_obs::Obs::enabled();
        let spec = LoadSpec::new(handle.addr().to_string(), 2, jobs).obs(client_obs.clone());
        let report = run_load(&spec).unwrap();
        assert_eq!(report.completed, 4, "{report:?}");
        // Client-side latency histogram: every job observed.
        let (p50, _, p99) = client_obs.quantiles("loadgen_job_seconds");
        assert!(p50 > 0.0 && p99 >= p50);
        // The merged trace carries both sides of the wire: the clients'
        // job spans and the engine's queue/run/solver phases.
        let trace = report.trace_json.as_deref().expect("trace present");
        assert!(
            trace.starts_with("{\"displayTimeUnit\""),
            "{}",
            &trace[..40]
        );
        for site in ["loadgen.job", "engine.run", "solver.expm"] {
            assert!(trace.contains(site), "missing {site} in merged trace");
        }
        handle.stop();
    }

    #[test]
    fn extract_uint_parses_fields() {
        assert_eq!(extract_uint("{\"job\": 42}", "\"job\": "), Some(42));
        assert_eq!(extract_uint("{\"x\": 1}", "\"job\": "), None);
    }

    #[test]
    fn killed_connections_reconnect_resubmit_and_recover_bitwise() {
        use matex_core::{FaultKind, FaultPlan};
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 3,
            threads: Some(3),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 1),
            LoadJob::pdn(6, 6, 8, 3, 1).scaled(1.25),
            LoadJob::pdn(5, 7, 6, 2, 2),
        ];
        // Two stream drains (fleet-wide occurrence indices 1 and 4) get
        // their sockets killed mid-stream. The victims reconnect, redo
        // the handshake, resubmit — and their recovered jobs must vote
        // identically to the clients that never faulted: that vote IS
        // the bitwise-equal-to-fault-free check, observed end to end
        // through the wire.
        let spec = LoadSpec::new(handle.addr().to_string(), 3, jobs)
            .retries(2)
            .faults(FaultHook::new(
                FaultPlan::new()
                    .fail_at("loadgen.conn", 1, FaultKind::Error)
                    .fail_at("loadgen.conn", 4, FaultKind::Error),
            ));
        let report = run_load(&spec).unwrap();
        assert_eq!(report.completed, 9, "{report:?}");
        assert_eq!(report.failed, 0, "{report:?}");
        assert_eq!(report.rejected, 0);
        assert!(report.reconnects >= 2, "{report:?}");
        assert!(
            report.deterministic,
            "recovered waveforms diverged: {:x?}",
            report.stream_hashes
        );
        handle.stop();
    }

    #[test]
    fn rejected_jobs_honor_the_retry_hint_and_eventually_complete() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 1,
            threads: Some(2),
            max_queue: 1,
            retry_after_cap: Duration::from_millis(50),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        // A synchronized wave of 4 against a queue of 1: most of the
        // wave is shed with a back-off hint. Polite clients sleep the
        // hint and resubmit until the queue drains.
        let jobs = vec![LoadJob::pdn(6, 6, 8, 3, 4)];
        let spec = LoadSpec::new(handle.addr().to_string(), 4, jobs)
            .mode(LoadMode::Burst)
            .retries(50);
        let report = run_load(&spec).unwrap();
        assert_eq!(report.completed, 4, "{report:?}");
        assert_eq!(report.failed, 0);
        assert_eq!(report.rejected, 0, "budget was generous: {report:?}");
        assert!(report.retries > 0, "queue pressure never shed: {report:?}");
        assert!(report.deterministic);
        handle.stop();
    }
}
