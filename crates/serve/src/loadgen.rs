//! Load generator for the TCP service.
//!
//! Drives N concurrent clients through identical job sequences and
//! measures what a serving system is judged on: throughput (jobs/s),
//! latency percentiles (p50/p99 of submit→stream-complete), and
//! **determinism** — every client hashes the exact bytes of its
//! streamed waveform frames, and the hashes must agree across clients
//! (the engine's bitwise-replay contract, observed end to end through
//! the wire).

use crate::json::escape;
use crate::ServeError;
use matex_waveform::Fnv64;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// One client-side job template of a load run.
#[derive(Debug, Clone)]
pub struct LoadJob {
    /// Extra `submit` fields (for example
    /// `"pdn_nx": 8, "pdn_ny": 8` or a `"netlist"` — already escaped),
    /// joined into the request object.
    pub submit_fields: String,
    /// Window end (seconds).
    pub t_stop: f64,
    /// Output step (seconds).
    pub dt_out: f64,
    /// Optional uniform source scale.
    pub scale: Option<f64>,
    /// Optional what-if edit: scale one node's ground capacitance
    /// (`cap_row` / `cap_scale` submit fields).
    pub cap: Option<(usize, f64)>,
}

impl LoadJob {
    /// A synthetic-PDN job.
    pub fn pdn(nx: usize, ny: usize, loads: usize, features: usize, seed: u64) -> LoadJob {
        LoadJob {
            submit_fields: format!(
                "\"pdn_nx\": {nx}, \"pdn_ny\": {ny}, \"pdn_loads\": {loads}, \
                 \"pdn_features\": {features}, \"pdn_seed\": {seed}"
            ),
            t_stop: 1e-9,
            dt_out: 2e-11,
            scale: None,
            cap: None,
        }
    }

    /// An inline-netlist job.
    pub fn netlist(text: &str) -> LoadJob {
        LoadJob {
            submit_fields: format!("\"netlist\": \"{}\"", escape(text)),
            t_stop: 1e-9,
            dt_out: 2e-11,
            scale: None,
            cap: None,
        }
    }

    /// Sets the window (builder style).
    pub fn window(mut self, t_stop: f64, dt_out: f64) -> LoadJob {
        self.t_stop = t_stop;
        self.dt_out = dt_out;
        self
    }

    /// Sets the source scale (builder style).
    pub fn scaled(mut self, k: f64) -> LoadJob {
        self.scale = Some(k);
        self
    }

    /// Sets a what-if cap edit (builder style).
    pub fn cap_scaled(mut self, row: usize, factor: f64) -> LoadJob {
        self.cap = Some((row, factor));
        self
    }

    fn submit_line(&self) -> String {
        let mut line = format!(
            "{{\"cmd\": \"submit\", {}, \"t_stop\": {:e}, \"dt_out\": {:e}",
            self.submit_fields, self.t_stop, self.dt_out
        );
        if let Some(k) = self.scale {
            line.push_str(&format!(", \"scale\": {k:e}"));
        }
        if let Some((row, factor)) = self.cap {
            line.push_str(&format!(", \"cap_row\": {row}, \"cap_scale\": {factor:e}"));
        }
        line.push('}');
        line
    }
}

/// A load-generation request: `clients` concurrent connections each
/// running the whole `jobs` sequence, in order.
#[derive(Debug, Clone)]
pub struct LoadSpec {
    /// Service address (`host:port`).
    pub addr: String,
    /// Concurrent client connections.
    pub clients: usize,
    /// The job sequence every client runs.
    pub jobs: Vec<LoadJob>,
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Jobs completed successfully (across all clients).
    pub completed: usize,
    /// Jobs that failed.
    pub failed: usize,
    /// Wall time of the whole run.
    pub wall: Duration,
    /// Throughput over the whole run.
    pub jobs_per_s: f64,
    /// Median submit→stream-complete latency.
    pub p50: Duration,
    /// 99th-percentile latency (max for small samples).
    pub p99: Duration,
    /// Per-client hash over all streamed frame bytes, in client order.
    pub stream_hashes: Vec<u64>,
    /// `true` when every client saw byte-identical streams.
    pub deterministic: bool,
    /// Jobs whose setup was served by the what-if fast path (from the
    /// per-job `wait` status lines).
    pub whatif_hits: usize,
}

impl LoadReport {
    /// Fraction of completed jobs served by the what-if fast path.
    pub fn whatif_rate(&self) -> f64 {
        self.whatif_hits as f64 / self.completed.max(1) as f64
    }
}

/// Runs the load: spawns the clients, drives the sequences, aggregates.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when a client cannot connect; per-job
/// failures are counted, not fatal.
pub fn run_load(spec: &LoadSpec) -> Result<LoadReport, ServeError> {
    let t0 = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..spec.clients.max(1) {
        let addr = spec.addr.clone();
        let jobs = spec.jobs.clone();
        handles.push(std::thread::spawn(move || client_run(&addr, &jobs)));
    }
    let mut latencies: Vec<Duration> = Vec::new();
    let mut stream_hashes = Vec::new();
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut whatif_hits = 0usize;
    for h in handles {
        let outcome = h
            .join()
            .map_err(|_| ServeError::Io("load client panicked".into()))??;
        completed += outcome.completed;
        failed += outcome.failed;
        whatif_hits += outcome.whatif_hits;
        latencies.extend(outcome.latencies);
        stream_hashes.push(outcome.stream_hash);
    }
    let wall = t0.elapsed();
    latencies.sort();
    let pick = |q: f64| {
        if latencies.is_empty() {
            Duration::ZERO
        } else {
            let idx = ((latencies.len() as f64 - 1.0) * q).round() as usize;
            latencies[idx]
        }
    };
    let deterministic = stream_hashes.windows(2).all(|w| w[0] == w[1]);
    Ok(LoadReport {
        completed,
        failed,
        jobs_per_s: completed as f64 / wall.as_secs_f64().max(1e-9),
        wall,
        p50: pick(0.5),
        p99: pick(0.99),
        stream_hashes,
        deterministic,
        whatif_hits,
    })
}

struct ClientOutcome {
    completed: usize,
    failed: usize,
    latencies: Vec<Duration>,
    stream_hash: u64,
    whatif_hits: usize,
}

fn client_run(addr: &str, jobs: &[LoadJob]) -> Result<ClientOutcome, ServeError> {
    let stream = TcpStream::connect(addr)?;
    let mut writer = BufWriter::new(stream.try_clone()?);
    let mut reader = BufReader::new(stream);
    let mut hash = Fnv64::new();
    let mut latencies = Vec::with_capacity(jobs.len());
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut whatif_hits = 0usize;
    let read_line = |reader: &mut BufReader<TcpStream>| -> Result<String, ServeError> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(ServeError::Io("server closed the connection".into()));
        }
        Ok(line.trim_end().to_string())
    };
    for job in jobs {
        let t0 = Instant::now();
        writeln!(writer, "{}", job.submit_line())?;
        writer.flush()?;
        let submitted = read_line(&mut reader)?;
        let Some(id) = extract_uint(&submitted, "\"job\": ") else {
            failed += 1;
            continue;
        };
        // Resolve through `wait` first: its status line reports whether
        // the setup came off the what-if fast path. (Status lines are
        // not part of the determinism hash — they carry wall times.)
        writeln!(writer, "{{\"cmd\": \"wait\", \"job\": {id}}}")?;
        writer.flush()?;
        let status = read_line(&mut reader)?;
        if status.contains("\"whatif\": true") {
            whatif_hits += 1;
        }
        writeln!(writer, "{{\"cmd\": \"stream\", \"job\": {id}}}")?;
        writer.flush()?;
        let meta = read_line(&mut reader)?;
        let Some(frames) = extract_uint(&meta, "\"frames\": ") else {
            failed += 1;
            continue;
        };
        let mut ok = true;
        for _ in 0..frames {
            let frame = read_line(&mut reader)?;
            ok &= frame.contains("\"ok\": true");
            // Hash the exact frame bytes: the determinism witness.
            hash.write_bytes(frame.as_bytes());
        }
        if ok {
            completed += 1;
            latencies.push(t0.elapsed());
        } else {
            failed += 1;
        }
    }
    Ok(ClientOutcome {
        completed,
        failed,
        latencies,
        stream_hash: hash.finish(),
        whatif_hits,
    })
}

/// Pulls the unsigned integer following `pat` out of a response line.
fn extract_uint(line: &str, pat: &str) -> Option<u64> {
    let at = line.find(pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{serve, EngineOptions, ScenarioEngine, ServiceOptions};
    use std::sync::Arc;

    #[test]
    fn four_clients_are_deterministic() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 4,
            threads: Some(4),
            ..EngineOptions::default()
        }));
        let handle = serve(engine, &ServiceOptions::default()).unwrap();
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 1),
            LoadJob::pdn(6, 6, 8, 3, 1).scaled(1.25),
            LoadJob::pdn(5, 7, 6, 2, 2),
        ];
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            clients: 4,
            jobs,
        })
        .unwrap();
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        assert_eq!(report.stream_hashes.len(), 4);
        assert!(
            report.deterministic,
            "clients saw different bytes: {:x?}",
            report.stream_hashes
        );
        assert!(report.p99 >= report.p50);
        assert!(report.jobs_per_s > 0.0);
        handle.stop();
    }

    #[test]
    fn whatif_burst_hits_fast_path_and_stays_deterministic() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 3,
            threads: Some(3),
            ..EngineOptions::default()
        }));
        let handle = serve(engine.clone(), &ServiceOptions::default()).unwrap();
        // Base job first, then a burst of small cap edits. Each client
        // resolves its base before submitting the variants, so every
        // variant finds a cached base setup to correct against.
        let jobs = vec![
            LoadJob::pdn(6, 6, 8, 3, 5),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(3, 1.5),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(7, 2.0),
            LoadJob::pdn(6, 6, 8, 3, 5).cap_scaled(11, 2.5),
        ];
        let report = run_load(&LoadSpec {
            addr: handle.addr().to_string(),
            clients: 3,
            jobs,
        })
        .unwrap();
        assert_eq!(report.completed, 12);
        assert_eq!(report.failed, 0);
        assert!(
            report.deterministic,
            "clients saw different bytes: {:x?}",
            report.stream_hashes
        );
        // Every edit variant is corrected once; the repeats across
        // clients are direct setup hits. At least the first client's
        // burst rode the fast path.
        assert!(report.whatif_hits >= 3, "hits {}", report.whatif_hits);
        assert!(report.whatif_rate() > 0.0);
        let stats = engine.stats();
        // Exactly 3 corrections unless clients raced the same edit
        // (both miss, both correct; the duplicate insert is dropped).
        assert!(stats.whatif_hits >= 3);
        assert_eq!(stats.whatif_fallbacks, 0);
        handle.stop();
    }

    #[test]
    fn extract_uint_parses_fields() {
        assert_eq!(extract_uint("{\"job\": 42}", "\"job\": "), Some(42));
        assert_eq!(extract_uint("{\"x\": 1}", "\"job\": "), None);
    }
}
