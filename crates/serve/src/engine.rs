//! The scenario engine: cached, admission-controlled job execution.

use crate::cache::{gamma_decade, ArtifactCache, CacheSizes, DcKey, PlanKey, SetupKey};
use crate::job::{CacheReport, ExecutionMode, Hit, HitPath, JobId, JobOutcome, JobSpec, JobStatus};
use crate::ServeError;
use matex_circuit::MnaSystem;
use matex_core::{
    CancelToken, FaultHook, KrylovKind, MatexOptions, MatexSetup, MatexSolver, MatexSymbolic,
    SmwOptions, TransientEngine,
};
use matex_dist::{list_schedule_makespan, plan_groups, run_distributed, DistributedOptions};
use matex_par::{AdmitError, AdmitRequest, ParOptions, ParPool, ThreadBudget};
use matex_store::{ArtifactStore, DcStoreKey, PlanStoreKey, SetupStoreKey, SymbolicStoreKey};
use matex_waveform::GroupingStrategy;
use matex_waveform::SpotSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ScenarioEngine`].
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Total thread budget shared by all concurrently running jobs
    /// (admission control never oversubscribes it). `None` uses
    /// [`std::thread::available_parallelism`].
    pub threads: Option<usize>,
    /// Executor threads draining the job queue (the maximum number of
    /// jobs *attempting* admission at once).
    pub executors: usize,
    /// Kernel threads per monolithic job / total intra-node budget per
    /// distributed job. `0` (default) runs the legacy serial kernels —
    /// the reference point for bitwise comparisons against standalone
    /// runs.
    pub kernel_threads: usize,
    /// Default worker count for distributed jobs that leave `workers`
    /// unset.
    pub dist_workers: usize,
    /// Maximum distinct circuit structures kept in the artifact cache
    /// (whole-circuit LRU eviction beyond this).
    pub max_circuits: usize,
    /// Resolved job outcomes retained for polling/streaming. Beyond
    /// this, the oldest resolved job's outcome (its full waveform) is
    /// dropped and its status becomes [`JobStatus::Expired`], so a
    /// long-running service's memory is bounded by recent traffic.
    pub max_retained: usize,
    /// How many γ decades away a symbolic anchor may be reused
    /// (`0` = exact decade only).
    pub anchor_span: i32,
    /// Maximum touched-row rank a value edit may have to be served by
    /// the what-if fast path (Sherman–Morrison–Woodbury correction of a
    /// cached base factorization). `0` disables the fast path.
    pub whatif_max_rank: usize,
    /// Fully-prepared systems retained per pattern as what-if base
    /// candidates. `0` disables the fast path.
    pub whatif_bases: usize,
    /// Maximum jobs waiting in the engine queue. Beyond this,
    /// [`ScenarioEngine::submit`] rejects immediately with
    /// [`ServeError::Rejected`] and a `retry_after` hint instead of
    /// queueing without bound — the overload-safety valve: admitted
    /// jobs' latency stays bounded by `max_queue` service times, and
    /// excess offered load is shed at the door.
    pub max_queue: usize,
    /// Disk-backed artifact store shared by the fleet. When set, every
    /// in-memory cache miss consults the store before computing, and
    /// every computed artifact is written back — so a restarted (or
    /// newly joined) engine pointed at the same directory hydrates its
    /// cache from disk and skips the cold path, bitwise. `None`
    /// (default) keeps the engine purely in-memory.
    pub store: Option<Arc<ArtifactStore>>,
    /// Compute-failure retry budget: a job whose execution fails or
    /// panics is retried (after quarantining the cached artifacts it
    /// ran against and sleeping `retry_backoff`) up to this many times
    /// before the failure surfaces. Cancellations and missed deadlines
    /// are never retried. Default 1.
    pub max_compute_retries: usize,
    /// Base backoff slept before each compute retry (doubled per
    /// attempt).
    pub retry_backoff: Duration,
    /// Per-node retry budget forwarded to distributed runs (see
    /// [`matex_dist::DistributedOptions::max_node_retries`]).
    pub max_node_retries: usize,
    /// Ceiling on every `retry_after` hint the engine emits (rejections
    /// and drain estimates). A miscalibrated cost model can otherwise
    /// tell clients to back off for minutes. Default 60 s.
    pub retry_after_cap: Duration,
    /// Fault-injection hook threaded into every job's solver options,
    /// distributed runs, and (via [`matex_store::StoreOptions`]) the
    /// artifact store the caller opens. Disarmed by default.
    pub faults: FaultHook,
    /// Observability handle threaded into every job's solver options
    /// and distributed runs, plus the engine's own queue-wait / run
    /// spans (hit-path labeled), admission counters, and latency
    /// histograms. Disabled by default: one branch per event, and job
    /// waveforms are bitwise-unchanged either way.
    pub obs: matex_obs::Obs,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            threads: None,
            executors: 2,
            kernel_threads: 0,
            dist_workers: 2,
            max_circuits: 32,
            max_retained: 1024,
            anchor_span: 1,
            whatif_max_rank: 16,
            whatif_bases: 4,
            max_queue: 256,
            store: None,
            max_compute_retries: 1,
            retry_backoff: Duration::from_millis(10),
            max_node_retries: 1,
            retry_after_cap: Duration::from_secs(60),
            faults: FaultHook::default(),
            obs: matex_obs::Obs::disabled(),
        }
    }
}

/// Monotonic counters of engine activity (a snapshot; see
/// [`ScenarioEngine::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Jobs accepted by [`ScenarioEngine::submit`] or run synchronously.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs that failed.
    pub failed: u64,
    /// Jobs that hit the full numeric-setup cache (skipped all
    /// factorization).
    pub warm_jobs: u64,
    /// Symbolic-analysis cache hits (exact or neighbouring anchor).
    pub symbolic_hits: u64,
    /// Symbolic analyses performed (cache misses + replanted anchors).
    pub symbolic_misses: u64,
    /// Numeric-setup cache hits.
    pub setup_hits: u64,
    /// Numeric setups prepared.
    pub setup_misses: u64,
    /// DC-solution cache hits.
    pub dc_hits: u64,
    /// Group-plan cache hits.
    pub plan_hits: u64,
    /// Jobs served by the what-if fast path (low-rank correction of a
    /// cached base setup instead of refactoring).
    pub whatif_hits: u64,
    /// Cumulative touched-row rank across what-if hits (average edit
    /// rank = `whatif_rank / whatif_hits`).
    pub whatif_rank: u64,
    /// What-if candidates that fell back to a full preparation (edit
    /// rank above the cap, or an ill-conditioned capture matrix).
    pub whatif_fallbacks: u64,
    /// Fresh symbolic anchors replanted after a cached anchor's pivots
    /// stopped surviving replay.
    pub anchor_plants: u64,
    /// Jobs refused at submit time (queue full or deadline provably
    /// unmeetable).
    pub rejected: u64,
    /// Jobs cancelled (queued or running).
    pub cancelled: u64,
    /// Deadlines missed: jobs dropped unstarted past their deadline,
    /// jobs that gave up waiting for threads, and jobs that completed
    /// late.
    pub deadline_misses: u64,
    /// Jobs currently waiting in the engine queue (a gauge, not a
    /// counter).
    pub queue_depth: u64,
    /// Whole-circuit LRU evictions from the artifact cache.
    pub evictions: u64,
    /// Artifacts hydrated from the disk-backed store (cache misses
    /// served without recomputation).
    pub store_hits: u64,
    /// Artifacts persisted to the disk-backed store.
    pub store_writes: u64,
    /// Store I/O failures absorbed by computing through (never
    /// surfaced to jobs).
    pub store_errors: u64,
    /// Job panics contained by the engine's supervision (executor- or
    /// compute-level), payload message preserved in the job error.
    pub panics: u64,
    /// Compute retries performed after a failed or panicked execution.
    pub retries: u64,
    /// Cached artifacts quarantined (evicted for recompute) after the
    /// execution they served failed.
    pub quarantined: u64,
    /// Artifact counts currently cached.
    pub cache: CacheSizes,
}

impl EngineStats {
    /// Fraction of resolved jobs that ran on the warm path.
    pub fn warm_rate(&self) -> f64 {
        let done = self.completed.max(1);
        self.warm_jobs as f64 / done as f64
    }
}

#[derive(Debug, Default)]
struct Counters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    warm_jobs: AtomicU64,
    symbolic_hits: AtomicU64,
    symbolic_misses: AtomicU64,
    setup_hits: AtomicU64,
    setup_misses: AtomicU64,
    dc_hits: AtomicU64,
    plan_hits: AtomicU64,
    whatif_hits: AtomicU64,
    whatif_rank: AtomicU64,
    whatif_fallbacks: AtomicU64,
    anchor_plants: AtomicU64,
    rejected: AtomicU64,
    cancelled: AtomicU64,
    deadline_misses: AtomicU64,
    store_hits: AtomicU64,
    store_writes: AtomicU64,
    panics: AtomicU64,
    retries: AtomicU64,
    quarantined: AtomicU64,
    /// Calibration: completed-job predicted units (scaled ×1024) and
    /// measured execution nanoseconds, so admission converts LTS-count
    /// cost estimates into seconds using observed service times.
    calib_units: AtomicU64,
    calib_nanos: AtomicU64,
}

struct JobRecord {
    spec: JobSpec,
    status: JobStatus,
    submitted_at: Instant,
    /// Absolute deadline (submission time + the spec's relative one).
    deadline_at: Option<Instant>,
    /// Predicted service cost in LTS units (the `GroupPlan` makespan
    /// proxy), fixed at submission.
    units: f64,
    /// Cooperative cancel token observed by the running solver.
    cancel: CancelToken,
}

impl JobRecord {
    /// Queue rank: strict priority class, then EDF (deadline-less jobs
    /// rank infinitely late and fall back to FIFO among themselves).
    fn rank(&self, id: JobId) -> (u8, u8, Instant, JobId) {
        match self.deadline_at {
            Some(d) => (self.spec.priority.class(), 0, d, id),
            None => (self.spec.priority.class(), 1, self.submitted_at, id),
        }
    }
}

#[derive(Default)]
struct JobTable {
    records: Vec<JobRecord>,
    queue: VecDeque<JobId>,
    /// Resolved job ids in completion order, for outcome retention.
    resolved: VecDeque<JobId>,
}

struct Inner {
    opts: EngineOptions,
    cache: ArtifactCache,
    budget: ThreadBudget,
    table: Mutex<JobTable>,
    queue_cv: Condvar,
    done_cv: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    /// Idle kernel pools (each `kernel_threads` wide), reused across
    /// monolithic jobs so the warm fast path never pays thread spawn.
    idle_pools: Mutex<Vec<Arc<ParPool>>>,
}

/// The scenario engine: accepts [`JobSpec`]s, amortizes per-circuit
/// analysis through a structure-fingerprint cache, and multiplexes
/// concurrent jobs over a fixed thread budget.
///
/// # Example
///
/// ```
/// use matex_circuit::PdnBuilder;
/// use matex_core::TransientSpec;
/// use matex_serve::{EngineOptions, JobSpec, ScenarioEngine};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let engine = ScenarioEngine::new(EngineOptions::default());
/// let grid = Arc::new(PdnBuilder::new(6, 6).num_loads(8).window(1e-9).build()?);
/// let spec = TransientSpec::new(0.0, 1e-9, 2e-11)?;
/// let cold = engine.run(&JobSpec::new(grid.clone(), spec.clone()))?;
/// let warm = engine.run(&JobSpec::new(grid, spec))?;
/// assert!(!cold.cache.is_warm() && warm.cache.is_warm());
/// // Cache hits replay the identical factors: waveforms are bitwise equal.
/// assert_eq!(cold.result.series(), warm.result.series());
/// # Ok(())
/// # }
/// ```
pub struct ScenarioEngine {
    inner: Arc<Inner>,
    executors: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ScenarioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEngine")
            .field("opts", &self.inner.opts)
            .field("executors", &self.executors.len())
            .finish()
    }
}

impl ScenarioEngine {
    /// Starts an engine with `opts.executors` queue-draining threads.
    pub fn new(opts: EngineOptions) -> ScenarioEngine {
        let threads = opts.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        let inner = Arc::new(Inner {
            cache: ArtifactCache::new(opts.max_circuits),
            budget: ThreadBudget::new(threads),
            table: Mutex::new(JobTable::default()),
            queue_cv: Condvar::new(),
            done_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            idle_pools: Mutex::new(Vec::new()),
            opts,
        });
        let executors = (0..inner.opts.executors.max(1))
            .map(|k| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("matex-serve-exec-{k}"))
                    .spawn(move || executor_loop(&inner))
                    .expect("spawn engine executor")
            })
            .collect();
        ScenarioEngine { inner, executors }
    }

    /// The configured options.
    pub fn options(&self) -> &EngineOptions {
        &self.inner.opts
    }

    /// Queues a job; returns its id immediately. Queued jobs run in
    /// strict priority order, EDF within a class (see
    /// [`JobSpec::priority`] / [`JobSpec::deadline`]); the order never
    /// changes any admitted job's waveform, only when it runs.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::ShuttingDown`] after the engine began
    /// shutting down, or [`ServeError::Rejected`] — with a
    /// `retry_after` hint computed from the queued predicted cost —
    /// when the queue is at `max_queue` or the job's deadline is
    /// already unmeetable under the calibrated cost estimates.
    pub fn submit(&self, spec: JobSpec) -> Result<JobId, ServeError> {
        if self.inner.shutdown.load(Ordering::Acquire) {
            return Err(ServeError::ShuttingDown);
        }
        let now = Instant::now();
        let units = self.inner.predicted_units(&spec);
        let deadline_at = spec.deadline.map(|d| now + d);
        let mut table = self.inner.lock_table();
        if table.queue.len() >= self.inner.opts.max_queue {
            let retry_after = self.inner.drain_estimate(&table);
            drop(table);
            self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
            self.inner.opts.obs.add_labeled(
                "engine_rejected_total",
                &[("reason", "queue_full")],
                1,
            );
            return Err(ServeError::Rejected {
                reason: format!("queue full ({} jobs)", self.inner.opts.max_queue),
                retry_after,
            });
        }
        let id = table.records.len() as JobId;
        // Deadline triage: predicted completion = everything queued at
        // or ahead of this job's rank (drained by `executors` threads in
        // parallel) plus its own service time, converted to seconds via
        // the calibrated per-unit cost. A deadline the estimate already
        // rules out is refused now — cheaper for everyone than queueing
        // a job that will be dropped at its deadline later.
        if let (Some(d), unit_secs) = (spec.deadline, self.inner.unit_secs()) {
            let probe = JobRecord {
                spec: spec.clone(),
                status: JobStatus::Queued,
                submitted_at: now,
                deadline_at,
                units,
                cancel: CancelToken::new(),
            };
            let my_rank = probe.rank(id);
            let ahead: f64 = table
                .queue
                .iter()
                .map(|&q| &table.records[q as usize])
                .filter(|r| {
                    // Rank against the queued job's own id (any id <
                    // ours preserves its ordering vs our probe rank).
                    r.rank(0) <= my_rank
                })
                .map(|r| r.units)
                .sum();
            let executors = self.inner.opts.executors.max(1) as f64;
            let eta = (ahead / executors + units) * unit_secs;
            if eta > d.as_secs_f64() {
                let retry_after = self.inner.drain_estimate(&table);
                drop(table);
                self.inner.counters.rejected.fetch_add(1, Ordering::Relaxed);
                self.inner.opts.obs.add_labeled(
                    "engine_rejected_total",
                    &[("reason", "deadline")],
                    1,
                );
                return Err(ServeError::Rejected {
                    reason: format!(
                        "deadline unmeetable (predicted {:.1}ms > deadline {:.1}ms)",
                        eta * 1e3,
                        d.as_secs_f64() * 1e3
                    ),
                    retry_after,
                });
            }
        }
        table.records.push(JobRecord {
            spec,
            status: JobStatus::Queued,
            submitted_at: now,
            deadline_at,
            units,
            cancel: CancelToken::new(),
        });
        table.queue.push_back(id);
        let depth = table.queue.len();
        drop(table);
        self.inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        if self.inner.opts.obs.is_enabled() {
            self.inner.opts.obs.add("engine_submitted_total", 1);
            self.inner
                .opts
                .obs
                .gauge("engine_queue_depth", depth as i64);
        }
        self.inner.queue_cv.notify_one();
        Ok(id)
    }

    /// Cancels a job. A queued job is removed from the queue and
    /// resolves to [`JobStatus::Cancelled`] immediately; a running job
    /// has its cooperative token tripped and resolves to `Cancelled` at
    /// the solver's next transient-step (or distributed node) boundary,
    /// returning its thread lease with it. Jobs already resolved are
    /// left untouched.
    ///
    /// Returns the job's status as observed *after* the cancellation
    /// attempt, or `None` for an unknown id. Cancelling never perturbs
    /// other jobs' results or the artifact cache.
    pub fn cancel(&self, id: JobId) -> Option<JobStatus> {
        let mut table = self.inner.lock_table();
        let status = table.records.get(id as usize)?.status.clone();
        match status {
            JobStatus::Queued => {
                table.queue.retain(|&q| q != id);
                let rec = &mut table.records[id as usize];
                rec.status = JobStatus::Cancelled;
                // Trip the token too: an executor that popped the id
                // concurrently must not start the solve.
                rec.cancel.cancel();
                drop(table);
                self.inner
                    .counters
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                self.inner
                    .opts
                    .obs
                    .add_labeled("engine_cancelled_total", &[("at", "queued")], 1);
                self.inner.done_cv.notify_all();
                Some(JobStatus::Cancelled)
            }
            JobStatus::Running => {
                table.records[id as usize].cancel.cancel();
                Some(JobStatus::Running)
            }
            other => Some(other),
        }
    }

    /// The job's current status, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let table = self.inner.lock_table();
        table.records.get(id as usize).map(|r| r.status.clone())
    }

    /// Blocks until the job finishes; returns its outcome.
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownJob`] for an unsubmitted id, or the job's
    /// own failure as [`ServeError::InvalidJob`] text.
    pub fn wait(&self, id: JobId) -> Result<Arc<JobOutcome>, ServeError> {
        let mut table = self.inner.lock_table();
        loop {
            match table.records.get(id as usize) {
                None => return Err(ServeError::UnknownJob(id)),
                Some(r) => match &r.status {
                    JobStatus::Done(out) => return Ok(out.clone()),
                    JobStatus::Failed(msg) => return Err(ServeError::InvalidJob(msg.clone())),
                    JobStatus::Cancelled => return Err(ServeError::Cancelled(id)),
                    JobStatus::Expired => {
                        return Err(ServeError::InvalidJob(format!(
                            "job {id} resolved but its outcome expired (retention limit)"
                        )))
                    }
                    _ => {
                        table = self
                            .inner
                            .done_cv
                            .wait(table)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                },
            }
        }
    }

    /// Runs a job synchronously on the calling thread, still under
    /// admission control and against the shared cache. This is the
    /// engine's core execution path — the queued path calls it too.
    ///
    /// # Errors
    ///
    /// Propagates circuit/solver/distributed failures.
    pub fn run(&self, spec: &JobSpec) -> Result<JobOutcome, ServeError> {
        let seq = self
            .inner
            .counters
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        let out = self.inner.admit_and_execute(spec, seq);
        self.inner.note_result(&out);
        out
    }

    /// A consistent snapshot of the engine's counters and cache sizes.
    ///
    /// Every field is an independent atomic, so a single read pass can
    /// observe a torn state mid-flight (e.g. a job counted in
    /// `completed` but not yet in `warm_jobs`). This method re-reads
    /// until two consecutive passes agree (bounded retries), so the
    /// returned struct is a state the engine actually passed through —
    /// the one snapshot path shared by the TCP `stats`/`metrics` verbs
    /// and the tests.
    pub fn stats(&self) -> EngineStats {
        self.inner.stats_snapshot()
    }

    /// The engine's observability handle ([`EngineOptions::obs`]) — the
    /// TCP service exports its Prometheus page and Chrome trace, and
    /// embedders can read quantiles directly. Disabled by default.
    pub fn obs(&self) -> &matex_obs::Obs {
        &self.inner.opts.obs
    }
}

impl Drop for ScenarioEngine {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.queue_cv.notify_all();
        for h in self.executors.drain(..) {
            let _ = h.join();
        }
    }
}

fn executor_loop(inner: &Inner) {
    loop {
        let (id, spec, submitted_at, deadline_at, units, cancel) = {
            let mut table = inner.lock_table();
            loop {
                // Pop the best-ranked queued job: strict priority class
                // first, EDF within a class, FIFO among deadline-less
                // peers. The queue is bounded (`max_queue`), so the
                // linear scan stays cheap.
                let best = table
                    .queue
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &q)| table.records[q as usize].rank(q))
                    .map(|(pos, _)| pos);
                if let Some(pos) = best {
                    let id = table.queue.remove(pos).expect("position just observed");
                    let rec = &mut table.records[id as usize];
                    rec.status = JobStatus::Running;
                    break (
                        id,
                        rec.spec.clone(),
                        rec.submitted_at,
                        rec.deadline_at,
                        rec.units,
                        rec.cancel.clone(),
                    );
                }
                if inner.shutdown.load(Ordering::Acquire) {
                    return;
                }
                table = inner
                    .queue_cv
                    .wait(table)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        let queue_wait = submitted_at.elapsed();
        if inner.opts.obs.is_enabled() {
            inner
                .opts
                .obs
                .record_span("engine.queue_wait", id, submitted_at, queue_wait, &[]);
            inner
                .opts
                .obs
                .observe("engine_queue_wait_seconds", queue_wait);
        }
        // A job already past its deadline is dropped unstarted: running
        // it would burn capacity on an answer nobody is waiting for.
        let dead_on_arrival = deadline_at.is_some_and(|d| Instant::now() >= d);
        let exec_started = Instant::now();
        // Panic isolation: a job that panics must resolve to Failed —
        // never leave its record stuck in Running (wedging every waiter)
        // or kill this executor thread. The budget lease is RAII, so it
        // is returned during the unwind.
        let outcome = if dead_on_arrival {
            Err(ServeError::DeadlineMissed(
                "deadline passed while queued".into(),
            ))
        } else if cancel.is_cancelled() {
            Err(ServeError::Cancelled(id))
        } else {
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                inner.admit_and_execute_cancellable(&spec, deadline_at, Some(&cancel), id)
            })) {
                Ok(out) => out,
                Err(payload) => {
                    // Panics escaping the compute retry loop (admission,
                    // bookkeeping): still contained, payload preserved.
                    inner.counters.panics.fetch_add(1, Ordering::Relaxed);
                    let msg = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    Err(ServeError::InvalidJob(format!("job panicked: {msg}")))
                }
            }
        };
        // Accounting: cancellations are neither completions nor
        // failures; deadline givenups count as misses; completed jobs
        // calibrate the admission cost model and count as late when they
        // resolve past their deadline.
        match &outcome {
            Ok(_) => {
                if let Some(d) = deadline_at {
                    if Instant::now() > d {
                        inner
                            .counters
                            .deadline_misses
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
                inner.calibrate(units, exec_started.elapsed());
                inner.note_result(&outcome);
            }
            Err(e) if e.is_cancelled() => {
                inner.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                inner
                    .opts
                    .obs
                    .add_labeled("engine_cancelled_total", &[("at", "running")], 1);
            }
            Err(ServeError::DeadlineMissed(_)) => {
                inner
                    .counters
                    .deadline_misses
                    .fetch_add(1, Ordering::Relaxed);
                inner.counters.failed.fetch_add(1, Ordering::Relaxed);
                inner
                    .opts
                    .obs
                    .add_labeled("engine_deadline_misses_total", &[("at", "queued")], 1);
            }
            Err(_) => inner.note_result(&outcome),
        }
        let mut table = inner.lock_table();
        table.records[id as usize].status = match outcome {
            Ok(mut out) => {
                out.queue_wait = queue_wait;
                JobStatus::Done(Arc::new(out))
            }
            Err(e) if e.is_cancelled() => JobStatus::Cancelled,
            Err(e) => JobStatus::Failed(e.to_string()),
        };
        // Outcome retention: a long-running service must not accumulate
        // every waveform it ever computed. Beyond the limit, the oldest
        // resolved job keeps its id but drops its payload.
        table.resolved.push_back(id);
        while table.resolved.len() > inner.opts.max_retained.max(1) {
            if let Some(old) = table.resolved.pop_front() {
                table.records[old as usize].status = JobStatus::Expired;
            }
        }
        drop(table);
        inner.done_cv.notify_all();
    }
}

impl Inner {
    fn lock_table(&self) -> std::sync::MutexGuard<'_, JobTable> {
        self.table.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// One full read pass over every counter (torn when racing).
    fn read_stats(&self) -> EngineStats {
        let c = &self.counters;
        EngineStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            completed: c.completed.load(Ordering::Relaxed),
            failed: c.failed.load(Ordering::Relaxed),
            warm_jobs: c.warm_jobs.load(Ordering::Relaxed),
            symbolic_hits: c.symbolic_hits.load(Ordering::Relaxed),
            symbolic_misses: c.symbolic_misses.load(Ordering::Relaxed),
            setup_hits: c.setup_hits.load(Ordering::Relaxed),
            setup_misses: c.setup_misses.load(Ordering::Relaxed),
            dc_hits: c.dc_hits.load(Ordering::Relaxed),
            plan_hits: c.plan_hits.load(Ordering::Relaxed),
            whatif_hits: c.whatif_hits.load(Ordering::Relaxed),
            whatif_rank: c.whatif_rank.load(Ordering::Relaxed),
            whatif_fallbacks: c.whatif_fallbacks.load(Ordering::Relaxed),
            anchor_plants: c.anchor_plants.load(Ordering::Relaxed),
            rejected: c.rejected.load(Ordering::Relaxed),
            cancelled: c.cancelled.load(Ordering::Relaxed),
            deadline_misses: c.deadline_misses.load(Ordering::Relaxed),
            queue_depth: self.lock_table().queue.len() as u64,
            evictions: self.cache.evictions(),
            store_hits: c.store_hits.load(Ordering::Relaxed),
            store_writes: c.store_writes.load(Ordering::Relaxed),
            store_errors: self.opts.store.as_ref().map_or(0, |s| s.io_errors()),
            panics: c.panics.load(Ordering::Relaxed),
            retries: c.retries.load(Ordering::Relaxed),
            quarantined: c.quarantined.load(Ordering::Relaxed),
            cache: self.cache.sizes(),
        }
    }

    /// Double-read-until-stable snapshot: two identical consecutive
    /// passes prove no counter moved mid-read, so the snapshot is
    /// internally consistent. Under sustained churn the retry budget
    /// runs out and the last pass is returned (best effort — identical
    /// to the historical single-pass behaviour).
    fn stats_snapshot(&self) -> EngineStats {
        let mut prev = self.read_stats();
        for _ in 0..8 {
            let cur = self.read_stats();
            if cur == prev {
                return cur;
            }
            prev = cur;
        }
        prev
    }

    fn note_result(&self, out: &Result<JobOutcome, ServeError>) {
        match out {
            Ok(o) => {
                self.counters.completed.fetch_add(1, Ordering::Relaxed);
                if o.cache.is_warm() {
                    self.counters.warm_jobs.fetch_add(1, Ordering::Relaxed);
                }
                self.opts.obs.add("engine_completed_total", 1);
            }
            Err(_) => {
                self.counters.failed.fetch_add(1, Ordering::Relaxed);
                self.opts.obs.add("engine_failed_total", 1);
            }
        }
    }

    /// Threads the job will occupy while running.
    fn demand(&self, spec: &JobSpec) -> usize {
        match &spec.mode {
            ExecutionMode::Monolithic => self.opts.kernel_threads.max(1),
            ExecutionMode::Distributed { workers, .. } => {
                let w = workers.unwrap_or(self.opts.dist_workers).max(1);
                // Each worker owns max(1, kernel/workers) kernel threads.
                w * (self.opts.kernel_threads / w).max(1)
            }
        }
    }

    fn admit_and_execute(&self, spec: &JobSpec, job_id: u64) -> Result<JobOutcome, ServeError> {
        let deadline_at = spec.deadline.map(|d| Instant::now() + d);
        self.admit_and_execute_cancellable(spec, deadline_at, None, job_id)
    }

    fn admit_and_execute_cancellable(
        &self,
        spec: &JobSpec,
        deadline_at: Option<Instant>,
        cancel: Option<&CancelToken>,
        job_id: u64,
    ) -> Result<JobOutcome, ServeError> {
        let t0 = Instant::now();
        // Thread admission inherits the job's class and deadline: a
        // high-priority job outranks queued normal acquirers, and a job
        // whose deadline passes while waiting for threads gives up
        // instead of running uselessly late.
        let mut req = AdmitRequest::new(self.demand(spec)).priority(spec.priority);
        if let Some(d) = deadline_at {
            req = req.deadline(d);
        }
        let lease = match self.budget.acquire_admit(req) {
            Ok(l) => l,
            Err(AdmitError::DeadlineExpired) => {
                self.opts.obs.add_labeled(
                    "engine_deadline_misses_total",
                    &[("at", "admission")],
                    1,
                );
                return Err(ServeError::DeadlineMissed(
                    "deadline passed while waiting for threads".into(),
                ));
            }
            Err(e) => {
                self.opts
                    .obs
                    .add_labeled("engine_rejected_total", &[("reason", "admission")], 1);
                return Err(ServeError::Rejected {
                    reason: e.to_string(),
                    retry_after: Duration::from_millis((self.unit_secs() * 1e3).clamp(
                        1.0,
                        (self.opts.retry_after_cap.as_secs_f64() * 1e3).max(1.0),
                    ) as u64),
                });
            }
        };
        // Transient-failure recovery: each attempt runs under its own
        // catch_unwind so solver panics are retryable too. A failed
        // attempt quarantines the cached artifacts it executed against
        // (evict + recompute) so one corrupted cache entry cannot poison
        // every subsequent hit, then backs off and recomputes.
        // Cancellations and missed deadlines are terminal.
        let mut attempt = 0usize;
        let mut out = loop {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.execute(spec, cancel, job_id)
            }))
            .unwrap_or_else(|payload| {
                self.counters.panics.fetch_add(1, Ordering::Relaxed);
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".into());
                Err(ServeError::InvalidJob(format!("job panicked: {msg}")))
            });
            match result {
                Ok(out) => break out,
                Err(e) => {
                    let terminal = e.is_cancelled()
                        || matches!(e, ServeError::DeadlineMissed(_))
                        || cancel.is_some_and(|c| c.is_cancelled())
                        || deadline_at.is_some_and(|d| Instant::now() >= d)
                        || attempt >= self.opts.max_compute_retries;
                    if terminal {
                        return Err(e);
                    }
                    self.quarantine(spec);
                    self.counters.retries.fetch_add(1, Ordering::Relaxed);
                    self.opts.obs.add("engine_retries_total", 1);
                    let backoff = self.opts.retry_backoff.saturating_mul(1 << attempt.min(16));
                    if !backoff.is_zero() {
                        let b0 = Instant::now();
                        std::thread::sleep(backoff);
                        self.opts
                            .obs
                            .record_span("engine.backoff", job_id, b0, b0.elapsed(), &[]);
                    }
                    attempt += 1;
                }
            }
        };
        drop(lease);
        out.wall = t0.elapsed();
        // The job span: admission wait + every attempt, labeled with
        // the hit path the (final) execution actually took.
        if self.opts.obs.is_enabled() {
            let path = out.cache.hit_path.label();
            self.opts
                .obs
                .record_span("engine.run", job_id, t0, out.wall, &[("path", path)]);
            self.opts
                .obs
                .observe_labeled("engine_job_seconds", &[("path", path)], out.wall);
            self.opts
                .obs
                .add_labeled("engine_jobs_total", &[("path", path)], 1);
        }
        Ok(out)
    }

    /// Evicts the cached numeric artifacts a failed execution ran
    /// against — the setup and the DC solution for the job's exact keys
    /// — so the retry (and every later job) recomputes them instead of
    /// re-hitting a possibly corrupted entry. Disk-store records are
    /// checksummed, so hydration after the eviction is safe.
    fn quarantine(&self, job: &JobSpec) {
        let Ok(sys) = job.effective_circuit() else {
            return;
        };
        let opts = job.effective_options();
        let pattern = sys.pattern_fingerprint();
        let value_fp = sys.value_fingerprint();
        let key = SetupKey {
            value_fp,
            kind: opts.kind,
            gamma_bits: opts.gamma.to_bits(),
            regularize_bits: opts.regularize_eps.to_bits(),
            scheduled: self.opts.kernel_threads > 0,
        };
        let dc_key = DcKey {
            value_fp,
            source_fp: sys.source_fingerprint(),
            t_start_bits: job.spec.t_start().to_bits(),
        };
        let mut evicted = 0;
        if self.cache.remove_setup(pattern, &key) {
            evicted += 1;
        }
        if self.cache.remove_dc(pattern, &dc_key) {
            evicted += 1;
        }
        self.counters
            .quarantined
            .fetch_add(evicted, Ordering::Relaxed);
        self.opts.obs.add("engine_quarantined_total", evicted);
    }

    /// Predicted service cost of a job in LTS units — the scheduling
    /// currency the `GroupPlan` makespan model uses. Monolithic jobs
    /// cost the union of their sources' transition spots (the number of
    /// fresh Krylov subspaces the march must build); distributed jobs
    /// cost the LPT makespan over the cached plan's group LTS counts
    /// when the plan is cached, else an equal-split estimate. Pure
    /// waveform arithmetic on the base circuit — never assembles or
    /// factors anything, so `submit` stays cheap.
    fn predicted_units(&self, job: &JobSpec) -> f64 {
        let t0 = job.spec.t_start();
        let t1 = job.spec.t_stop();
        let spots: Vec<SpotSet> = job
            .circuit
            .sources()
            .iter()
            .map(|s| SpotSet::from_times(s.waveform.transition_spots(t1)))
            .collect();
        let total = SpotSet::union(&spots).clip(t0, t1).len().max(1) as f64;
        match &job.mode {
            ExecutionMode::Monolithic => total,
            ExecutionMode::Distributed { strategy, workers } => {
                let w = workers.unwrap_or(self.opts.dist_workers).max(1);
                let pattern = job.circuit.pattern_fingerprint();
                let plan_key = PlanKey {
                    source_fp: job.circuit.source_fingerprint(),
                    strategy: strategy_tag(*strategy),
                    t_start_bits: t0.to_bits(),
                    t_stop_bits: t1.to_bits(),
                };
                match self.cache.plan(pattern, &plan_key) {
                    Some(plan) => {
                        let costs: Vec<f64> =
                            plan.jobs().iter().map(|j| j.lts.len() as f64).collect();
                        list_schedule_makespan(plan.order(), &costs, w).max(1.0)
                    }
                    None => (total / w as f64).max(1.0),
                }
            }
        }
    }

    /// Calibrated seconds per LTS unit, from completed-job measurements
    /// (a conservative 1 ms/unit prior before any job completes).
    fn unit_secs(&self) -> f64 {
        let units = self.counters.calib_units.load(Ordering::Relaxed);
        if units == 0 {
            return 1e-3;
        }
        let nanos = self.counters.calib_nanos.load(Ordering::Relaxed);
        (nanos as f64 / 1e9) / (units as f64 / 1024.0)
    }

    fn calibrate(&self, units: f64, wall: Duration) {
        self.counters
            .calib_units
            .fetch_add((units * 1024.0) as u64, Ordering::Relaxed);
        self.counters
            .calib_nanos
            .fetch_add(wall.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Estimated time for the current queue to drain — the structured
    /// `retry_after` hint attached to rejections: total queued predicted
    /// cost divided across the executor threads.
    fn drain_estimate(&self, table: &JobTable) -> Duration {
        let queued: f64 = table
            .queue
            .iter()
            .map(|&q| table.records[q as usize].units)
            .sum();
        let secs = (queued / self.opts.executors.max(1) as f64) * self.unit_secs();
        // Clamp to a sane hint window: at least 1ms (a plain busy signal
        // still means "back off"), at most the configured ceiling — a
        // miscalibrated cost model must not tell clients to disappear
        // for minutes.
        let cap = self.opts.retry_after_cap.as_secs_f64().max(1e-3);
        Duration::from_secs_f64(secs.clamp(1e-3, cap))
    }

    /// Takes an idle kernel pool (or spawns one) when kernel threads
    /// are configured. Pools are returned by [`Inner::return_pool`] and
    /// reused, so warm jobs never pay per-job thread spawn.
    fn take_pool(&self) -> Option<Arc<ParPool>> {
        if self.opts.kernel_threads == 0 {
            return None;
        }
        let recycled = self
            .idle_pools
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop();
        Some(recycled.unwrap_or_else(|| Arc::new(ParPool::new(self.opts.kernel_threads))))
    }

    /// Returns a pool to the idle list (bounded by the executor count —
    /// beyond that the pool is simply dropped).
    fn return_pool(&self, pool: Arc<ParPool>) {
        let mut idle = self.idle_pools.lock().unwrap_or_else(|e| e.into_inner());
        if idle.len() < self.opts.executors.max(1) + 1 {
            idle.push(pool);
        }
    }

    /// Resolves cached artifacts and runs the job. The cancel token, if
    /// any, is observed by the solver between transient steps (and by
    /// distributed workers between node runs) — never inside a
    /// factorization or cache store, so cancellation cannot leave a
    /// half-written artifact behind.
    fn execute(
        &self,
        job: &JobSpec,
        cancel: Option<&CancelToken>,
        job_id: u64,
    ) -> Result<JobOutcome, ServeError> {
        let sys = job.effective_circuit()?;
        let mut opts = job.effective_options();
        // The engine's hook reaches the solver ("core.solver.run") of
        // every job it executes; disarmed hooks are free.
        opts.faults = self.opts.faults.clone();
        // So do its spans: the solver's phase spans carry this job's id
        // on the shared timeline. Disabled handles clone for free.
        opts.obs = self.opts.obs.tagged(job_id);
        let pattern = sys.pattern_fingerprint();
        let value_fp = sys.value_fingerprint();
        let mut report = CacheReport::default();
        let (setup, symbolic_hit, setup_hit, hit_path) =
            self.setup_for(&sys, &opts, pattern, value_fp)?;
        report.symbolic = symbolic_hit;
        report.setup = setup_hit;
        report.hit_path = hit_path;

        match &job.mode {
            ExecutionMode::Monolithic => {
                let source_fp = sys.source_fingerprint();
                let dc_key = DcKey {
                    value_fp,
                    source_fp,
                    t_start_bits: job.spec.t_start().to_bits(),
                };
                let dc_store_key = DcStoreKey {
                    value_fp,
                    source_fp,
                    t_start_bits: dc_key.t_start_bits,
                };
                let (x0, dc_hit) = match self.cache.dc(pattern, &dc_key) {
                    Some(x0) => (x0, Hit::Hit),
                    None => match self
                        .opts
                        .store
                        .as_ref()
                        .and_then(|st| st.load_dc(&dc_store_key))
                    {
                        Some(dc) => {
                            let x0 = Arc::new(dc);
                            self.cache.store_dc(pattern, dc_key, x0.clone());
                            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                            (x0, Hit::Hit)
                        }
                        None => {
                            // The exact solve the solver would perform
                            // (SMW-corrected for what-if setups).
                            let x0 = Arc::new(setup.solve_g(&sys.bu_at(job.spec.t_start())));
                            self.cache.store_dc(pattern, dc_key, x0.clone());
                            if let Some(store) = &self.opts.store {
                                if store.save_dc(&dc_store_key, &x0).is_ok() {
                                    self.counters.store_writes.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            (x0, Hit::Miss)
                        }
                    },
                };
                if dc_hit == Hit::Hit {
                    self.counters.dc_hits.fetch_add(1, Ordering::Relaxed);
                }
                report.dc = dc_hit;
                let mut solver = MatexSolver::new(opts).with_setup(setup).with_dc(x0);
                if let Some(token) = cancel {
                    solver = solver.with_cancel(token.clone());
                }
                let pool = self.take_pool();
                if let Some(p) = &pool {
                    solver = solver.with_parallelism(p.clone());
                }
                let result = solver.run(&sys, &job.spec);
                if let Some(p) = pool {
                    self.return_pool(p);
                }
                let result = result?;
                Ok(JobOutcome {
                    result,
                    cache: report,
                    groups: None,
                    wall: Duration::ZERO,
                    queue_wait: Duration::ZERO,
                })
            }
            ExecutionMode::Distributed { strategy, workers } => {
                let source_fp = sys.source_fingerprint();
                let plan_key = PlanKey {
                    source_fp,
                    strategy: strategy_tag(*strategy),
                    t_start_bits: job.spec.t_start().to_bits(),
                    t_stop_bits: job.spec.t_stop().to_bits(),
                };
                let plan_store_key = PlanStoreKey {
                    source_fp,
                    strategy: plan_key.strategy,
                    t_start_bits: plan_key.t_start_bits,
                    t_stop_bits: plan_key.t_stop_bits,
                };
                let (plan, plan_hit) = match self.cache.plan(pattern, &plan_key) {
                    Some(p) => (p, Hit::Hit),
                    None => match self
                        .opts
                        .store
                        .as_ref()
                        .and_then(|st| st.load_plan(&plan_store_key))
                    {
                        Some(p) => {
                            let p = Arc::new(p);
                            self.cache.store_plan(pattern, plan_key, p.clone());
                            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                            (p, Hit::Hit)
                        }
                        None => {
                            let p = Arc::new(plan_groups(&sys, &job.spec, *strategy));
                            self.cache.store_plan(pattern, plan_key, p.clone());
                            if let Some(store) = &self.opts.store {
                                if store.save_plan(&plan_store_key, &p).is_ok() {
                                    self.counters.store_writes.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            (p, Hit::Miss)
                        }
                    },
                };
                if plan_hit == Hit::Hit {
                    self.counters.plan_hits.fetch_add(1, Ordering::Relaxed);
                }
                report.plan = plan_hit;
                let groups = plan.num_jobs();
                let job_obs = opts.obs.clone();
                let dist_opts = DistributedOptions {
                    matex: opts,
                    strategy: *strategy,
                    workers: Some(workers.unwrap_or(self.opts.dist_workers).max(1)),
                    par: ParOptions::with_threads(self.opts.kernel_threads),
                    symbolic: None,
                    setup: Some(setup),
                    plan: Some(plan),
                    cancel: cancel.cloned(),
                    max_node_retries: self.opts.max_node_retries,
                    faults: self.opts.faults.clone(),
                    obs: job_obs,
                };
                let run = run_distributed(&sys, &job.spec, &dist_opts)?;
                Ok(JobOutcome {
                    result: run.result,
                    cache: report,
                    groups: Some(groups),
                    wall: Duration::ZERO,
                    queue_wait: Duration::ZERO,
                })
            }
        }
    }

    /// Resolves (or builds) the numeric setup for `(sys, opts)`:
    /// exact-value cache hit, else the what-if fast path (a low-rank
    /// correction of a retained base's factors), else a full
    /// preparation consulting the γ-decade symbolic anchors.
    fn setup_for(
        &self,
        sys: &Arc<MnaSystem>,
        opts: &MatexOptions,
        pattern: u64,
        value_fp: u64,
    ) -> Result<(Arc<MatexSetup>, Hit, Hit, HitPath), ServeError> {
        let scheduled = self.opts.kernel_threads > 0;
        let key = SetupKey {
            value_fp,
            kind: opts.kind,
            gamma_bits: opts.gamma.to_bits(),
            regularize_bits: opts.regularize_eps.to_bits(),
            scheduled,
        };
        if let Some(setup) = self.cache.setup(pattern, &key) {
            self.counters.setup_hits.fetch_add(1, Ordering::Relaxed);
            // The symbolic layer was not even consulted.
            return Ok((setup, Hit::Skipped, Hit::Hit, HitPath::Cache));
        }
        // An exact persisted setup beats the approximate what-if path:
        // hydrating it replays the original factors bitwise.
        if let Some(setup) = self
            .opts
            .store
            .as_ref()
            .and_then(|s| s.load_setup(&store_setup_key(&key)))
        {
            let setup = Arc::new(setup);
            self.cache.store_setup(pattern, key, setup.clone());
            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
            // Persisted setups are uncorrected by construction, so the
            // hydrated system is a valid what-if base too.
            if self.opts.whatif_max_rank > 0 {
                self.cache
                    .record_base(pattern, value_fp, sys.clone(), self.opts.whatif_bases);
            }
            return Ok((setup, Hit::Skipped, Hit::Hit, HitPath::Store));
        }
        if let Some(setup) = self.try_whatif(sys, pattern, value_fp, &key) {
            self.cache.store_setup(pattern, key, setup.clone());
            return Ok((setup, Hit::Skipped, Hit::Whatif, HitPath::Whatif));
        }
        let sym_store_key = SymbolicStoreKey {
            pattern_fp: pattern,
            kind_tag: kind_wire_tag(opts.kind),
            gamma_decade: gamma_decade(opts.gamma),
        };
        let (symbolic, mut sym_hit) =
            match self
                .cache
                .symbolic(pattern, opts.kind, opts.gamma, self.opts.anchor_span)
            {
                Some((s, false)) => (s, Hit::Hit),
                Some((s, true)) => (s, Hit::Neighbor),
                None => {
                    // Disk anchor before fresh analysis: a persisted
                    // exact-decade anchor replays like a cache hit.
                    let (s, hit) = match self
                        .opts
                        .store
                        .as_ref()
                        .and_then(|st| st.load_symbolic(&sym_store_key))
                    {
                        Some(s) => {
                            self.counters.store_hits.fetch_add(1, Ordering::Relaxed);
                            (Arc::new(s), Hit::Hit)
                        }
                        None => {
                            let s = Arc::new(MatexSymbolic::analyze(sys, opts)?);
                            self.persist_symbolic(&sym_store_key, &s);
                            self.counters
                                .symbolic_misses
                                .fetch_add(1, Ordering::Relaxed);
                            (s, Hit::Miss)
                        }
                    };
                    self.cache
                        .store_symbolic(pattern, opts.kind, opts.gamma, s.clone());
                    (s, hit)
                }
            };
        // The engine factors here (the solver is handed the prepared
        // setup), so the solver's own factor span never fires on this
        // path — record the equivalent span at this site instead.
        let factor_t0 = opts.obs.is_enabled().then(Instant::now);
        let setup = MatexSetup::prepare(sys, opts, Some(&symbolic), scheduled)?;
        if let Some(t0) = factor_t0 {
            let d = t0.elapsed();
            opts.obs
                .record_span("solver.factor", opts.obs.job(), t0, d, &[]);
            opts.obs.observe("solver_factor_seconds", d);
        }
        // Survival check: a replay that fell back to full factorization
        // means the anchor's pinned pivots no longer apply at this γ (or
        // these values). The run is still bitwise-correct — the fallback
        // IS the full factorization — but future jobs deserve a fresh
        // anchor at this decade, so plant one.
        let expected = match opts.kind {
            KrylovKind::Rational => 2,
            _ => 1,
        };
        if sym_hit.is_hit() {
            if setup.refactorizations() < expected {
                let fresh = Arc::new(MatexSymbolic::analyze(sys, opts)?);
                self.persist_symbolic(&sym_store_key, &fresh);
                self.cache
                    .store_symbolic(pattern, opts.kind, opts.gamma, fresh);
                self.counters
                    .symbolic_misses
                    .fetch_add(1, Ordering::Relaxed);
                self.counters.anchor_plants.fetch_add(1, Ordering::Relaxed);
                sym_hit = Hit::Miss;
            } else {
                self.counters.symbolic_hits.fetch_add(1, Ordering::Relaxed);
            }
        }
        let setup = Arc::new(setup);
        self.cache.store_setup(pattern, key, setup.clone());
        self.counters.setup_misses.fetch_add(1, Ordering::Relaxed);
        if let Some(store) = &self.opts.store {
            if store.save_setup(&store_setup_key(&key), &setup).is_ok() {
                self.counters.store_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
        // A fully-prepared (uncorrected) system is a base other
        // same-pattern jobs can correct against.
        if self.opts.whatif_max_rank > 0 {
            self.cache
                .record_base(pattern, value_fp, sys.clone(), self.opts.whatif_bases);
        }
        Ok((setup, sym_hit, Hit::Miss, HitPath::Cold))
    }

    /// The what-if fast path: finds the retained base whose values are
    /// closest to `sys` (minimal touched-row rank, value fingerprint as
    /// the deterministic tiebreak — independent of arrival order) and
    /// wraps its cached setup with SMW corrections. `None` sends the
    /// job to a full preparation.
    fn try_whatif(
        &self,
        sys: &Arc<MnaSystem>,
        pattern: u64,
        value_fp: u64,
        key: &SetupKey,
    ) -> Option<Arc<MatexSetup>> {
        if self.opts.whatif_max_rank == 0 || self.opts.whatif_bases == 0 {
            return None;
        }
        let mut best: Option<(usize, u64, matex_circuit::ValueDiff, Arc<MatexSetup>)> = None;
        let mut rejected = false;
        for (base_fp, base_sys) in self.cache.bases(pattern) {
            if base_fp == value_fp {
                continue;
            }
            let Some(diff) = sys.value_diff(&base_sys) else {
                continue;
            };
            let rank = diff.rank();
            if rank > self.opts.whatif_max_rank {
                rejected = true;
                continue;
            }
            let base_key = SetupKey {
                value_fp: base_fp,
                ..*key
            };
            // The base's factors must still be cached — and uncorrected
            // (corrections never chain).
            let Some(base_setup) = self.cache.setup(pattern, &base_key) else {
                continue;
            };
            if base_setup.is_corrected() {
                continue;
            }
            if best
                .as_ref()
                .is_none_or(|(r, fp, _, _)| (rank, base_fp) < (*r, *fp))
            {
                best = Some((rank, base_fp, diff, base_setup));
            }
        }
        let Some((rank, _, diff, base_setup)) = best else {
            if rejected {
                self.counters
                    .whatif_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
            }
            return None;
        };
        match MatexSetup::correct(base_setup, &diff, &self.smw_options()) {
            Ok(corrected) => {
                self.counters.whatif_hits.fetch_add(1, Ordering::Relaxed);
                self.counters
                    .whatif_rank
                    .fetch_add(rank as u64, Ordering::Relaxed);
                Some(Arc::new(corrected))
            }
            Err(_) => {
                // Ill-conditioned capture (or over-rank per-matrix
                // update): refactor instead — bitwise the cold path.
                self.counters
                    .whatif_fallbacks
                    .fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn smw_options(&self) -> SmwOptions {
        SmwOptions {
            max_rank: self.opts.whatif_max_rank,
            ..SmwOptions::default()
        }
    }

    /// Best-effort write-back of a symbolic anchor (store failures are
    /// silent: the store is an accelerator, never a correctness
    /// dependency).
    fn persist_symbolic(&self, key: &SymbolicStoreKey, sym: &MatexSymbolic) {
        if let Some(store) = &self.opts.store {
            if store.save_symbolic(key, sym).is_ok() {
                self.counters.store_writes.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Stable wire tag for a Krylov variant, shared with the store's key
/// encoding.
fn kind_wire_tag(kind: KrylovKind) -> u8 {
    match kind {
        KrylovKind::Standard => 0,
        KrylovKind::Inverted => 1,
        KrylovKind::Rational => 2,
    }
}

/// The store-side mirror of an in-memory [`SetupKey`].
fn store_setup_key(key: &SetupKey) -> SetupStoreKey {
    SetupStoreKey {
        value_fp: key.value_fp,
        kind_tag: kind_wire_tag(key.kind),
        gamma_bits: key.gamma_bits,
        regularize_bits: key.regularize_bits,
        scheduled: key.scheduled,
    }
}

/// Stable tag for plan-cache keys (injective over the strategies).
fn strategy_tag(s: GroupingStrategy) -> u64 {
    match s {
        GroupingStrategy::ByBumpFeature => 0,
        GroupingStrategy::BySource => 1,
        GroupingStrategy::Single => 2,
        GroupingStrategy::MaxGroups(k) => 3 + ((k as u64) << 8),
        // Future strategies fall into one shared slot; the run-time
        // GroupPlan::check still rejects any true mismatch.
        _ => u64::MAX,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::PdnBuilder;
    use matex_core::TransientSpec;

    fn grid(seed: u64) -> Arc<MnaSystem> {
        Arc::new(
            PdnBuilder::new(6, 6)
                .num_loads(8)
                .num_features(3)
                .window(1e-9)
                .seed(seed)
                .build()
                .unwrap(),
        )
    }

    fn spec() -> TransientSpec {
        TransientSpec::new(0.0, 1e-9, 2e-11).unwrap()
    }

    #[test]
    fn stats_snapshots_are_internally_consistent_under_concurrent_load() {
        // Satellite-1 regression: `stats()` used to take one racing
        // pass over the independent atomics, so a poller could observe
        // skewed states (a job in `completed` but not yet `warm_jobs`,
        // or hit counters ahead of `submitted`). The double-read
        // snapshot must only return states whose accounting invariants
        // hold, no matter how hard it races the executors.
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 3,
            threads: Some(3),
            ..EngineOptions::default()
        }));
        let sys = grid(11);
        // Populate the cache synchronously first — otherwise two
        // executors can race the same cold miss and the final warm
        // count would depend on scheduling.
        engine.run(&JobSpec::new(sys.clone(), spec())).unwrap();
        let mut ids = Vec::new();
        for k in 0..12 {
            let job = JobSpec::new(sys.clone(), spec()).source_scale(1.0 + 0.05 * (k % 4) as f64);
            ids.push(engine.submit(job).unwrap());
        }
        // Poll snapshots while the fleet drains.
        let poller = {
            let engine = engine.clone();
            std::thread::spawn(move || {
                for _ in 0..200 {
                    let s = engine.stats();
                    assert!(
                        s.completed + s.failed + s.cancelled <= s.submitted,
                        "resolved more than submitted: {s:?}"
                    );
                    assert!(s.warm_jobs <= s.completed, "warm ahead of completed: {s:?}");
                    assert!(
                        s.setup_hits <= s.submitted,
                        "hits ahead of submissions: {s:?}"
                    );
                    std::thread::yield_now();
                }
            })
        };
        for id in ids {
            engine.wait(id).unwrap();
        }
        poller.join().unwrap();
        let s = engine.stats();
        assert_eq!(s.completed, 13);
        assert_eq!(s.warm_jobs, 12);
    }

    #[test]
    fn cold_then_warm_bitwise_and_counted() {
        let engine = ScenarioEngine::new(EngineOptions::default());
        let sys = grid(1);
        let job = JobSpec::new(sys.clone(), spec());
        let cold = engine.run(&job).unwrap();
        assert_eq!(cold.cache.setup, Hit::Miss);
        assert_eq!(cold.cache.symbolic, Hit::Miss);
        assert_eq!(cold.cache.dc, Hit::Miss);
        let warm = engine.run(&job).unwrap();
        assert_eq!(warm.cache.setup, Hit::Hit);
        assert_eq!(warm.cache.dc, Hit::Hit);
        assert_eq!(cold.result.series(), warm.result.series());
        // Standalone comparison: the engine never changes a bit.
        let standalone = MatexSolver::new(job.effective_options())
            .run(&sys, &job.spec)
            .unwrap();
        assert_eq!(standalone.series(), warm.result.series());
        let stats = engine.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.warm_jobs, 1);
        assert_eq!(stats.setup_hits, 1);
        assert_eq!(stats.cache.circuits, 1);
    }

    #[test]
    fn scenario_overrides_share_the_structure_cache() {
        let engine = ScenarioEngine::new(EngineOptions::default());
        let sys = grid(2);
        let base = JobSpec::new(sys.clone(), spec());
        engine.run(&base).unwrap();
        // Scaled sources: same matrices, so the setup cache hits.
        let scaled = base.clone().source_scale(1.5);
        let out = engine.run(&scaled).unwrap();
        assert_eq!(out.cache.setup, Hit::Hit);
        assert_eq!(out.cache.dc, Hit::Miss, "DC depends on the sources");
        let standalone = MatexSolver::new(scaled.effective_options())
            .run(&scaled.effective_circuit().unwrap(), &scaled.spec)
            .unwrap();
        assert_eq!(standalone.series(), out.result.series());
        // Same-decade γ override: symbolic anchor replays, new setup.
        let swept = base.clone().gamma(2.5e-10);
        let out = engine.run(&swept).unwrap();
        assert_eq!(out.cache.setup, Hit::Miss);
        assert_eq!(out.cache.symbolic, Hit::Hit);
        let standalone = MatexSolver::new(swept.effective_options())
            .run(&sys, &swept.spec)
            .unwrap();
        assert_eq!(standalone.series(), out.result.series());
        // Neighbouring decade: anchor reused (pivots survive on this
        // diagonally dominant grid).
        let neighbor = base.clone().gamma(2e-9);
        let out = engine.run(&neighbor).unwrap();
        assert!(matches!(out.cache.symbolic, Hit::Neighbor | Hit::Miss));
        let standalone = MatexSolver::new(neighbor.effective_options())
            .run(&sys, &neighbor.spec)
            .unwrap();
        assert_eq!(standalone.series(), out.result.series());
    }

    #[test]
    fn distributed_jobs_cache_plan_and_setup() {
        let engine = ScenarioEngine::new(EngineOptions::default());
        let sys = grid(3);
        let job = JobSpec::new(sys.clone(), spec()).mode(ExecutionMode::Distributed {
            strategy: GroupingStrategy::ByBumpFeature,
            workers: Some(2),
        });
        let cold = engine.run(&job).unwrap();
        assert_eq!(cold.cache.plan, Hit::Miss);
        assert!(cold.groups.unwrap() >= 2);
        let warm = engine.run(&job).unwrap();
        assert_eq!(warm.cache.plan, Hit::Hit);
        assert_eq!(warm.cache.setup, Hit::Hit);
        assert_eq!(cold.result.series(), warm.result.series());
        // Standalone distributed run agrees bitwise.
        let standalone = run_distributed(&sys, &job.spec, &DistributedOptions::default()).unwrap();
        assert_eq!(standalone.result.series(), warm.result.series());
    }

    #[test]
    fn submit_poll_wait_lifecycle() {
        let engine = ScenarioEngine::new(EngineOptions {
            executors: 2,
            ..EngineOptions::default()
        });
        let sys = grid(4);
        let ids: Vec<JobId> = (0..4)
            .map(|k| {
                engine
                    .submit(JobSpec::new(sys.clone(), spec()).source_scale(1.0 + k as f64 * 0.25))
                    .unwrap()
            })
            .collect();
        let outs: Vec<_> = ids.iter().map(|&id| engine.wait(id).unwrap()).collect();
        // All jobs of one structure agree with their own standalone runs
        // and the repeats hit the cache.
        assert!(outs.iter().skip(1).any(|o| o.cache.setup == Hit::Hit));
        for (&id, out) in ids.iter().zip(&outs) {
            assert!(matches!(engine.status(id), Some(JobStatus::Done(_))));
            assert_eq!(out.result.times().len(), 51);
        }
        assert!(engine.status(99).is_none());
        assert!(matches!(engine.wait(99), Err(ServeError::UnknownJob(99))));
        let stats = engine.stats();
        assert_eq!(stats.submitted, 4);
        assert_eq!(stats.completed, 4);
    }

    #[test]
    fn outcome_retention_expires_oldest_jobs() {
        let engine = ScenarioEngine::new(EngineOptions {
            executors: 1,
            max_retained: 2,
            ..EngineOptions::default()
        });
        let sys = grid(6);
        let ids: Vec<JobId> = (0..4)
            .map(|_| engine.submit(JobSpec::new(sys.clone(), spec())).unwrap())
            .collect();
        // Resolve everything (single executor: completion order = ids).
        engine.wait(ids[3]).unwrap();
        assert!(matches!(engine.status(ids[0]), Some(JobStatus::Expired)));
        assert!(matches!(engine.status(ids[1]), Some(JobStatus::Expired)));
        assert!(matches!(engine.status(ids[3]), Some(JobStatus::Done(_))));
        assert!(matches!(
            engine.wait(ids[0]),
            Err(ServeError::InvalidJob(_))
        ));
        // Expired ids still answer polls with a stable label.
        assert_eq!(engine.status(ids[0]).unwrap().label(), "expired");
    }

    #[test]
    fn panicking_job_fails_cleanly_and_executors_survive() {
        let engine = ScenarioEngine::new(EngineOptions {
            executors: 1,
            ..EngineOptions::default()
        });
        let sys = grid(7);
        // An out-of-range observed row panics inside the recorder (the
        // TCP layer validates this; the direct API can still trigger it).
        let bad_spec = spec().observing(vec![99_999]);
        let id = engine.submit(JobSpec::new(sys.clone(), bad_spec)).unwrap();
        let err = engine.wait(id).unwrap_err();
        assert!(
            err.to_string().contains("panicked"),
            "expected a panic-failure, got {err}"
        );
        // The single executor must still be alive to serve the next job.
        let ok = engine.submit(JobSpec::new(sys, spec())).unwrap();
        assert!(engine.wait(ok).is_ok());
    }

    #[test]
    fn kernel_pools_are_recycled_across_jobs() {
        let engine = ScenarioEngine::new(EngineOptions {
            executors: 1,
            kernel_threads: 2,
            threads: Some(2),
            ..EngineOptions::default()
        });
        let sys = grid(8);
        let job = JobSpec::new(sys, spec());
        let a = engine.run(&job).unwrap();
        assert_eq!(engine.inner.idle_pools.lock().unwrap().len(), 1);
        let b = engine.run(&job).unwrap();
        // Reuse keeps the list at one pool, and the pooled waveforms are
        // width-invariant so the repeat is still bitwise identical.
        assert_eq!(engine.inner.idle_pools.lock().unwrap().len(), 1);
        assert_eq!(a.result.series(), b.result.series());
    }

    #[test]
    fn whatif_edit_corrects_instead_of_refactoring() {
        let engine = ScenarioEngine::new(EngineOptions::default());
        let sys = grid(9);
        let base = JobSpec::new(sys.clone(), spec());
        engine.run(&base).unwrap();
        // A small cap edit: same pattern, one changed value row. The
        // engine serves it by correcting the cached base factors.
        let edit = base.clone().cap_scale(7, 3.0);
        let fast = engine.run(&edit).unwrap();
        assert_eq!(fast.cache.setup, Hit::Whatif);
        assert!(fast.cache.is_whatif() && !fast.cache.is_warm());
        // Accuracy vs the full-refactor standalone run.
        let edited_sys = edit.effective_circuit().unwrap();
        let standalone = MatexSolver::new(edit.effective_options())
            .run(&edited_sys, &edit.spec)
            .unwrap();
        let (max_dev, _) = fast.result.error_vs(&standalone).unwrap();
        assert!(max_dev <= 1e-8, "what-if deviates by {max_dev:e}");
        // The corrected setup is cached: repeats are direct hits, and
        // bitwise identical (fixed-order SMW evaluation).
        let again = engine.run(&edit).unwrap();
        assert_eq!(again.cache.setup, Hit::Hit);
        assert_eq!(fast.result.series(), again.result.series());
        let stats = engine.stats();
        assert_eq!(stats.whatif_hits, 1);
        assert!(stats.whatif_rank >= 1);
        assert_eq!(stats.whatif_fallbacks, 0);
    }

    #[test]
    fn over_rank_edit_falls_back_to_full_preparation() {
        let engine = ScenarioEngine::new(EngineOptions {
            whatif_max_rank: 1,
            ..EngineOptions::default()
        });
        let sys = grid(10);
        engine.run(&JobSpec::new(sys.clone(), spec())).unwrap();
        // Two touched rows > max_rank 1: full preparation, counted as a
        // fallback — and still the exact standalone waveform.
        let edited = Arc::new(
            sys.with_cap_scaled(3, 2.0)
                .unwrap()
                .with_cap_scaled(11, 2.0)
                .unwrap(),
        );
        let job = JobSpec::new(edited.clone(), spec());
        let out = engine.run(&job).unwrap();
        assert_eq!(out.cache.setup, Hit::Miss);
        let standalone = MatexSolver::new(job.effective_options())
            .run(&edited, &job.spec)
            .unwrap();
        assert_eq!(standalone.series(), out.result.series());
        let stats = engine.stats();
        assert_eq!(stats.whatif_hits, 0);
        assert_eq!(stats.whatif_fallbacks, 1);
    }

    #[test]
    fn whatif_disabled_always_refactors() {
        let engine = ScenarioEngine::new(EngineOptions {
            whatif_max_rank: 0,
            ..EngineOptions::default()
        });
        let sys = grid(11);
        let base = JobSpec::new(sys, spec());
        engine.run(&base).unwrap();
        let out = engine.run(&base.clone().cap_scale(7, 3.0)).unwrap();
        assert_eq!(out.cache.setup, Hit::Miss);
        assert_eq!(engine.stats().whatif_hits, 0);
    }

    #[test]
    fn warm_store_restart_skips_all_analyses_bitwise() {
        let dir = std::env::temp_dir().join(format!(
            "matex-engine-restart-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sys = grid(12);
        let mono = JobSpec::new(sys.clone(), spec());
        let dist = JobSpec::new(sys.clone(), spec()).mode(ExecutionMode::Distributed {
            strategy: GroupingStrategy::ByBumpFeature,
            workers: Some(2),
        });
        let a = ScenarioEngine::new(EngineOptions {
            store: Some(Arc::new(ArtifactStore::open(&dir).unwrap())),
            ..EngineOptions::default()
        });
        let cold_mono = a.run(&mono).unwrap();
        let cold_dist = a.run(&dist).unwrap();
        let stats_a = a.stats();
        assert_eq!(stats_a.store_hits, 0);
        assert!(
            stats_a.store_writes >= 4,
            "symbolic+setup+dc+plan persisted, got {}",
            stats_a.store_writes
        );
        drop(a);

        // "Restart": a fresh engine — empty in-memory cache — pointed
        // at the same directory must serve the same jobs without a
        // single symbolic analysis, factorization, or DC solve.
        let b = ScenarioEngine::new(EngineOptions {
            store: Some(Arc::new(ArtifactStore::open(&dir).unwrap())),
            ..EngineOptions::default()
        });
        let warm_mono = b.run(&mono).unwrap();
        let warm_dist = b.run(&dist).unwrap();
        assert_eq!(warm_mono.cache.setup, Hit::Hit);
        assert_eq!(warm_mono.cache.dc, Hit::Hit);
        assert_eq!(warm_dist.cache.plan, Hit::Hit);
        let stats_b = b.stats();
        assert_eq!(stats_b.setup_misses, 0, "restart must not prepare a setup");
        assert_eq!(stats_b.symbolic_misses, 0, "restart must not re-analyze");
        assert!(stats_b.store_hits >= 3, "got {}", stats_b.store_hits);
        assert_eq!(stats_b.store_writes, 0);
        assert_eq!(cold_mono.result.series(), warm_mono.result.series());
        assert_eq!(cold_dist.result.series(), warm_dist.result.series());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn store_hydrated_setups_serve_as_whatif_bases() {
        let dir = std::env::temp_dir().join(format!(
            "matex-engine-whatif-store-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let sys = grid(13);
        let base = JobSpec::new(sys.clone(), spec());
        {
            let a = ScenarioEngine::new(EngineOptions {
                store: Some(Arc::new(ArtifactStore::open(&dir).unwrap())),
                ..EngineOptions::default()
            });
            a.run(&base).unwrap();
        }
        let b = ScenarioEngine::new(EngineOptions {
            store: Some(Arc::new(ArtifactStore::open(&dir).unwrap())),
            ..EngineOptions::default()
        });
        b.run(&base).unwrap();
        // A small edit against the hydrated base takes the what-if
        // fast path — the restart preserved the base candidates too.
        let fast = b.run(&base.clone().cap_scale(7, 3.0)).unwrap();
        assert_eq!(fast.cache.setup, Hit::Whatif);
        assert_eq!(b.stats().whatif_hits, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_jobs_report_their_error() {
        let engine = ScenarioEngine::new(EngineOptions::default());
        let sys = grid(5);
        // A NaN source scale fails in the circuit layer.
        let id = engine
            .submit(JobSpec::new(sys, spec()).source_scale(f64::NAN))
            .unwrap();
        let err = engine.wait(id).unwrap_err();
        assert!(matches!(err, ServeError::InvalidJob(_)));
        assert!(matches!(engine.status(id), Some(JobStatus::Failed(_))));
        assert_eq!(engine.stats().failed, 1);
    }

    #[test]
    fn solver_fault_is_retried_with_quarantine_and_recovers_bitwise() {
        use matex_core::{FaultKind, FaultPlan};
        let sys = grid(31);
        let job = JobSpec::new(sys.clone(), spec());
        let clean = ScenarioEngine::new(EngineOptions::default())
            .run(&job)
            .unwrap();
        // Occurrence 0 of "core.solver.run" warms the cache cleanly;
        // occurrence 1 (the warm repeat) fails, forcing the retry to
        // quarantine the warm artifacts and recompute them.
        let engine = ScenarioEngine::new(EngineOptions {
            faults: FaultHook::new(FaultPlan::new().fail_at(
                "core.solver.run",
                1,
                FaultKind::Error,
            )),
            retry_backoff: Duration::ZERO,
            ..EngineOptions::default()
        });
        engine.run(&job).unwrap();
        let recovered = engine.run(&job).unwrap();
        // Recovery never changes a bit of the waveform.
        assert_eq!(recovered.result.series(), clean.result.series());
        let stats = engine.stats();
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.failed, 0);
        assert_eq!(stats.retries, 1);
        assert!(stats.quarantined >= 1, "warm artifacts were quarantined");
    }

    #[test]
    fn solver_panic_is_contained_counted_and_retried() {
        use matex_core::{FaultKind, FaultPlan};
        let sys = grid(32);
        let job = JobSpec::new(sys.clone(), spec());
        let engine = ScenarioEngine::new(EngineOptions {
            faults: FaultHook::new(FaultPlan::new().fail_at(
                "core.solver.run",
                0,
                FaultKind::Panic,
            )),
            retry_backoff: Duration::ZERO,
            ..EngineOptions::default()
        });
        // The first attempt panics inside the solver; the engine
        // contains it, counts it, and the retry completes the job.
        let out = engine.run(&job).unwrap();
        let standalone = MatexSolver::new(job.effective_options())
            .run(&sys, &job.spec)
            .unwrap();
        assert_eq!(out.result.series(), standalone.series());
        let stats = engine.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.retries, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn exhausted_retry_budget_fails_the_job_cleanly() {
        use matex_core::{FaultKind, FaultPlan};
        let sys = grid(33);
        let job = JobSpec::new(sys, spec());
        let engine = ScenarioEngine::new(EngineOptions {
            faults: FaultHook::new(
                FaultPlan::new()
                    .fail_at("core.solver.run", 0, FaultKind::Error)
                    .fail_at("core.solver.run", 1, FaultKind::Error),
            ),
            max_compute_retries: 1,
            retry_backoff: Duration::ZERO,
            ..EngineOptions::default()
        });
        let err = engine.run(&job).unwrap_err();
        assert!(!err.is_cancelled());
        let stats = engine.stats();
        assert_eq!(stats.retries, 1, "one retry was attempted");
        assert_eq!(stats.failed, 1);
        // The engine survives: the same job (occurrence 2+) now runs.
        let job2 = JobSpec::new(grid(33), spec());
        engine.run(&job2).unwrap();
        assert_eq!(engine.stats().completed, 1);
    }

    #[test]
    fn store_faults_degrade_to_compute_through_and_are_counted() {
        use matex_core::{FaultKind, FaultPlan};
        use matex_store::StoreOptions;
        let dir = std::env::temp_dir().join(format!(
            "matex-engine-store-faults-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        // Every store read and write fails: the store degrades to a
        // pure compute-through layer and the jobs never notice.
        let store = ArtifactStore::open_with(
            &dir,
            StoreOptions {
                faults: FaultHook::new(
                    FaultPlan::new()
                        .seeded(7, 1000, FaultKind::Error)
                        .on_sites(&["store.read", "store.write"]),
                ),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let engine = ScenarioEngine::new(EngineOptions {
            store: Some(Arc::new(store)),
            ..EngineOptions::default()
        });
        let sys = grid(34);
        let job = JobSpec::new(sys.clone(), spec());
        let out = engine.run(&job).unwrap();
        let standalone = MatexSolver::new(job.effective_options())
            .run(&sys, &job.spec)
            .unwrap();
        assert_eq!(out.result.series(), standalone.series());
        let stats = engine.stats();
        assert_eq!(stats.failed, 0);
        assert!(stats.store_errors > 0, "store faults were tallied");
        assert_eq!(stats.store_hits, 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
