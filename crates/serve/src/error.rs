//! Service-layer errors.

use matex_circuit::CircuitError;
use matex_core::CoreError;
use matex_dist::DistError;
use std::fmt;

/// Errors from the scenario engine and the TCP job service.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// Circuit construction or scenario override failed.
    Circuit(CircuitError),
    /// A monolithic solver run failed.
    Core(CoreError),
    /// A distributed run failed.
    Dist(DistError),
    /// The job specification is invalid (before any solve started).
    InvalidJob(String),
    /// A protocol request could not be parsed or served.
    Protocol(String),
    /// Socket or file I/O failed (message carries the `io::Error` text).
    Io(String),
    /// The referenced job id was never submitted.
    UnknownJob(u64),
    /// The engine is shutting down and no longer accepts work.
    ShuttingDown,
    /// Admission refused the job at submit time (queue full or deadline
    /// provably unmeetable). `retry_after` estimates when the queued
    /// predicted cost will have drained enough for a resubmit to stand
    /// a chance.
    Rejected {
        /// Why admission refused the job.
        reason: String,
        /// Suggested back-off before resubmitting.
        retry_after: std::time::Duration,
    },
    /// The job was cancelled (while queued, or cooperatively while
    /// running).
    Cancelled(u64),
    /// The job's deadline passed before it could run to completion.
    DeadlineMissed(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Circuit(e) => write!(f, "circuit error: {e}"),
            ServeError::Core(e) => write!(f, "solver error: {e}"),
            ServeError::Dist(e) => write!(f, "distributed run error: {e}"),
            ServeError::InvalidJob(m) => write!(f, "invalid job: {m}"),
            ServeError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServeError::Io(m) => write!(f, "i/o error: {m}"),
            ServeError::UnknownJob(id) => write!(f, "unknown job id {id}"),
            ServeError::ShuttingDown => write!(f, "engine is shutting down"),
            ServeError::Rejected {
                reason,
                retry_after,
            } => write!(
                f,
                "rejected: {reason} (retry after {}ms)",
                retry_after.as_millis()
            ),
            ServeError::Cancelled(id) => write!(f, "job {id} cancelled"),
            ServeError::DeadlineMissed(m) => write!(f, "deadline missed: {m}"),
        }
    }
}

impl ServeError {
    /// The stable machine-readable code of this error — the `"code"`
    /// field of every wire response envelope. This is the single place
    /// the `ServeError → code` mapping lives; clients branch on these
    /// strings, so they are part of the protocol contract and never
    /// change meaning.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::Circuit(_) => "circuit",
            ServeError::Core(_) => "solver",
            ServeError::Dist(_) => "dist",
            ServeError::InvalidJob(_) => "invalid_job",
            ServeError::Protocol(_) => "protocol",
            ServeError::Io(_) => "io",
            ServeError::UnknownJob(_) => "unknown_job",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::Rejected { .. } => "rejected",
            ServeError::Cancelled(_) => "cancelled",
            ServeError::DeadlineMissed(_) => "deadline_missed",
        }
    }

    /// `true` when the error is any flavor of cooperative cancellation
    /// (engine-level, solver-level, or distributed-run-level).
    pub fn is_cancelled(&self) -> bool {
        matches!(
            self,
            ServeError::Cancelled(_)
                | ServeError::Core(CoreError::Cancelled)
                | ServeError::Dist(DistError::Cancelled)
        )
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Circuit(e) => Some(e),
            ServeError::Core(e) => Some(e),
            ServeError::Dist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for ServeError {
    fn from(e: CircuitError) -> Self {
        ServeError::Circuit(e)
    }
}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        ServeError::Core(e)
    }
}

impl From<DistError> for ServeError {
    fn from(e: DistError) -> Self {
        ServeError::Dist(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_has_a_stable_code() {
        let cases: Vec<(ServeError, &str)> = vec![
            (ServeError::InvalidJob("x".into()), "invalid_job"),
            (ServeError::Protocol("x".into()), "protocol"),
            (ServeError::Io("x".into()), "io"),
            (ServeError::UnknownJob(1), "unknown_job"),
            (ServeError::ShuttingDown, "shutting_down"),
            (
                ServeError::Rejected {
                    reason: "full".into(),
                    retry_after: std::time::Duration::from_millis(5),
                },
                "rejected",
            ),
            (ServeError::Cancelled(2), "cancelled"),
            (ServeError::DeadlineMissed("late".into()), "deadline_missed"),
            (
                ServeError::Core(CoreError::InvalidSpec("x".into())),
                "solver",
            ),
        ];
        for (e, code) in cases {
            assert_eq!(e.code(), code, "{e}");
        }
    }

    #[test]
    fn display_and_source() {
        let e = ServeError::from(CoreError::InvalidSpec("x".into()));
        assert!(e.to_string().contains("solver error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&ServeError::UnknownJob(3)).is_none());
        assert_eq!(ServeError::UnknownJob(3).to_string(), "unknown job id 3");
    }
}
