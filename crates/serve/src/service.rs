//! The TCP front end: JSON-lines requests, versioned responses.
//!
//! One request per line, one-or-more responses per request, every
//! response carrying the unified envelope fields `"ok"` (bool) and
//! `"code"` (a stable machine string: `"ok"` on success, else a
//! [`ServeError::code`] such as `"rejected"` or `"protocol"`); error
//! envelopes add `"error"` (human text) and — for admission rejections
//! — `"retry_after_ms"`. Commands:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"hello","proto":2,"frames":"binary"\|"json"}` | `{"ok":true,"code":"ok","proto":P,"max_proto":2,"frames":...}` — negotiates the connection's protocol and frame encoding |
//! | `{"cmd":"submit", ...}` | `{"ok":true,"code":"ok","job":N}` — or a rejection (below) |
//! | `{"cmd":"poll","job":N}` | `{"ok":true,"code":"ok","job":N,"state":"queued\|running\|done\|failed\|cancelled",...}` |
//! | `{"cmd":"wait","job":N}` | as `poll`, but blocks until resolved |
//! | `{"cmd":"cancel","job":N}` | `{"ok":true,"code":"ok","job":N,"state":...}` — queued jobs drop, running jobs stop at the next step |
//! | `{"cmd":"stream","job":N}` | a meta line, then `frames` waveform chunks in the negotiated encoding |
//! | `{"cmd":"stats"}` | engine counters (overload: `rejected`, `cancelled`, `deadline_misses`, `queue_depth`; store: `store_hits`, `store_writes`) and cache sizes — plus `job_p50_us`/`p90`/`p99` and `queue_wait_p50_us`/`p90`/`p99` histogram quantiles when the engine runs with observability enabled |
//! | `{"cmd":"metrics"}` | `{"ok":true,"code":"ok","lines":N}`, then `N` raw Prometheus text-exposition lines from the engine's [`matex_obs`] recorder (comment-only page when observability is disabled) |
//! | `{"cmd":"trace"}` | `{"ok":true,"code":"ok","events":[...]}` — the Chrome-trace event array (concatenable with a client's own events into one `chrome://tracing` timeline) |
//!
//! # Protocol versions and frame encodings
//!
//! Every connection starts in **protocol v1**: streamed waveform chunks
//! are JSON text lines, exactly as older clients expect (v1 clients
//! never send `hello` and notice nothing). A client that sends
//! `{"cmd":"hello","proto":2,"frames":"binary"}` switches the
//! connection to **binary frames**: each `stream` response is still a
//! JSON meta line (with `"encoding": "binary"`), followed by `frames`
//! length-prefixed [`matex_waveform::WaveFrame`] records carrying raw
//! little-endian `f64` bit patterns — the same values the JSON `{v:e}`
//! formatting round-trips, at a fraction of the bytes. The decoded
//! content of both encodings is identical (the canonical
//! [`matex_waveform::WaveFrame::content_hash`] is encoding-independent),
//! so mixed v1/v2 fleets can compare waveforms hash for hash.
//!
//! A `submit` names its circuit either inline (`"netlist"`: SPICE text,
//! newlines escaped) or synthetically (`"pdn_nx"`/`"pdn_ny"` plus
//! optional `pdn_loads`, `pdn_features`, `pdn_seed`, `pdn_window`), and
//! the window via `t_stop` + `dt_out` (+ optional `t_start`). Optional
//! scenario fields: `gamma`, `tol`, `scale`, `cap_row` + `cap_scale`
//! (a what-if edit: scale one node's ground capacitance — served by
//! low-rank correction of the cached base factorization when the base
//! job ran first), `mode` (`"mono"` / `"dist"`), `workers`, `rows`
//! (comma-separated state rows to record). Admission fields:
//! `priority` (`"high"` / `"normal"` / `"low"`, strict classes) and
//! `deadline_ms` (relative deadline; orders the job EDF within its
//! class). When admission refuses a job — queue full, or the deadline
//! provably unmeetable under the engine's calibrated cost model — the
//! submit answers `{"ok": false, "code": "rejected", "retry_after_ms":
//! N, "error": ...}` and the client should back off `retry_after_ms`
//! before resubmitting.
//! Parsed/built circuits are cached by content hash, so a fleet of
//! submissions of one circuit assembles it once — and hits the engine's
//! artifact cache underneath.
//!
//! The service defends itself against slow or stuck peers: accepted
//! sockets carry read/write timeouts ([`ServiceOptions::io_timeout`]),
//! so a connection that goes silent, or a client that stops draining
//! its receive window mid-stream, is dropped instead of pinning a
//! handler thread forever. Multi-line responses are flushed every few
//! lines, bounding the per-connection write buffer.
//!
//! Responses to distinct requests never interleave on one connection;
//! `stream` waveform frames are chunked so a client can process arrival
//! by arrival. All numbers are emitted with full round-trip precision —
//! two clients streaming the same job sequence receive byte-identical
//! frame lines (the determinism check `run_load` performs).

use crate::job::{ExecutionMode, JobSpec, JobStatus};
use crate::json::{escape, parse_flat_json, JsonValue};
use crate::{JobId, ScenarioEngine, ServeError};
use matex_circuit::{parse_netlist, MnaSystem, PdnBuilder};
use matex_core::TransientSpec;
use matex_par::Priority;
use matex_waveform::{Fnv64, GroupingStrategy, WaveFrame};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`ServiceHandle::addr`]).
    pub addr: String,
    /// Output samples per streamed waveform frame.
    pub stream_chunk: usize,
    /// Read/write timeout applied to every accepted socket. A peer that
    /// sends nothing for this long, or stalls mid-frame without
    /// draining its receive window, has its connection dropped — the
    /// handler thread is returned instead of pinned forever. `None`
    /// disables the guard (trusted local clients only).
    pub io_timeout: Option<Duration>,
}

impl ServiceOptions {
    /// A builder starting from the defaults — the preferred way to
    /// configure a service (field-struct literals are deprecated in
    /// favor of it: the builder stays source-compatible as options
    /// grow).
    pub fn builder() -> ServiceOptionsBuilder {
        ServiceOptionsBuilder {
            opts: ServiceOptions::default(),
        }
    }
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            addr: "127.0.0.1:0".into(),
            stream_chunk: 32,
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// Builder for [`ServiceOptions`] (see [`ServiceOptions::builder`]).
#[derive(Debug, Clone)]
pub struct ServiceOptionsBuilder {
    opts: ServiceOptions,
}

impl ServiceOptionsBuilder {
    /// Sets the bind address (port 0 picks a free port).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.opts.addr = addr.into();
        self
    }

    /// Sets the output samples per streamed waveform frame.
    pub fn stream_chunk(mut self, chunk: usize) -> Self {
        self.opts.stream_chunk = chunk;
        self
    }

    /// Sets (or disables, with `None`) the per-socket I/O timeout.
    pub fn io_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.opts.io_timeout = timeout;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> ServiceOptions {
        self.opts
    }
}

/// A running service; stops (and joins the accept loop) on
/// [`ServiceHandle::stop`] or drop.
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connection handlers finish with their clients.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Starts the TCP service on `opts.addr`, serving `engine`.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the listener cannot bind.
pub fn serve(
    engine: Arc<ScenarioEngine>,
    opts: &ServiceOptions,
) -> Result<ServiceHandle, ServeError> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let shutdown = shutdown.clone();
        let opts = opts.clone();
        let state = Arc::new(ServiceState {
            engine,
            circuits: Mutex::new(HashMap::new()),
            stream_chunk: opts.stream_chunk.max(1),
        });
        std::thread::Builder::new()
            .name("matex-serve-accept".into())
            .spawn(move || {
                // Connection handlers are detached: each exits when its
                // client disconnects (they hold the engine alive through
                // their shared state, so a stopped service drains
                // naturally as clients hang up).
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Slow-peer guard: a socket that stays
                            // silent or stops draining for io_timeout
                            // errors out of its blocking read/write,
                            // and the handler thread exits.
                            let _ = stream.set_read_timeout(opts.io_timeout);
                            let _ = stream.set_write_timeout(opts.io_timeout);
                            let state = state.clone();
                            let _ = std::thread::Builder::new()
                                .name("matex-serve-conn".into())
                                .spawn(move || handle_connection(stream, &state));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept loop")
    };
    Ok(ServiceHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// Bound on the per-service circuit-assembly cache. It is a pure
/// content-hash cache (jobs hold their own `Arc`s), so wholesale
/// clearing at the cap is safe — just a re-parse for later submissions.
const MAX_ASSEMBLED_CIRCUITS: usize = 256;

struct ServiceState {
    engine: Arc<ScenarioEngine>,
    /// Assembled circuits by content hash (netlist text or PDN params):
    /// a fleet of submissions of one circuit assembles it once.
    circuits: Mutex<HashMap<u64, Arc<MnaSystem>>>,
    stream_chunk: usize,
}

impl ServiceState {
    /// Looks up an assembled circuit by content hash.
    fn cached_circuit(&self, key: u64) -> Option<Arc<MnaSystem>> {
        self.circuits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Caches an assembled circuit, clearing the map at the cap.
    fn store_circuit(&self, key: u64, sys: Arc<MnaSystem>) {
        let mut map = self.circuits.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= MAX_ASSEMBLED_CIRCUITS {
            map.clear();
        }
        map.insert(key, sys);
    }
}

/// Flush cadence for multi-line responses: bounds the per-connection
/// write buffer to a handful of frame lines, and surfaces a stalled
/// peer (blocked flush + write timeout) early instead of after the
/// whole response was materialized into the writer.
const FLUSH_EVERY_LINES: usize = 8;

/// The highest protocol version this server speaks.
const MAX_PROTO: u32 = 2;

/// One response unit: a JSON text line, or (protocol v2, binary frames
/// negotiated) a length-prefixed binary record written verbatim.
enum Payload {
    Line(String),
    Bytes(Vec<u8>),
}

/// Per-connection negotiated state (the `hello` handshake mutates it;
/// everything else reads it).
#[derive(Default)]
struct ConnState {
    /// Stream waveform chunks as binary [`WaveFrame`] records instead
    /// of JSON text lines.
    frames_binary: bool,
}

/// Flushes the connection writer, timing the flush into the engine's
/// `service_flush_seconds` histogram when observability is enabled. A
/// slow flush here is the signature of a peer that stopped draining its
/// receive window — the histogram's tail is the early-warning signal
/// the `io_timeout` guard acts on.
fn flush_timed(writer: &mut BufWriter<TcpStream>, obs: &matex_obs::Obs) -> std::io::Result<()> {
    if !obs.is_enabled() {
        return writer.flush();
    }
    let t0 = Instant::now();
    let r = writer.flush();
    obs.observe_labeled(
        "service_flush_seconds",
        &[("ok", if r.is_ok() { "1" } else { "0" })],
        t0.elapsed(),
    );
    r
}

fn handle_connection(stream: TcpStream, state: &ServiceState) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut conn = ConnState::default();
    let obs = state.engine.obs().clone();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let responses = match handle_request(&line, state, &mut conn) {
            Ok(payloads) => payloads,
            Err(e) => vec![Payload::Line(error_line(&e))],
        };
        for (i, r) in responses.iter().enumerate() {
            let wrote = match r {
                Payload::Line(l) => writeln!(writer, "{l}"),
                Payload::Bytes(b) => writer.write_all(b),
            };
            if wrote.is_err() {
                return;
            }
            if (i + 1) % FLUSH_EVERY_LINES == 0 && flush_timed(&mut writer, &obs).is_err() {
                return;
            }
        }
        if flush_timed(&mut writer, &obs).is_err() {
            return;
        }
    }
}

/// Serializes an error envelope: `ok`, the stable [`ServeError::code`],
/// the human-readable `error` text, and — for admission rejections —
/// the `retry_after_ms` back-off hint, so clients can distinguish
/// "resubmit later" from a hard failure by `code` alone.
fn error_line(e: &ServeError) -> String {
    match e {
        ServeError::Rejected {
            reason,
            retry_after,
        } => format!(
            "{{\"ok\": false, \"code\": \"rejected\", \"retry_after_ms\": {}, \"error\": \"{}\"}}",
            retry_after.as_millis().max(1),
            escape(reason)
        ),
        _ => format!(
            "{{\"ok\": false, \"code\": \"{}\", \"error\": \"{}\"}}",
            e.code(),
            escape(&e.to_string())
        ),
    }
}

fn handle_request(
    line: &str,
    state: &ServiceState,
    conn: &mut ConnState,
) -> Result<Vec<Payload>, ServeError> {
    let req = parse_flat_json(line).map_err(ServeError::Protocol)?;
    let cmd = req
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::Protocol("request has no \"cmd\"".into()))?;
    match cmd {
        "hello" => Ok(vec![Payload::Line(hello_line(&req, conn)?)]),
        "submit" => {
            let spec = build_job(&req, state)?;
            let id = state.engine.submit(spec)?;
            Ok(vec![Payload::Line(format!(
                "{{\"ok\": true, \"code\": \"ok\", \"job\": {id}}}"
            ))])
        }
        "poll" => {
            let id = job_id(&req)?;
            Ok(vec![Payload::Line(status_line(id, state)?)])
        }
        "wait" => {
            let id = job_id(&req)?;
            // Resolve (ignoring the job's own failure — reported by the
            // status line), then report.
            let _ = state.engine.wait(id);
            Ok(vec![Payload::Line(status_line(id, state)?)])
        }
        "cancel" => {
            let id = job_id(&req)?;
            // Queued jobs drop immediately; running jobs get their
            // token tripped and stop at the next transient-step
            // boundary. The response reports the state as of the
            // cancel — poll again to observe a running job wind down.
            state.engine.cancel(id).ok_or(ServeError::UnknownJob(id))?;
            Ok(vec![Payload::Line(status_line(id, state)?)])
        }
        "stream" => stream_payloads(&req, state, conn),
        "stats" => Ok(vec![Payload::Line(stats_line(state))]),
        "metrics" => Ok(metrics_payloads(state)),
        "trace" => Ok(vec![Payload::Line(format!(
            "{{\"ok\": true, \"code\": \"ok\", \"events\": {}}}",
            state.engine.obs().chrome_trace_events()
        ))]),
        other => Err(ServeError::Protocol(format!("unknown cmd {other:?}"))),
    }
}

/// The capability handshake: the client announces the protocol version
/// and frame encoding it wants; the server answers with what it
/// granted. Binary frames require protocol ≥ 2; unknown encodings are
/// protocol errors (the connection stays on its current negotiation).
fn hello_line(
    req: &HashMap<String, JsonValue>,
    conn: &mut ConnState,
) -> Result<String, ServeError> {
    let proto = num(req, "proto").unwrap_or(1.0) as u32;
    if proto == 0 {
        return Err(ServeError::Protocol("\"proto\" must be >= 1".into()));
    }
    let frames = req
        .get("frames")
        .and_then(JsonValue::as_str)
        .unwrap_or("json");
    let binary = match frames {
        "json" => false,
        "binary" if proto >= 2 => true,
        "binary" => {
            return Err(ServeError::Protocol(
                "binary frames require \"proto\": 2".into(),
            ))
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "unknown frame encoding {other:?}"
            )))
        }
    };
    conn.frames_binary = binary;
    Ok(format!(
        "{{\"ok\": true, \"code\": \"ok\", \"proto\": {}, \"max_proto\": {MAX_PROTO}, \"frames\": \"{}\"}}",
        proto.min(MAX_PROTO),
        if binary { "binary" } else { "json" }
    ))
}

fn job_id(req: &HashMap<String, JsonValue>) -> Result<JobId, ServeError> {
    req.get("job")
        .and_then(JsonValue::as_num)
        .map(|v| v as JobId)
        .ok_or_else(|| ServeError::Protocol("request has no \"job\" id".into()))
}

fn num(req: &HashMap<String, JsonValue>, key: &str) -> Option<f64> {
    req.get(key).and_then(JsonValue::as_num)
}

fn status_line(id: JobId, state: &ServiceState) -> Result<String, ServeError> {
    let status = state.engine.status(id).ok_or(ServeError::UnknownJob(id))?;
    let mut line = format!(
        "{{\"ok\": true, \"code\": \"ok\", \"job\": {id}, \"state\": \"{}\"",
        status.label()
    );
    match &status {
        JobStatus::Failed(msg) => {
            line.push_str(&format!(", \"error\": \"{}\"", escape(msg)));
        }
        JobStatus::Done(out) => {
            line.push_str(&format!(
                ", \"warm\": {}, \"whatif\": {}, \"wall_us\": {}, \"points\": {}",
                out.cache.is_warm(),
                out.cache.is_whatif(),
                out.wall.as_micros(),
                out.result.times().len()
            ));
            if let Some(groups) = out.groups {
                line.push_str(&format!(", \"groups\": {groups}"));
            }
        }
        _ => {}
    }
    line.push('}');
    Ok(line)
}

/// The Prometheus page as a protocol response: one JSON meta line
/// announcing the raw text line count, then the page verbatim. The page
/// is text exposition format, not JSON — announcing the count first
/// keeps the JSON-lines framing unambiguous (same pattern as `stream`).
fn metrics_payloads(state: &ServiceState) -> Vec<Payload> {
    let page = state.engine.obs().prometheus_text();
    let lines: Vec<&str> = page.lines().collect();
    let mut payloads = Vec::with_capacity(lines.len() + 1);
    payloads.push(Payload::Line(format!(
        "{{\"ok\": true, \"code\": \"ok\", \"lines\": {}}}",
        lines.len()
    )));
    payloads.extend(lines.into_iter().map(|l| Payload::Line(l.to_string())));
    payloads
}

fn stats_line(state: &ServiceState) -> String {
    let s = state.engine.stats();
    let mut line = format!(
        "{{\"ok\": true, \"code\": \"ok\", \
         \"submitted\": {}, \"completed\": {}, \"failed\": {}, \
         \"rejected\": {}, \"cancelled\": {}, \"deadline_misses\": {}, \
         \"queue_depth\": {}, \
         \"warm_jobs\": {}, \"setup_hits\": {}, \"setup_misses\": {}, \
         \"symbolic_hits\": {}, \"dc_hits\": {}, \"plan_hits\": {}, \
         \"whatif_hits\": {}, \"whatif_rank\": {}, \"whatif_fallbacks\": {}, \
         \"anchor_plants\": {}, \"evictions\": {}, \
         \"store_hits\": {}, \"store_writes\": {}, \
         \"circuits_cached\": {}, \"setups_cached\": {}",
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.cancelled,
        s.deadline_misses,
        s.queue_depth,
        s.warm_jobs,
        s.setup_hits,
        s.setup_misses,
        s.symbolic_hits,
        s.dc_hits,
        s.plan_hits,
        s.whatif_hits,
        s.whatif_rank,
        s.whatif_fallbacks,
        s.anchor_plants,
        s.evictions,
        s.store_hits,
        s.store_writes,
        s.cache.circuits,
        s.cache.setups,
    );
    // Histogram quantiles ride along when the engine observes itself —
    // absent otherwise, so disabled engines keep the legacy line shape.
    let obs = state.engine.obs();
    if obs.is_enabled() {
        let (jp50, jp90, jp99) = obs.quantiles("engine_job_seconds");
        let (qp50, qp90, qp99) = obs.quantiles("engine_queue_wait_seconds");
        line.push_str(&format!(
            ", \"job_p50_us\": {:.0}, \"job_p90_us\": {:.0}, \"job_p99_us\": {:.0}, \
             \"queue_wait_p50_us\": {:.0}, \"queue_wait_p90_us\": {:.0}, \"queue_wait_p99_us\": {:.0}",
            jp50 * 1e6,
            jp90 * 1e6,
            jp99 * 1e6,
            qp50 * 1e6,
            qp90 * 1e6,
            qp99 * 1e6,
        ));
    }
    line.push('}');
    line
}

/// Emits a stream response: one meta line, then chunked waveform frames
/// covering the whole sampled window — JSON text lines (protocol v1,
/// the default) or length-prefixed binary [`WaveFrame`] records when
/// the connection negotiated them.
fn stream_payloads(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
    conn: &ConnState,
) -> Result<Vec<Payload>, ServeError> {
    let id = job_id(req)?;
    let out = state.engine.wait(id)?;
    let times = out.result.times();
    let chunk = num(req, "chunk")
        .map(|c| (c as usize).max(1))
        .unwrap_or(state.stream_chunk);
    let frames = times.len().div_ceil(chunk);
    let mut payloads = Vec::with_capacity(frames + 1);
    payloads.push(Payload::Line(format!(
        "{{\"ok\": true, \"code\": \"ok\", \"job\": {id}, \"frames\": {frames}, \
         \"rows\": {}, \"points\": {}, \"encoding\": \"{}\"}}",
        out.result.rows().len(),
        times.len(),
        if conn.frames_binary { "binary" } else { "json" },
    )));
    for f in 0..frames {
        let start = f * chunk;
        let end = (start + chunk).min(times.len());
        // Frames deliberately omit the job id: they follow their meta
        // line positionally on the connection, and leaving the id out
        // makes frame bytes comparable across clients (two clients
        // running the same job sequence receive identical frames even
        // though their engine-assigned ids differ).
        if conn.frames_binary {
            let wf = WaveFrame {
                frame: f as u64,
                start: start as u64,
                times: times[start..end].to_vec(),
                series: out
                    .result
                    .series()
                    .iter()
                    .map(|s| s[start..end].to_vec())
                    .collect(),
            };
            payloads.push(Payload::Bytes(wf.encode()));
            continue;
        }
        let mut line = format!(
            "{{\"ok\": true, \"frame\": {f}, \"start\": {start}, \"count\": {}, \"times\": [",
            end - start,
        );
        push_floats(&mut line, &times[start..end]);
        line.push_str("], \"series\": [");
        for (k, series) in out.result.series().iter().enumerate() {
            if k > 0 {
                line.push(',');
            }
            line.push('[');
            push_floats(&mut line, &series[start..end]);
            line.push(']');
        }
        line.push_str("]}");
        payloads.push(Payload::Line(line));
    }
    Ok(payloads)
}

/// Appends comma-separated floats with round-trip precision (the exact
/// bytes are part of the cross-client determinism contract).
fn push_floats(line: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("{v:e}"));
    }
}

/// Builds a [`JobSpec`] from a flat `submit` request.
fn build_job(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
) -> Result<JobSpec, ServeError> {
    let circuit = resolve_circuit(req, state)?;
    let t_start = num(req, "t_start").unwrap_or(0.0);
    let t_stop = num(req, "t_stop")
        .ok_or_else(|| ServeError::Protocol("submit requires \"t_stop\"".into()))?;
    let dt_out = num(req, "dt_out")
        .ok_or_else(|| ServeError::Protocol("submit requires \"dt_out\"".into()))?;
    let mut spec = TransientSpec::new(t_start, t_stop, dt_out).map_err(ServeError::Core)?;
    if let Some(rows) = req.get("rows").and_then(JsonValue::as_str) {
        let parsed: Result<Vec<usize>, _> = rows
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse::<usize>())
            .collect();
        let parsed =
            parsed.map_err(|_| ServeError::Protocol(format!("bad \"rows\" list {rows:?}")))?;
        // Validate against the circuit here, at the protocol boundary —
        // the recorder indexes the state vector by these rows verbatim.
        if let Some(&bad) = parsed.iter().find(|&&r| r >= circuit.dim()) {
            return Err(ServeError::Protocol(format!(
                "row {bad} out of range for a {}-state circuit",
                circuit.dim()
            )));
        }
        spec = spec.observing(parsed);
    }
    let mut job = JobSpec::new(circuit, spec);
    if let Some(g) = num(req, "gamma") {
        job = job.gamma(g);
    }
    if let Some(t) = num(req, "tol") {
        job = job.tol(t);
    }
    if let Some(k) = num(req, "scale") {
        job = job.source_scale(k);
    }
    match (num(req, "cap_row"), num(req, "cap_scale")) {
        (Some(row), Some(factor)) => {
            // Validate the row at the protocol boundary, like "rows".
            let row = row as usize;
            if row >= job.circuit.num_nodes() {
                return Err(ServeError::Protocol(format!(
                    "cap_row {row} out of range for a {}-node circuit",
                    job.circuit.num_nodes()
                )));
            }
            job = job.cap_scale(row, factor);
        }
        (None, None) => {}
        _ => {
            return Err(ServeError::Protocol(
                "\"cap_row\" and \"cap_scale\" must be given together".into(),
            ));
        }
    }
    if let Some(p) = req.get("priority").and_then(JsonValue::as_str) {
        let p = Priority::parse(p)
            .ok_or_else(|| ServeError::Protocol(format!("unknown priority {p:?}")))?;
        job = job.priority(p);
    }
    if let Some(ms) = num(req, "deadline_ms") {
        if !ms.is_finite() || ms <= 0.0 {
            return Err(ServeError::Protocol(format!(
                "\"deadline_ms\" must be a positive number, got {ms}"
            )));
        }
        job = job.deadline(Duration::from_secs_f64(ms / 1e3));
    }
    match req.get("mode").and_then(JsonValue::as_str) {
        None | Some("mono") => {}
        Some("dist") => {
            job = job.mode(ExecutionMode::Distributed {
                strategy: GroupingStrategy::ByBumpFeature,
                workers: num(req, "workers").map(|w| (w as usize).max(1)),
            });
        }
        Some(other) => {
            return Err(ServeError::Protocol(format!("unknown mode {other:?}")));
        }
    }
    Ok(job)
}

/// Resolves the request's circuit — inline netlist or synthetic PDN —
/// through the per-service assembly cache.
fn resolve_circuit(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
) -> Result<Arc<MnaSystem>, ServeError> {
    let mut h = Fnv64::new();
    if let Some(text) = req.get("netlist").and_then(JsonValue::as_str) {
        h.write_u8(0);
        h.write_bytes(text.as_bytes());
        let key = h.finish();
        if let Some(sys) = state.cached_circuit(key) {
            return Ok(sys);
        }
        let parsed = parse_netlist(text)?;
        let sys = Arc::new(MnaSystem::assemble(&parsed.netlist)?);
        state.store_circuit(key, sys.clone());
        Ok(sys)
    } else if let (Some(nx), Some(ny)) = (num(req, "pdn_nx"), num(req, "pdn_ny")) {
        let loads = num(req, "pdn_loads").unwrap_or(8.0) as usize;
        let features = num(req, "pdn_features").unwrap_or(3.0) as usize;
        let seed = num(req, "pdn_seed").unwrap_or(1.0) as u64;
        let window = num(req, "pdn_window").unwrap_or(1e-9);
        h.write_u8(1);
        for v in [nx, ny, loads as f64, features as f64, seed as f64, window] {
            h.write_f64(v);
        }
        let key = h.finish();
        if let Some(sys) = state.cached_circuit(key) {
            return Ok(sys);
        }
        let sys = Arc::new(
            PdnBuilder::new(nx as usize, ny as usize)
                .num_loads(loads)
                .num_features(features)
                .seed(seed)
                .window(window)
                .build()?,
        );
        state.store_circuit(key, sys.clone());
        Ok(sys)
    } else {
        Err(ServeError::Protocol(
            "submit requires \"netlist\" or \"pdn_nx\"/\"pdn_ny\"".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineOptions;
    use std::io::BufRead;

    fn start() -> (Arc<ScenarioEngine>, ServiceHandle) {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 2,
            ..EngineOptions::default()
        }));
        let handle = serve(engine.clone(), &ServiceOptions::default()).unwrap();
        (engine, handle)
    }

    fn roundtrip(stream: &mut TcpStream, req: &str) -> Vec<String> {
        let mut w = stream.try_clone().unwrap();
        writeln!(w, "{req}").unwrap();
        w.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        let mut lines = vec![first.trim_end().to_string()];
        // Stream responses announce their frame count up front. (A
        // hello ack also has a "frames" field, but a non-numeric one.)
        if let Some(at) = lines[0].find("\"frames\": ") {
            let rest = &lines[0][at + 10..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            let n: usize = rest[..end].parse().unwrap_or(0);
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                lines.push(line.trim_end().to_string());
            }
        }
        lines
    }

    #[test]
    fn submit_wait_stream_stats_over_tcp() {
        let (_engine, handle) = start();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        let sub = roundtrip(
            &mut conn,
            r#"{"cmd": "submit", "pdn_nx": 6, "pdn_ny": 6, "t_stop": 1e-9, "dt_out": 2e-11, "rows": "0,1"}"#,
        );
        assert!(sub[0].contains("\"ok\": true"), "{sub:?}");
        assert!(sub[0].contains("\"job\": 0"));
        let wait = roundtrip(&mut conn, r#"{"cmd": "wait", "job": 0}"#);
        assert!(wait[0].contains("\"state\": \"done\""), "{wait:?}");
        let stream = roundtrip(&mut conn, r#"{"cmd": "stream", "job": 0, "chunk": 20}"#);
        assert!(stream[0].contains("\"frames\": 3")); // 51 points / 20
        assert_eq!(stream.len(), 4);
        assert!(stream[1].contains("\"times\": [0e0,"));
        let stats = roundtrip(&mut conn, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"completed\": 1"), "{stats:?}");
        handle.stop();
    }

    #[test]
    fn netlist_submissions_share_assembly_and_protocol_errors_report() {
        let (_engine, handle) = start();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        let netlist = "i1 0 a PULSE(0 1m 0.1n 50p 200p 50p)\\nr1 a 0 1k\\nc1 a 0 10f\\n.end";
        let req = format!(
            "{{\"cmd\": \"submit\", \"netlist\": \"{netlist}\", \"t_stop\": 1e-9, \"dt_out\": 1e-11}}"
        );
        let a = roundtrip(&mut conn, &req);
        assert!(a[0].contains("\"job\": 0"), "{a:?}");
        let b = roundtrip(&mut conn, &req);
        assert!(b[0].contains("\"job\": 1"));
        for id in [0, 1] {
            let w = roundtrip(&mut conn, &format!("{{\"cmd\": \"wait\", \"job\": {id}}}"));
            assert!(w[0].contains("done"), "{w:?}");
        }
        // Identical submissions: the second assembled nothing and ran warm.
        let stats = roundtrip(&mut conn, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"warm_jobs\": 1"), "{stats:?}");
        // Errors come back as ok:false lines, connection stays usable.
        let err = roundtrip(&mut conn, r#"{"cmd": "submit", "t_stop": 1e-9}"#);
        assert!(err[0].contains("\"ok\": false"));
        // Out-of-range observed rows are rejected at the protocol
        // boundary, never reaching the solver.
        let err = roundtrip(
            &mut conn,
            r#"{"cmd": "submit", "pdn_nx": 5, "pdn_ny": 5, "t_stop": 1e-9, "dt_out": 1e-11, "rows": "99999"}"#,
        );
        assert!(err[0].contains("out of range"), "{err:?}");
        let err = roundtrip(&mut conn, r#"{"cmd": "nonsense"}"#);
        assert!(err[0].contains("unknown cmd"));
        assert!(err[0].contains("\"code\": \"protocol\""), "{err:?}");
        let err = roundtrip(&mut conn, "not json at all");
        assert!(err[0].contains("\"ok\": false"));
        // Unknown job ids carry their own stable code.
        let err = roundtrip(&mut conn, r#"{"cmd": "wait", "job": 999}"#);
        assert!(err[0].contains("\"code\": \"unknown_job\""), "{err:?}");
        handle.stop();
    }

    #[test]
    fn metrics_and_trace_verbs_export_observability() {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 2,
            obs: matex_obs::Obs::enabled(),
            ..EngineOptions::default()
        }));
        let handle = serve(engine.clone(), &ServiceOptions::default()).unwrap();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        // Two jobs of one circuit: a cold path and a cache-hit path, so
        // the job histogram splits by hit-path label.
        for _ in 0..2 {
            roundtrip(
                &mut conn,
                r#"{"cmd": "submit", "pdn_nx": 6, "pdn_ny": 6, "t_stop": 1e-9, "dt_out": 2e-11}"#,
            );
        }
        roundtrip(&mut conn, r#"{"cmd": "wait", "job": 0}"#);
        roundtrip(&mut conn, r#"{"cmd": "wait", "job": 1}"#);

        // metrics: meta line + raw Prometheus page, lint-clean, with
        // the job histogram split by hit path and solver timings.
        let mut w = conn.try_clone().unwrap();
        writeln!(w, r#"{{"cmd": "metrics"}}"#).unwrap();
        w.flush().unwrap();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        let mut meta = String::new();
        reader.read_line(&mut meta).unwrap();
        assert!(meta.contains("\"lines\": "), "{meta}");
        let n: usize = {
            let at = meta.find("\"lines\": ").unwrap() + 9;
            let rest = &meta[at..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().unwrap()
        };
        let mut page = String::new();
        for _ in 0..n {
            let mut l = String::new();
            reader.read_line(&mut l).unwrap();
            page.push_str(&l);
        }
        matex_obs::lint_prometheus(&page).unwrap();
        assert!(
            page.contains("matex_engine_jobs_total{path=\"cold\"}"),
            "{page}"
        );
        assert!(
            page.contains("matex_engine_jobs_total{path=\"cache\"}"),
            "{page}"
        );
        assert!(page.contains("matex_engine_job_seconds"), "{page}");
        assert!(page.contains("matex_solver_expm_seconds"), "{page}");

        // stats gains histogram quantiles on an observing engine.
        let stats = roundtrip(&mut conn, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"job_p99_us\": "), "{stats:?}");

        // trace: one envelope line whose events array reconstructs the
        // per-job solver phase split (factor / T_H expm / T_e combine).
        let trace = roundtrip(&mut conn, r#"{"cmd": "trace"}"#);
        assert!(trace[0].contains("\"events\": ["), "{}", &trace[0][..80]);
        for site in [
            "engine.run",
            "engine.queue_wait",
            "solver.factor",
            "solver.expm",
            "solver.combine",
        ] {
            assert!(trace[0].contains(site), "missing {site} in trace");
        }
        handle.stop();
    }

    #[test]
    fn hello_negotiates_binary_frames_bitwise_equal_to_json() {
        use matex_waveform::Fnv64;
        use std::io::Read;
        let (_engine, handle) = start();

        // Protocol v1 client (no hello): JSON frames, as always.
        let mut v1 = TcpStream::connect(handle.addr()).unwrap();
        let sub = roundtrip(
            &mut v1,
            r#"{"cmd": "submit", "pdn_nx": 6, "pdn_ny": 6, "t_stop": 1e-9, "dt_out": 2e-11, "rows": "0,1,2"}"#,
        );
        assert!(sub[0].contains("\"code\": \"ok\""), "{sub:?}");
        roundtrip(&mut v1, r#"{"cmd": "wait", "job": 0}"#);
        let json_stream = roundtrip(&mut v1, r#"{"cmd": "stream", "job": 0, "chunk": 20}"#);
        assert!(
            json_stream[0].contains("\"encoding\": \"json\""),
            "{}",
            json_stream[0]
        );
        let json_bytes: usize = json_stream[1..].iter().map(|l| l.len() + 1).sum();
        // Decode the text frames back to canonical content: the floats
        // are printed with round-trip precision, so this is bit-exact.
        let mut json_hash = Fnv64::new();
        for line in &json_stream[1..] {
            crate::loadgen::parse_json_frame(line)
                .unwrap_or_else(|| panic!("unparseable frame {line}"))
                .feed(&mut json_hash);
        }

        // Protocol v2 client: hello upgrades the connection to binary.
        let mut v2 = TcpStream::connect(handle.addr()).unwrap();
        let ack = roundtrip(
            &mut v2,
            r#"{"cmd": "hello", "proto": 2, "frames": "binary"}"#,
        );
        assert!(
            ack[0].contains("\"frames\": \"binary\"") && ack[0].contains("\"max_proto\": 2"),
            "{ack:?}"
        );
        let mut w = v2.try_clone().unwrap();
        writeln!(w, r#"{{"cmd": "stream", "job": 0, "chunk": 20}}"#).unwrap();
        w.flush().unwrap();
        let mut reader = BufReader::new(v2.try_clone().unwrap());
        let mut meta = String::new();
        reader.read_line(&mut meta).unwrap();
        assert!(meta.contains("\"encoding\": \"binary\""), "{meta}");
        let frames: usize = {
            let at = meta.find("\"frames\": ").unwrap() + 10;
            meta[at..at + 1].parse().unwrap()
        };
        let mut bin_bytes = 0usize;
        let mut bin_hash = Fnv64::new();
        for _ in 0..frames {
            let mut prefix = [0u8; 8];
            reader.read_exact(&mut prefix).unwrap();
            let (len, _) = WaveFrame::decode_len(&prefix).unwrap();
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload).unwrap();
            bin_bytes += 8 + len;
            WaveFrame::decode_payload(&payload)
                .unwrap()
                .feed(&mut bin_hash);
        }
        // Same floats bit for bit through either encoding, with binary
        // at least halving the wire.
        assert_eq!(json_hash.finish(), bin_hash.finish());
        assert!(
            bin_bytes * 2 <= json_bytes,
            "json {json_bytes} vs binary {bin_bytes}"
        );
        // The upgraded connection still speaks JSON for control verbs.
        let stats = roundtrip(&mut v2, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"store_hits\": 0"), "{stats:?}");

        // Bad handshakes: binary needs proto >= 2; unknown encodings
        // and proto 0 are refused. The connection survives all three.
        let mut v3 = TcpStream::connect(handle.addr()).unwrap();
        let err = roundtrip(
            &mut v3,
            r#"{"cmd": "hello", "proto": 1, "frames": "binary"}"#,
        );
        assert!(err[0].contains("\"code\": \"protocol\""), "{err:?}");
        let err = roundtrip(
            &mut v3,
            r#"{"cmd": "hello", "proto": 2, "frames": "morse"}"#,
        );
        assert!(err[0].contains("\"code\": \"protocol\""), "{err:?}");
        let err = roundtrip(&mut v3, r#"{"cmd": "hello", "proto": 0}"#);
        assert!(err[0].contains("\"code\": \"protocol\""), "{err:?}");
        let ok = roundtrip(&mut v3, r#"{"cmd": "hello", "proto": 1}"#);
        assert!(
            ok[0].contains("\"frames\": \"json\"") && ok[0].contains("\"proto\": 1"),
            "{ok:?}"
        );
        handle.stop();
    }
}
