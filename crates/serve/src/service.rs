//! The JSON-lines TCP front end.
//!
//! One request per line, one-or-more response lines per request, every
//! line a JSON object. Commands:
//!
//! | request | response |
//! |---|---|
//! | `{"cmd":"submit", ...}` | `{"ok":true,"job":N}` — or a rejection (below) |
//! | `{"cmd":"poll","job":N}` | `{"ok":true,"job":N,"state":"queued\|running\|done\|failed\|cancelled",...}` |
//! | `{"cmd":"wait","job":N}` | as `poll`, but blocks until resolved |
//! | `{"cmd":"cancel","job":N}` | `{"ok":true,"job":N,"state":...}` — queued jobs drop, running jobs stop at the next step |
//! | `{"cmd":"stream","job":N}` | a meta line, then `frames` chunked waveform lines |
//! | `{"cmd":"stats"}` | engine counters (including overload: `rejected`, `cancelled`, `deadline_misses`, `queue_depth`) and cache sizes |
//!
//! A `submit` names its circuit either inline (`"netlist"`: SPICE text,
//! newlines escaped) or synthetically (`"pdn_nx"`/`"pdn_ny"` plus
//! optional `pdn_loads`, `pdn_features`, `pdn_seed`, `pdn_window`), and
//! the window via `t_stop` + `dt_out` (+ optional `t_start`). Optional
//! scenario fields: `gamma`, `tol`, `scale`, `cap_row` + `cap_scale`
//! (a what-if edit: scale one node's ground capacitance — served by
//! low-rank correction of the cached base factorization when the base
//! job ran first), `mode` (`"mono"` / `"dist"`), `workers`, `rows`
//! (comma-separated state rows to record). Admission fields:
//! `priority` (`"high"` / `"normal"` / `"low"`, strict classes) and
//! `deadline_ms` (relative deadline; orders the job EDF within its
//! class). When admission refuses a job — queue full, or the deadline
//! provably unmeetable under the engine's calibrated cost model — the
//! submit answers `{"ok": false, "rejected": true, "retry_after_ms": N,
//! "error": ...}` and the client should back off `retry_after_ms`
//! before resubmitting.
//! Parsed/built circuits are cached by content hash, so a fleet of
//! submissions of one circuit assembles it once — and hits the engine's
//! artifact cache underneath.
//!
//! The service defends itself against slow or stuck peers: accepted
//! sockets carry read/write timeouts ([`ServiceOptions::io_timeout`]),
//! so a connection that goes silent, or a client that stops draining
//! its receive window mid-stream, is dropped instead of pinning a
//! handler thread forever. Multi-line responses are flushed every few
//! lines, bounding the per-connection write buffer.
//!
//! Responses to distinct requests never interleave on one connection;
//! `stream` waveform frames are chunked so a client can process arrival
//! by arrival. All numbers are emitted with full round-trip precision —
//! two clients streaming the same job sequence receive byte-identical
//! frame lines (the determinism check `run_load` performs).

use crate::job::{ExecutionMode, JobSpec, JobStatus};
use crate::json::{escape, parse_flat_json, JsonValue};
use crate::{JobId, ScenarioEngine, ServeError};
use matex_circuit::{parse_netlist, MnaSystem, PdnBuilder};
use matex_core::TransientSpec;
use matex_par::Priority;
use matex_waveform::{Fnv64, GroupingStrategy};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Bind address; port 0 picks a free port (see
    /// [`ServiceHandle::addr`]).
    pub addr: String,
    /// Output samples per streamed waveform frame.
    pub stream_chunk: usize,
    /// Read/write timeout applied to every accepted socket. A peer that
    /// sends nothing for this long, or stalls mid-frame without
    /// draining its receive window, has its connection dropped — the
    /// handler thread is returned instead of pinned forever. `None`
    /// disables the guard (trusted local clients only).
    pub io_timeout: Option<Duration>,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            addr: "127.0.0.1:0".into(),
            stream_chunk: 32,
            io_timeout: Some(Duration::from_secs(30)),
        }
    }
}

/// A running service; stops (and joins the accept loop) on
/// [`ServiceHandle::stop`] or drop.
#[derive(Debug)]
pub struct ServiceHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl ServiceHandle {
    /// The bound address (with the real port when 0 was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting connections and joins the accept thread.
    /// In-flight connection handlers finish with their clients.
    pub fn stop(mut self) {
        self.shutdown_now();
    }

    fn shutdown_now(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ServiceHandle {
    fn drop(&mut self) {
        self.shutdown_now();
    }
}

/// Starts the TCP service on `opts.addr`, serving `engine`.
///
/// # Errors
///
/// Returns [`ServeError::Io`] when the listener cannot bind.
pub fn serve(
    engine: Arc<ScenarioEngine>,
    opts: &ServiceOptions,
) -> Result<ServiceHandle, ServeError> {
    let listener = TcpListener::bind(&opts.addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept = {
        let shutdown = shutdown.clone();
        let opts = opts.clone();
        let state = Arc::new(ServiceState {
            engine,
            circuits: Mutex::new(HashMap::new()),
            stream_chunk: opts.stream_chunk.max(1),
        });
        std::thread::Builder::new()
            .name("matex-serve-accept".into())
            .spawn(move || {
                // Connection handlers are detached: each exits when its
                // client disconnects (they hold the engine alive through
                // their shared state, so a stopped service drains
                // naturally as clients hang up).
                while !shutdown.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Slow-peer guard: a socket that stays
                            // silent or stops draining for io_timeout
                            // errors out of its blocking read/write,
                            // and the handler thread exits.
                            let _ = stream.set_read_timeout(opts.io_timeout);
                            let _ = stream.set_write_timeout(opts.io_timeout);
                            let state = state.clone();
                            let _ = std::thread::Builder::new()
                                .name("matex-serve-conn".into())
                                .spawn(move || handle_connection(stream, &state));
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => break,
                    }
                }
            })
            .expect("spawn accept loop")
    };
    Ok(ServiceHandle {
        addr,
        shutdown,
        accept: Some(accept),
    })
}

/// Bound on the per-service circuit-assembly cache. It is a pure
/// content-hash cache (jobs hold their own `Arc`s), so wholesale
/// clearing at the cap is safe — just a re-parse for later submissions.
const MAX_ASSEMBLED_CIRCUITS: usize = 256;

struct ServiceState {
    engine: Arc<ScenarioEngine>,
    /// Assembled circuits by content hash (netlist text or PDN params):
    /// a fleet of submissions of one circuit assembles it once.
    circuits: Mutex<HashMap<u64, Arc<MnaSystem>>>,
    stream_chunk: usize,
}

impl ServiceState {
    /// Looks up an assembled circuit by content hash.
    fn cached_circuit(&self, key: u64) -> Option<Arc<MnaSystem>> {
        self.circuits
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned()
    }

    /// Caches an assembled circuit, clearing the map at the cap.
    fn store_circuit(&self, key: u64, sys: Arc<MnaSystem>) {
        let mut map = self.circuits.lock().unwrap_or_else(|e| e.into_inner());
        if map.len() >= MAX_ASSEMBLED_CIRCUITS {
            map.clear();
        }
        map.insert(key, sys);
    }
}

/// Flush cadence for multi-line responses: bounds the per-connection
/// write buffer to a handful of frame lines, and surfaces a stalled
/// peer (blocked flush + write timeout) early instead of after the
/// whole response was materialized into the writer.
const FLUSH_EVERY_LINES: usize = 8;

fn handle_connection(stream: TcpStream, state: &ServiceState) {
    let reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let responses = match handle_request(&line, state) {
            Ok(lines) => lines,
            Err(e) => vec![error_line(&e)],
        };
        for (i, r) in responses.iter().enumerate() {
            if writeln!(writer, "{r}").is_err() {
                return;
            }
            if (i + 1) % FLUSH_EVERY_LINES == 0 && writer.flush().is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

/// Serializes an error response. Admission rejections carry structure
/// (`"rejected": true` plus the back-off hint) so clients can
/// distinguish "resubmit later" from a hard failure.
fn error_line(e: &ServeError) -> String {
    match e {
        ServeError::Rejected {
            reason,
            retry_after,
        } => format!(
            "{{\"ok\": false, \"rejected\": true, \"retry_after_ms\": {}, \"error\": \"{}\"}}",
            retry_after.as_millis().max(1),
            escape(reason)
        ),
        _ => format!(
            "{{\"ok\": false, \"error\": \"{}\"}}",
            escape(&e.to_string())
        ),
    }
}

fn handle_request(line: &str, state: &ServiceState) -> Result<Vec<String>, ServeError> {
    let req = parse_flat_json(line).map_err(ServeError::Protocol)?;
    let cmd = req
        .get("cmd")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::Protocol("request has no \"cmd\"".into()))?;
    match cmd {
        "submit" => {
            let spec = build_job(&req, state)?;
            let id = state.engine.submit(spec)?;
            Ok(vec![format!("{{\"ok\": true, \"job\": {id}}}")])
        }
        "poll" => {
            let id = job_id(&req)?;
            Ok(vec![status_line(id, state)?])
        }
        "wait" => {
            let id = job_id(&req)?;
            // Resolve (ignoring the job's own failure — reported by the
            // status line), then report.
            let _ = state.engine.wait(id);
            Ok(vec![status_line(id, state)?])
        }
        "cancel" => {
            let id = job_id(&req)?;
            // Queued jobs drop immediately; running jobs get their
            // token tripped and stop at the next transient-step
            // boundary. The response reports the state as of the
            // cancel — poll again to observe a running job wind down.
            state.engine.cancel(id).ok_or(ServeError::UnknownJob(id))?;
            Ok(vec![status_line(id, state)?])
        }
        "stream" => stream_lines(&req, state),
        "stats" => Ok(vec![stats_line(state)]),
        other => Err(ServeError::Protocol(format!("unknown cmd {other:?}"))),
    }
}

fn job_id(req: &HashMap<String, JsonValue>) -> Result<JobId, ServeError> {
    req.get("job")
        .and_then(JsonValue::as_num)
        .map(|v| v as JobId)
        .ok_or_else(|| ServeError::Protocol("request has no \"job\" id".into()))
}

fn num(req: &HashMap<String, JsonValue>, key: &str) -> Option<f64> {
    req.get(key).and_then(JsonValue::as_num)
}

fn status_line(id: JobId, state: &ServiceState) -> Result<String, ServeError> {
    let status = state.engine.status(id).ok_or(ServeError::UnknownJob(id))?;
    let mut line = format!(
        "{{\"ok\": true, \"job\": {id}, \"state\": \"{}\"",
        status.label()
    );
    match &status {
        JobStatus::Failed(msg) => {
            line.push_str(&format!(", \"error\": \"{}\"", escape(msg)));
        }
        JobStatus::Done(out) => {
            line.push_str(&format!(
                ", \"warm\": {}, \"whatif\": {}, \"wall_us\": {}, \"points\": {}",
                out.cache.is_warm(),
                out.cache.is_whatif(),
                out.wall.as_micros(),
                out.result.times().len()
            ));
            if let Some(groups) = out.groups {
                line.push_str(&format!(", \"groups\": {groups}"));
            }
        }
        _ => {}
    }
    line.push('}');
    Ok(line)
}

fn stats_line(state: &ServiceState) -> String {
    let s = state.engine.stats();
    format!(
        "{{\"ok\": true, \"submitted\": {}, \"completed\": {}, \"failed\": {}, \
         \"rejected\": {}, \"cancelled\": {}, \"deadline_misses\": {}, \
         \"queue_depth\": {}, \
         \"warm_jobs\": {}, \"setup_hits\": {}, \"setup_misses\": {}, \
         \"symbolic_hits\": {}, \"dc_hits\": {}, \"plan_hits\": {}, \
         \"whatif_hits\": {}, \"whatif_rank\": {}, \"whatif_fallbacks\": {}, \
         \"anchor_plants\": {}, \"evictions\": {}, \
         \"circuits_cached\": {}, \"setups_cached\": {}}}",
        s.submitted,
        s.completed,
        s.failed,
        s.rejected,
        s.cancelled,
        s.deadline_misses,
        s.queue_depth,
        s.warm_jobs,
        s.setup_hits,
        s.setup_misses,
        s.symbolic_hits,
        s.dc_hits,
        s.plan_hits,
        s.whatif_hits,
        s.whatif_rank,
        s.whatif_fallbacks,
        s.anchor_plants,
        s.evictions,
        s.cache.circuits,
        s.cache.setups,
    )
}

/// Emits a stream response: one meta line, then chunked waveform frames
/// covering the whole sampled window.
fn stream_lines(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
) -> Result<Vec<String>, ServeError> {
    let id = job_id(req)?;
    let out = state.engine.wait(id)?;
    let times = out.result.times();
    let chunk = num(req, "chunk")
        .map(|c| (c as usize).max(1))
        .unwrap_or(state.stream_chunk);
    let frames = times.len().div_ceil(chunk);
    let mut lines = Vec::with_capacity(frames + 1);
    lines.push(format!(
        "{{\"ok\": true, \"job\": {id}, \"frames\": {frames}, \"rows\": {}, \"points\": {}}}",
        out.result.rows().len(),
        times.len(),
    ));
    for f in 0..frames {
        let start = f * chunk;
        let end = (start + chunk).min(times.len());
        // Frames deliberately omit the job id: they follow their meta
        // line positionally on the connection, and leaving the id out
        // makes frame bytes comparable across clients (two clients
        // running the same job sequence receive identical frames even
        // though their engine-assigned ids differ).
        let mut line = format!(
            "{{\"ok\": true, \"frame\": {f}, \"start\": {start}, \"count\": {}, \"times\": [",
            end - start,
        );
        push_floats(&mut line, &times[start..end]);
        line.push_str("], \"series\": [");
        for (k, series) in out.result.series().iter().enumerate() {
            if k > 0 {
                line.push(',');
            }
            line.push('[');
            push_floats(&mut line, &series[start..end]);
            line.push(']');
        }
        line.push_str("]}");
        lines.push(line);
    }
    Ok(lines)
}

/// Appends comma-separated floats with round-trip precision (the exact
/// bytes are part of the cross-client determinism contract).
fn push_floats(line: &mut String, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push_str(&format!("{v:e}"));
    }
}

/// Builds a [`JobSpec`] from a flat `submit` request.
fn build_job(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
) -> Result<JobSpec, ServeError> {
    let circuit = resolve_circuit(req, state)?;
    let t_start = num(req, "t_start").unwrap_or(0.0);
    let t_stop = num(req, "t_stop")
        .ok_or_else(|| ServeError::Protocol("submit requires \"t_stop\"".into()))?;
    let dt_out = num(req, "dt_out")
        .ok_or_else(|| ServeError::Protocol("submit requires \"dt_out\"".into()))?;
    let mut spec = TransientSpec::new(t_start, t_stop, dt_out).map_err(ServeError::Core)?;
    if let Some(rows) = req.get("rows").and_then(JsonValue::as_str) {
        let parsed: Result<Vec<usize>, _> = rows
            .split(',')
            .filter(|t| !t.trim().is_empty())
            .map(|t| t.trim().parse::<usize>())
            .collect();
        let parsed =
            parsed.map_err(|_| ServeError::Protocol(format!("bad \"rows\" list {rows:?}")))?;
        // Validate against the circuit here, at the protocol boundary —
        // the recorder indexes the state vector by these rows verbatim.
        if let Some(&bad) = parsed.iter().find(|&&r| r >= circuit.dim()) {
            return Err(ServeError::Protocol(format!(
                "row {bad} out of range for a {}-state circuit",
                circuit.dim()
            )));
        }
        spec = spec.observing(parsed);
    }
    let mut job = JobSpec::new(circuit, spec);
    if let Some(g) = num(req, "gamma") {
        job = job.gamma(g);
    }
    if let Some(t) = num(req, "tol") {
        job = job.tol(t);
    }
    if let Some(k) = num(req, "scale") {
        job = job.source_scale(k);
    }
    match (num(req, "cap_row"), num(req, "cap_scale")) {
        (Some(row), Some(factor)) => {
            // Validate the row at the protocol boundary, like "rows".
            let row = row as usize;
            if row >= job.circuit.num_nodes() {
                return Err(ServeError::Protocol(format!(
                    "cap_row {row} out of range for a {}-node circuit",
                    job.circuit.num_nodes()
                )));
            }
            job = job.cap_scale(row, factor);
        }
        (None, None) => {}
        _ => {
            return Err(ServeError::Protocol(
                "\"cap_row\" and \"cap_scale\" must be given together".into(),
            ));
        }
    }
    if let Some(p) = req.get("priority").and_then(JsonValue::as_str) {
        let p = Priority::parse(p)
            .ok_or_else(|| ServeError::Protocol(format!("unknown priority {p:?}")))?;
        job = job.priority(p);
    }
    if let Some(ms) = num(req, "deadline_ms") {
        if !ms.is_finite() || ms <= 0.0 {
            return Err(ServeError::Protocol(format!(
                "\"deadline_ms\" must be a positive number, got {ms}"
            )));
        }
        job = job.deadline(Duration::from_secs_f64(ms / 1e3));
    }
    match req.get("mode").and_then(JsonValue::as_str) {
        None | Some("mono") => {}
        Some("dist") => {
            job = job.mode(ExecutionMode::Distributed {
                strategy: GroupingStrategy::ByBumpFeature,
                workers: num(req, "workers").map(|w| (w as usize).max(1)),
            });
        }
        Some(other) => {
            return Err(ServeError::Protocol(format!("unknown mode {other:?}")));
        }
    }
    Ok(job)
}

/// Resolves the request's circuit — inline netlist or synthetic PDN —
/// through the per-service assembly cache.
fn resolve_circuit(
    req: &HashMap<String, JsonValue>,
    state: &ServiceState,
) -> Result<Arc<MnaSystem>, ServeError> {
    let mut h = Fnv64::new();
    if let Some(text) = req.get("netlist").and_then(JsonValue::as_str) {
        h.write_u8(0);
        h.write_bytes(text.as_bytes());
        let key = h.finish();
        if let Some(sys) = state.cached_circuit(key) {
            return Ok(sys);
        }
        let parsed = parse_netlist(text)?;
        let sys = Arc::new(MnaSystem::assemble(&parsed.netlist)?);
        state.store_circuit(key, sys.clone());
        Ok(sys)
    } else if let (Some(nx), Some(ny)) = (num(req, "pdn_nx"), num(req, "pdn_ny")) {
        let loads = num(req, "pdn_loads").unwrap_or(8.0) as usize;
        let features = num(req, "pdn_features").unwrap_or(3.0) as usize;
        let seed = num(req, "pdn_seed").unwrap_or(1.0) as u64;
        let window = num(req, "pdn_window").unwrap_or(1e-9);
        h.write_u8(1);
        for v in [nx, ny, loads as f64, features as f64, seed as f64, window] {
            h.write_f64(v);
        }
        let key = h.finish();
        if let Some(sys) = state.cached_circuit(key) {
            return Ok(sys);
        }
        let sys = Arc::new(
            PdnBuilder::new(nx as usize, ny as usize)
                .num_loads(loads)
                .num_features(features)
                .seed(seed)
                .window(window)
                .build()?,
        );
        state.store_circuit(key, sys.clone());
        Ok(sys)
    } else {
        Err(ServeError::Protocol(
            "submit requires \"netlist\" or \"pdn_nx\"/\"pdn_ny\"".into(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EngineOptions;
    use std::io::BufRead;

    fn start() -> (Arc<ScenarioEngine>, ServiceHandle) {
        let engine = Arc::new(ScenarioEngine::new(EngineOptions {
            executors: 2,
            ..EngineOptions::default()
        }));
        let handle = serve(engine.clone(), &ServiceOptions::default()).unwrap();
        (engine, handle)
    }

    fn roundtrip(stream: &mut TcpStream, req: &str) -> Vec<String> {
        let mut w = stream.try_clone().unwrap();
        writeln!(w, "{req}").unwrap();
        w.flush().unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut first = String::new();
        reader.read_line(&mut first).unwrap();
        let mut lines = vec![first.trim_end().to_string()];
        // Stream responses announce their frame count up front.
        if let Some(at) = lines[0].find("\"frames\": ") {
            let rest = &lines[0][at + 10..];
            let n: usize = rest[..rest.find(|c: char| !c.is_ascii_digit()).unwrap()]
                .parse()
                .unwrap();
            for _ in 0..n {
                let mut line = String::new();
                reader.read_line(&mut line).unwrap();
                lines.push(line.trim_end().to_string());
            }
        }
        lines
    }

    #[test]
    fn submit_wait_stream_stats_over_tcp() {
        let (_engine, handle) = start();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        let sub = roundtrip(
            &mut conn,
            r#"{"cmd": "submit", "pdn_nx": 6, "pdn_ny": 6, "t_stop": 1e-9, "dt_out": 2e-11, "rows": "0,1"}"#,
        );
        assert!(sub[0].contains("\"ok\": true"), "{sub:?}");
        assert!(sub[0].contains("\"job\": 0"));
        let wait = roundtrip(&mut conn, r#"{"cmd": "wait", "job": 0}"#);
        assert!(wait[0].contains("\"state\": \"done\""), "{wait:?}");
        let stream = roundtrip(&mut conn, r#"{"cmd": "stream", "job": 0, "chunk": 20}"#);
        assert!(stream[0].contains("\"frames\": 3")); // 51 points / 20
        assert_eq!(stream.len(), 4);
        assert!(stream[1].contains("\"times\": [0e0,"));
        let stats = roundtrip(&mut conn, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"completed\": 1"), "{stats:?}");
        handle.stop();
    }

    #[test]
    fn netlist_submissions_share_assembly_and_protocol_errors_report() {
        let (_engine, handle) = start();
        let mut conn = TcpStream::connect(handle.addr()).unwrap();
        let netlist = "i1 0 a PULSE(0 1m 0.1n 50p 200p 50p)\\nr1 a 0 1k\\nc1 a 0 10f\\n.end";
        let req = format!(
            "{{\"cmd\": \"submit\", \"netlist\": \"{netlist}\", \"t_stop\": 1e-9, \"dt_out\": 1e-11}}"
        );
        let a = roundtrip(&mut conn, &req);
        assert!(a[0].contains("\"job\": 0"), "{a:?}");
        let b = roundtrip(&mut conn, &req);
        assert!(b[0].contains("\"job\": 1"));
        for id in [0, 1] {
            let w = roundtrip(&mut conn, &format!("{{\"cmd\": \"wait\", \"job\": {id}}}"));
            assert!(w[0].contains("done"), "{w:?}");
        }
        // Identical submissions: the second assembled nothing and ran warm.
        let stats = roundtrip(&mut conn, r#"{"cmd": "stats"}"#);
        assert!(stats[0].contains("\"warm_jobs\": 1"), "{stats:?}");
        // Errors come back as ok:false lines, connection stays usable.
        let err = roundtrip(&mut conn, r#"{"cmd": "submit", "t_stop": 1e-9}"#);
        assert!(err[0].contains("\"ok\": false"));
        // Out-of-range observed rows are rejected at the protocol
        // boundary, never reaching the solver.
        let err = roundtrip(
            &mut conn,
            r#"{"cmd": "submit", "pdn_nx": 5, "pdn_ny": 5, "t_stop": 1e-9, "dt_out": 1e-11, "rows": "99999"}"#,
        );
        assert!(err[0].contains("out of range"), "{err:?}");
        let err = roundtrip(&mut conn, r#"{"cmd": "nonsense"}"#);
        assert!(err[0].contains("unknown cmd"));
        let err = roundtrip(&mut conn, "not json at all");
        assert!(err[0].contains("\"ok\": false"));
        handle.stop();
    }
}
