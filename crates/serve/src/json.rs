//! Minimal JSON for the wire protocol.
//!
//! The workspace builds fully offline (no serde), and the protocol only
//! needs *flat* request objects — string / number / boolean / null
//! values, no nesting — so a purpose-built parser is all there is.
//! Responses are emitted by hand (the server may write arrays; it never
//! has to parse them).

use std::collections::HashMap;

/// A scalar JSON value of a flat request object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A string (escapes decoded).
    Str(String),
    /// Any JSON number.
    Num(f64),
    /// `true` / `false`.
    Bool(bool),
    /// `null`.
    Null,
}

impl JsonValue {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            _ => None,
        }
    }
}

/// Parses one flat JSON object (`{"key": value, ...}`) into a map.
///
/// # Errors
///
/// Returns a human-readable description for malformed input or nested
/// objects/arrays (the protocol never sends them).
///
/// # Example
///
/// ```
/// use matex_serve::JsonValue;
///
/// let req = matex_serve::parse_flat_json(
///     r#"{"cmd": "submit", "t_stop": 1e-9, "fast": true}"#,
/// ).unwrap();
/// assert_eq!(req["cmd"], JsonValue::Str("submit".into()));
/// assert_eq!(req["t_stop"], JsonValue::Num(1e-9));
/// ```
pub fn parse_flat_json(text: &str) -> Result<HashMap<String, JsonValue>, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut out = HashMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            out.insert(key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(out)
}

/// Escapes a string for inclusion in emitted JSON (quotes not added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'{') | Some(b'[') => {
                Err("nested objects/arrays are not part of the protocol".into())
            }
            Some(_) => self.parse_number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("malformed literal (expected {lit})"))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }

    /// Reads the 4 hex digits of a `\u` escape (after the `u`).
    fn parse_hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex =
            std::str::from_utf8(&self.bytes[self.pos..self.pos + 4]).map_err(|e| e.to_string())?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let ch = if (0xD800..0xDC00).contains(&code) {
                            // High surrogate: standard JSON encoders emit
                            // non-BMP characters as a \uHHHH\uLLLL pair.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err("high surrogate not followed by \\u escape".into());
                            }
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err("invalid low surrogate in \\u pair".into());
                            }
                            let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                                .ok_or_else(|| "invalid surrogate pair".to_string())?
                        } else {
                            char::from_u32(code)
                                .ok_or_else(|| "lone surrogate in \\u escape".to_string())?
                        };
                        out.push(ch);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the UTF-8 sequence starting at b.
                    let start = self.pos - 1;
                    let len = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    if start + len > self.bytes.len() {
                        return Err("truncated UTF-8 sequence".into());
                    }
                    let s = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = start + len;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let m = parse_flat_json(r#"{"a": "x", "b": -1.5e3, "c": true, "d": null}"#).unwrap();
        assert_eq!(m["a"], JsonValue::Str("x".into()));
        assert_eq!(m["b"], JsonValue::Num(-1500.0));
        assert_eq!(m["c"], JsonValue::Bool(true));
        assert_eq!(m["d"], JsonValue::Null);
        assert!(parse_flat_json("{}").unwrap().is_empty());
    }

    #[test]
    fn escapes_roundtrip() {
        let original = "line1\nline2\t\"quoted\" \\slash ünïcödé";
        let wire = format!("{{\"s\": \"{}\"}}", escape(original));
        let m = parse_flat_json(&wire).unwrap();
        assert_eq!(m["s"], JsonValue::Str(original.into()));
    }

    #[test]
    fn rejects_malformed_and_nested() {
        assert!(parse_flat_json("").is_err());
        assert!(parse_flat_json("{").is_err());
        assert!(parse_flat_json(r#"{"a": }"#).is_err());
        assert!(parse_flat_json(r#"{"a": {"b": 1}}"#).is_err());
        assert!(parse_flat_json(r#"{"a": [1]}"#).is_err());
        assert!(parse_flat_json(r#"{"a": 1} extra"#).is_err());
        assert!(parse_flat_json(r#"{"a": truthy}"#).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        // Raw UTF-8 passthrough and \uXXXX escapes both decode.
        let m = parse_flat_json("{\"s\": \"Aé\", \"t\": \"A\\u00e9\"}").unwrap();
        assert_eq!(m["s"], JsonValue::Str("Aé".into()));
        assert_eq!(m["t"], JsonValue::Str("Aé".into()));
        // Non-BMP characters arrive as surrogate pairs from standard
        // encoders and must decode to the real character.
        let m = parse_flat_json("{\"e\": \"\\ud83d\\ude00\"}").unwrap();
        assert_eq!(m["e"], JsonValue::Str("😀".into()));
        // Lone or malformed surrogates are errors, not silent U+FFFD.
        assert!(parse_flat_json("{\"e\": \"\\ud83d\"}").is_err());
        assert!(parse_flat_json("{\"e\": \"\\ud83dx\"}").is_err());
        assert!(parse_flat_json("{\"e\": \"\\ud83d\\u0041\"}").is_err());
        assert!(parse_flat_json("{\"e\": \"\\udc00\"}").is_err());
    }
}
