//! The structure-fingerprint artifact cache.
//!
//! MATEX's economics: one circuit's expensive artifacts — the symbolic
//! LU analysis of its MNA patterns, the numeric factors of `G` and
//! `C + γG`, the DC operating point, and the source-group schedule —
//! are all reusable across the many transients the circuit spawns. This
//! cache keys them in two levels:
//!
//! * the **circuit level** is the MNA *pattern* fingerprint
//!   ([`MnaSystem::pattern_fingerprint`]): everything under one entry
//!   shares sparsity structure,
//! * within an entry, numeric artifacts key on the *value* fingerprint
//!   (and γ bits, and — for DC solutions and group plans — the source
//!   fingerprint and window), so a lookup hit is exactly a bitwise
//!   replay.
//!
//! Symbolic analyses are **γ-decade anchored** (the multi-anchor reuse
//! scheme): an R-MATEX analysis pins a pivot order chosen at its
//! anchor γ; sweeps spanning decades re-use the nearest anchor whose
//! pivots survive, and the engine plants a fresh anchor whenever a
//! replay fell back to full factorization. Replay success implies the
//! pinned order is exactly what a fresh factorization would choose
//! (`matex_sparse::SymbolicLu`'s re-verification contract), so anchor
//! reuse never changes a waveform bit.
//!
//! Whole circuit entries are evicted least-recently-used beyond
//! `max_circuits`.

use matex_circuit::MnaSystem;
use matex_core::{KrylovKind, MatexSetup, MatexSymbolic};
use matex_dist::GroupPlan;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Key of a numeric setup: exact matrix values, variant, γ bits, and —
/// for MEXP, whose effective `C` depends on it — the regularization ε.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct SetupKey {
    pub value_fp: u64,
    pub kind: KrylovKind,
    pub gamma_bits: u64,
    pub regularize_bits: u64,
    /// Whether the setup carries substitution schedules (pooled runs).
    pub scheduled: bool,
}

/// Key of a DC operating point: matrix values, sources, start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct DcKey {
    pub value_fp: u64,
    pub source_fp: u64,
    pub t_start_bits: u64,
}

/// Key of a group plan: sources, strategy, window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct PlanKey {
    pub source_fp: u64,
    pub strategy: u64,
    pub t_start_bits: u64,
    pub t_stop_bits: u64,
}

/// One γ-decade symbolic anchor.
#[derive(Debug, Clone)]
struct Anchor {
    decade: i32,
    symbolic: Arc<MatexSymbolic>,
}

/// All cached artifacts of one circuit structure.
#[derive(Debug, Default)]
struct CircuitEntry {
    /// R-MATEX symbolic analyses, one anchor per γ decade.
    anchors: Vec<Anchor>,
    /// γ-independent analyses for the other variants, by kind.
    plain: HashMap<KrylovKind, Arc<MatexSymbolic>>,
    setups: HashMap<SetupKey, Arc<MatexSetup>>,
    dcs: HashMap<DcKey, Arc<Vec<f64>>>,
    plans: HashMap<PlanKey, Arc<GroupPlan>>,
    /// What-if base candidates: the systems whose setups were *fully*
    /// prepared (never corrected), keyed by value fingerprint,
    /// insertion-ordered and bounded. A later same-pattern job diffs
    /// against these to find a small edit it can serve by SMW
    /// correction instead of refactoring.
    bases: Vec<(u64, Arc<MnaSystem>)>,
    /// LRU stamp (monotonic touch counter).
    touched: u64,
}

/// Sizes of the cache, for stats reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSizes {
    /// Distinct circuit structures.
    pub circuits: usize,
    /// Symbolic anchors (all decades and variants).
    pub symbolics: usize,
    /// Numeric setups.
    pub setups: usize,
    /// DC operating points.
    pub dcs: usize,
    /// Group plans.
    pub plans: usize,
}

/// γ decade of an anchor: `⌊log10 γ⌋`. Non-positive or non-finite γ
/// maps to a sentinel decade far outside the representable f64 range
/// (|decade| ≤ 308 for any finite positive γ) but small enough that
/// decade *differences* never overflow `i32`: such γs share one
/// anchor slot among themselves and never neighbor a real decade.
pub(crate) fn gamma_decade(gamma: f64) -> i32 {
    if gamma > 0.0 && gamma.is_finite() {
        gamma.log10().floor() as i32
    } else {
        -100_000
    }
}

/// The thread-safe two-level artifact cache.
///
/// Artifact construction happens outside the lock (two racing cold jobs
/// may both build; the first insert wins and the duplicate is dropped —
/// correctness is unaffected because every artifact is a pure function
/// of its key).
#[derive(Debug)]
pub(crate) struct ArtifactCache {
    inner: Mutex<CacheInner>,
}

#[derive(Debug)]
struct CacheInner {
    entries: HashMap<u64, CircuitEntry>,
    max_circuits: usize,
    clock: u64,
    /// Whole-circuit LRU evictions performed.
    evictions: u64,
}

impl ArtifactCache {
    pub fn new(max_circuits: usize) -> ArtifactCache {
        ArtifactCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                max_circuits: max_circuits.max(1),
                clock: 0,
                evictions: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Looks up a symbolic analysis for `(pattern, kind, γ)`. For
    /// R-MATEX, returns the anchor of γ's decade, or the nearest anchor
    /// within `span` decades (flagged `true`). Touches the entry.
    pub fn symbolic(
        &self,
        pattern: u64,
        kind: KrylovKind,
        gamma: f64,
        span: i32,
    ) -> Option<(Arc<MatexSymbolic>, bool)> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.entries.get_mut(&pattern)?;
        entry.touched = clock;
        if kind != KrylovKind::Rational {
            return entry.plain.get(&kind).map(|s| (s.clone(), false));
        }
        let decade = gamma_decade(gamma);
        let best = entry
            .anchors
            .iter()
            .min_by_key(|a| ((a.decade - decade).abs(), a.decade))?;
        let dist = (best.decade - decade).abs();
        if dist > span {
            return None;
        }
        Some((best.symbolic.clone(), dist != 0))
    }

    /// Inserts (or replaces) the symbolic analysis anchored at γ's
    /// decade.
    pub fn store_symbolic(
        &self,
        pattern: u64,
        kind: KrylovKind,
        gamma: f64,
        symbolic: Arc<MatexSymbolic>,
    ) {
        let mut inner = self.lock();
        let entry = inner.entry(pattern);
        if kind != KrylovKind::Rational {
            entry.plain.insert(kind, symbolic);
            return;
        }
        let decade = gamma_decade(gamma);
        match entry.anchors.iter_mut().find(|a| a.decade == decade) {
            Some(a) => a.symbolic = symbolic,
            None => entry.anchors.push(Anchor { decade, symbolic }),
        }
    }

    pub fn setup(&self, pattern: u64, key: &SetupKey) -> Option<Arc<MatexSetup>> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.entries.get_mut(&pattern)?;
        entry.touched = clock;
        entry.setups.get(key).cloned()
    }

    pub fn store_setup(&self, pattern: u64, key: SetupKey, setup: Arc<MatexSetup>) {
        let mut inner = self.lock();
        inner.entry(pattern).setups.entry(key).or_insert(setup);
    }

    /// Quarantine eviction: drops the setup under `key` so the next job
    /// recomputes it instead of re-hitting an entry that just served a
    /// failed execution. Returns whether anything was evicted. Base
    /// candidates keep the *system* (pure input data), so what-if bases
    /// need no eviction — their corrected setups are keyed here too and
    /// leave with the setup.
    pub fn remove_setup(&self, pattern: u64, key: &SetupKey) -> bool {
        let mut inner = self.lock();
        inner
            .entries
            .get_mut(&pattern)
            .is_some_and(|e| e.setups.remove(key).is_some())
    }

    /// Quarantine eviction of a DC operating point; see
    /// [`ArtifactCache::remove_setup`].
    pub fn remove_dc(&self, pattern: u64, key: &DcKey) -> bool {
        let mut inner = self.lock();
        inner
            .entries
            .get_mut(&pattern)
            .is_some_and(|e| e.dcs.remove(key).is_some())
    }

    pub fn dc(&self, pattern: u64, key: &DcKey) -> Option<Arc<Vec<f64>>> {
        self.lock().entries.get(&pattern)?.dcs.get(key).cloned()
    }

    pub fn store_dc(&self, pattern: u64, key: DcKey, x0: Arc<Vec<f64>>) {
        let mut inner = self.lock();
        inner.entry(pattern).dcs.entry(key).or_insert(x0);
    }

    pub fn plan(&self, pattern: u64, key: &PlanKey) -> Option<Arc<GroupPlan>> {
        self.lock().entries.get(&pattern)?.plans.get(key).cloned()
    }

    pub fn store_plan(&self, pattern: u64, key: PlanKey, plan: Arc<GroupPlan>) {
        let mut inner = self.lock();
        inner.entry(pattern).plans.entry(key).or_insert(plan);
    }

    /// Records a fully-prepared system as a what-if base candidate
    /// (deduplicated by value fingerprint; oldest dropped beyond `max`).
    pub fn record_base(&self, pattern: u64, value_fp: u64, sys: Arc<MnaSystem>, max: usize) {
        if max == 0 {
            return;
        }
        let mut inner = self.lock();
        let bases = &mut inner.entry(pattern).bases;
        if bases.iter().any(|(fp, _)| *fp == value_fp) {
            return;
        }
        bases.push((value_fp, sys));
        while bases.len() > max {
            bases.remove(0);
        }
    }

    /// The retained what-if base candidates for `pattern`.
    pub fn bases(&self, pattern: u64) -> Vec<(u64, Arc<MnaSystem>)> {
        self.lock()
            .entries
            .get(&pattern)
            .map(|e| e.bases.clone())
            .unwrap_or_default()
    }

    /// Whole-circuit LRU evictions performed so far.
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Current artifact counts.
    pub fn sizes(&self) -> CacheSizes {
        let inner = self.lock();
        let mut s = CacheSizes {
            circuits: inner.entries.len(),
            ..CacheSizes::default()
        };
        for e in inner.entries.values() {
            s.symbolics += e.anchors.len() + e.plain.len();
            s.setups += e.setups.len();
            s.dcs += e.dcs.len();
            s.plans += e.plans.len();
        }
        s
    }
}

impl CacheInner {
    /// The entry for `pattern`, creating it (and evicting the
    /// least-recently-touched circuit beyond capacity) as needed.
    fn entry(&mut self, pattern: u64) -> &mut CircuitEntry {
        self.clock += 1;
        let clock = self.clock;
        if !self.entries.contains_key(&pattern) && self.entries.len() >= self.max_circuits {
            let oldest = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.touched)
                .map(|(&k, _)| k);
            if let Some(k) = oldest {
                self.entries.remove(&k);
                self.evictions += 1;
            }
        }
        let entry = self.entries.entry(pattern).or_default();
        entry.touched = clock;
        entry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::RcMeshBuilder;
    use matex_core::MatexOptions;

    fn sample_symbolic() -> Arc<MatexSymbolic> {
        let sys = RcMeshBuilder::new(3, 3).build().unwrap();
        Arc::new(MatexSymbolic::analyze(&sys, &MatexOptions::default()).unwrap())
    }

    #[test]
    fn decade_math() {
        assert_eq!(gamma_decade(1e-10), -10);
        assert_eq!(gamma_decade(5e-10), -10);
        assert_eq!(gamma_decade(1e-9), -9);
        assert_eq!(gamma_decade(0.0), -100_000);
        assert_eq!(gamma_decade(-3.0), -100_000);
        assert_eq!(gamma_decade(f64::NAN), -100_000);
        // The sentinel keeps decade differences overflow-free.
        let d = gamma_decade(0.0);
        assert!((gamma_decade(1.0) - d).checked_abs().is_some());
    }

    #[test]
    fn degenerate_gamma_never_neighbors_a_real_anchor() {
        let cache = ArtifactCache::new(4);
        let sym = sample_symbolic();
        // An anchor at decade 0 (γ = 1.0) must not be handed to a γ = 0
        // job even with a huge span, and vice versa.
        cache.store_symbolic(9, KrylovKind::Rational, 1.0, sym.clone());
        assert!(cache.symbolic(9, KrylovKind::Rational, 0.0, 10).is_none());
        cache.store_symbolic(9, KrylovKind::Rational, 0.0, sym);
        let (_, neighbor) = cache.symbolic(9, KrylovKind::Rational, -2.0, 0).unwrap();
        assert!(!neighbor, "degenerate γs share one exact slot");
        assert!(cache.symbolic(9, KrylovKind::Rational, 1.0, 1).is_some());
    }

    #[test]
    fn anchors_by_decade_with_span() {
        let cache = ArtifactCache::new(4);
        let sym = sample_symbolic();
        cache.store_symbolic(7, KrylovKind::Rational, 1e-10, sym.clone());
        // Same decade: exact hit.
        let (_, neighbor) = cache.symbolic(7, KrylovKind::Rational, 3e-10, 1).unwrap();
        assert!(!neighbor);
        // One decade off, within span: neighbor hit.
        let (_, neighbor) = cache.symbolic(7, KrylovKind::Rational, 1e-9, 1).unwrap();
        assert!(neighbor);
        // Two decades off, span 1: miss.
        assert!(cache.symbolic(7, KrylovKind::Rational, 1e-8, 1).is_none());
        // Unknown circuit: miss.
        assert!(cache.symbolic(8, KrylovKind::Rational, 1e-10, 1).is_none());
        // Non-rational analyses are keyed by kind, not γ.
        cache.store_symbolic(7, KrylovKind::Inverted, 0.0, sym);
        assert!(cache.symbolic(7, KrylovKind::Inverted, 123.0, 0).is_some());
        assert!(cache.symbolic(7, KrylovKind::Standard, 1e-10, 0).is_none());
    }

    #[test]
    fn lru_evicts_whole_circuits() {
        let cache = ArtifactCache::new(2);
        let sym = sample_symbolic();
        cache.store_symbolic(1, KrylovKind::Rational, 1e-10, sym.clone());
        cache.store_symbolic(2, KrylovKind::Rational, 1e-10, sym.clone());
        // Touch circuit 1 so circuit 2 is the LRU.
        assert!(cache.symbolic(1, KrylovKind::Rational, 1e-10, 0).is_some());
        cache.store_symbolic(3, KrylovKind::Rational, 1e-10, sym);
        let sizes = cache.sizes();
        assert_eq!(sizes.circuits, 2);
        assert!(cache.symbolic(2, KrylovKind::Rational, 1e-10, 0).is_none());
        assert!(cache.symbolic(1, KrylovKind::Rational, 1e-10, 0).is_some());
    }
}
