//! Disk-backed artifact store: fleet-shared reuse of expensive analyses.
//!
//! The MATEX framework is distributed — an analysis computed once should
//! be reusable by *every* process serving the same circuit, including a
//! restarted service. The in-memory `ArtifactCache` of `matex-serve`
//! dies with its process; an [`ArtifactStore`] persists the four
//! artifact classes the engine caches — [`MatexSymbolic`] analyses,
//! [`MatexSetup`] factor bundles, DC operating points, and
//! [`GroupPlan`] schedules — as versioned, checksummed binary records
//! keyed by the same content fingerprints the cache uses.
//!
//! The store is deliberately boring in the ways that matter:
//!
//! * **Atomic writes.** Records are written to a temp file and
//!   `rename`d into place, so concurrent writers (fleet members sharing
//!   a directory) and crashes can never publish a half-written record.
//! * **Corruption is a miss.** Every load re-verifies magic, schema
//!   version, class, embedded key, and an FNV-64 checksum over the
//!   whole record. Truncated, bit-flipped, or foreign files decode to
//!   `None` — never a panic, never garbage artifacts.
//! * **Versioned.** A bumped [`SCHEMA_VERSION`] silently invalidates
//!   old stores instead of misreading them.
//! * **Bitwise.** The payload codecs (see `matex_sparse::WireWriter`)
//!   round-trip every `f64` by bit pattern, so a run served from the
//!   store is bitwise-identical to the run that populated it.
//!
//! # Example
//!
//! ```
//! use matex_circuit::PdnBuilder;
//! use matex_core::TransientSpec;
//! use matex_dist::plan_groups;
//! use matex_store::{ArtifactStore, PlanStoreKey};
//! use matex_waveform::GroupingStrategy;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let dir = std::env::temp_dir().join(format!("matex-store-doc-{}", std::process::id()));
//! let store = ArtifactStore::open(&dir)?;
//!
//! let sys = PdnBuilder::new(6, 6).num_loads(8).window(1e-9).build()?;
//! let spec = TransientSpec::new(0.0, 1e-9, 2e-11)?;
//! let plan = plan_groups(&sys, &spec, GroupingStrategy::ByBumpFeature);
//!
//! let key = PlanStoreKey {
//!     source_fp: 0x1234,
//!     strategy: 0,
//!     t_start_bits: spec.t_start().to_bits(),
//!     t_stop_bits: spec.t_stop().to_bits(),
//! };
//! store.save_plan(&key, &plan)?;
//! // A different process opening the same directory sees the record.
//! let restarted = ArtifactStore::open(&dir)?;
//! let back = restarted.load_plan(&key).expect("persisted plan");
//! assert_eq!(back.num_jobs(), plan.num_jobs());
//! assert_eq!(back.order(), plan.order());
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

use matex_core::{FaultHook, FaultKind, MatexSetup, MatexSymbolic};
use matex_dist::GroupPlan;
use matex_sparse::{WireReader, WireWriter};
use matex_waveform::Fnv64;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Record layout revision. Bumping it orphans (skips) every record an
/// older build wrote; old processes likewise skip newer records.
pub const SCHEMA_VERSION: u32 = 1;

/// Leading magic of every record file.
const MAGIC: &[u8; 4] = b"MXST";

/// The artifact classes the store persists. The tag is part of both the
/// record and its filename, so one directory holds all classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ArtifactClass {
    /// A [`MatexSymbolic`] analysis bundle (pattern-keyed).
    Symbolic = 1,
    /// A [`MatexSetup`] factor bundle (value-keyed).
    Setup = 2,
    /// A DC operating point (value- and source-keyed).
    Dc = 3,
    /// A [`GroupPlan`] schedule (source-keyed).
    Plan = 4,
}

impl ArtifactClass {
    fn label(self) -> &'static str {
        match self {
            ArtifactClass::Symbolic => "symbolic",
            ArtifactClass::Setup => "setup",
            ArtifactClass::Dc => "dc",
            ArtifactClass::Plan => "plan",
        }
    }
}

/// Key of a persisted symbolic analysis: the engine's anchor identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolicStoreKey {
    /// MNA pattern fingerprint.
    pub pattern_fp: u64,
    /// Krylov variant wire tag.
    pub kind_tag: u8,
    /// γ decade the anchor was analyzed at.
    pub gamma_decade: i32,
}

/// Key of a persisted numeric setup: the engine's `SetupKey` identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SetupStoreKey {
    /// System value fingerprint.
    pub value_fp: u64,
    /// Krylov variant wire tag.
    pub kind_tag: u8,
    /// Bit pattern of γ.
    pub gamma_bits: u64,
    /// Bit pattern of the MEXP regularization ε.
    pub regularize_bits: u64,
    /// Whether substitution schedules were prepared.
    pub scheduled: bool,
}

/// Key of a persisted DC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DcStoreKey {
    /// System value fingerprint.
    pub value_fp: u64,
    /// Source-waveform fingerprint.
    pub source_fp: u64,
    /// Bit pattern of the window start time.
    pub t_start_bits: u64,
}

/// Key of a persisted group plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanStoreKey {
    /// Source-waveform fingerprint.
    pub source_fp: u64,
    /// Grouping-strategy tag (the engine's plan-cache convention).
    pub strategy: u64,
    /// Bit pattern of the window start time.
    pub t_start_bits: u64,
    /// Bit pattern of the window stop time.
    pub t_stop_bits: u64,
}

impl SymbolicStoreKey {
    fn fields(&self) -> Vec<u64> {
        vec![
            self.pattern_fp,
            self.kind_tag as u64,
            self.gamma_decade as i64 as u64,
        ]
    }
}

impl SetupStoreKey {
    fn fields(&self) -> Vec<u64> {
        vec![
            self.value_fp,
            self.kind_tag as u64,
            self.gamma_bits,
            self.regularize_bits,
            self.scheduled as u64,
        ]
    }
}

impl DcStoreKey {
    fn fields(&self) -> Vec<u64> {
        vec![self.value_fp, self.source_fp, self.t_start_bits]
    }
}

impl PlanStoreKey {
    fn fields(&self) -> Vec<u64> {
        vec![
            self.source_fp,
            self.strategy,
            self.t_start_bits,
            self.t_stop_bits,
        ]
    }
}

/// Behavioural options of an [`ArtifactStore`].
#[derive(Debug, Clone, Default)]
pub struct StoreOptions {
    /// Fault-injection hook consulted at `"store.write"` (once per
    /// record save, before the temp file publishes) and `"store.read"`
    /// (once per record load). Disarmed by default. Both kinds degrade
    /// identically — an injected write dies mid-write like a full disk
    /// or crash, an injected read is a miss like a corrupted record —
    /// so faults exercise exactly the store's real failure contract.
    pub faults: FaultHook,
    /// Observability handle: every record save and load records a
    /// `store.write` / `store.read` span labeled by artifact class and
    /// outcome, plus `store_write_seconds` / `store_read_seconds`
    /// histograms and a `store_io_errors_total` counter. Disabled by
    /// default (one branch per event).
    pub obs: matex_obs::Obs,
}

/// A disk-backed artifact store rooted at one directory.
///
/// Cheap to clone behind an `Arc`; safe to share between processes —
/// all publication is temp-file + atomic rename.
///
/// The store is an accelerator, never a correctness dependency: every
/// I/O failure (real or injected) degrades to compute-through — saves
/// report the error for the caller to ignore, loads miss — and is
/// tallied in [`ArtifactStore::io_errors`].
#[derive(Debug)]
pub struct ArtifactStore {
    dir: PathBuf,
    /// Disambiguates temp names within one process.
    temp_seq: AtomicU64,
    /// I/O failures observed (save errors + non-`NotFound` read errors,
    /// real and injected).
    errors: AtomicU64,
    opts: StoreOptions,
}

impl ArtifactStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<ArtifactStore> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens a store with explicit [`StoreOptions`].
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open_with(dir: impl AsRef<Path>, opts: StoreOptions) -> io::Result<ArtifactStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        Ok(ArtifactStore {
            dir,
            temp_seq: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            opts,
        })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// I/O failures absorbed so far (failed saves and unreadable — not
    /// merely absent — records, real and injected).
    pub fn io_errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Persists a symbolic analysis bundle.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures (callers may treat them as "not stored").
    pub fn save_symbolic(&self, key: &SymbolicStoreKey, sym: &MatexSymbolic) -> io::Result<()> {
        let mut w = WireWriter::new();
        sym.wire_encode(&mut w);
        self.save_raw(ArtifactClass::Symbolic, &key.fields(), &w.into_bytes())
    }

    /// Loads a symbolic analysis bundle; any corruption or mismatch is a
    /// miss.
    pub fn load_symbolic(&self, key: &SymbolicStoreKey) -> Option<MatexSymbolic> {
        let payload = self.load_raw(ArtifactClass::Symbolic, &key.fields())?;
        MatexSymbolic::wire_decode(&mut WireReader::new(&payload)).ok()
    }

    /// Persists an **uncorrected** numeric setup.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for corrected (what-if) setups — their waveforms
    /// are approximate, so persisting them would break the store's
    /// bitwise-restart guarantee — plus any I/O failure.
    pub fn save_setup(&self, key: &SetupStoreKey, setup: &MatexSetup) -> io::Result<()> {
        let mut w = WireWriter::new();
        setup
            .wire_encode(&mut w)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.save_raw(ArtifactClass::Setup, &key.fields(), &w.into_bytes())
    }

    /// Loads a numeric setup; any corruption or mismatch is a miss.
    pub fn load_setup(&self, key: &SetupStoreKey) -> Option<MatexSetup> {
        let payload = self.load_raw(ArtifactClass::Setup, &key.fields())?;
        MatexSetup::wire_decode(&mut WireReader::new(&payload)).ok()
    }

    /// Persists a DC operating point.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_dc(&self, key: &DcStoreKey, dc: &[f64]) -> io::Result<()> {
        let mut w = WireWriter::new();
        w.f64s(dc);
        self.save_raw(ArtifactClass::Dc, &key.fields(), &w.into_bytes())
    }

    /// Loads a DC operating point; any corruption or mismatch is a miss.
    pub fn load_dc(&self, key: &DcStoreKey) -> Option<Vec<f64>> {
        let payload = self.load_raw(ArtifactClass::Dc, &key.fields())?;
        let mut r = WireReader::new(&payload);
        let dc = r.f64s().ok()?;
        r.is_empty().then_some(dc)
    }

    /// Persists a group plan.
    ///
    /// # Errors
    ///
    /// `InvalidInput` for a strategy without a stable wire tag, plus any
    /// I/O failure.
    pub fn save_plan(&self, key: &PlanStoreKey, plan: &GroupPlan) -> io::Result<()> {
        let mut w = WireWriter::new();
        plan.wire_encode(&mut w)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.save_raw(ArtifactClass::Plan, &key.fields(), &w.into_bytes())
    }

    /// Loads a group plan; any corruption or mismatch is a miss.
    pub fn load_plan(&self, key: &PlanStoreKey) -> Option<GroupPlan> {
        let payload = self.load_raw(ArtifactClass::Plan, &key.fields())?;
        GroupPlan::wire_decode(&mut WireReader::new(&payload)).ok()
    }

    /// The record path for `(class, key)`: hex key fields in the name,
    /// so one directory listing is human-debuggable.
    fn record_path(&self, class: ArtifactClass, key: &[u64]) -> PathBuf {
        let mut name = String::from(class.label());
        for f in key {
            name.push('-');
            name.push_str(&format!("{f:016x}"));
        }
        name.push_str(".mxst");
        self.dir.join(name)
    }

    /// Assembles a record and publishes it atomically, timing the
    /// attempt when observability is enabled.
    fn save_raw(&self, class: ArtifactClass, key: &[u64], payload: &[u8]) -> io::Result<()> {
        let obs = &self.opts.obs;
        if !obs.is_enabled() {
            return self.save_raw_inner(class, key, payload);
        }
        let t0 = Instant::now();
        let out = self.save_raw_inner(class, key, payload);
        let d = t0.elapsed();
        let ok = if out.is_ok() { "1" } else { "0" };
        obs.record_span(
            "store.write",
            obs.job(),
            t0,
            d,
            &[("class", class.label()), ("ok", ok)],
        );
        obs.observe_labeled("store_write_seconds", &[("class", class.label())], d);
        if out.is_err() {
            obs.add_labeled("store_io_errors_total", &[("op", "write")], 1);
        }
        out
    }

    fn save_raw_inner(&self, class: ArtifactClass, key: &[u64], payload: &[u8]) -> io::Result<()> {
        let mut record = Vec::with_capacity(payload.len() + 64);
        record.extend_from_slice(MAGIC);
        record.extend_from_slice(&SCHEMA_VERSION.to_le_bytes());
        record.push(class as u8);
        record.push(key.len() as u8);
        for &f in key {
            record.extend_from_slice(&f.to_le_bytes());
        }
        record.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        record.extend_from_slice(payload);
        let mut h = Fnv64::new();
        h.write_bytes(&record);
        let checksum = h.finish();
        record.extend_from_slice(&checksum.to_le_bytes());

        // Publish atomically: a unique temp name (pid + in-process
        // sequence number) then rename, so concurrent writers of the
        // same key race to an identical record and readers never see a
        // partial write.
        let temp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.temp_seq.fetch_add(1, Ordering::Relaxed)
        ));
        let write = match self.opts.faults.check("store.write") {
            // An injected fault dies after a partial write, like a full
            // disk or a crash mid-flush — the worst case the atomic
            // publish path must absorb.
            Some(_) => std::fs::write(&temp, &record[..record.len() / 2])
                .and_then(|()| Err(io::Error::other("injected fault: store.write"))),
            None => std::fs::write(&temp, &record),
        };
        if let Err(e) = write {
            // A failed write must never leave temp debris behind.
            std::fs::remove_file(&temp).ok();
            self.errors.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let dest = self.record_path(class, key);
        match std::fs::rename(&temp, &dest) {
            Ok(()) => Ok(()),
            Err(e) => {
                std::fs::remove_file(&temp).ok();
                self.errors.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Reads and fully verifies a record, returning its payload. Every
    /// failure mode — absent file, bad magic, foreign schema, class or
    /// key mismatch, truncation, checksum mismatch — is a miss.
    fn load_raw(&self, class: ArtifactClass, key: &[u64]) -> Option<Vec<u8>> {
        let obs = &self.opts.obs;
        if !obs.is_enabled() {
            return self.load_raw_inner(class, key);
        }
        let t0 = Instant::now();
        let errors_before = self.io_errors();
        let out = self.load_raw_inner(class, key);
        let d = t0.elapsed();
        let result = if out.is_some() { "hit" } else { "miss" };
        obs.record_span(
            "store.read",
            obs.job(),
            t0,
            d,
            &[("class", class.label()), ("result", result)],
        );
        obs.observe_labeled("store_read_seconds", &[("class", class.label())], d);
        if self.io_errors() > errors_before {
            obs.add_labeled("store_io_errors_total", &[("op", "read")], 1);
        }
        out
    }

    fn load_raw_inner(&self, class: ArtifactClass, key: &[u64]) -> Option<Vec<u8>> {
        if matches!(
            self.opts.faults.check("store.read"),
            Some(FaultKind::Panic | FaultKind::Error)
        ) {
            // An injected read fault is indistinguishable from an
            // unreadable record: a counted, clean miss.
            self.errors.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let record = match std::fs::read(self.record_path(class, key)) {
            Ok(r) => r,
            Err(e) => {
                if e.kind() != io::ErrorKind::NotFound {
                    self.errors.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        // Checksum first: everything else is only meaningful on an
        // intact record.
        if record.len() < MAGIC.len() + 4 + 2 + 8 + 8 {
            return None;
        }
        let (body, tail) = record.split_at(record.len() - 8);
        let mut h = Fnv64::new();
        h.write_bytes(body);
        if h.finish().to_le_bytes() != tail {
            return None;
        }
        let mut r = WireReader::new(body);
        let mut magic = [0u8; 4];
        for m in &mut magic {
            *m = r.u8().ok()?;
        }
        if &magic != MAGIC || r.u32().ok()? != SCHEMA_VERSION {
            return None;
        }
        if r.u8().ok()? != class as u8 || r.u8().ok()? as usize != key.len() {
            return None;
        }
        for &expect in key {
            if r.u64().ok()? != expect {
                return None;
            }
        }
        let payload_len = r.u64().ok()?;
        if payload_len != r.remaining() as u64 {
            return None;
        }
        let mut payload = Vec::with_capacity(payload_len as usize);
        while !r.is_empty() {
            payload.push(r.u8().ok()?);
        }
        Some(payload)
    }
}

// Compile the crate README's code blocks as doctests.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::PdnBuilder;
    use matex_core::{MatexOptions, TransientSpec};
    use matex_dist::plan_groups;
    use matex_waveform::GroupingStrategy;

    fn scratch(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("matex-store-test-{}-{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn sys() -> matex_circuit::MnaSystem {
        PdnBuilder::new(6, 6)
            .num_loads(8)
            .num_features(3)
            .window(1e-9)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn setup_round_trips_bitwise_across_reopen() {
        let dir = scratch("setup");
        let sys = sys();
        let opts = MatexOptions::default();
        let symbolic = MatexSymbolic::analyze(&sys, &opts).unwrap();
        let setup = MatexSetup::prepare(&sys, &opts, Some(&symbolic), true).unwrap();
        let key = SetupStoreKey {
            value_fp: 0xAB,
            kind_tag: 2,
            gamma_bits: opts.gamma.to_bits(),
            regularize_bits: opts.regularize_eps.to_bits(),
            scheduled: true,
        };
        let store = ArtifactStore::open(&dir).unwrap();
        store.save_setup(&key, &setup).unwrap();
        let store2 = ArtifactStore::open(&dir).unwrap();
        let back = store2.load_setup(&key).expect("hit");
        // Decoded setups factored nothing...
        assert_eq!(back.factorizations(), 0);
        // ...and solve bitwise like the original (factors + schedules).
        let b: Vec<f64> = (0..sys.dim()).map(|i| (i % 5) as f64 - 2.0).collect();
        let (x1, x2) = (setup.solve_g(&b), back.solve_g(&b));
        assert!(x1.iter().zip(&x2).all(|(a, c)| a.to_bits() == c.to_bits()));
        assert_eq!(back.sched_g().is_some(), setup.sched_g().is_some());
        assert_eq!(back.kind(), setup.kind());
        // A different key is a miss, not a collision.
        let other = SetupStoreKey {
            value_fp: 0xAC,
            ..key
        };
        assert!(store2.load_setup(&other).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn symbolic_and_dc_round_trip() {
        let dir = scratch("symdc");
        let store = ArtifactStore::open(&dir).unwrap();
        let sys = sys();
        let opts = MatexOptions::default();
        let sym = MatexSymbolic::analyze(&sys, &opts).unwrap();
        let skey = SymbolicStoreKey {
            pattern_fp: 0x77,
            kind_tag: 2,
            gamma_decade: -10,
        };
        store.save_symbolic(&skey, &sym).unwrap();
        let back = store.load_symbolic(&skey).expect("hit");
        // The decoded analysis replays to the same factors.
        let lu_a = sym.g().refactor(sys.g()).unwrap();
        let lu_b = back.g().refactor(sys.g()).unwrap();
        let b: Vec<f64> = (0..sys.dim()).map(|i| 1.0 + i as f64).collect();
        assert_eq!(lu_a.solve(&b), lu_b.solve(&b));
        assert!(back.shifted().is_some());

        let dkey = DcStoreKey {
            value_fp: 1,
            source_fp: 2,
            t_start_bits: 0.0f64.to_bits(),
        };
        let dc: Vec<f64> = (0..7).map(|i| (i as f64).sin()).collect();
        store.save_dc(&dkey, &dc).unwrap();
        let got = store.load_dc(&dkey).expect("hit");
        assert!(dc.iter().zip(&got).all(|(a, c)| a.to_bits() == c.to_bits()));
        // A negative decade must not collide with a positive one.
        let skey_pos = SymbolicStoreKey {
            gamma_decade: 10,
            ..skey
        };
        assert!(store.load_symbolic(&skey_pos).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_truncation_and_every_bit_flip_is_a_clean_miss() {
        let dir = scratch("corrupt");
        let store = ArtifactStore::open(&dir).unwrap();
        let key = DcStoreKey {
            value_fp: 9,
            source_fp: 8,
            t_start_bits: 7,
        };
        store.save_dc(&key, &[1.25, -2.5, 3.75]).unwrap();
        let path = store.record_path(ArtifactClass::Dc, &key.fields());
        let pristine = std::fs::read(&path).unwrap();
        assert!(store.load_dc(&key).is_some());
        // Truncations at every length.
        for cut in 0..pristine.len() {
            std::fs::write(&path, &pristine[..cut]).unwrap();
            assert!(store.load_dc(&key).is_none(), "truncated at {cut}");
        }
        // A bit flip in every byte position.
        for pos in 0..pristine.len() {
            let mut bad = pristine.clone();
            bad[pos] ^= 0x10;
            std::fs::write(&path, &bad).unwrap();
            assert!(store.load_dc(&key).is_none(), "bit flip at {pos}");
        }
        // Restoring the pristine record restores the hit.
        std::fs::write(&path, &pristine).unwrap();
        assert!(store.load_dc(&key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn foreign_schema_versions_are_skipped() {
        let dir = scratch("schema");
        let store = ArtifactStore::open(&dir).unwrap();
        let key = DcStoreKey {
            value_fp: 1,
            source_fp: 1,
            t_start_bits: 1,
        };
        store.save_dc(&key, &[4.0]).unwrap();
        let path = store.record_path(ArtifactClass::Dc, &key.fields());
        let mut record = std::fs::read(&path).unwrap();
        // Bump the schema version and re-seal the checksum: a structurally
        // valid record from a *different* store generation.
        let future = (SCHEMA_VERSION + 1).to_le_bytes();
        record[4..8].copy_from_slice(&future);
        let body_len = record.len() - 8;
        let mut h = Fnv64::new();
        h.write_bytes(&record[..body_len]);
        let sum = h.finish().to_le_bytes();
        record[body_len..].copy_from_slice(&sum);
        std::fs::write(&path, &record).unwrap();
        assert!(store.load_dc(&key).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_never_publish_a_torn_record() {
        let dir = scratch("race");
        let store = std::sync::Arc::new(ArtifactStore::open(&dir).unwrap());
        let key = DcStoreKey {
            value_fp: 5,
            source_fp: 6,
            t_start_bits: 7,
        };
        let payload: Vec<f64> = (0..512).map(|i| (i as f64).sqrt()).collect();
        let mut handles = Vec::new();
        for _ in 0..8 {
            let store = std::sync::Arc::clone(&store);
            let payload = payload.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..20 {
                    store.save_dc(&key, &payload).unwrap();
                    // Readers interleave with writers: every observed
                    // state is either a miss or the full payload.
                    if let Some(got) = store.load_dc(&key) {
                        assert_eq!(got.len(), payload.len());
                        assert!(got
                            .iter()
                            .zip(&payload)
                            .all(|(a, b)| a.to_bits() == b.to_bits()));
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // No temp litter survives the races.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_leaves_no_debris_and_reads_as_clean_miss() {
        use matex_core::FaultPlan;
        let dir = scratch("wfault");
        let store = ArtifactStore::open_with(
            &dir,
            StoreOptions {
                faults: FaultHook::new(FaultPlan::new().fail_at(
                    "store.write",
                    0,
                    FaultKind::Error,
                )),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        let key = DcStoreKey {
            value_fp: 3,
            source_fp: 4,
            t_start_bits: 5,
        };
        // The first save dies mid-write (a partial temp record)...
        let err = store.save_dc(&key, &[1.0, 2.0]).unwrap_err();
        assert!(err.to_string().contains("store.write"));
        assert_eq!(store.io_errors(), 1);
        // ...but leaves no temp debris behind...
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            leftovers.is_empty(),
            "write fault left debris: {leftovers:?}"
        );
        // ...and the key decodes as a clean miss, not a torn record.
        assert!(store.load_dc(&key).is_none());
        // The fault was one-shot: the retried save publishes and hits.
        store.save_dc(&key, &[1.0, 2.0]).unwrap();
        let got = store.load_dc(&key).expect("hit after retry");
        assert_eq!(got, vec![1.0, 2.0]);
        assert_eq!(store.io_errors(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_read_fault_is_a_counted_miss_then_recovers() {
        use matex_core::FaultPlan;
        let dir = scratch("rfault");
        let key = DcStoreKey {
            value_fp: 6,
            source_fp: 7,
            t_start_bits: 8,
        };
        // Publish through a clean store, then reopen with a read fault
        // armed on the first load only.
        ArtifactStore::open(&dir)
            .unwrap()
            .save_dc(&key, &[9.0])
            .unwrap();
        let store = ArtifactStore::open_with(
            &dir,
            StoreOptions {
                faults: FaultHook::new(FaultPlan::new().fail_at("store.read", 0, FaultKind::Error)),
                ..StoreOptions::default()
            },
        )
        .unwrap();
        assert!(store.load_dc(&key).is_none(), "injected read must miss");
        assert_eq!(store.io_errors(), 1);
        // The record itself was never harmed: the next read hits.
        assert_eq!(store.load_dc(&key).expect("hit"), vec![9.0]);
        assert_eq!(store.io_errors(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn plan_round_trips_through_the_store() {
        let dir = scratch("plan");
        let store = ArtifactStore::open(&dir).unwrap();
        let sys = sys();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        for (tag, strategy) in [
            (0u64, GroupingStrategy::ByBumpFeature),
            (2, GroupingStrategy::Single),
            (3 + (2u64 << 8), GroupingStrategy::MaxGroups(2)),
        ] {
            let plan = plan_groups(&sys, &spec, strategy);
            let key = PlanStoreKey {
                source_fp: 0xFEED,
                strategy: tag,
                t_start_bits: spec.t_start().to_bits(),
                t_stop_bits: spec.t_stop().to_bits(),
            };
            store.save_plan(&key, &plan).unwrap();
            let back = store.load_plan(&key).expect("hit");
            assert!(back.check(&sys, &spec, strategy).is_ok());
            assert_eq!(back.order(), plan.order());
            assert_eq!(back.num_jobs(), plan.num_jobs());
            assert_eq!(back.gts().as_slice(), plan.gts().as_slice());
            for (a, b) in back.jobs().iter().zip(plan.jobs()) {
                assert_eq!(a.group, b.group);
                assert_eq!(a.members, b.members);
                assert_eq!(a.lts.as_slice(), b.lts.as_slice());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
