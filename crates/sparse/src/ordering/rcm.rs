//! Reverse Cuthill–McKee ordering.

use crate::{CsrMatrix, Permutation};
use std::collections::VecDeque;

/// Computes a reverse Cuthill–McKee ordering of the pattern of `A + Aᵀ`.
///
/// RCM reduces bandwidth, which for the mesh-like conductance matrices of
/// power grids keeps LU fill within the band. The starting vertex of each
/// connected component is chosen pseudo-peripherally (double BFS).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn rcm_order(a: &CsrMatrix) -> Permutation {
    assert!(a.is_square(), "rcm_order requires a square matrix");
    let n = a.nrows();
    let adj = a.symmetric_adjacency();
    let deg: Vec<usize> = adj.iter().map(|l| l.len()).collect();
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut nbrs: Vec<usize> = Vec::new();
    for start in 0..n {
        if visited[start] {
            continue;
        }
        let root = pseudo_peripheral(&adj, &deg, start);
        // BFS in increasing-degree order.
        let mut queue = VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            nbrs.clear();
            nbrs.extend(adj[v].iter().copied().filter(|&u| !visited[u]));
            nbrs.sort_unstable_by_key(|&u| deg[u]);
            for &u in nbrs.iter() {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("BFS visits each vertex exactly once")
}

/// Finds a pseudo-peripheral vertex by repeated BFS: start anywhere, jump to
/// a minimum-degree vertex in the farthest level until eccentricity stops
/// growing.
fn pseudo_peripheral(adj: &[Vec<usize>], deg: &[usize], start: usize) -> usize {
    let mut root = start;
    let mut last_ecc = 0usize;
    for _ in 0..8 {
        let (levels, ecc) = bfs_levels(adj, root);
        if ecc <= last_ecc && last_ecc > 0 {
            break;
        }
        last_ecc = ecc;
        // Minimum-degree vertex in the last level.
        let far: Vec<usize> = levels
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == Some(ecc))
            .map(|(v, _)| v)
            .collect();
        if let Some(&v) = far.iter().min_by_key(|&&v| deg[v]) {
            if v == root {
                break;
            }
            root = v;
        } else {
            break;
        }
    }
    root
}

/// BFS levels from `root` within its connected component.
/// Returns `(level assignment, eccentricity)`.
fn bfs_levels(adj: &[Vec<usize>], root: usize) -> (Vec<Option<usize>>, usize) {
    let mut levels: Vec<Option<usize>> = vec![None; adj.len()];
    let mut queue = VecDeque::new();
    levels[root] = Some(0);
    queue.push_back(root);
    let mut ecc = 0;
    while let Some(v) = queue.pop_front() {
        let lv = levels[v].expect("queued vertices have levels");
        ecc = ecc.max(lv);
        for &u in &adj[v] {
            if levels[u].is_none() {
                levels[u] = Some(lv + 1);
                queue.push_back(u);
            }
        }
    }
    (levels, ecc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let n = nx * ny;
        let mut t = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                t.push((idx(x, y), idx(x, y), 4.0));
                if x + 1 < nx {
                    t.push((idx(x, y), idx(x + 1, y), -1.0));
                    t.push((idx(x + 1, y), idx(x, y), -1.0));
                }
                if y + 1 < ny {
                    t.push((idx(x, y), idx(x, y + 1), -1.0));
                    t.push((idx(x, y + 1), idx(x, y), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    fn bandwidth(a: &CsrMatrix, p: &Permutation) -> usize {
        let inv = p.inverse();
        let mut bw = 0usize;
        for r in 0..a.nrows() {
            for &c in a.row_indices(r) {
                bw = bw.max(inv.old_of(r).abs_diff(inv.old_of(c)));
            }
        }
        bw
    }

    #[test]
    fn rcm_reduces_bandwidth_on_shuffled_grid() {
        // A 12x12 grid in natural order has bandwidth 12; after a random
        // relabeling the bandwidth explodes, and RCM should restore it to
        // O(grid width).
        let a = grid(12, 12);
        let n = a.nrows();
        // Deterministic shuffle via multiplicative hashing.
        let shuffle: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            v.sort_unstable_by_key(|&i| (i.wrapping_mul(2654435761)) % 1000003);
            v
        };
        let p_shuf = Permutation::from_vec(shuffle).unwrap();
        // Build the shuffled matrix explicitly.
        let inv = p_shuf.inverse();
        let mut t = Vec::new();
        for r in 0..n {
            for (k, &c) in a.row_indices(r).iter().enumerate() {
                t.push((inv.old_of(r), inv.old_of(c), a.row_values(r)[k]));
            }
        }
        let shuffled = CsrMatrix::from_triplets(n, n, &t);
        let bw_before = bandwidth(&shuffled, &Permutation::identity(n));
        let p = rcm_order(&shuffled);
        let bw_after = bandwidth(&shuffled, &p);
        assert!(
            bw_after < bw_before / 2,
            "rcm failed to reduce bandwidth: {bw_before} -> {bw_after}"
        );
        assert!(bw_after <= 3 * 12, "rcm bandwidth not O(width): {bw_after}");
    }

    #[test]
    fn rcm_handles_disconnected_graphs() {
        // Two disjoint 2-chains + an isolated vertex.
        let a = CsrMatrix::from_triplets(
            5,
            5,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (2, 3, 1.0),
                (3, 2, 1.0),
                (4, 4, 1.0),
            ],
        );
        let p = rcm_order(&a);
        assert_eq!(p.len(), 5);
        assert!(Permutation::from_vec(p.as_slice().to_vec()).is_ok());
    }

    #[test]
    fn rcm_single_vertex() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0)]);
        assert_eq!(rcm_order(&a).as_slice(), &[0]);
    }
}
