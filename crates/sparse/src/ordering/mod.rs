//! Fill-reducing orderings for sparse LU.
//!
//! The paper's solver stack (UMFPACK under MATLAB) applies a fill-reducing
//! column ordering before factorization; the quality of that ordering is
//! what keeps the per-step forward/backward substitution cost `T_bs` low —
//! the dominant term of MATEX's complexity model. We provide:
//!
//! * `amd` — approximate minimum degree on the pattern of `A + Aᵀ`
//!   (the default, mirroring UMFPACK's symmetric strategy on MNA systems),
//! * `rcm` — reverse Cuthill–McKee (bandwidth reduction),
//! * natural (identity) ordering as the baseline for ablations.

mod amd;
mod rcm;

pub use amd::amd_order;
pub use rcm::rcm_order;

use crate::{CsrMatrix, Permutation};

/// Ordering algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum OrderingKind {
    /// Approximate minimum degree on `A + Aᵀ` (default).
    #[default]
    Amd,
    /// Reverse Cuthill–McKee on `A + Aᵀ`.
    Rcm,
    /// Natural (identity) ordering.
    Natural,
}

impl OrderingKind {
    /// Computes the ordering permutation for a square matrix pattern.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn order(self, a: &CsrMatrix) -> Permutation {
        match self {
            OrderingKind::Amd => amd_order(a),
            OrderingKind::Rcm => rcm_order(a),
            OrderingKind::Natural => Permutation::identity(a.nrows()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D chain graph matrix: tridiagonal.
    fn chain(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn all_orderings_return_valid_permutations() {
        let a = chain(17);
        for kind in [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural] {
            let p = kind.order(&a);
            assert_eq!(p.len(), 17);
            // Validity enforced by round-trip through from_vec.
            assert!(Permutation::from_vec(p.as_slice().to_vec()).is_ok());
        }
    }

    #[test]
    fn natural_is_identity() {
        let a = chain(5);
        assert_eq!(OrderingKind::Natural.order(&a).as_slice(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn default_is_amd() {
        assert_eq!(OrderingKind::default(), OrderingKind::Amd);
    }
}
