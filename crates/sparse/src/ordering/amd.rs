//! Approximate minimum degree ordering.

use crate::{CsrMatrix, Permutation};

/// Computes an approximate minimum-degree ordering of the pattern of
/// `A + Aᵀ`.
///
/// This is a quotient-graph minimum-degree with element absorption and the
/// additive degree bound of Amestoy–Davis–Duff (`d(u) ≤ |A_u| + Σ_e |L_e \
/// u|`): at each step the variable with the smallest approximate degree is
/// eliminated, its adjacent elements are absorbed into a new element, and
/// the degrees of the element's boundary variables are updated.
///
/// Compared to production AMD this version skips supervariable detection
/// (indistinguishable-node merging) and aggressive absorption by hashing —
/// acceptable at power-grid scales and structurally much simpler. The
/// resulting fill on mesh-like matrices is within a small factor of real
/// AMD and far below natural/RCM ordering (see the `ablation_orderings`
/// bench).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn amd_order(a: &CsrMatrix) -> Permutation {
    assert!(a.is_square(), "amd_order requires a square matrix");
    let n = a.nrows();
    if n == 0 {
        return Permutation::identity(0);
    }
    let adj = a.symmetric_adjacency();

    // Quotient-graph state.
    let mut adj_var: Vec<Vec<u32>> = adj
        .iter()
        .map(|l| l.iter().map(|&u| u as u32).collect())
        .collect();
    let mut adj_el: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut elem: Vec<Option<Vec<u32>>> = vec![None; n];
    let mut degree: Vec<usize> = adj_var.iter().map(|l| l.len()).collect();
    let mut eliminated = vec![false; n];

    // Bucket priority queue over degrees with lazy invalidation.
    let max_deg = degree.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); (max_deg + 2).max(n + 1)];
    for v in 0..n {
        buckets[degree[v]].push(v as u32);
    }
    let mut cur_min = 0usize;

    // Stamp array for set unions.
    let mut stamp: Vec<u64> = vec![0; n];
    let mut stamp_gen: u64 = 0;

    let mut order: Vec<usize> = Vec::with_capacity(n);
    while order.len() < n {
        // Pop the minimum-degree live variable.
        let v = loop {
            while cur_min < buckets.len() && buckets[cur_min].is_empty() {
                cur_min += 1;
            }
            assert!(cur_min < buckets.len(), "amd: bucket queue exhausted early");
            let cand = buckets[cur_min].pop().expect("nonempty bucket") as usize;
            if !eliminated[cand] && degree[cand] == cur_min {
                break cand;
            }
            // Stale entry: skip.
        };

        // Build the new element L_v = (A_v ∪ ⋃ L_e) \ {v, eliminated}.
        stamp_gen += 1;
        stamp[v] = stamp_gen; // exclude v itself
        let mut lv: Vec<u32> = Vec::new();
        for &u in &adj_var[v] {
            let u_us = u as usize;
            if !eliminated[u_us] && stamp[u_us] != stamp_gen {
                stamp[u_us] = stamp_gen;
                lv.push(u);
            }
        }
        for &e in &adj_el[v] {
            if let Some(boundary) = elem[e as usize].take() {
                // Element absorbed into the new one.
                for &u in &boundary {
                    let u_us = u as usize;
                    if !eliminated[u_us] && stamp[u_us] != stamp_gen {
                        stamp[u_us] = stamp_gen;
                        lv.push(u);
                    }
                }
            }
        }
        adj_var[v].clear();
        adj_var[v].shrink_to_fit();
        adj_el[v].clear();
        eliminated[v] = true;
        order.push(v);
        // Register the new element before degree updates reference it.
        let boundary = lv.clone();
        elem[v] = Some(lv);

        // Update boundary variables.
        for &u in &boundary {
            let u_us = u as usize;
            // Direct edges now covered by the element (or dead) are dropped.
            adj_var[u_us].retain(|&w| !eliminated[w as usize] && stamp[w as usize] != stamp_gen);
            // Dead elements are dropped; the new element v joins.
            adj_el[u_us].retain(|&e| elem[e as usize].is_some());
            adj_el[u_us].push(v as u32);
            // Approximate degree: direct neighbours plus element boundary
            // sizes (minus self per element).
            let mut d = adj_var[u_us].len();
            for &e in &adj_el[u_us] {
                let le = elem[e as usize].as_ref().expect("live element").len();
                d += le.saturating_sub(1);
            }
            let d = d.min(n - 1);
            degree[u_us] = d;
            if d >= buckets.len() {
                buckets.resize(d + 1, Vec::new());
            }
            buckets[d].push(u);
            if d < cur_min {
                cur_min = d;
            }
        }
    }
    Permutation::from_vec(order).expect("each variable eliminated exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LuOptions, OrderingKind, SymbolicLu};

    fn grid(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let n = nx * ny;
        let mut t = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                t.push((idx(x, y), idx(x, y), 4.0));
                if x + 1 < nx {
                    t.push((idx(x, y), idx(x + 1, y), -1.0));
                    t.push((idx(x + 1, y), idx(x, y), -1.0));
                }
                if y + 1 < ny {
                    t.push((idx(x, y), idx(x, y + 1), -1.0));
                    t.push((idx(x, y + 1), idx(x, y), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// LU fill `nnz(L) + nnz(U)` under the given ordering, measured by
    /// the production symbolic analysis (`SymbolicLu::analyze`) — the
    /// exact quantity the factorization pays for, not a test-only
    /// re-derivation of elimination fill.
    fn lu_fill(a: &CsrMatrix, ordering: OrderingKind) -> usize {
        let opts = LuOptions {
            ordering,
            ..LuOptions::default()
        };
        SymbolicLu::analyze(a, &opts)
            .expect("test matrices factor")
            .fill_nnz()
    }

    #[test]
    fn amd_is_valid_permutation() {
        let a = grid(9, 7);
        let p = amd_order(&a);
        assert_eq!(p.len(), 63);
        assert!(Permutation::from_vec(p.as_slice().to_vec()).is_ok());
    }

    #[test]
    fn amd_beats_natural_ordering_on_grid() {
        let a = grid(14, 14);
        let nat = lu_fill(&a, OrderingKind::Natural);
        let amd = lu_fill(&a, OrderingKind::Amd);
        assert!(
            (amd as f64) < 0.8 * nat as f64,
            "amd fill {amd} not clearly below natural fill {nat}"
        );
    }

    #[test]
    fn amd_on_chain_is_near_perfect() {
        // A path graph eliminates with zero fill under minimum degree:
        // L and U each hold the n diagonal entries plus one off-diagonal
        // entry per edge, and nothing else.
        let n = 40;
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 2.0));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        assert_eq!(lu_fill(&a, OrderingKind::Amd), 2 * (2 * n - 1));
    }

    #[test]
    fn amd_handles_dense_row() {
        // A star graph: hub must be eliminated last.
        let n = 12;
        let mut t = vec![(0usize, 0usize, 1.0)];
        for i in 1..n {
            t.push((i, i, 1.0));
            t.push((0, i, 1.0));
            t.push((i, 0, 1.0));
        }
        let a = CsrMatrix::from_triplets(n, n, &t);
        let p = amd_order(&a);
        // The hub ties with the final leaf at degree 1 in the endgame, so
        // it must land in one of the last two positions.
        let pos = p.as_slice().iter().position(|&v| v == 0).unwrap();
        assert!(pos >= n - 2, "hub eliminated too early (position {pos})");
    }

    #[test]
    fn amd_empty_and_diagonal() {
        let a = CsrMatrix::identity(6);
        let p = amd_order(&a);
        assert_eq!(p.len(), 6);
        let e = CsrMatrix::zeros(0, 0);
        assert_eq!(amd_order(&e).len(), 0);
    }
}
