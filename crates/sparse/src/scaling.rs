//! Row/column equilibration.
//!
//! Power-grid MNA matrices mix entries across ~18 orders of magnitude
//! (femtofarad capacitances against mho conductances against ±1 incidence
//! entries). Equilibration rescales rows and columns to unit max-magnitude
//! before factorization so that threshold pivoting sees commensurate
//! numbers — the same role UMFPACK's default scaling plays in the paper's
//! stack.

use crate::CsrMatrix;

/// Computes power-of-two row and column scale factors for `A` such that
/// `diag(r) · A · diag(c)` has rows and columns with max magnitude ≈ 1.
///
/// Power-of-two factors are exact in binary floating point, so scaling
/// introduces no rounding error. Zero rows/columns get scale 1.0 (their
/// singularity surfaces later in the factorization, with a precise column
/// report).
///
/// Returns `(row_scales, col_scales)`.
pub fn equilibrate(a: &CsrMatrix) -> (Vec<f64>, Vec<f64>) {
    let mut rscale = vec![1.0_f64; a.nrows()];
    for r in 0..a.nrows() {
        let m = a
            .row_values(r)
            .iter()
            .fold(0.0_f64, |acc, v| acc.max(v.abs()));
        if m > 0.0 && m.is_finite() {
            rscale[r] = (-m.log2().round()).exp2();
        }
    }
    let mut colmax = vec![0.0_f64; a.ncols()];
    for r in 0..a.nrows() {
        let vals = a.row_values(r);
        for (k, &c) in a.row_indices(r).iter().enumerate() {
            colmax[c] = colmax[c].max((rscale[r] * vals[k]).abs());
        }
    }
    let cscale: Vec<f64> = colmax
        .iter()
        .map(|&m| {
            if m > 0.0 && m.is_finite() {
                (-m.log2().round()).exp2()
            } else {
                1.0
            }
        })
        .collect();
    (rscale, cscale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equilibrated_magnitudes_near_one() {
        // Wildly scaled matrix: entries from 1e-15 to 1e6.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1e-15),
                (0, 1, 2e-15),
                (1, 1, 1e6),
                (2, 0, 1e-3),
                (2, 2, 5.0),
            ],
        );
        let (r, c) = equilibrate(&a);
        for row in 0..3 {
            for (k, &col) in a.row_indices(row).iter().enumerate() {
                let v = (r[row] * a.row_values(row)[k] * c[col]).abs();
                assert!(v <= 2.0 + 1e-12, "entry too large after scaling: {v}");
            }
            // Row max should be within [1/2, 2] of 1 before column scaling
            // shrinks some entries; check it is not absurdly small.
            let m = a
                .row_indices(row)
                .iter()
                .enumerate()
                .map(|(k, _)| (r[row] * a.row_values(row)[k]).abs())
                .fold(0.0_f64, f64::max);
            assert!((0.5..=2.0).contains(&m), "row max {m} not near 1");
        }
    }

    #[test]
    fn scales_are_powers_of_two() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 3.7e-9), (1, 1, 42.0)]);
        let (r, c) = equilibrate(&a);
        for s in r.iter().chain(c.iter()) {
            let l = s.log2();
            assert!((l - l.round()).abs() < 1e-12, "{s} is not a power of two");
        }
    }

    #[test]
    fn zero_row_gets_unit_scale() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let (r, c) = equilibrate(&a);
        assert_eq!(r[1], 1.0);
        assert_eq!(c[1], 1.0);
    }
}
