//! Binary wire codec for persisted factorization artifacts.
//!
//! The artifact store (`matex-store`) persists analyses and factors
//! across process restarts, so the byte format here is a *contract*:
//! little-endian fixed-width fields, length-prefixed vectors, and a
//! `usize ↔ u64` mapping that keeps the in-memory sentinel
//! `usize::MAX` (unpivoted markers) stable as `u64::MAX`. Every decode
//! is total — malformed input yields [`WireError`], never a panic —
//! because the store treats any decode failure as a cache miss.
//!
//! Encoding is value-preserving down to the bit: `f64`s round-trip via
//! [`f64::to_bits`], so a decoded factorization replays *bitwise
//! identically* to the factorization that was encoded.
//!
//! # Example
//!
//! ```
//! use matex_sparse::{WireReader, WireWriter};
//!
//! let mut w = WireWriter::new();
//! w.u64(7);
//! w.f64s(&[1.5, -0.25]);
//! let bytes = w.into_bytes();
//!
//! let mut r = WireReader::new(&bytes);
//! assert_eq!(r.u64().unwrap(), 7);
//! assert_eq!(r.f64s().unwrap(), vec![1.5, -0.25]);
//! assert!(r.is_empty());
//! ```

use crate::lu::UNPIVOTED;
use crate::{CsrMatrix, LuOptions, OrderingKind, Permutation, SparseLu};

/// A wire decode failure. The store maps any variant to a cache miss.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the field it promised.
    Truncated,
    /// The bytes decoded to a structurally invalid value.
    Invalid(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire record truncated"),
            WireError::Invalid(m) => write!(f, "invalid wire record: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append-only little-endian record builder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        WireWriter::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` before the first field.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as `u64`, preserving the `usize::MAX` sentinel
    /// (unpivoted markers) as `u64::MAX`.
    pub fn usize(&mut self, v: usize) {
        if v == usize::MAX {
            self.u64(u64::MAX);
        } else {
            self.u64(v as u64);
        }
    }

    /// Appends an `f64` by bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a length-prefixed `usize` vector.
    pub fn usizes(&mut self, v: &[usize]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.usize(x);
        }
    }

    /// Appends a length-prefixed `f64` vector (bit patterns).
    pub fn f64s(&mut self, v: &[f64]) {
        self.u64(v.len() as u64);
        for &x in v {
            self.f64(x);
        }
    }

    /// Appends raw bytes (no length prefix).
    pub fn bytes(&mut self, b: &[u8]) {
        self.buf.extend_from_slice(b);
    }

    /// Finishes the record.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Cursor over a wire record; every read is bounds-checked.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `usize` (the `u64::MAX` sentinel maps back to
    /// `usize::MAX`).
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let v = self.u64()?;
        if v == u64::MAX {
            return Ok(usize::MAX);
        }
        usize::try_from(v).map_err(|_| WireError::Invalid(format!("index {v} overflows usize")))
    }

    /// Reads a length prefix, refusing lengths the remaining buffer
    /// cannot possibly hold (`elem_size` bytes each) — so a corrupted
    /// prefix cannot trigger a huge allocation.
    fn vec_len(&mut self, elem_size: usize) -> Result<usize, WireError> {
        let len = self.usize()?;
        if len == usize::MAX
            || len
                .checked_mul(elem_size)
                .is_none_or(|b| b > self.remaining())
        {
            return Err(WireError::Invalid(format!(
                "vector length {len} exceeds remaining {} bytes",
                self.remaining()
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usizes(&mut self) -> Result<Vec<usize>, WireError> {
        let len = self.vec_len(8)?;
        (0..len).map(|_| self.usize()).collect()
    }

    /// Reads a length-prefixed `f64` vector (bit patterns).
    pub fn f64s(&mut self) -> Result<Vec<f64>, WireError> {
        let len = self.vec_len(8)?;
        (0..len).map(|_| self.f64()).collect()
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

impl OrderingKind {
    /// Stable wire tag for the ordering.
    pub fn wire_tag(self) -> u8 {
        match self {
            OrderingKind::Amd => 0,
            OrderingKind::Rcm => 1,
            OrderingKind::Natural => 2,
        }
    }

    /// Inverse of [`OrderingKind::wire_tag`].
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] for an unknown tag.
    pub fn from_wire_tag(tag: u8) -> Result<Self, WireError> {
        match tag {
            0 => Ok(OrderingKind::Amd),
            1 => Ok(OrderingKind::Rcm),
            2 => Ok(OrderingKind::Natural),
            t => Err(WireError::Invalid(format!("unknown ordering tag {t}"))),
        }
    }
}

impl LuOptions {
    /// Appends the options to `w`.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        w.u8(self.ordering.wire_tag());
        w.f64(self.pivot_threshold);
        w.u8(self.equilibrate as u8);
        w.f64(self.pivot_tol);
    }

    /// Decodes options previously written by
    /// [`LuOptions::wire_encode`].
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or an unknown ordering tag.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(LuOptions {
            ordering: OrderingKind::from_wire_tag(r.u8()?)?,
            pivot_threshold: r.f64()?,
            equilibrate: r.u8()? != 0,
            pivot_tol: r.f64()?,
        })
    }
}

impl Permutation {
    /// Appends the permutation vector to `w`.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        w.usizes(self.as_slice());
    }

    /// Decodes and re-validates a permutation.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or a non-bijective vector.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Permutation::from_vec(r.usizes()?).map_err(|e| WireError::Invalid(e.to_string()))
    }
}

impl CsrMatrix {
    /// Appends the matrix (structure + values) to `w`.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        w.usize(self.nrows());
        w.usize(self.ncols());
        w.usizes(self.indptr());
        w.u64(self.nnz() as u64);
        for r in 0..self.nrows() {
            for &c in self.row_indices(r) {
                w.usize(c);
            }
        }
        for r in 0..self.nrows() {
            for &v in self.row_values(r) {
                w.f64(v);
            }
        }
    }

    /// Decodes and structurally re-validates a matrix.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or an invalid CSR structure.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let nrows = r.usize()?;
        let ncols = r.usize()?;
        let indptr = r.usizes()?;
        let nnz = r.vec_len(16)?;
        let indices = (0..nnz).map(|_| r.usize()).collect::<Result<Vec<_>, _>>()?;
        let values = (0..nnz).map(|_| r.f64()).collect::<Result<Vec<_>, _>>()?;
        CsrMatrix::from_raw_parts(nrows, ncols, indptr, indices, values)
            .map_err(|e| WireError::Invalid(e.to_string()))
    }
}

impl SparseLu {
    /// Appends the numeric factors to `w`.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        w.usize(self.n);
        w.usizes(&self.l_colptr);
        w.usizes(&self.l_rowidx);
        w.f64s(&self.l_values);
        w.usizes(&self.u_colptr);
        w.usizes(&self.u_rowidx);
        w.f64s(&self.u_values);
        w.usizes(&self.pinv);
        self.q.wire_encode(w);
        w.f64s(&self.rscale);
        w.f64s(&self.cscale);
    }

    /// Decodes factors previously written by
    /// [`SparseLu::wire_encode`]. The solve paths index through these
    /// vectors, so the decoded shapes are sanity-checked against `n`.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or inconsistent shapes.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.usize()?;
        let lu = SparseLu {
            n,
            l_colptr: r.usizes()?,
            l_rowidx: r.usizes()?,
            l_values: r.f64s()?,
            u_colptr: r.usizes()?,
            u_rowidx: r.usizes()?,
            u_values: r.f64s()?,
            pinv: r.usizes()?,
            q: Permutation::wire_decode(r)?,
            rscale: r.f64s()?,
            cscale: r.f64s()?,
        };
        check_factor_shapes(&lu)?;
        Ok(lu)
    }
}

/// Shape validation for a decoded [`SparseLu`]: every index the solve
/// kernels will follow must land in bounds.
fn check_factor_shapes(lu: &SparseLu) -> Result<(), WireError> {
    let n = lu.n;
    let bad = |m: &str| Err(WireError::Invalid(m.to_string()));
    if lu.l_colptr.len() != n + 1 || lu.u_colptr.len() != n + 1 {
        return bad("factor column pointers have the wrong length");
    }
    if lu.q.len() != n || lu.pinv.len() != n || lu.rscale.len() != n || lu.cscale.len() != n {
        return bad("factor permutation/scaling vectors have the wrong length");
    }
    for (colptr, rowidx, values, name) in [
        (&lu.l_colptr, &lu.l_rowidx, &lu.l_values, "L"),
        (&lu.u_colptr, &lu.u_rowidx, &lu.u_values, "U"),
    ] {
        if rowidx.len() != values.len() {
            return bad("factor index/value lengths disagree");
        }
        let mut prev = 0usize;
        for &p in colptr.iter() {
            if p < prev || p > rowidx.len() {
                return Err(WireError::Invalid(format!(
                    "non-monotone {name} column pointers"
                )));
            }
            prev = p;
        }
        if colptr[n] != rowidx.len() {
            return bad("factor column pointers do not cover the entries");
        }
        if rowidx.iter().any(|&i| i >= n) {
            return Err(WireError::Invalid(format!("{name} row index out of range")));
        }
    }
    if lu.pinv.iter().any(|&p| p != UNPIVOTED && p >= n) {
        return bad("pivot permutation entry out of range");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_matrix() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 2, -1.0),
                (1, 1, 3.5),
                (2, 0, -1.0),
                (2, 2, 2.25),
            ],
        )
    }

    #[test]
    fn scalars_round_trip() {
        let mut w = WireWriter::new();
        w.u8(9);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.usize(usize::MAX); // sentinel
        w.f64(-0.0);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.usize().unwrap(), usize::MAX);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut w = WireWriter::new();
        w.f64s(&[1.0, 2.0, 3.0]);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let mut r = WireReader::new(&bytes[..cut]);
            assert!(r.f64s().is_err(), "prefix of {cut} bytes must not decode");
        }
    }

    #[test]
    fn corrupt_length_prefix_cannot_demand_a_huge_allocation() {
        let mut w = WireWriter::new();
        w.u64(u64::MAX - 3); // absurd length prefix
        w.u64(0);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes);
        assert!(matches!(r.usizes(), Err(WireError::Invalid(_))));
    }

    #[test]
    fn matrix_round_trips_bitwise() {
        let a = sample_matrix();
        let mut w = WireWriter::new();
        a.wire_encode(&mut w);
        let bytes = w.into_bytes();
        let b = CsrMatrix::wire_decode(&mut WireReader::new(&bytes)).unwrap();
        assert_eq!(a.nrows(), b.nrows());
        assert_eq!(a.nnz(), b.nnz());
        for row in 0..a.nrows() {
            assert_eq!(a.row_indices(row), b.row_indices(row));
            let (av, bv) = (a.row_values(row), b.row_values(row));
            assert!(av.iter().zip(bv).all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    fn factors_round_trip_and_solve_identically() {
        let a = sample_matrix();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let mut w = WireWriter::new();
        lu.wire_encode(&mut w);
        let bytes = w.into_bytes();
        let lu2 = SparseLu::wire_decode(&mut WireReader::new(&bytes)).unwrap();
        let x1 = lu.solve(&[1.0, 2.0, 3.0]);
        let x2 = lu2.solve(&[1.0, 2.0, 3.0]);
        assert!(x1.iter().zip(&x2).all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn decoded_factor_shapes_are_validated() {
        let a = sample_matrix();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let mut w = WireWriter::new();
        lu.wire_encode(&mut w);
        let mut bytes = w.into_bytes();
        // Flip a byte inside the L row-index region: decode must reject
        // (or produce an equal-shape factor, never panic).
        let cut = 8 + 8 + 8 * 4; // n + l_colptr prefix + 4 entries
        bytes[cut] ^= 0x80;
        let _ = SparseLu::wire_decode(&mut WireReader::new(&bytes));
    }

    #[test]
    fn options_and_permutations_round_trip() {
        for opts in [
            LuOptions::default(),
            LuOptions::strict_pivoting(),
            LuOptions {
                ordering: OrderingKind::Natural,
                equilibrate: false,
                ..LuOptions::default()
            },
        ] {
            let mut w = WireWriter::new();
            opts.wire_encode(&mut w);
            let bytes = w.into_bytes();
            let back = LuOptions::wire_decode(&mut WireReader::new(&bytes)).unwrap();
            assert_eq!(back, opts);
        }
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        let mut w = WireWriter::new();
        p.wire_encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            Permutation::wire_decode(&mut WireReader::new(&bytes)).unwrap(),
            p
        );
        // A corrupted permutation is rejected by re-validation.
        let mut w = WireWriter::new();
        w.usizes(&[0, 0, 1]);
        let bytes = w.into_bytes();
        assert!(Permutation::wire_decode(&mut WireReader::new(&bytes)).is_err());
    }
}
