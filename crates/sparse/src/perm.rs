//! Permutation vectors.

use crate::SparseError;

/// A permutation of `0..n`, stored as `perm[new_position] = old_index`.
///
/// Orderings return a `Permutation` whose `k`-th entry names the original
/// row/column that should come `k`-th in the reordered matrix.
///
/// # Example
///
/// ```
/// use matex_sparse::Permutation;
///
/// # fn main() -> Result<(), matex_sparse::SparseError> {
/// let p = Permutation::from_vec(vec![2, 0, 1])?;
/// assert_eq!(p.apply(&[10.0, 20.0, 30.0]), vec![30.0, 10.0, 20.0]);
/// let inv = p.inverse();
/// assert_eq!(inv.apply(&p.apply(&[1.0, 2.0, 3.0])), vec![1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    perm: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `n` elements.
    pub fn identity(n: usize) -> Self {
        Permutation {
            perm: (0..n).collect(),
        }
    }

    /// Validates and wraps a permutation vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when `perm` is not a
    /// bijection of `0..perm.len()`.
    pub fn from_vec(perm: Vec<usize>) -> Result<Self, SparseError> {
        let n = perm.len();
        let mut seen = vec![false; n];
        for &p in &perm {
            if p >= n || seen[p] {
                return Err(SparseError::InvalidStructure(format!(
                    "not a permutation: entry {p} repeated or out of range"
                )));
            }
            seen[p] = true;
        }
        Ok(Permutation { perm })
    }

    /// Length of the permutation.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// The underlying vector (`perm[new] = old`).
    pub fn as_slice(&self) -> &[usize] {
        &self.perm
    }

    /// Old index at new position `new`.
    ///
    /// # Panics
    ///
    /// Panics if `new >= len`.
    pub fn old_of(&self, new: usize) -> usize {
        self.perm[new]
    }

    /// The inverse permutation (`inv[old] = new`).
    pub fn inverse(&self) -> Permutation {
        let mut inv = vec![0usize; self.perm.len()];
        for (new, &old) in self.perm.iter().enumerate() {
            inv[old] = new;
        }
        Permutation { perm: inv }
    }

    /// Gathers `x` into a new vector: `out[new] = x[perm[new]]`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != len`.
    pub fn apply<T: Copy>(&self, x: &[T]) -> Vec<T> {
        assert_eq!(x.len(), self.perm.len(), "apply: length mismatch");
        self.perm.iter().map(|&old| x[old]).collect()
    }

    /// Composition `self ∘ other`: applying the result equals applying
    /// `other` first, then `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "compose: length mismatch");
        Permutation {
            perm: self.perm.iter().map(|&i| other.perm[i]).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_applies_unchanged() {
        let p = Permutation::identity(3);
        assert_eq!(p.apply(&[5, 6, 7]), vec![5, 6, 7]);
    }

    #[test]
    fn inverse_roundtrip() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let inv = p.inverse();
        let x = [9.0, 8.0, 7.0, 6.0];
        assert_eq!(inv.apply(&p.apply(&x)), x.to_vec());
        assert_eq!(p.apply(&inv.apply(&x)), x.to_vec());
    }

    #[test]
    fn rejects_non_permutation() {
        assert!(Permutation::from_vec(vec![0, 0]).is_err());
        assert!(Permutation::from_vec(vec![0, 5]).is_err());
    }

    #[test]
    fn compose_applies_right_then_left() {
        // other: reverse; self: rotate.
        let rev = Permutation::from_vec(vec![2, 1, 0]).unwrap();
        let rot = Permutation::from_vec(vec![1, 2, 0]).unwrap();
        let c = rot.compose(&rev);
        let x = [1, 2, 3];
        assert_eq!(c.apply(&x), rot.apply(&rev.apply(&x)));
    }

    #[test]
    fn old_of_indexing() {
        let p = Permutation::from_vec(vec![2, 0, 1]).unwrap();
        assert_eq!(p.old_of(0), 2);
        assert_eq!(p.inverse().old_of(2), 0);
    }
}
