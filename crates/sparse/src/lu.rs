//! Sparse LU factorization (left-looking Gilbert–Peierls with partial
//! pivoting).
//!
//! This is the repo's replacement for UMFPACK, the direct solver the MATEX
//! paper builds on. The contract is the one every experiment in the paper
//! depends on: **factor once, then perform thousands of cheap pairs of
//! forward/backward substitutions** (`T_bs` in the paper's complexity
//! model). The factorization follows CSparse's `cs_lu` structure:
//!
//! 1. a fill-reducing *column* ordering `q` (AMD by default),
//! 2. for each column: a sparse triangular solve `x = L \ A[:, q(k)]`
//!    whose nonzero pattern is discovered by depth-first search (the
//!    Gilbert–Peierls reach), so the total work is proportional to the
//!    number of floating-point operations, not to `n`,
//! 3. threshold partial pivoting with diagonal preference.
//!
//! When many matrices share one nonzero pattern (the `C + γG` sweep),
//! the two-phase split in [`crate::SymbolicLu`] performs steps 1–2 once
//! and replays only the numeric updates per matrix.

use crate::{equilibrate, CsrMatrix, LuOptions, Permutation, SparseError};

/// Marker for "row not yet pivotal".
pub(crate) const UNPIVOTED: usize = usize::MAX;

/// A computed sparse LU factorization.
///
/// Represents `L·U = P·(Dr·A·Dc)·Q` where `P` is the row pivot
/// permutation, `Q` the fill-reducing column permutation and `Dr`/`Dc`
/// optional equilibration scalings.
///
/// # Example
///
/// ```
/// use matex_sparse::{CsrMatrix, SparseLu, LuOptions};
///
/// # fn main() -> Result<(), matex_sparse::SparseError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 2.0)]);
/// let lu = SparseLu::factor(&a, &LuOptions::default())?;
/// let x = lu.solve(&[9.0, 4.0]);
/// assert!((x[0] - 1.75).abs() < 1e-12 && (x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SparseLu {
    pub(crate) n: usize,
    // L: unit lower triangular, pivot-order indices; the first entry of
    // every column is the unit diagonal. Fields are crate-visible so
    // `SymbolicLu::refactor` (symbolic.rs) can assemble a factorization
    // from a numeric replay.
    pub(crate) l_colptr: Vec<usize>,
    pub(crate) l_rowidx: Vec<usize>,
    pub(crate) l_values: Vec<f64>,
    // U: upper triangular, pivot-order indices; the last entry of every
    // column is the diagonal.
    pub(crate) u_colptr: Vec<usize>,
    pub(crate) u_rowidx: Vec<usize>,
    pub(crate) u_values: Vec<f64>,
    /// Row permutation: `pinv[original_row] = pivot_position`.
    pub(crate) pinv: Vec<usize>,
    /// Column ordering: position `k` factors original column `q.old_of(k)`.
    pub(crate) q: Permutation,
    /// Row scales (all 1.0 when equilibration is off).
    pub(crate) rscale: Vec<f64>,
    /// Column scales.
    pub(crate) cscale: Vec<f64>,
}

impl SparseLu {
    /// Factors a square CSR matrix.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] for rectangular input.
    /// * [`SparseError::NotFinite`] for NaN/inf input.
    /// * [`SparseError::Singular`] when no acceptable pivot exists in some
    ///   column (structurally or numerically singular matrix).
    pub fn factor(a: &CsrMatrix, opts: &LuOptions) -> Result<Self, SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        if !a.is_finite() {
            return Err(SparseError::NotFinite);
        }
        let n = a.nrows();
        let (rscale, cscale) = if opts.equilibrate {
            equilibrate(a)
        } else {
            (vec![1.0; n], vec![1.0; n])
        };
        // CSC working copy. Cloning and rescaling the full matrix is only
        // worth it when some scale differs from 1.0 (equilibration off, or
        // an already well-scaled matrix): otherwise convert directly.
        let needs_scaling = rscale.iter().chain(cscale.iter()).any(|&s| s != 1.0);
        let acsc = if needs_scaling {
            let mut scaled = a.clone();
            scaled.scale_rows(&rscale);
            scaled.scale_cols(&cscale);
            scaled.to_csc()
        } else {
            a.to_csc()
        };
        let q = opts.ordering.order(a);

        let nnz_guess = (4 * a.nnz()).max(16 * n);
        let mut l_colptr = Vec::with_capacity(n + 1);
        let mut l_rowidx: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut l_values: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut u_colptr = Vec::with_capacity(n + 1);
        let mut u_rowidx: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut u_values: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut pinv = vec![UNPIVOTED; n];

        // Workspaces.
        let mut x = vec![0.0_f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n); // topological pattern
        let mut dfs_stack: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_ptr: Vec<usize> = Vec::with_capacity(n);
        let mut mark = vec![0u64; n];
        let mut generation = 0u64;

        for k in 0..n {
            l_colptr.push(l_rowidx.len());
            u_colptr.push(u_rowidx.len());
            let col = q.old_of(k);

            // --- Symbolic: reach of A[:, col] through L (DFS, postorder).
            generation += 1;
            pattern.clear();
            let (acol_rows, acol_vals) = (acsc.col_indices(col), acsc.col_values(col));
            for &seed in acol_rows {
                if mark[seed] == generation {
                    continue;
                }
                // Iterative DFS from `seed`.
                dfs_stack.clear();
                dfs_ptr.clear();
                dfs_stack.push(seed);
                dfs_ptr.push(0);
                mark[seed] = generation;
                while let Some(&node) = dfs_stack.last() {
                    let jcol = pinv[node];
                    let (start, end) = if jcol == UNPIVOTED {
                        (0, 0) // unpivoted rows have no L column yet
                    } else {
                        // Skip the unit-diagonal first entry.
                        (
                            l_colptr[jcol] + 1,
                            *l_colptr.get(jcol + 1).unwrap_or(&l_rowidx.len()),
                        )
                    };
                    let ptr = dfs_ptr.last_mut().expect("stack nonempty");
                    let mut descended = false;
                    while start + *ptr < end {
                        let child = l_rowidx[start + *ptr];
                        *ptr += 1;
                        if mark[child] != generation {
                            mark[child] = generation;
                            dfs_stack.push(child);
                            dfs_ptr.push(0);
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        pattern.push(node);
                        dfs_stack.pop();
                        dfs_ptr.pop();
                    }
                }
            }
            // `pattern` is in postorder: descendants (larger pivot
            // positions) first. Numeric phase must go ancestors-first, so
            // iterate in reverse.

            // --- Numeric: x = L \ A[:, col] on the discovered pattern.
            for &i in pattern.iter() {
                x[i] = 0.0;
            }
            for (idx, &i) in acol_rows.iter().enumerate() {
                x[i] = acol_vals[idx];
            }
            for &j in pattern.iter().rev() {
                let jcol = pinv[j];
                if jcol == UNPIVOTED {
                    continue;
                }
                let xj = x[j];
                if xj == 0.0 {
                    continue;
                }
                let start = l_colptr[jcol] + 1;
                let end = *l_colptr.get(jcol + 1).unwrap_or(&l_rowidx.len());
                // Zipped slices instead of indexed access: one bounds
                // check per column, same operations in the same order.
                for (&r, &v) in l_rowidx[start..end].iter().zip(&l_values[start..end]) {
                    x[r] -= v * xj;
                }
            }

            // --- Pivot search among unpivoted rows.
            let mut best = 0.0_f64;
            let mut ipiv = UNPIVOTED;
            for &i in pattern.iter() {
                if pinv[i] == UNPIVOTED {
                    let v = x[i].abs();
                    if v > best {
                        best = v;
                        ipiv = i;
                    }
                }
            }
            if ipiv == UNPIVOTED || best == 0.0 || !best.is_finite() {
                return Err(SparseError::Singular { column: k });
            }
            // Diagonal preference: keep A(col, col) as pivot when it is
            // within `pivot_threshold` of the best magnitude.
            if pinv[col] == UNPIVOTED
                && x[col] != 0.0
                && x[col].abs() >= opts.pivot_threshold * best
            {
                ipiv = col;
            }
            let pivot = x[ipiv];

            // --- Emit column k of U (rows already pivotal) and L.
            for &i in pattern.iter() {
                if pinv[i] != UNPIVOTED {
                    u_rowidx.push(pinv[i]);
                    u_values.push(x[i]);
                }
            }
            u_rowidx.push(k);
            u_values.push(pivot);
            pinv[ipiv] = k;
            l_rowidx.push(ipiv); // unit diagonal, original index for now
            l_values.push(1.0);
            for &i in pattern.iter() {
                if pinv[i] == UNPIVOTED && x[i] != 0.0 {
                    l_rowidx.push(i);
                    l_values.push(x[i] / pivot);
                }
                x[i] = 0.0;
            }
        }
        l_colptr.push(l_rowidx.len());
        u_colptr.push(u_rowidx.len());
        // Remap L's row indices into pivot order.
        for r in l_rowidx.iter_mut() {
            *r = pinv[*r];
        }
        Ok(SparseLu {
            n,
            l_colptr,
            l_rowidx,
            l_values,
            u_colptr,
            u_rowidx,
            u_values,
            pinv,
            q,
            rscale,
            cscale,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored entries in `L` (including unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_rowidx.len()
    }

    /// Stored entries in `U`.
    pub fn nnz_u(&self) -> usize {
        self.u_rowidx.len()
    }

    /// Fill factor `nnz(L + U) / nnz(A)` given the original nnz.
    pub fn fill_factor(&self, nnz_a: usize) -> f64 {
        (self.nnz_l() + self.nnz_u()) as f64 / nnz_a.max(1) as f64
    }

    /// Solves `A x = b` with one pair of forward/backward substitutions.
    ///
    /// This is the `T_bs` operation of the paper's complexity model — the
    /// unit in which both MATEX and the trapezoidal baselines are costed.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the factored dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve_into(b, &mut out, &mut work);
        out
    }

    /// Allocation-free variant of [`SparseLu::solve`].
    ///
    /// `work` is scratch space; `out` receives the solution. All three
    /// slices must have the factored dimension.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch.
    pub fn solve_into(&self, b: &[f64], out: &mut [f64], work: &mut [f64]) {
        let n = self.n;
        assert_eq!(b.len(), n, "solve: b length mismatch");
        assert_eq!(out.len(), n, "solve: out length mismatch");
        assert_eq!(work.len(), n, "solve: work length mismatch");
        // work[pinv[i]] = rscale[i] * b[i]   (apply Dr and P)
        for i in 0..n {
            work[self.pinv[i]] = self.rscale[i] * b[i];
        }
        // Forward solve L y = work (unit diagonal first in each column).
        // Zipped slices in both scatter loops: one bounds check per
        // column instead of per entry, identical operation order.
        for j in 0..n {
            let xj = work[j];
            if xj == 0.0 {
                continue;
            }
            let range = (self.l_colptr[j] + 1)..self.l_colptr[j + 1];
            for (&r, &v) in self.l_rowidx[range.clone()]
                .iter()
                .zip(&self.l_values[range])
            {
                work[r] -= v * xj;
            }
        }
        // Backward solve U z = y (diagonal last in each column).
        for j in (0..n).rev() {
            let dpos = self.u_colptr[j + 1] - 1;
            let xj = work[j] / self.u_values[dpos];
            work[j] = xj;
            if xj == 0.0 {
                continue;
            }
            let range = self.u_colptr[j]..dpos;
            for (&r, &v) in self.u_rowidx[range.clone()]
                .iter()
                .zip(&self.u_values[range])
            {
                work[r] -= v * xj;
            }
        }
        // out[q[k]] = cscale[q[k]] * z[k]   (undo Q and Dc)
        for k in 0..n {
            let oc = self.q.old_of(k);
            out[oc] = self.cscale[oc] * work[k];
        }
    }

    /// Solves with iterative refinement against the original matrix.
    ///
    /// Performs `steps` rounds of `x ← x + A⁻¹(b − A x)`; useful on
    /// extremely stiff systems where equilibrated pivoting still leaves a
    /// large backward error.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent.
    pub fn solve_refined(&self, a: &CsrMatrix, b: &[f64], steps: usize) -> Vec<f64> {
        let mut x = self.solve(b);
        let mut out = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        let mut resid = vec![0.0; self.n];
        for _ in 0..steps {
            a.matvec_into(&x, &mut resid);
            for i in 0..self.n {
                resid[i] = b[i] - resid[i];
            }
            self.solve_into(&resid, &mut out, &mut work);
            for i in 0..self.n {
                x[i] += out[i];
            }
        }
        x
    }

    /// Maximum norm of the residual `‖A x − b‖∞ / ‖b‖∞` for diagnostics.
    pub fn residual_norm(&self, a: &CsrMatrix, x: &[f64], b: &[f64]) -> f64 {
        let ax = a.matvec(x);
        let num = ax
            .iter()
            .zip(b)
            .fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()));
        let den = b.iter().fold(0.0_f64, |m, v| m.max(v.abs())).max(1e-300);
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderingKind;

    fn solve_roundtrip(a: &CsrMatrix, opts: &LuOptions) -> f64 {
        let n = a.nrows();
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let b = a.matvec(&x_true);
        let lu = SparseLu::factor(a, opts).unwrap();
        let x = lu.solve(&b);
        x.iter()
            .zip(&x_true)
            .fold(0.0_f64, |m, (p, q)| m.max((p - q).abs()))
    }

    fn grid_laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let n = nx * ny;
        let mut t = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                t.push((idx(x, y), idx(x, y), 4.001));
                if x + 1 < nx {
                    t.push((idx(x, y), idx(x + 1, y), -1.0));
                    t.push((idx(x + 1, y), idx(x, y), -1.0));
                }
                if y + 1 < ny {
                    t.push((idx(x, y), idx(x, y + 1), -1.0));
                    t.push((idx(x, y + 1), idx(x, y), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn dense_2x2() {
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 3.0), (1, 1, 4.0)]);
        assert!(solve_roundtrip(&a, &LuOptions::default()) < 1e-12);
    }

    #[test]
    fn needs_row_pivoting() {
        // Zero diagonal: only solvable with pivoting.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 2.0),
                (1, 0, 3.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (2, 2, 4.0),
            ],
        );
        assert!(solve_roundtrip(&a, &LuOptions::default()) < 1e-12);
    }

    #[test]
    fn grid_all_orderings_agree() {
        let a = grid_laplacian(11, 9);
        for ordering in [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural] {
            let opts = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            assert!(
                solve_roundtrip(&a, &opts) < 1e-9,
                "ordering {ordering:?} produced inaccurate solve"
            );
        }
    }

    #[test]
    fn amd_fill_below_natural_fill() {
        let a = grid_laplacian(20, 20);
        let amd = SparseLu::factor(
            &a,
            &LuOptions {
                ordering: OrderingKind::Amd,
                ..LuOptions::default()
            },
        )
        .unwrap();
        let nat = SparseLu::factor(
            &a,
            &LuOptions {
                ordering: OrderingKind::Natural,
                ..LuOptions::default()
            },
        )
        .unwrap();
        assert!(
            amd.nnz_l() + amd.nnz_u() < nat.nnz_l() + nat.nnz_u(),
            "amd fill {} !< natural fill {}",
            amd.nnz_l() + amd.nnz_u(),
            nat.nnz_l() + nat.nnz_u()
        );
    }

    #[test]
    fn singular_reports_column() {
        // Second column is zero.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 0, 2.0)]);
        match SparseLu::factor(&a, &LuOptions::default()) {
            Err(SparseError::Singular { .. }) => {}
            other => panic!("expected singular error, got {other:?}"),
        }
    }

    #[test]
    fn rank_deficient_detected() {
        // Row 2 = 2 * row 0.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)]);
        assert!(SparseLu::factor(&a, &LuOptions::default()).is_err());
    }

    #[test]
    fn extreme_scaling_solved_with_equilibration() {
        // Entries spanning 1e-18 .. 1e3 — the PDN regime.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1e-18),
                (0, 1, 1e-15),
                (1, 0, 1e-15),
                (1, 1, 2e3),
                (1, 2, -1e3),
                (2, 1, -1e3),
                (2, 2, 1e3),
            ],
        );
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x_true = vec![1.0, 2.0, 3.0];
        let b = a.matvec(&x_true);
        let x = lu.solve(&b);
        for (p, q) in x.iter().zip(&x_true) {
            assert!((p - q).abs() < 1e-8 * q.abs().max(1.0), "{p} vs {q}");
        }
    }

    #[test]
    fn refined_solve_improves_residual() {
        let a = grid_laplacian(8, 8);
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x0 = lu.solve(&b);
        let x1 = lu.solve_refined(&a, &b, 2);
        assert!(lu.residual_norm(&a, &x1, &b) <= lu.residual_norm(&a, &x0, &b) * 1.5);
        assert!(lu.residual_norm(&a, &x1, &b) < 1e-12);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = grid_laplacian(5, 5);
        let b: Vec<f64> = (0..25).map(|i| i as f64 * 0.1).collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let x = lu.solve(&b);
        let mut out = vec![0.0; 25];
        let mut work = vec![0.0; 25];
        lu.solve_into(&b, &mut out, &mut work);
        assert_eq!(x, out);
    }

    #[test]
    fn no_equilibration_skips_scaled_copy_and_still_solves() {
        // The direct-CSC fast path (no scaled clone) must give exactly the
        // same factorization as before: identical solves, pivot for pivot.
        let a = grid_laplacian(9, 7);
        let opts = LuOptions {
            equilibrate: false,
            ..LuOptions::default()
        };
        assert!(solve_roundtrip(&a, &opts) < 1e-9);
        // A well-scaled matrix takes the fast path under equilibration
        // too (all computed scales are 1.0) and must agree bitwise with
        // the unequilibrated factorization.
        let ones = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, -0.5), (1, 0, -0.25), (1, 1, 1.0)],
        );
        let lu_eq = SparseLu::factor(&ones, &LuOptions::default()).unwrap();
        let lu_raw = SparseLu::factor(&ones, &opts).unwrap();
        let b = [1.0, 2.0];
        assert_eq!(lu_eq.solve(&b), lu_raw.solve(&b));
    }

    #[test]
    fn not_square_rejected() {
        let a = CsrMatrix::zeros(2, 3);
        assert!(matches!(
            SparseLu::factor(&a, &LuOptions::default()),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn asymmetric_circuit_like_matrix() {
        // MNA-style: conductance block + incidence coupling (asymmetric
        // after scaling).
        let a = CsrMatrix::from_triplets(
            4,
            4,
            &[
                (0, 0, 2.0),
                (0, 1, -1.0),
                (0, 3, 1.0),
                (1, 0, -1.0),
                (1, 1, 3.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 1.5),
                (3, 0, 1.0),
            ],
        );
        assert!(solve_roundtrip(&a, &LuOptions::default()) < 1e-10);
    }
}
