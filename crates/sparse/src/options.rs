//! Factorization options.

use crate::OrderingKind;

/// Options controlling [`SparseLu::factor`](crate::SparseLu::factor).
///
/// The defaults mirror the paper's UMFPACK configuration: fill-reducing
/// ordering, equilibration, and relaxed partial pivoting that prefers the
/// diagonal (keeping the ordering's fill prediction valid).
#[derive(Debug, Clone, PartialEq)]
pub struct LuOptions {
    /// Fill-reducing column ordering (default: AMD).
    pub ordering: OrderingKind,
    /// Threshold `τ ∈ (0, 1]` for diagonal-preference pivoting: the
    /// diagonal entry is used whenever `|a_dd| ≥ τ·max_i |a_id|`. `1.0`
    /// degenerates to strict partial pivoting.
    pub pivot_threshold: f64,
    /// Scale rows and columns to unit max-magnitude before factoring.
    pub equilibrate: bool,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: OrderingKind::Amd,
            pivot_threshold: 0.1,
            equilibrate: true,
        }
    }
}

impl LuOptions {
    /// Options with strict partial pivoting (maximum robustness, more
    /// fill).
    pub fn strict_pivoting() -> Self {
        LuOptions {
            pivot_threshold: 1.0,
            ..LuOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = LuOptions::default();
        assert_eq!(o.ordering, OrderingKind::Amd);
        assert!(o.equilibrate);
        assert!(o.pivot_threshold > 0.0 && o.pivot_threshold < 1.0);
    }

    #[test]
    fn strict_pivoting_threshold_is_one() {
        assert_eq!(LuOptions::strict_pivoting().pivot_threshold, 1.0);
    }
}
