//! Factorization options.

use crate::OrderingKind;

/// Options controlling [`SparseLu::factor`](crate::SparseLu::factor).
///
/// The defaults mirror the paper's UMFPACK configuration: fill-reducing
/// ordering, equilibration, and relaxed partial pivoting that prefers the
/// diagonal (keeping the ordering's fill prediction valid).
#[derive(Debug, Clone, PartialEq)]
pub struct LuOptions {
    /// Fill-reducing column ordering (default: AMD).
    pub ordering: OrderingKind,
    /// Threshold `τ ∈ (0, 1]` for diagonal-preference pivoting: the
    /// diagonal entry is used whenever `|a_dd| ≥ τ·max_i |a_id|`. `1.0`
    /// degenerates to strict partial pivoting.
    pub pivot_threshold: f64,
    /// Scale rows and columns to unit max-magnitude before factoring.
    pub equilibrate: bool,
    /// Stability floor for numeric refactorization
    /// ([`SymbolicLu::refactor`](crate::SymbolicLu::refactor)): when the
    /// pivot pinned during analysis falls below `pivot_tol · max_i |x_i|`
    /// in its column, the refactorization abandons the pinned order and
    /// falls back to a fresh full factorization.
    pub pivot_tol: f64,
}

impl Default for LuOptions {
    fn default() -> Self {
        LuOptions {
            ordering: OrderingKind::Amd,
            pivot_threshold: 0.1,
            equilibrate: true,
            pivot_tol: 0.01,
        }
    }
}

impl LuOptions {
    /// Options with strict partial pivoting (maximum robustness, more
    /// fill).
    pub fn strict_pivoting() -> Self {
        LuOptions {
            pivot_threshold: 1.0,
            ..LuOptions::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let o = LuOptions::default();
        assert_eq!(o.ordering, OrderingKind::Amd);
        assert!(o.equilibrate);
        assert!(o.pivot_threshold > 0.0 && o.pivot_threshold < 1.0);
        // The refactor stability floor must be at most as strict as the
        // pivoting threshold, or the fast path could never be taken.
        assert!(o.pivot_tol > 0.0 && o.pivot_tol <= o.pivot_threshold);
    }

    #[test]
    fn strict_pivoting_threshold_is_one() {
        assert_eq!(LuOptions::strict_pivoting().pivot_threshold, 1.0);
    }
}
