use std::fmt;

/// Errors produced by sparse linear-algebra operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// The matrix was structurally or numerically singular during LU.
    Singular {
        /// Column (in pivot order) at which no acceptable pivot was found.
        column: usize,
    },
    /// A matrix had an invalid internal structure (unsorted indices,
    /// out-of-range index, ragged pointers, ...).
    InvalidStructure(String),
    /// An operation required a square matrix.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Input contained NaN or infinity.
    NotFinite,
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ShapeMismatch { left, right } => write!(
                f,
                "shape mismatch: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::Singular { column } => {
                write!(f, "matrix is singular at pivot column {column}")
            }
            SparseError::InvalidStructure(msg) => write!(f, "invalid sparse structure: {msg}"),
            SparseError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square: {rows}x{cols}")
            }
            SparseError::NotFinite => write!(f, "input contains a NaN or infinite value"),
        }
    }
}

impl std::error::Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_column() {
        assert!(SparseError::Singular { column: 3 }
            .to_string()
            .contains("column 3"));
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SparseError>();
    }
}
