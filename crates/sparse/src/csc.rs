//! Compressed sparse column matrices.

use crate::SparseError;

/// A compressed-sparse-column (CSC) matrix.
///
/// CSC is the factorization format: the left-looking Gilbert–Peierls LU
/// consumes columns of `A` and produces the `L`/`U` factors column by
/// column.
///
/// Row indices within a column are strictly increasing (except inside the
/// growing LU factors, which manage their own ordering invariants).
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// An empty `nrows × ncols` matrix.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CscMatrix {
            nrows,
            ncols,
            colptr: vec![0; ncols + 1],
            rowidx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from raw CSC arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] for ragged pointers or
    /// out-of-range / non-increasing row indices.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        colptr: Vec<usize>,
        rowidx: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if colptr.len() != ncols + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "colptr length {} != ncols+1 = {}",
                colptr.len(),
                ncols + 1
            )));
        }
        if rowidx.len() != values.len() {
            return Err(SparseError::InvalidStructure(
                "rowidx/values length mismatch".into(),
            ));
        }
        if *colptr.first().expect("len>=1") != 0 || *colptr.last().expect("len>=1") != rowidx.len()
        {
            return Err(SparseError::InvalidStructure(
                "colptr endpoints invalid".into(),
            ));
        }
        for c in 0..ncols {
            if colptr[c] > colptr[c + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "colptr not monotone at column {c}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &r in &rowidx[colptr[c]..colptr[c + 1]] {
                if r >= nrows {
                    return Err(SparseError::InvalidStructure(format!(
                        "row index {r} out of range in column {c}"
                    )));
                }
                if let Some(p) = prev {
                    if r <= p {
                        return Err(SparseError::InvalidStructure(format!(
                            "column {c} indices not strictly increasing"
                        )));
                    }
                }
                prev = Some(r);
            }
        }
        Ok(CscMatrix {
            nrows,
            ncols,
            colptr,
            rowidx,
            values,
        })
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.rowidx.len()
    }

    /// `true` for square matrices.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Column pointer array.
    pub fn colptr(&self) -> &[usize] {
        &self.colptr
    }

    /// Row indices of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_indices(&self, c: usize) -> &[usize] {
        &self.rowidx[self.colptr[c]..self.colptr[c + 1]]
    }

    /// Values of column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col_values(&self, c: usize) -> &[f64] {
        &self.values[self.colptr[c]..self.colptr[c + 1]]
    }

    /// Value at `(r, c)`, `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.nrows && c < self.ncols, "get out of bounds");
        match self.col_indices(c).binary_search(&r) {
            Ok(pos) => self.values[self.colptr[c] + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for c in 0..self.ncols {
            let xc = x[c];
            if xc == 0.0 {
                continue;
            }
            for (idx, &r) in self.col_indices(c).iter().enumerate() {
                y[r] += self.values[self.colptr[c] + idx] * xc;
            }
        }
        y
    }

    /// Extracts the raw parts `(colptr, rowidx, values)`.
    pub fn into_raw_parts(self) -> (Vec<usize>, Vec<usize>, Vec<f64>) {
        (self.colptr, self.rowidx, self.values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn csc_from_csr_matches() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0)]);
        let c = a.to_csc();
        assert_eq!(c.nrows(), 2);
        assert_eq!(c.ncols(), 3);
        assert_eq!(c.get(0, 0), 1.0);
        assert_eq!(c.get(0, 2), 2.0);
        assert_eq!(c.get(1, 1), 3.0);
        assert_eq!(c.get(1, 0), 0.0);
    }

    #[test]
    fn csc_matvec_matches_csr() {
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        );
        let x = vec![1.0, -2.0, 0.5];
        assert_eq!(a.to_csc().matvec(&x), a.matvec(&x));
    }

    #[test]
    fn validation_rejects_bad_input() {
        assert!(CscMatrix::from_raw_parts(2, 1, vec![0, 1], vec![5], vec![1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(3, 1, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_err());
        assert!(CscMatrix::from_raw_parts(1, 1, vec![1, 1], vec![], vec![]).is_err());
    }

    #[test]
    fn zeros_has_no_entries() {
        let z = CscMatrix::zeros(4, 4);
        assert_eq!(z.nnz(), 0);
        assert_eq!(z.matvec(&[1.0; 4]), vec![0.0; 4]);
    }
}
