//! Sherman–Morrison–Woodbury corrected solves over a cached
//! factorization.
//!
//! The what-if serving path (interactive PDN tuning: a decap added, a
//! handful of R/C values changed) repeatedly solves with matrices that
//! differ from an already-factored one by a **low-rank edit**
//! `A' = A + U·Vᵀ` with `rank k ≪ n`. Refactoring per edit — even the
//! cheap [`SymbolicLu`](crate::SymbolicLu) numeric replay — redoes
//! `O(nnz(L+U))` work per variant. The Woodbury identity turns each
//! corrected solve into work proportional to a plain substitution pair:
//!
//! ```text
//! (A + U·Vᵀ)⁻¹ b = y − W·S⁻¹·(Vᵀ y),   y = A⁻¹ b,
//!                                       W = A⁻¹ U   (n×k, precomputed),
//!                                       S = I + Vᵀ W  (k×k, factored once).
//! ```
//!
//! [`SmwUpdate::build`] pays `k` substitution pairs plus one `k×k` dense
//! factorization once per edit set; every subsequent
//! [`SmwUpdate::solve_into_smw`] costs one cached substitution pair plus
//! `O(nk)` dense work.
//!
//! # Determinism
//!
//! Every floating-point reduction here runs in a fixed order — `W`
//! columns ascending, `Vᵀy` dots in stored entry order, the final
//! `y −= W·z` as one dense axpy per column ascending — so repeated calls
//! are bitwise-identical. The base solve may also run through
//! [`SparseLu::solve_into_par`], which is bitwise-identical to the
//! serial substitution at every pool width, so corrected solves inherit
//! pool-width invariance.
//!
//! # Fallback contract
//!
//! [`SmwUpdate::build`] *rejects* (rather than degrades) whenever the
//! identity is unsafe: edit rank above [`SmwOptions::max_rank`], or a
//! (near-)singular capture matrix `S`. Callers must then refactor the
//! edited matrix — [`SymbolicLu::refactor`](crate::SymbolicLu::refactor)
//! on the same pattern — which reproduces the un-edited code path
//! bit for bit.

use crate::SparseLu;
use matex_dense::{DMat, DenseLu};

/// A sparse column: `(row index, value)` pairs in ascending row order.
pub type SparseCol = Vec<(usize, f64)>;

/// Options controlling when a low-rank update is accepted.
#[derive(Debug, Clone, PartialEq)]
pub struct SmwOptions {
    /// Largest edit rank served by the SMW path; above this,
    /// [`SmwUpdate::build`] rejects and the caller refactors. The
    /// correction costs `k` substitution pairs up front and `O(nk)`
    /// extra work per solve, so past a few dozen columns a numeric
    /// refactor wins outright.
    pub max_rank: usize,
    /// Relative floor for the capture matrix's smallest pivot: the
    /// update is rejected when `min_pivot < capture_tol · max(max|S|, 1)`,
    /// meaning the edit moves the matrix (numerically) toward
    /// singularity and the correction would amplify rounding error.
    pub capture_tol: f64,
}

impl Default for SmwOptions {
    fn default() -> Self {
        SmwOptions {
            max_rank: 16,
            capture_tol: 1e-12,
        }
    }
}

/// Why [`SmwUpdate::build`] refused an edit set. Every variant means
/// "refactor instead"; none is an error in the base factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum SmwRejection {
    /// Edit rank exceeds [`SmwOptions::max_rank`].
    RankExceeded {
        /// The offered rank.
        rank: usize,
        /// The configured ceiling.
        max_rank: usize,
    },
    /// The capture matrix `S = I + VᵀW` is singular or its smallest
    /// pivot falls below the [`SmwOptions::capture_tol`] floor.
    IllConditioned {
        /// Smallest pivot magnitude of the factored capture matrix
        /// (0.0 when the dense factorization failed outright).
        min_pivot: f64,
    },
}

impl std::fmt::Display for SmwRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmwRejection::RankExceeded { rank, max_rank } => {
                write!(f, "edit rank {rank} exceeds SMW ceiling {max_rank}")
            }
            SmwRejection::IllConditioned { min_pivot } => {
                write!(
                    f,
                    "capture matrix ill-conditioned (min pivot {min_pivot:.3e})"
                )
            }
        }
    }
}

/// A prepared Sherman–Morrison–Woodbury correction for one edit set
/// `A' = A + U·Vᵀ` over one cached [`SparseLu`] of `A`.
///
/// Immutable after [`SmwUpdate::build`], so one update can be shared
/// read-only across worker threads alongside the factorization it
/// corrects.
///
/// # Example
///
/// ```
/// use matex_sparse::{CsrMatrix, LuOptions, SmwOptions, SmwUpdate, SparseLu};
///
/// # fn main() -> Result<(), matex_sparse::SparseError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 1, 2.0)]);
/// let lu = SparseLu::factor(&a, &LuOptions::default())?;
/// // Edit: add 1.0 to entry (0, 0) — rank 1, U = e0, V = e0.
/// let upd = SmwUpdate::build(
///     &lu,
///     &[vec![(0, 1.0)]],
///     &[vec![(0, 1.0)]],
///     &SmwOptions::default(),
/// )
/// .expect("rank-1 edit accepted");
/// let x = upd.solve_smw(&lu, &[10.0, 4.0]);
/// // Same answer as factoring the edited matrix from scratch.
/// let edited = CsrMatrix::from_triplets(2, 2, &[(0, 0, 5.0), (0, 1, 1.0), (1, 1, 2.0)]);
/// let full = SparseLu::factor(&edited, &LuOptions::default())?.solve(&[10.0, 4.0]);
/// assert!((x[0] - full[0]).abs() < 1e-12 && (x[1] - full[1]).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmwUpdate {
    n: usize,
    k: usize,
    /// Sparse columns of `V` (ascending row order), for the `Vᵀy` dots.
    v_cols: Vec<SparseCol>,
    /// Dense columns of `W = A⁻¹U`, concatenated (`k` blocks of `n`).
    w: Vec<f64>,
    /// Factored capture matrix `S = I + VᵀW`.
    capture: DenseLu,
    /// Smallest pivot of the capture factorization (diagnostic).
    min_pivot: f64,
}

impl SmwUpdate {
    /// Prepares the correction for the edit `A' = A + U·Vᵀ`, where `lu`
    /// factors `A` and the edit is given as `k` matching sparse columns
    /// of `U` and `V`.
    ///
    /// Costs `k` substitution pairs against `lu` plus one `k×k` dense
    /// factorization; evaluation order is fixed, so the same inputs
    /// always produce bitwise-identical corrections.
    ///
    /// # Errors
    ///
    /// Returns [`SmwRejection`] when the edit must be served by a
    /// refactor instead (rank above [`SmwOptions::max_rank`], singular
    /// or ill-conditioned capture matrix). Rank 0 (an empty edit) is
    /// accepted and makes every correction a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `u_cols` and `v_cols` have different lengths or any
    /// entry's row index is out of bounds.
    pub fn build(
        lu: &SparseLu,
        u_cols: &[SparseCol],
        v_cols: &[SparseCol],
        opts: &SmwOptions,
    ) -> Result<SmwUpdate, SmwRejection> {
        assert_eq!(
            u_cols.len(),
            v_cols.len(),
            "U and V must have the same number of columns"
        );
        let n = lu.dim();
        let k = u_cols.len();
        for col in u_cols.iter().chain(v_cols.iter()) {
            for &(r, _) in col {
                assert!(r < n, "edit row index {r} out of bounds for dim {n}");
            }
        }
        if k > opts.max_rank {
            return Err(SmwRejection::RankExceeded {
                rank: k,
                max_rank: opts.max_rank,
            });
        }
        if k == 0 {
            return Ok(SmwUpdate {
                n,
                k,
                v_cols: Vec::new(),
                w: Vec::new(),
                capture: DenseLu::factor(&DMat::identity(0)).expect("0x0 factors"),
                min_pivot: f64::INFINITY,
            });
        }
        // W = A⁻¹U, one column at a time in ascending order.
        let mut w = vec![0.0; n * k];
        let mut b = vec![0.0; n];
        let mut work = vec![0.0; n];
        for (j, col) in u_cols.iter().enumerate() {
            b.fill(0.0);
            for &(r, val) in col {
                b[r] += val;
            }
            lu.solve_into(&b, &mut w[j * n..(j + 1) * n], &mut work);
        }
        // S = I + VᵀW: entry (i, j) accumulated in V's stored order.
        let mut s = DMat::identity(k);
        let mut s_max = 0.0_f64;
        for j in 0..k {
            let wj = &w[j * n..(j + 1) * n];
            for (i, vcol) in v_cols.iter().enumerate() {
                let mut acc = 0.0;
                for &(r, val) in vcol {
                    acc += val * wj[r];
                }
                s[(i, j)] += acc;
            }
        }
        for i in 0..k {
            for j in 0..k {
                s_max = s_max.max(s[(i, j)].abs());
            }
        }
        let capture = match DenseLu::factor(&s) {
            Ok(f) => f,
            Err(_) => return Err(SmwRejection::IllConditioned { min_pivot: 0.0 }),
        };
        // `S = I + VᵀW`, so its natural scale is at least the identity's:
        // floor the relative test at 1 or a rank-1 singular edit (single
        // pivot == single entry == max|S|) could never trip it.
        let min_pivot = capture.min_pivot();
        if min_pivot < opts.capture_tol * s_max.max(1.0) {
            return Err(SmwRejection::IllConditioned { min_pivot });
        }
        Ok(SmwUpdate {
            n,
            k,
            v_cols: v_cols.to_vec(),
            w,
            capture,
            min_pivot,
        })
    }

    /// Dimension of the corrected system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Rank of the edit.
    pub fn rank(&self) -> usize {
        self.k
    }

    /// Smallest pivot of the capture factorization (∞ for rank 0).
    pub fn min_pivot(&self) -> f64 {
        self.min_pivot
    }

    /// Turns a base-matrix solution `y = A⁻¹b` into the edited-matrix
    /// solution `(A + UVᵀ)⁻¹b` in place: `y ← y − W·S⁻¹·(Vᵀy)`.
    ///
    /// Serial with a fixed reduction order; combined with a base solve
    /// that is itself pool-width invariant, the corrected result is
    /// bitwise-identical across thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` differs from [`SmwUpdate::dim`].
    pub fn correct_in_place(&self, y: &mut [f64]) {
        assert_eq!(y.len(), self.n, "correct_in_place: length mismatch");
        if self.k == 0 {
            return;
        }
        let mut t = vec![0.0; self.k];
        for (ti, vcol) in t.iter_mut().zip(&self.v_cols) {
            let mut acc = 0.0;
            for &(r, val) in vcol {
                acc += val * y[r];
            }
            *ti = acc;
        }
        self.capture.solve_in_place(&mut t);
        for (j, &tj) in t.iter().enumerate() {
            if tj == 0.0 {
                continue;
            }
            let wj = &self.w[j * self.n..(j + 1) * self.n];
            for (yi, &wi) in y.iter_mut().zip(wj) {
                *yi -= wi * tj;
            }
        }
    }

    /// Corrected solve `out = (A + UVᵀ)⁻¹ b`: one cached substitution
    /// pair through `lu` (the factorization this update was built
    /// against) followed by [`SmwUpdate::correct_in_place`].
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from [`SmwUpdate::dim`].
    pub fn solve_into_smw(&self, lu: &SparseLu, b: &[f64], out: &mut [f64], work: &mut [f64]) {
        assert_eq!(lu.dim(), self.n, "solve_into_smw: factorization mismatch");
        lu.solve_into(b, out, work);
        self.correct_in_place(out);
    }

    /// Allocating convenience wrapper over [`SmwUpdate::solve_into_smw`].
    pub fn solve_smw(&self, lu: &SparseLu, b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.n];
        let mut work = vec![0.0; self.n];
        self.solve_into_smw(lu, b, &mut out, &mut work);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CsrMatrix, LuOptions};

    /// A small SPD-ish shifted system `C + γG` on a 1-D chain.
    fn chain(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            t.push((i, i, 1e-12 + 2.0 + 0.01 * i as f64));
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                t.push((i + 1, i, -1.0));
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Applies the edit columns densely: `A + U·Vᵀ` as triplets.
    fn edited(a: &CsrMatrix, u: &[SparseCol], v: &[SparseCol]) -> CsrMatrix {
        let n = a.nrows();
        let mut t = Vec::new();
        for r in 0..n {
            for (&c, &val) in a.row_indices(r).iter().zip(a.row_values(r)) {
                t.push((r, c, val));
            }
        }
        for (uc, vc) in u.iter().zip(v) {
            for &(r, uv) in uc {
                for &(c, vv) in vc {
                    t.push((r, c, uv * vv));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    #[test]
    fn rank1_matches_full_factorization() {
        let a = chain(12);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        // Bump the (3, 3) diagonal by 0.5 (a conductance change).
        let u = vec![vec![(3, 1.0)]];
        let v = vec![vec![(3, 0.5)]];
        let upd = SmwUpdate::build(&lu, &u, &v, &SmwOptions::default()).unwrap();
        assert_eq!(upd.rank(), 1);
        let b: Vec<f64> = (0..12).map(|i| (i as f64) - 4.0).collect();
        let x = upd.solve_smw(&lu, &b);
        let full = SparseLu::factor(&edited(&a, &u, &v), &LuOptions::default())
            .unwrap()
            .solve(&b);
        for (p, q) in x.iter().zip(&full) {
            assert!((p - q).abs() < 1e-12, "{p} vs {q}");
        }
    }

    #[test]
    fn multi_rank_stamp_edit_matches() {
        // A resistor change between nodes 2 and 5: touched rows {2, 5},
        // U = [e2, e5], V columns = the delta rows.
        let a = chain(10);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let dg = 0.3;
        let u = vec![vec![(2, 1.0)], vec![(5, 1.0)]];
        let v = vec![vec![(2, dg), (5, -dg)], vec![(2, -dg), (5, dg)]];
        let upd = SmwUpdate::build(&lu, &u, &v, &SmwOptions::default()).unwrap();
        assert_eq!(upd.rank(), 2);
        let b = vec![1.0; 10];
        let x = upd.solve_smw(&lu, &b);
        let full = SparseLu::factor(&edited(&a, &u, &v), &LuOptions::default())
            .unwrap()
            .solve(&b);
        for (p, q) in x.iter().zip(&full) {
            assert!((p - q).abs() < 1e-11);
        }
    }

    #[test]
    fn repeat_solves_are_bitwise_identical() {
        let a = chain(30);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let u = vec![vec![(7, 1.0)], vec![(20, 1.0)]];
        let v = vec![vec![(7, 0.25), (20, -0.1)], vec![(7, -0.1), (20, 0.4)]];
        let opts = SmwOptions::default();
        let upd = SmwUpdate::build(&lu, &u, &v, &opts).unwrap();
        let upd2 = SmwUpdate::build(&lu, &u, &v, &opts).unwrap();
        let b: Vec<f64> = (0..30).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let x1 = upd.solve_smw(&lu, &b);
        let x2 = upd.solve_smw(&lu, &b);
        let x3 = upd2.solve_smw(&lu, &b);
        for ((p, q), r) in x1.iter().zip(&x2).zip(&x3) {
            assert_eq!(p.to_bits(), q.to_bits());
            assert_eq!(p.to_bits(), r.to_bits());
        }
    }

    #[test]
    fn rank_zero_is_a_no_op() {
        let a = chain(6);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let upd = SmwUpdate::build(&lu, &[], &[], &SmwOptions::default()).unwrap();
        assert_eq!(upd.rank(), 0);
        let b = vec![2.0; 6];
        let base = lu.solve(&b);
        let x = upd.solve_smw(&lu, &b);
        for (p, q) in x.iter().zip(&base) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn over_rank_edit_is_rejected() {
        let a = chain(8);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let opts = SmwOptions {
            max_rank: 2,
            ..SmwOptions::default()
        };
        let u: Vec<SparseCol> = (0..3).map(|i| vec![(i, 1.0)]).collect();
        let v: Vec<SparseCol> = (0..3).map(|i| vec![(i, 0.1)]).collect();
        assert_eq!(
            SmwUpdate::build(&lu, &u, &v, &opts).err(),
            Some(SmwRejection::RankExceeded {
                rank: 3,
                max_rank: 2
            })
        );
    }

    #[test]
    fn singular_edit_is_rejected() {
        // A 1×1 system: A = [2], edit −2 at (0,0) → A' = 0, singular.
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 2.0)]);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let u = vec![vec![(0, 1.0)]];
        let v = vec![vec![(0, -2.0)]];
        match SmwUpdate::build(&lu, &u, &v, &SmwOptions::default()) {
            Err(SmwRejection::IllConditioned { .. }) => {}
            other => panic!("expected ill-conditioned rejection, got {other:?}"),
        }
    }

    #[test]
    fn correction_composes_with_any_base_solve() {
        // correct_in_place applied to a separately computed base solve
        // equals solve_into_smw — the composability the pooled path
        // relies on.
        let a = chain(16);
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let u = vec![vec![(4, 1.0)]];
        let v = vec![vec![(4, 0.7)]];
        let upd = SmwUpdate::build(&lu, &u, &v, &SmwOptions::default()).unwrap();
        let b = vec![1.5; 16];
        let direct = upd.solve_smw(&lu, &b);
        let mut composed = lu.solve(&b);
        upd.correct_in_place(&mut composed);
        for (p, q) in direct.iter().zip(&composed) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }
}
