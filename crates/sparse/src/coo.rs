//! Coordinate-format (triplet) sparse matrix builder.

use crate::{CsrMatrix, SparseError};

/// A coordinate-format sparse matrix accumulator.
///
/// This is the assembly format used by MNA stamping: elements push
/// `(row, col, value)` triplets and duplicates are *summed* on conversion,
/// exactly matching how conductance/capacitance stamps accumulate.
///
/// # Example
///
/// ```
/// use matex_sparse::CooMatrix;
///
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0);
/// coo.push(0, 0, 2.0); // duplicate: summed
/// coo.push(1, 1, 5.0);
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.get(1, 1), 5.0);
/// assert_eq!(csr.nnz(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty accumulator with the given dimensions.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty accumulator with reserved triplet capacity.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of raw triplets pushed so far (duplicates not yet merged).
    pub fn num_triplets(&self) -> usize {
        self.entries.len()
    }

    /// Adds `value` at `(row, col)`; duplicates are summed at conversion.
    ///
    /// Zero values are kept (they may pin structure for later refactoring).
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.nrows && col < self.ncols,
            "coo push out of bounds: ({row},{col}) in {}x{}",
            self.nrows,
            self.ncols
        );
        self.entries.push((row, col, value));
    }

    /// Fallible variant of [`CooMatrix::push`].
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] for out-of-range positions.
    pub fn try_push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::InvalidStructure(format!(
                "triplet ({row},{col}) out of bounds for {}x{}",
                self.nrows, self.ncols
            )));
        }
        self.entries.push((row, col, value));
        Ok(())
    }

    /// Converts to CSR, summing duplicate entries. Explicit zeros that
    /// result from cancellation are retained to keep the pattern stable.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates.
        let mut row_counts = vec![0usize; self.nrows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.nrows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut order: Vec<usize> = vec![0; self.entries.len()];
        let mut next = row_counts.clone();
        for (idx, &(r, _, _)) in self.entries.iter().enumerate() {
            order[next[r]] = idx;
            next[r] += 1;
        }
        let mut indptr = Vec::with_capacity(self.nrows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        let mut rowbuf: Vec<(usize, f64)> = Vec::new();
        for r in 0..self.nrows {
            rowbuf.clear();
            for &idx in &order[row_counts[r]..row_counts[r + 1]] {
                let (_, c, v) = self.entries[idx];
                rowbuf.push((c, v));
            }
            rowbuf.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < rowbuf.len() {
                let c = rowbuf[i].0;
                let mut v = rowbuf[i].1;
                let mut j = i + 1;
                while j < rowbuf.len() && rowbuf[j].0 == c {
                    v += rowbuf[j].1;
                    j += 1;
                }
                indices.push(c);
                values.push(v);
                i = j;
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.nrows, self.ncols, indptr, indices, values)
            .expect("COO conversion produces valid CSR by construction")
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    fn extend<T: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: T) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_matrix() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.nrows(), 3);
    }

    #[test]
    fn duplicates_summed_in_order_independent_way() {
        let mut a = CooMatrix::new(2, 2);
        a.push(1, 0, 1.5);
        a.push(0, 1, 2.0);
        a.push(1, 0, -0.5);
        let csr = a.to_csr();
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(0, 1), 2.0);
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn cancellation_keeps_structure() {
        let mut a = CooMatrix::new(1, 1);
        a.push(0, 0, 1.0);
        a.push(0, 0, -1.0);
        let csr = a.to_csr();
        assert_eq!(csr.nnz(), 1); // explicit zero retained
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn try_push_rejects_out_of_bounds() {
        let mut a = CooMatrix::new(1, 1);
        assert!(a.try_push(1, 0, 1.0).is_err());
        assert!(a.try_push(0, 0, 1.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_panics_out_of_bounds() {
        CooMatrix::new(1, 1).push(0, 5, 1.0);
    }

    #[test]
    fn extend_collects_triplets() {
        let mut a = CooMatrix::new(2, 2);
        a.extend(vec![(0, 0, 1.0), (1, 1, 2.0)]);
        assert_eq!(a.num_triplets(), 2);
    }

    #[test]
    fn rows_sorted_by_column() {
        let mut a = CooMatrix::new(1, 4);
        a.push(0, 3, 3.0);
        a.push(0, 1, 1.0);
        a.push(0, 2, 2.0);
        let csr = a.to_csr();
        assert_eq!(csr.row_indices(0), &[1, 2, 3]);
        assert_eq!(csr.row_values(0), &[1.0, 2.0, 3.0]);
    }
}
