//! Compressed sparse row matrices.

use crate::{CooMatrix, CscMatrix, SparseError};
use matex_dense::DMat;
use matex_par::{ParPool, RawVec};

/// A compressed-sparse-row (CSR) matrix.
///
/// CSR is MATEX's primary operand format: the conductance `G`, capacitance
/// `C` and input-selector `B` matrices are assembled once and then used for
/// mat-vecs (`C v` inside rational/inverted Arnoldi) and for building the
/// shifted combinations `C + γG` and `C/h + G/2` that get factorized.
///
/// Row indices within each row are strictly increasing; explicit zeros are
/// allowed (pattern placeholders).
///
/// # Example
///
/// ```
/// use matex_sparse::CsrMatrix;
///
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]);
/// assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty `nrows × ncols` matrix (all zeros).
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        CsrMatrix {
            nrows,
            ncols,
            indptr: vec![0; nrows + 1],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            nrows: n,
            ncols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Builds from raw CSR arrays, validating the structure.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidStructure`] when pointers are ragged,
    /// indices are out of range, or row indices are not strictly increasing.
    pub fn from_raw_parts(
        nrows: usize,
        ncols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self, SparseError> {
        if indptr.len() != nrows + 1 {
            return Err(SparseError::InvalidStructure(format!(
                "indptr length {} != nrows+1 = {}",
                indptr.len(),
                nrows + 1
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidStructure(
                "indices/values length mismatch".into(),
            ));
        }
        if *indptr.first().expect("len>=1") != 0 || *indptr.last().expect("len>=1") != indices.len()
        {
            return Err(SparseError::InvalidStructure(
                "indptr endpoints invalid".into(),
            ));
        }
        for r in 0..nrows {
            if indptr[r] > indptr[r + 1] {
                return Err(SparseError::InvalidStructure(format!(
                    "indptr not monotone at row {r}"
                )));
            }
            let mut prev: Option<usize> = None;
            for &c in &indices[indptr[r]..indptr[r + 1]] {
                if c >= ncols {
                    return Err(SparseError::InvalidStructure(format!(
                        "column index {c} out of range in row {r}"
                    )));
                }
                if let Some(p) = prev {
                    if c <= p {
                        return Err(SparseError::InvalidStructure(format!(
                            "row {r} indices not strictly increasing"
                        )));
                    }
                }
                prev = Some(c);
            }
        }
        Ok(CsrMatrix {
            nrows,
            ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Convenience constructor from triplets (duplicates summed).
    pub fn from_triplets(nrows: usize, ncols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut coo = CooMatrix::with_capacity(nrows, ncols, triplets.len());
        for &(r, c, v) in triplets {
            coo.push(r, c, v);
        }
        coo.to_csr()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// `true` for square matrices.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Row pointer array.
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Column indices of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_indices(&self, r: usize) -> &[usize] {
        &self.indices[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_values(&self, r: usize) -> &[f64] {
        &self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Mutable values of row `r` (pattern is immutable).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_values_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.values[self.indptr[r]..self.indptr[r + 1]]
    }

    /// Value at `(r, c)`, `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if the position is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.nrows && c < self.ncols, "get out of bounds");
        match self.row_indices(r).binary_search(&c) {
            Ok(pos) => self.values[self.indptr[r] + pos],
            Err(_) => 0.0,
        }
    }

    /// Matrix–vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.matvec_into(x, &mut y);
        y
    }

    /// One row's dot with `x`, zipped (one bounds check per row, same
    /// accumulation order as the historical indexed loop).
    #[inline]
    fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let range = self.indptr[r]..self.indptr[r + 1];
        let mut s = 0.0;
        for (&c, &v) in self.indices[range.clone()].iter().zip(&self.values[range]) {
            s += v * x[c];
        }
        s
    }

    /// Matrix–vector product writing into an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row_dot(r, x);
        }
    }

    /// Rows per parallel mat-vec tile (fixed — never derived from the
    /// thread count, so tiling is invariant in `MATEX_THREADS`).
    const MATVEC_TILE_ROWS: usize = 128;

    /// Row-tiled parallel matrix–vector product.
    ///
    /// Each row is computed exactly as in [`CsrMatrix::matvec_into`]
    /// (rows are independent), so the result is bitwise identical to the
    /// serial product for any pool width. Small matrices run inline.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols` or `y.len() != nrows`.
    pub fn matvec_into_par(&self, x: &[f64], y: &mut [f64], pool: &ParPool) {
        if pool.threads() == 1 || self.nnz() < matex_par::PAR_MIN {
            return self.matvec_into(x, y);
        }
        assert_eq!(x.len(), self.ncols, "matvec: x length mismatch");
        assert_eq!(y.len(), self.nrows, "matvec: y length mismatch");
        let ntiles = self.nrows.div_ceil(Self::MATVEC_TILE_ROWS);
        let shared = RawVec::new(y);
        pool.run(ntiles, &|t| {
            let start = t * Self::MATVEC_TILE_ROWS;
            let end = (start + Self::MATVEC_TILE_ROWS).min(self.nrows);
            for r in start..end {
                // SAFETY: row tiles are disjoint; `y[r]` belongs to tile `t`.
                unsafe { shared.set(r, self.row_dot(r, x)) };
            }
        });
    }

    /// Transposed product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: x length mismatch");
        let mut y = vec![0.0; self.ncols];
        for r in 0..self.nrows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (idx, &c) in self.row_indices(r).iter().enumerate() {
                y[c] += self.values[self.indptr[r] + idx] * xr;
            }
        }
        y
    }

    /// Linear combination `alpha·A + beta·B` with merged patterns.
    ///
    /// This is how MATEX builds `C + γG` (rational Krylov) and
    /// `C/h + G/2` (trapezoidal) from the assembled MNA matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] when shapes differ.
    pub fn linear_combination(
        alpha: f64,
        a: &CsrMatrix,
        beta: f64,
        b: &CsrMatrix,
    ) -> Result<CsrMatrix, SparseError> {
        if a.nrows != b.nrows || a.ncols != b.ncols {
            return Err(SparseError::ShapeMismatch {
                left: (a.nrows, a.ncols),
                right: (b.nrows, b.ncols),
            });
        }
        let mut indptr = Vec::with_capacity(a.nrows + 1);
        let mut indices = Vec::with_capacity(a.nnz() + b.nnz());
        let mut values = Vec::with_capacity(a.nnz() + b.nnz());
        indptr.push(0);
        for r in 0..a.nrows {
            let (ai, av) = (a.row_indices(r), a.row_values(r));
            let (bi, bv) = (b.row_indices(r), b.row_values(r));
            let (mut p, mut q) = (0, 0);
            while p < ai.len() || q < bi.len() {
                let ca = ai.get(p).copied().unwrap_or(usize::MAX);
                let cb = bi.get(q).copied().unwrap_or(usize::MAX);
                if ca < cb {
                    indices.push(ca);
                    values.push(alpha * av[p]);
                    p += 1;
                } else if cb < ca {
                    indices.push(cb);
                    values.push(beta * bv[q]);
                    q += 1;
                } else {
                    indices.push(ca);
                    values.push(alpha * av[p] + beta * bv[q]);
                    p += 1;
                    q += 1;
                }
            }
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            nrows: a.nrows,
            ncols: a.ncols,
            indptr,
            indices,
            values,
        })
    }

    /// Returns `a·self` as a new matrix.
    pub fn scaled(&self, a: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in out.values.iter_mut() {
            *v *= a;
        }
        out
    }

    /// Scales row `r` by `s[r]` in place (`A ← diag(s) A`).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != nrows`.
    pub fn scale_rows(&mut self, s: &[f64]) {
        assert_eq!(s.len(), self.nrows, "scale_rows: length mismatch");
        for r in 0..self.nrows {
            let f = s[r];
            for v in self.row_values_mut(r) {
                *v *= f;
            }
        }
    }

    /// Scales column `c` by `s[c]` in place (`A ← A diag(s)`).
    ///
    /// # Panics
    ///
    /// Panics if `s.len() != ncols`.
    pub fn scale_cols(&mut self, s: &[f64]) {
        assert_eq!(s.len(), self.ncols, "scale_cols: length mismatch");
        for k in 0..self.indices.len() {
            self.values[k] *= s[self.indices[k]];
        }
    }

    /// Transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            counts[c + 1] += 1;
        }
        for i in 0..self.ncols {
            counts[i + 1] += counts[i];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0; self.nnz()];
        let mut next = counts;
        for r in 0..self.nrows {
            for (idx, &c) in self.row_indices(r).iter().enumerate() {
                let pos = next[c];
                indices[pos] = r;
                values[pos] = self.values[self.indptr[r] + idx];
                next[c] += 1;
            }
        }
        indptr.truncate(self.ncols + 1);
        // Rebuild proper indptr (counts was mutated into next).
        let mut ptr = vec![0usize; self.ncols + 1];
        for &c in &self.indices {
            ptr[c + 1] += 1;
        }
        for i in 0..self.ncols {
            ptr[i + 1] += ptr[i];
        }
        CsrMatrix {
            nrows: self.ncols,
            ncols: self.nrows,
            indptr: ptr,
            indices,
            values,
        }
    }

    /// Converts to CSC format.
    pub fn to_csc(&self) -> CscMatrix {
        let t = self.transpose();
        // Transposed CSR rows are exactly CSC columns of the original.
        CscMatrix::from_raw_parts(self.nrows, self.ncols, t.indptr, t.indices, t.values)
            .expect("transpose produces valid structure")
    }

    /// Densifies (small matrices only; intended for tests/diagnostics).
    pub fn to_dense(&self) -> DMat {
        let mut d = DMat::zeros(self.nrows, self.ncols);
        for r in 0..self.nrows {
            for (idx, &c) in self.row_indices(r).iter().enumerate() {
                d[(r, c)] = self.values[self.indptr[r] + idx];
            }
        }
        d
    }

    /// The structural pattern of `A + Aᵀ` (for ordering algorithms),
    /// as adjacency lists *excluding* the diagonal.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn symmetric_adjacency(&self) -> Vec<Vec<usize>> {
        assert!(self.is_square(), "symmetric_adjacency requires square");
        let n = self.nrows;
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for r in 0..n {
            for &c in self.row_indices(r) {
                if r != c {
                    adj[r].push(c);
                    adj[c].push(r);
                }
            }
        }
        for l in adj.iter_mut() {
            l.sort_unstable();
            l.dedup();
        }
        adj
    }

    /// Infinity norm (max absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|r| self.row_values(r).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// `true` when all values are finite.
    pub fn is_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[1, 0, 2],
        //  [0, 3, 0],
        //  [4, 0, 5]]
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1.0),
                (0, 2, 2.0),
                (1, 1, 3.0),
                (2, 0, 4.0),
                (2, 2, 5.0),
            ],
        )
    }

    #[test]
    fn matvec_known() {
        let a = sample();
        assert_eq!(a.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn matvec_t_matches_transpose() {
        let a = sample();
        let x = vec![1.0, 2.0, 3.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn transpose_involution() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn get_missing_is_zero() {
        let a = sample();
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 2), 5.0);
    }

    #[test]
    fn linear_combination_matches_dense() {
        let a = sample();
        let b = CsrMatrix::identity(3);
        let c = CsrMatrix::linear_combination(2.0, &a, -1.0, &b).unwrap();
        let d = &a.to_dense().scaled(2.0) - &b.to_dense();
        assert!(c.to_dense().max_abs_diff(&d) < 1e-15);
    }

    #[test]
    fn linear_combination_shape_mismatch() {
        let a = CsrMatrix::zeros(2, 2);
        let b = CsrMatrix::zeros(3, 3);
        assert!(CsrMatrix::linear_combination(1.0, &a, 1.0, &b).is_err());
    }

    #[test]
    fn scale_rows_and_cols() {
        let mut a = sample();
        a.scale_rows(&[1.0, 2.0, 3.0]);
        assert_eq!(a.get(1, 1), 6.0);
        a.scale_cols(&[1.0, 1.0, 0.5]);
        assert_eq!(a.get(2, 2), 7.5);
    }

    #[test]
    fn to_csc_roundtrip_values() {
        let a = sample();
        let csc = a.to_csc();
        assert_eq!(csc.get(2, 0), 4.0);
        assert_eq!(csc.get(0, 2), 2.0);
        assert_eq!(csc.nnz(), a.nnz());
    }

    #[test]
    fn symmetric_adjacency_of_asymmetric_pattern() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (2, 0, 1.0)]);
        let adj = a.symmetric_adjacency();
        assert_eq!(adj[0], vec![1, 2]);
        assert_eq!(adj[1], vec![0]);
        assert_eq!(adj[2], vec![0]);
    }

    #[test]
    fn from_raw_parts_validation() {
        // Out-of-range column.
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // Non-increasing columns.
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Bad indptr.
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 2], vec![0], vec![1.0]).is_err());
    }

    #[test]
    fn norm_inf_known() {
        assert_eq!(sample().norm_inf(), 9.0);
    }

    #[test]
    fn identity_matvec() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x);
    }
}
