//! Sparse linear-algebra substrate for the MATEX power-grid simulator.
//!
//! The MATEX paper builds on a direct sparse solver (UMFPACK under MATLAB):
//! every simulation engine factors one matrix up front — `C/h + G/2` for
//! trapezoidal, `G` for the inverted Krylov variant, `C + γG` for the
//! rational variant — and then performs thousands of forward/backward
//! substitution pairs. This crate provides that solver stack from scratch:
//!
//! * [`CooMatrix`] — triplet assembly (duplicates summed, as MNA stamps
//!   require),
//! * [`CsrMatrix`] / [`CscMatrix`] — compressed storage with mat-vecs and
//!   pattern-merged linear combinations,
//! * [`OrderingKind`] — AMD / RCM / natural fill-reducing orderings,
//! * [`equilibrate`] — power-of-two row/column scaling,
//! * [`SparseLu`] — left-looking Gilbert–Peierls LU with threshold partial
//!   pivoting,
//! * [`SymbolicLu`] — the two-phase split of that factorization: pay for
//!   ordering + reach analysis once, then numerically refactor every
//!   same-pattern matrix (the `C + γG` sweep hot path) at a fraction of
//!   the cost.
//!
//! # Example
//!
//! ```
//! use matex_sparse::{CsrMatrix, SparseLu, LuOptions};
//!
//! # fn main() -> Result<(), matex_sparse::SparseError> {
//! // A tiny resistive network: solve G v = i.
//! let g = CsrMatrix::from_triplets(
//!     2,
//!     2,
//!     &[(0, 0, 3.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)],
//! );
//! let lu = SparseLu::factor(&g, &LuOptions::default())?;
//! let v = lu.solve(&[1.0, 0.0]);
//! assert!((v[0] - 0.4).abs() < 1e-12);
//! assert!((v[1] - 0.2).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

// Index loops mirror the CSparse-style formulations these kernels are
// transcribed from; iterator rewrites obscure the math.
#![allow(clippy::needless_range_loop)]

mod coo;
mod csc;
mod csr;
mod error;
mod lu;
mod options;
mod perm;
mod scaling;
mod smw;
mod symbolic;
mod wire;

pub mod ordering;

pub use coo::CooMatrix;
pub use csc::CscMatrix;
pub use csr::CsrMatrix;
pub use error::SparseError;
pub use lu::SparseLu;
pub use options::LuOptions;
pub use ordering::OrderingKind;
pub use perm::Permutation;
pub use scaling::equilibrate;
pub use smw::{SmwOptions, SmwRejection, SmwUpdate, SparseCol};
pub use symbolic::{SolveSchedule, SymbolicLu};
pub use wire::{WireError, WireReader, WireWriter};

// Compile the crate README's code blocks as doctests so the documented
// two-phase workflow can never rot.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;
