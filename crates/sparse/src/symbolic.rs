//! Two-phase (symbolic/numeric) sparse LU, KLU-style.
//!
//! The MATEX hot paths factor many matrices that share one nonzero
//! pattern: `C + γG` across a γ sweep, `C/h + G/2` across adaptive-TR
//! step changes, and the same shifted system on every distributed node.
//! [`SparseLu::factor`] redoes the fill-reducing ordering, the
//! Gilbert–Peierls reach DFS and all allocations on each call, even
//! though none of those depend on the numeric values.
//!
//! [`SymbolicLu::analyze`] pays for that sparsity analysis once: it runs
//! one factorization of a representative matrix while recording
//!
//! * the fill-reducing column ordering `q`,
//! * the **structural** reach of every column (the DFS postorder, kept
//!   even for entries that happen to be numerically zero, so the pattern
//!   is valid for *any* matrix with the same stored structure),
//! * the pivot order chosen by threshold partial pivoting, which is
//!   *pinned* for later replays,
//! * exact `L`/`U` size bounds and a CSR→CSC gather map, so a replay
//!   performs no per-column allocation and no format conversion.
//!
//! [`SymbolicLu::refactor`] then replays only the numeric updates into
//! the recorded pattern. On this fast path the floating-point operations
//! are performed in exactly the order `SparseLu::factor` would use, so —
//! absent exact numerical cancellation, which would alter `factor`'s own
//! value-dependent reach — **the resulting factors are bitwise identical
//! to a fresh full factorization**. Each column's pivot choice is
//! re-verified against the pinned order; if threshold pivoting would now
//! choose a different row, or the pinned pivot magnitude has degraded
//! below `opts.pivot_tol` of the column maximum, the replay abandons the
//! pinned order and falls back to a fresh [`SparseLu::factor`] (which is
//! also what keeps the fallback path bitwise-faithful).
//!
//! # Example
//!
//! ```
//! use matex_sparse::{CsrMatrix, LuOptions, SparseLu, SymbolicLu};
//!
//! # fn main() -> Result<(), matex_sparse::SparseError> {
//! let c = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1e-12), (1, 1, 2e-12)]);
//! let g = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)]);
//! // Analyze once on a representative shift...
//! let shifted = CsrMatrix::linear_combination(1.0, &c, 1e-10, &g)?;
//! let symbolic = SymbolicLu::analyze(&shifted, &LuOptions::default())?;
//! // ...then every other γ reuses the analysis: numeric replay only.
//! for gamma in [1e-11, 1e-10, 1e-9] {
//!     let m = CsrMatrix::linear_combination(1.0, &c, gamma, &g)?;
//!     let fast = symbolic.refactor(&m)?;
//!     let full = SparseLu::factor(&m, &LuOptions::default())?;
//!     assert_eq!(fast.solve(&[1.0, 1.0]), full.solve(&[1.0, 1.0]));
//! }
//! # Ok(())
//! # }
//! ```

use crate::lu::UNPIVOTED;
use crate::{equilibrate, CsrMatrix, LuOptions, Permutation, SparseError, SparseLu};
use crate::{WireError, WireReader, WireWriter};
use matex_par::{ParPool, RawVec};

/// The reusable symbolic phase of a sparse LU factorization.
///
/// Produced by [`SymbolicLu::analyze`]; consumed (read-only, so it can be
/// shared across threads) by [`SymbolicLu::refactor`] /
/// [`SymbolicLu::try_refactor`] for every matrix with the same nonzero
/// pattern. See the module-level docs for the contract.
#[derive(Debug, Clone)]
pub struct SymbolicLu {
    n: usize,
    opts: LuOptions,
    /// Fill-reducing column ordering from the analysis.
    q: Permutation,
    /// Pinned row permutation: `pinv[original_row] = pivot_position`.
    pinv: Vec<usize>,
    /// Inverse of `pinv`: the original row pinned as pivot of column `k`.
    pivot_row: Vec<usize>,
    /// Column `k`'s structural reach, pre-split by pivotal state so the
    /// replay runs branch-free. `piv_*` holds the rows already pivotal
    /// when column `k` factors (in DFS postorder, paired with their
    /// pivot positions — the future `U` row indices, which are also the
    /// `L` columns the numeric update consumes in reverse order);
    /// `low_rows` holds the then-unpivoted rows (the pivot candidates,
    /// including the pinned pivot itself) in the same postorder.
    piv_ptr: Vec<usize>,
    piv_rows: Vec<usize>,
    piv_cols: Vec<usize>,
    low_ptr: Vec<usize>,
    low_rows: Vec<usize>,
    /// Structural entry counts (upper bounds for the numeric factors).
    lnnz: usize,
    unnz: usize,
    /// CSR pattern of the analyzed matrix, for refactor validation.
    a_indptr: Vec<usize>,
    a_indices: Vec<usize>,
    /// CSC structure of that pattern plus the CSR-position → CSC-position
    /// gather map, so a replay never calls `to_csc`.
    csc_colptr: Vec<usize>,
    csc_rowidx: Vec<usize>,
    csr_to_csc: Vec<usize>,
}

impl SymbolicLu {
    /// Analyzes the sparsity structure of `a` (ordering, reach, pivot
    /// order) by running one recording factorization.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotSquare`] for rectangular input.
    /// * [`SparseError::NotFinite`] for NaN/inf input.
    /// * [`SparseError::Singular`] when no acceptable pivot exists in
    ///   some column of the analysis matrix.
    pub fn analyze(a: &CsrMatrix, opts: &LuOptions) -> Result<Self, SparseError> {
        Self::analyze_with_factor(a, opts).map(|(sym, _)| sym)
    }

    /// Like [`SymbolicLu::analyze`], but also returns the numeric
    /// factorization of `a` itself — the analysis computes every value
    /// anyway, so callers that need `a`'s factors (the first
    /// factorization of a sweep) get them without paying a second pass.
    ///
    /// # Errors
    ///
    /// As [`SymbolicLu::analyze`].
    pub fn analyze_with_factor(
        a: &CsrMatrix,
        opts: &LuOptions,
    ) -> Result<(Self, SparseLu), SparseError> {
        if !a.is_square() {
            return Err(SparseError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        if !a.is_finite() {
            return Err(SparseError::NotFinite);
        }
        let n = a.nrows();
        let nnz = a.nnz();
        let (csc_colptr, csc_rowidx, csr_to_csc) = csc_structure(a);
        let (rscale, cscale) = if opts.equilibrate {
            equilibrate(a)
        } else {
            (vec![1.0; n], vec![1.0; n])
        };
        let mut csc_values = vec![0.0; nnz];
        gather_scaled(a, &rscale, &cscale, &csr_to_csc, &mut csc_values);
        let q = opts.ordering.order(a);

        // Structural L: every reach entry is kept, numerically-zero or
        // not, so the recorded pattern stays valid for any same-pattern
        // matrix. The kept zero values contribute nothing to the updates
        // (`xj == 0` entries are skipped), so the pivot pinning below
        // sees exactly the values `SparseLu::factor` would.
        let nnz_guess = (4 * nnz).max(16 * n);
        let mut l_colptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut l_rowidx: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut l_values: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut unnz = 0usize;
        // The returned numeric factorization of `a` itself: L with
        // explicit zeros dropped (as `SparseLu::factor` stores it) and
        // the full U.
        let mut nl_colptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut nl_rowidx: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut nl_values: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut u_colptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut u_rowidx: Vec<usize> = Vec::with_capacity(nnz_guess);
        let mut u_values: Vec<f64> = Vec::with_capacity(nnz_guess);
        let mut pinv = vec![UNPIVOTED; n];
        let mut pivot_row = vec![UNPIVOTED; n];
        let mut piv_ptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut piv_rows: Vec<usize> = Vec::new();
        let mut piv_cols: Vec<usize> = Vec::new();
        let mut low_ptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut low_rows: Vec<usize> = Vec::new();

        // Workspaces, as in `SparseLu::factor`.
        let mut x = vec![0.0_f64; n];
        let mut pattern: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_stack: Vec<usize> = Vec::with_capacity(n);
        let mut dfs_ptr: Vec<usize> = Vec::with_capacity(n);
        let mut mark = vec![0u64; n];
        let mut generation = 0u64;

        for k in 0..n {
            l_colptr.push(l_rowidx.len());
            nl_colptr.push(nl_rowidx.len());
            u_colptr.push(u_rowidx.len());
            piv_ptr.push(piv_rows.len());
            low_ptr.push(low_rows.len());
            let col = q.old_of(k);

            // --- Symbolic: reach of A[:, col] through structural L.
            generation += 1;
            pattern.clear();
            let acol_rows = &csc_rowidx[csc_colptr[col]..csc_colptr[col + 1]];
            let acol_vals = &csc_values[csc_colptr[col]..csc_colptr[col + 1]];
            for &seed in acol_rows {
                if mark[seed] == generation {
                    continue;
                }
                dfs_stack.clear();
                dfs_ptr.clear();
                dfs_stack.push(seed);
                dfs_ptr.push(0);
                mark[seed] = generation;
                while let Some(&node) = dfs_stack.last() {
                    let jcol = pinv[node];
                    let (start, end) = if jcol == UNPIVOTED {
                        (0, 0)
                    } else {
                        (
                            l_colptr[jcol] + 1,
                            *l_colptr.get(jcol + 1).unwrap_or(&l_rowidx.len()),
                        )
                    };
                    let ptr = dfs_ptr.last_mut().expect("stack nonempty");
                    let mut descended = false;
                    while start + *ptr < end {
                        let child = l_rowidx[start + *ptr];
                        *ptr += 1;
                        if mark[child] != generation {
                            mark[child] = generation;
                            dfs_stack.push(child);
                            dfs_ptr.push(0);
                            descended = true;
                            break;
                        }
                    }
                    if !descended {
                        pattern.push(node);
                        dfs_stack.pop();
                        dfs_ptr.pop();
                    }
                }
            }

            // --- Numeric: x = L \ A[:, col] (values only pin pivots).
            for &i in pattern.iter() {
                x[i] = 0.0;
            }
            for (idx, &i) in acol_rows.iter().enumerate() {
                x[i] = acol_vals[idx];
            }
            for &j in pattern.iter().rev() {
                let jcol = pinv[j];
                if jcol == UNPIVOTED {
                    continue;
                }
                let xj = x[j];
                if xj == 0.0 {
                    continue;
                }
                let start = l_colptr[jcol] + 1;
                let end = *l_colptr.get(jcol + 1).unwrap_or(&l_rowidx.len());
                // Zip-kernel idiom, as in `SparseLu::factor`'s numeric
                // phase: same operations, one bounds check per column.
                for (&r, &v) in l_rowidx[start..end].iter().zip(&l_values[start..end]) {
                    x[r] -= v * xj;
                }
            }

            // --- Pivot pinning: same search as `SparseLu::factor`.
            let mut best = 0.0_f64;
            let mut ipiv = UNPIVOTED;
            for &i in pattern.iter() {
                if pinv[i] == UNPIVOTED {
                    let v = x[i].abs();
                    if v > best {
                        best = v;
                        ipiv = i;
                    }
                }
            }
            if ipiv == UNPIVOTED || best == 0.0 || !best.is_finite() {
                return Err(SparseError::Singular { column: k });
            }
            if pinv[col] == UNPIVOTED
                && x[col] != 0.0
                && x[col].abs() >= opts.pivot_threshold * best
            {
                ipiv = col;
            }
            let pivot = x[ipiv];

            // --- Record the structural column, split by pivotal state
            // (the split the replay would otherwise re-derive from pinv
            // on every pattern visit), and emit the numeric factors.
            for &i in pattern.iter() {
                if pinv[i] != UNPIVOTED {
                    piv_rows.push(i);
                    piv_cols.push(pinv[i]);
                    u_rowidx.push(pinv[i]);
                    u_values.push(x[i]);
                    unnz += 1;
                } else {
                    low_rows.push(i);
                }
            }
            u_rowidx.push(k);
            u_values.push(pivot);
            unnz += 1; // diagonal
            pinv[ipiv] = k;
            pivot_row[k] = ipiv;
            l_rowidx.push(ipiv);
            l_values.push(1.0);
            nl_rowidx.push(ipiv);
            nl_values.push(1.0);
            for &i in pattern.iter() {
                if pinv[i] == UNPIVOTED {
                    // Keep zeros: structural superset of the value reach.
                    let lik = x[i] / pivot;
                    l_rowidx.push(i);
                    l_values.push(lik);
                    if x[i] != 0.0 {
                        nl_rowidx.push(i);
                        nl_values.push(lik);
                    }
                }
                x[i] = 0.0;
            }
        }
        l_colptr.push(l_rowidx.len());
        nl_colptr.push(nl_rowidx.len());
        u_colptr.push(u_rowidx.len());
        piv_ptr.push(piv_rows.len());
        low_ptr.push(low_rows.len());
        for r in nl_rowidx.iter_mut() {
            *r = pinv[*r];
        }
        let lnnz = l_rowidx.len();

        let mut a_indices = Vec::with_capacity(nnz);
        for r in 0..n {
            a_indices.extend_from_slice(a.row_indices(r));
        }
        let factor = SparseLu {
            n,
            l_colptr: nl_colptr,
            l_rowidx: nl_rowidx,
            l_values: nl_values,
            u_colptr,
            u_rowidx,
            u_values,
            pinv: pinv.clone(),
            q: q.clone(),
            rscale,
            cscale,
        };
        let symbolic = SymbolicLu {
            n,
            opts: opts.clone(),
            q,
            pinv,
            pivot_row,
            piv_ptr,
            piv_rows,
            piv_cols,
            low_ptr,
            low_rows,
            lnnz,
            unnz,
            a_indptr: a.indptr().to_vec(),
            a_indices,
            csc_colptr,
            csc_rowidx,
            csr_to_csc,
        };
        Ok((symbolic, factor))
    }

    /// Dimension of the analyzed pattern.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// The options the analysis was performed with (reused by the
    /// fallback full factorization).
    pub fn options(&self) -> &LuOptions {
        &self.opts
    }

    /// Structural entry count of `L` (including the unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.lnnz
    }

    /// Structural entry count of `U` (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.unnz
    }

    /// Predicted fill `nnz(L) + nnz(U)` of this ordering — the quantity
    /// fill-reducing orderings compete on (see `ordering::amd` tests).
    pub fn fill_nnz(&self) -> usize {
        self.lnnz + self.unnz
    }

    /// Numerically refactors `a` (same pattern as the analyzed matrix)
    /// by replaying the recorded reach under the pinned pivot order.
    ///
    /// Returns `Ok(None)` when the pinned pivot order is no longer what
    /// threshold pivoting would choose for `a`'s values (or a pinned
    /// pivot degraded below `pivot_tol`, or a column went singular):
    /// the caller should fall back to a full factorization —
    /// [`SymbolicLu::refactor`] does exactly that.
    ///
    /// # Errors
    ///
    /// * [`SparseError::NotFinite`] for NaN/inf input.
    /// * [`SparseError::ShapeMismatch`] / [`SparseError::InvalidStructure`]
    ///   when `a`'s pattern differs from the analyzed pattern.
    pub fn try_refactor(&self, a: &CsrMatrix) -> Result<Option<SparseLu>, SparseError> {
        self.check_pattern(a)?;
        if !a.is_finite() {
            return Err(SparseError::NotFinite);
        }
        let n = self.n;
        let nnz = self.csc_rowidx.len();
        let (rscale, cscale) = if self.opts.equilibrate {
            equilibrate(a)
        } else {
            (vec![1.0; n], vec![1.0; n])
        };
        let mut csc_values = vec![0.0; nnz];
        gather_scaled(a, &rscale, &cscale, &self.csr_to_csc, &mut csc_values);

        // Exact preallocation from the structural counts: the numeric
        // factors are subsets (explicit zeros are dropped, as in
        // `SparseLu::factor`), so no push below ever reallocates.
        let mut l_colptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut l_rowidx: Vec<usize> = Vec::with_capacity(self.lnnz);
        let mut l_values: Vec<f64> = Vec::with_capacity(self.lnnz);
        let mut u_colptr: Vec<usize> = Vec::with_capacity(n + 1);
        let mut u_rowidx: Vec<usize> = Vec::with_capacity(self.unnz);
        let mut u_values: Vec<f64> = Vec::with_capacity(self.unnz);
        // Every pattern entry is cleared when its column is emitted, so
        // `x` stays all-zero between columns — no per-column clear pass.
        let mut x = vec![0.0_f64; n];

        for k in 0..n {
            l_colptr.push(l_rowidx.len());
            u_colptr.push(u_rowidx.len());
            let col = self.q.old_of(k);
            let piv = self.piv_ptr[k]..self.piv_ptr[k + 1];
            let low = &self.low_rows[self.low_ptr[k]..self.low_ptr[k + 1]];

            // --- Numeric replay on the recorded pattern (no DFS). The
            // arithmetic runs in exactly `SparseLu::factor`'s order: the
            // pivotal reach in reverse postorder, each consuming its
            // already-built L column.
            for p in self.csc_colptr[col]..self.csc_colptr[col + 1] {
                x[self.csc_rowidx[p]] = csc_values[p];
            }
            for idx in piv.clone().rev() {
                let xj = x[self.piv_rows[idx]];
                if xj == 0.0 {
                    continue;
                }
                let jcol = self.piv_cols[idx];
                let (start, end) = (l_colptr[jcol] + 1, l_colptr[jcol + 1]);
                // Zipped slices instead of indexed access: one bounds
                // check per column, same operations in the same order.
                for (&r, &v) in l_rowidx[start..end].iter().zip(&l_values[start..end]) {
                    x[r] -= v * xj;
                }
            }

            // --- Pivot verification: replay the search over the pivot
            // candidates and require it to land on the pinned row, so
            // the fast path stays bitwise equal to a fresh
            // factorization.
            let mut best = 0.0_f64;
            let mut ipiv = UNPIVOTED;
            for &i in low {
                let v = x[i].abs();
                if v > best {
                    best = v;
                    ipiv = i;
                }
            }
            if ipiv == UNPIVOTED || best == 0.0 || !best.is_finite() {
                // (Near-)singular under the pinned order: let the full
                // factorization produce the canonical error or recover.
                return Ok(None);
            }
            if self.pinv[col] >= k
                && x[col] != 0.0
                && x[col].abs() >= self.opts.pivot_threshold * best
            {
                ipiv = col;
            }
            let pinned = self.pivot_row[k];
            if ipiv != pinned || x[pinned].abs() < self.opts.pivot_tol * best {
                return Ok(None);
            }
            let pivot = x[ipiv];

            // --- Emit column k exactly as `SparseLu::factor` does
            // (values in the same postorder; row indices already in
            // pivot order via the pinned permutation).
            for idx in piv {
                let i = self.piv_rows[idx];
                u_rowidx.push(self.piv_cols[idx]);
                u_values.push(x[i]);
                x[i] = 0.0;
            }
            u_rowidx.push(k);
            u_values.push(pivot);
            // L keeps *original* row indices while columns are being
            // consumed by later updates (which index `x` by original
            // row); the pivot-order remap happens once at the end, as in
            // `SparseLu::factor`.
            l_rowidx.push(pinned);
            l_values.push(1.0);
            for &i in low {
                if i != pinned && x[i] != 0.0 {
                    l_rowidx.push(i);
                    l_values.push(x[i] / pivot);
                }
                x[i] = 0.0;
            }
        }
        l_colptr.push(l_rowidx.len());
        u_colptr.push(u_rowidx.len());
        for r in l_rowidx.iter_mut() {
            *r = self.pinv[*r];
        }
        Ok(Some(SparseLu {
            n,
            l_colptr,
            l_rowidx,
            l_values,
            u_colptr,
            u_rowidx,
            u_values,
            pinv: self.pinv.clone(),
            q: self.q.clone(),
            rscale,
            cscale,
        }))
    }

    /// Numerically refactors `a`, falling back to a fresh
    /// [`SparseLu::factor`] when the pinned pivot order degrades (see
    /// [`SymbolicLu::try_refactor`]). Either way the result is the
    /// factorization `SparseLu::factor(a, self.options())` would
    /// produce.
    ///
    /// # Errors
    ///
    /// Propagates [`SymbolicLu::try_refactor`] errors, plus
    /// [`SparseError::Singular`] from the fallback factorization.
    pub fn refactor(&self, a: &CsrMatrix) -> Result<SparseLu, SparseError> {
        match self.try_refactor(a)? {
            Some(lu) => Ok(lu),
            None => SparseLu::factor(a, &self.opts),
        }
    }

    /// Validates that `a` has exactly the analyzed nonzero pattern.
    fn check_pattern(&self, a: &CsrMatrix) -> Result<(), SparseError> {
        if a.nrows() != self.n || a.ncols() != self.n {
            return Err(SparseError::ShapeMismatch {
                left: (self.n, self.n),
                right: (a.nrows(), a.ncols()),
            });
        }
        if a.indptr() != self.a_indptr.as_slice() {
            return Err(SparseError::InvalidStructure(
                "refactor: row pointers differ from the analyzed pattern".into(),
            ));
        }
        for r in 0..self.n {
            let range = self.a_indptr[r]..self.a_indptr[r + 1];
            if a.row_indices(r) != &self.a_indices[range] {
                return Err(SparseError::InvalidStructure(format!(
                    "refactor: row {r} indices differ from the analyzed pattern"
                )));
            }
        }
        Ok(())
    }

    /// Appends the full analysis (ordering, pinned pivots, reach,
    /// pattern, gather maps) to `w` for the artifact store. A decoded
    /// analysis replays [`SymbolicLu::refactor`] bitwise-identically to
    /// the one that was encoded.
    pub fn wire_encode(&self, w: &mut WireWriter) {
        w.usize(self.n);
        self.opts.wire_encode(w);
        self.q.wire_encode(w);
        w.usizes(&self.pinv);
        w.usizes(&self.pivot_row);
        w.usizes(&self.piv_ptr);
        w.usizes(&self.piv_rows);
        w.usizes(&self.piv_cols);
        w.usizes(&self.low_ptr);
        w.usizes(&self.low_rows);
        w.usize(self.lnnz);
        w.usize(self.unnz);
        w.usizes(&self.a_indptr);
        w.usizes(&self.a_indices);
        w.usizes(&self.csc_colptr);
        w.usizes(&self.csc_rowidx);
        w.usizes(&self.csr_to_csc);
    }

    /// Decodes an analysis previously written by
    /// [`SymbolicLu::wire_encode`], re-validating the shapes the replay
    /// kernels index through.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or inconsistent shapes.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.usize()?;
        let sym = SymbolicLu {
            n,
            opts: LuOptions::wire_decode(r)?,
            q: Permutation::wire_decode(r)?,
            pinv: r.usizes()?,
            pivot_row: r.usizes()?,
            piv_ptr: r.usizes()?,
            piv_rows: r.usizes()?,
            piv_cols: r.usizes()?,
            low_ptr: r.usizes()?,
            low_rows: r.usizes()?,
            lnnz: r.usize()?,
            unnz: r.usize()?,
            a_indptr: r.usizes()?,
            a_indices: r.usizes()?,
            csc_colptr: r.usizes()?,
            csc_rowidx: r.usizes()?,
            csr_to_csc: r.usizes()?,
        };
        let bad = |m: &str| Err(WireError::Invalid(m.to_string()));
        if sym.q.len() != n || sym.pinv.len() != n || sym.pivot_row.len() != n {
            return bad("symbolic permutation vectors have the wrong length");
        }
        for (ptr, rows, name) in [
            (&sym.piv_ptr, sym.piv_rows.len(), "pivotal reach"),
            (&sym.low_ptr, sym.low_rows.len(), "unpivoted reach"),
        ] {
            if ptr.len() != n + 1 || ptr.windows(2).any(|p| p[0] > p[1]) || ptr[n] != rows {
                return Err(WireError::Invalid(format!(
                    "symbolic {name} pointers are inconsistent"
                )));
            }
        }
        if sym.piv_cols.len() != sym.piv_rows.len() {
            return bad("symbolic reach row/column lengths disagree");
        }
        let nnz = sym.a_indices.len();
        if sym.a_indptr.len() != n + 1
            || sym.a_indptr[n] != nnz
            || sym.csc_colptr.len() != n + 1
            || sym.csc_rowidx.len() != nnz
            || sym.csr_to_csc.len() != nnz
            || sym.csr_to_csc.iter().any(|&p| p >= nnz.max(1))
        {
            return bad("symbolic pattern/gather maps are inconsistent");
        }
        Ok(sym)
    }
}

/// Rows per tile inside one substitution level (fixed, thread-count
/// independent).
const LEVEL_TILE_ROWS: usize = 32;
/// Minimum level width before a level dispatches to the pool; narrower
/// levels run inline on the caller (identical per-row arithmetic, so the
/// cutoff never affects results).
const LEVEL_PAR_MIN: usize = 96;
/// Minimum dimension before the permutation/scaling passes dispatch.
const PERM_PAR_MIN: usize = 8192;
/// Elements per permutation/scaling tile.
const PERM_TILE: usize = 1024;

/// A level-scheduled execution plan for [`SparseLu::solve_into_par`].
///
/// The factors' forward/backward substitutions look inherently serial,
/// but their dependency structure is a DAG: row `i` of `L y = b` only
/// needs the rows referenced by its off-diagonal entries. Grouping rows
/// by dependency depth ("level sets") exposes all the parallelism the
/// DAG has — every row inside one level is independent.
///
/// The plan stores the factors **row-wise** (the column-oriented scatter
/// of the serial solve, re-read as a per-row gather): row `i`'s update
/// sequence is then exactly the serial one — ascending columns for `L`,
/// descending columns followed by the diagonal division for `U` — which
/// is what makes the level-scheduled solve **bitwise identical** to
/// [`SparseLu::solve_into`] for any pool width.
///
/// Build once per factorization ([`SparseLu::solve_schedule`]), reuse
/// across the thousands of substitution pairs a transient run performs.
#[derive(Debug, Clone)]
pub struct SolveSchedule {
    n: usize,
    /// Entry counts of the factor this plan was built from, for cheap
    /// misuse detection in `solve_into_par`.
    l_nnz: usize,
    u_nnz: usize,
    /// Strict lower triangle of `L`, row-wise, ascending columns.
    l_rowptr: Vec<usize>,
    l_cols: Vec<usize>,
    l_vals: Vec<f64>,
    /// Strict upper triangle of `U`, row-wise, **descending** columns
    /// (the serial backward solve consumes columns high-to-low).
    u_rowptr: Vec<usize>,
    u_cols: Vec<usize>,
    u_vals: Vec<f64>,
    u_diag: Vec<f64>,
    /// Rows grouped by dependency level, shallowest first.
    l_level_ptr: Vec<usize>,
    l_level_rows: Vec<usize>,
    u_level_ptr: Vec<usize>,
    u_level_rows: Vec<usize>,
}

impl SolveSchedule {
    /// Builds the plan for a computed factorization.
    pub fn build(lu: &SparseLu) -> SolveSchedule {
        let n = lu.n;
        // --- L: strict lower triangle, column storage → row storage.
        // Columns are visited in ascending order, so each row's entries
        // land in ascending column order.
        let mut l_rowptr = vec![0usize; n + 1];
        for j in 0..n {
            for p in (lu.l_colptr[j] + 1)..lu.l_colptr[j + 1] {
                l_rowptr[lu.l_rowidx[p] + 1] += 1;
            }
        }
        for r in 0..n {
            l_rowptr[r + 1] += l_rowptr[r];
        }
        let l_low_nnz = l_rowptr[n];
        let mut l_cols = vec![0usize; l_low_nnz];
        let mut l_vals = vec![0.0_f64; l_low_nnz];
        let mut next = l_rowptr.clone();
        for j in 0..n {
            for p in (lu.l_colptr[j] + 1)..lu.l_colptr[j + 1] {
                let r = lu.l_rowidx[p];
                let dst = next[r];
                next[r] += 1;
                l_cols[dst] = j;
                l_vals[dst] = lu.l_values[p];
            }
        }
        // --- U: strict upper triangle, visited in descending column
        // order so each row's entries land in descending column order.
        let mut u_diag = vec![0.0_f64; n];
        let mut u_rowptr = vec![0usize; n + 1];
        for j in 0..n {
            let dpos = lu.u_colptr[j + 1] - 1;
            u_diag[j] = lu.u_values[dpos];
            for p in lu.u_colptr[j]..dpos {
                u_rowptr[lu.u_rowidx[p] + 1] += 1;
            }
        }
        for r in 0..n {
            u_rowptr[r + 1] += u_rowptr[r];
        }
        let u_up_nnz = u_rowptr[n];
        let mut u_cols = vec![0usize; u_up_nnz];
        let mut u_vals = vec![0.0_f64; u_up_nnz];
        let mut next = u_rowptr.clone();
        for j in (0..n).rev() {
            let dpos = lu.u_colptr[j + 1] - 1;
            for p in lu.u_colptr[j]..dpos {
                let r = lu.u_rowidx[p];
                let dst = next[r];
                next[r] += 1;
                u_cols[dst] = j;
                u_vals[dst] = lu.u_values[p];
            }
        }
        // --- Level sets: level(row) = 1 + max(level(dependency)).
        let (l_level_ptr, l_level_rows) =
            level_sets(n, &l_rowptr, &l_cols, /* ascending = */ true);
        let (u_level_ptr, u_level_rows) =
            level_sets(n, &u_rowptr, &u_cols, /* ascending = */ false);
        SolveSchedule {
            n,
            l_nnz: lu.nnz_l(),
            u_nnz: lu.nnz_u(),
            l_rowptr,
            l_cols,
            l_vals,
            u_rowptr,
            u_cols,
            u_vals,
            u_diag,
            l_level_ptr,
            l_level_rows,
            u_level_ptr,
            u_level_rows,
        }
    }

    /// Dimension of the factor this plan was built from.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of forward-substitution levels (the DAG depth of `L`).
    pub fn levels_l(&self) -> usize {
        self.l_level_ptr.len() - 1
    }

    /// Number of backward-substitution levels (the DAG depth of `U`).
    pub fn levels_u(&self) -> usize {
        self.u_level_ptr.len() - 1
    }
}

/// Groups rows by dependency depth. `ascending` selects the processing
/// direction (forward solve: row `i` depends on smaller rows; backward:
/// on larger rows).
fn level_sets(
    n: usize,
    rowptr: &[usize],
    cols: &[usize],
    ascending: bool,
) -> (Vec<usize>, Vec<usize>) {
    let mut level = vec![0usize; n];
    let mut max_level = 0usize;
    let order: Box<dyn Iterator<Item = usize>> = if ascending {
        Box::new(0..n)
    } else {
        Box::new((0..n).rev())
    };
    for r in order {
        let mut lvl = 0usize;
        for &c in &cols[rowptr[r]..rowptr[r + 1]] {
            lvl = lvl.max(level[c] + 1);
        }
        level[r] = lvl;
        max_level = max_level.max(lvl);
    }
    let nlevels = max_level + 1;
    let mut ptr = vec![0usize; nlevels + 1];
    for &l in &level {
        ptr[l + 1] += 1;
    }
    for l in 0..nlevels {
        ptr[l + 1] += ptr[l];
    }
    let mut rows = vec![0usize; n];
    let mut next = ptr.clone();
    for r in 0..n {
        let dst = next[level[r]];
        next[level[r]] += 1;
        rows[dst] = r;
    }
    (ptr, rows)
}

impl SparseLu {
    /// Builds the level-scheduled execution plan for
    /// [`SparseLu::solve_into_par`]. One plan serves every solve against
    /// this factorization.
    pub fn solve_schedule(&self) -> SolveSchedule {
        SolveSchedule::build(self)
    }

    /// Level-scheduled parallel variant of [`SparseLu::solve_into`].
    ///
    /// Executes the same substitutions as the serial solve with rows
    /// inside each dependency level distributed over the pool. The
    /// result is **bitwise identical** to [`SparseLu::solve_into`] for
    /// any pool width (each row performs the serial solve's exact
    /// per-row operation sequence), and the call performs no heap
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics on any length mismatch, or when `sched` was built from a
    /// factorization of different shape.
    pub fn solve_into_par(
        &self,
        b: &[f64],
        out: &mut [f64],
        work: &mut [f64],
        sched: &SolveSchedule,
        pool: &ParPool,
    ) {
        let n = self.n;
        assert_eq!(sched.n, n, "solve_into_par: schedule dimension mismatch");
        assert_eq!(
            (sched.l_nnz, sched.u_nnz),
            (self.nnz_l(), self.nnz_u()),
            "solve_into_par: schedule built from a different factorization"
        );
        if pool.threads() == 1 {
            // Bitwise-identical by construction; take the cheaper path.
            return self.solve_into(b, out, work);
        }
        assert_eq!(b.len(), n, "solve: b length mismatch");
        assert_eq!(out.len(), n, "solve: out length mismatch");
        assert_eq!(work.len(), n, "solve: work length mismatch");
        let shared = RawVec::new(work);
        // work[pinv[i]] = rscale[i] * b[i]   (apply Dr and P)
        if n < PERM_PAR_MIN {
            for i in 0..n {
                // SAFETY: exclusive access (no dispatch in flight).
                unsafe { shared.set(self.pinv[i], self.rscale[i] * b[i]) };
            }
        } else {
            pool.run(n.div_ceil(PERM_TILE), &|t| {
                let start = t * PERM_TILE;
                for i in start..(start + PERM_TILE).min(n) {
                    // SAFETY: `pinv` is a permutation — writes disjoint.
                    unsafe { shared.set(self.pinv[i], self.rscale[i] * b[i]) };
                }
            });
        }
        // Forward solve L y = work, one dependency level at a time. Row
        // `r` gathers exactly the terms the serial column scatter would
        // have applied to it, in the same (ascending column) order.
        let l_row = |r: usize| {
            let range = sched.l_rowptr[r]..sched.l_rowptr[r + 1];
            // SAFETY: dependencies live in earlier levels (finalized);
            // row `r` is written only by this item.
            unsafe {
                let mut xr = shared.get(r);
                for (&c, &v) in sched.l_cols[range.clone()].iter().zip(&sched.l_vals[range]) {
                    let xc = shared.get(c);
                    if xc != 0.0 {
                        xr -= v * xc;
                    }
                }
                shared.set(r, xr);
            }
        };
        run_levels(pool, &sched.l_level_ptr, &sched.l_level_rows, &l_row);
        // Backward solve U z = y: descending-column gather, then the
        // diagonal division — the serial solve's per-row sequence.
        let u_row = |r: usize| {
            let range = sched.u_rowptr[r]..sched.u_rowptr[r + 1];
            // SAFETY: as for `l_row`.
            unsafe {
                let mut xr = shared.get(r);
                for (&c, &v) in sched.u_cols[range.clone()].iter().zip(&sched.u_vals[range]) {
                    let xc = shared.get(c);
                    if xc != 0.0 {
                        xr -= v * xc;
                    }
                }
                shared.set(r, xr / sched.u_diag[r]);
            }
        };
        run_levels(pool, &sched.u_level_ptr, &sched.u_level_rows, &u_row);
        // out[q[k]] = cscale[q[k]] * work[k]   (undo Q and Dc)
        if n < PERM_PAR_MIN {
            for (k, &w) in work.iter().enumerate() {
                let oc = self.q.old_of(k);
                out[oc] = self.cscale[oc] * w;
            }
        } else {
            let out_shared = RawVec::new(out);
            pool.run(n.div_ceil(PERM_TILE), &|t| {
                let start = t * PERM_TILE;
                for k in start..(start + PERM_TILE).min(n) {
                    let oc = self.q.old_of(k);
                    // SAFETY: `q` is a permutation — writes disjoint;
                    // `work` is only read here.
                    unsafe { out_shared.set(oc, self.cscale[oc] * shared.get(k)) };
                }
            });
        }
    }
}

/// Executes `row_fn` for every row of every level, in level order. Wide
/// levels tile over the pool; narrow levels run inline (the per-row
/// arithmetic is identical either way).
fn run_levels(
    pool: &ParPool,
    level_ptr: &[usize],
    level_rows: &[usize],
    row_fn: &(dyn Fn(usize) + Sync),
) {
    for l in 0..level_ptr.len() - 1 {
        let rows = &level_rows[level_ptr[l]..level_ptr[l + 1]];
        if rows.len() < LEVEL_PAR_MIN {
            for &r in rows {
                row_fn(r);
            }
        } else {
            let ntiles = rows.len().div_ceil(LEVEL_TILE_ROWS);
            pool.run(ntiles, &|t| {
                let start = t * LEVEL_TILE_ROWS;
                for &r in &rows[start..(start + LEVEL_TILE_ROWS).min(rows.len())] {
                    row_fn(r);
                }
            });
        }
    }
}

/// Builds the CSC structure of `a`'s pattern and the CSR-position →
/// CSC-position map, without touching values.
fn csc_structure(a: &CsrMatrix) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let n = a.ncols();
    let nnz = a.nnz();
    let mut colptr = vec![0usize; n + 1];
    for r in 0..a.nrows() {
        for &c in a.row_indices(r) {
            colptr[c + 1] += 1;
        }
    }
    for c in 0..n {
        colptr[c + 1] += colptr[c];
    }
    let mut next = colptr.clone();
    let mut rowidx = vec![0usize; nnz];
    let mut map = vec![0usize; nnz];
    let mut p = 0usize;
    for r in 0..a.nrows() {
        for &c in a.row_indices(r) {
            let dst = next[c];
            next[c] += 1;
            rowidx[dst] = r;
            map[p] = dst;
            p += 1;
        }
    }
    (colptr, rowidx, map)
}

/// Gathers `a`'s values into CSC positions, applying the equilibration
/// scales with the same multiplication order as `SparseLu::factor`'s
/// `scale_rows` / `scale_cols` pipeline (exact anyway: scales are powers
/// of two).
fn gather_scaled(
    a: &CsrMatrix,
    rscale: &[f64],
    cscale: &[f64],
    csr_to_csc: &[usize],
    csc_values: &mut [f64],
) {
    let needs_scaling = rscale.iter().chain(cscale.iter()).any(|&s| s != 1.0);
    let mut p = 0usize;
    for r in 0..a.nrows() {
        let vals = a.row_values(r);
        for (k, &c) in a.row_indices(r).iter().enumerate() {
            let v = if needs_scaling {
                (vals[k] * rscale[r]) * cscale[c]
            } else {
                vals[k]
            };
            csc_values[csr_to_csc[p]] = v;
            p += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OrderingKind;

    fn grid_laplacian(nx: usize, ny: usize) -> CsrMatrix {
        let idx = |x: usize, y: usize| y * nx + x;
        let n = nx * ny;
        let mut t = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                t.push((idx(x, y), idx(x, y), 4.001));
                if x + 1 < nx {
                    t.push((idx(x, y), idx(x + 1, y), -1.0));
                    t.push((idx(x + 1, y), idx(x, y), -1.0));
                }
                if y + 1 < ny {
                    t.push((idx(x, y), idx(x, y + 1), -1.0));
                    t.push((idx(x, y + 1), idx(x, y), -1.0));
                }
            }
        }
        CsrMatrix::from_triplets(n, n, &t)
    }

    /// Same pattern, different values: multiply every stored value by a
    /// position-dependent positive factor.
    fn revalued(a: &CsrMatrix, seed: f64) -> CsrMatrix {
        let mut b = a.clone();
        for r in 0..b.nrows() {
            for v in b.row_values_mut(r) {
                *v *= 1.0 + 0.25 * ((*v + seed).sin()).abs();
            }
        }
        b
    }

    fn assert_same_factorization(x: &SparseLu, y: &SparseLu, a: &CsrMatrix) {
        assert_eq!(x.nnz_l(), y.nnz_l());
        assert_eq!(x.nnz_u(), y.nnz_u());
        let n = a.nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 5 % 11) as f64) - 4.0).collect();
        assert_eq!(x.solve(&b), y.solve(&b));
    }

    #[test]
    fn refactor_matches_factor_on_grid() {
        let a = grid_laplacian(9, 8);
        for ordering in [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural] {
            let opts = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            let sym = SymbolicLu::analyze(&a, &opts).unwrap();
            let mut fast_paths = 0usize;
            // Seed 2.5 weakens diagonal dominance enough to change the
            // pivot sequence on some orderings — the fallback path; the
            // result must be indistinguishable either way.
            for seed in [0.0, 1.0, 2.5] {
                let b = revalued(&a, seed);
                fast_paths += usize::from(sym.try_refactor(&b).unwrap().is_some());
                let lu = sym.refactor(&b).unwrap();
                let full = SparseLu::factor(&b, &opts).unwrap();
                assert_same_factorization(&lu, &full, &b);
            }
            assert!(
                fast_paths >= 2,
                "{ordering:?}: expected the replay fast path on most value fills"
            );
        }
    }

    #[test]
    fn uniform_rescaling_always_takes_fast_path() {
        // A global scale factor preserves every pivot comparison, so the
        // pinned order must replay without fallback.
        let a = grid_laplacian(8, 6);
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        for scale in [1.0, 3.0, 1e-9, 4096.0] {
            let mut b = a.clone();
            for r in 0..b.nrows() {
                for v in b.row_values_mut(r) {
                    *v *= scale;
                }
            }
            let fast = sym
                .try_refactor(&b)
                .unwrap()
                .expect("uniform scaling keeps pinned pivots");
            let full = SparseLu::factor(&b, &LuOptions::default()).unwrap();
            assert_same_factorization(&fast, &full, &b);
        }
    }

    #[test]
    fn analyze_with_factor_matches_full_factor() {
        let a = grid_laplacian(7, 6);
        for ordering in [OrderingKind::Amd, OrderingKind::Natural] {
            let opts = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            let (sym, factored) = SymbolicLu::analyze_with_factor(&a, &opts).unwrap();
            let full = SparseLu::factor(&a, &opts).unwrap();
            assert_same_factorization(&factored, &full, &a);
            // The bundled factor equals what a replay would produce.
            let replay = sym.refactor(&a).unwrap();
            assert_same_factorization(&factored, &replay, &a);
        }
    }

    #[test]
    fn structural_counts_bound_numeric_counts() {
        let a = grid_laplacian(7, 7);
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let lu = sym.refactor(&a).unwrap();
        assert!(lu.nnz_l() <= sym.nnz_l());
        assert!(lu.nnz_u() <= sym.nnz_u());
        assert_eq!(sym.fill_nnz(), sym.nnz_l() + sym.nnz_u());
        assert_eq!(sym.dim(), 49);
    }

    #[test]
    fn degraded_pivot_falls_back_to_full_factor() {
        // Natural ordering, no equilibration: full control over pivots.
        let opts = LuOptions {
            ordering: OrderingKind::Natural,
            equilibrate: false,
            ..LuOptions::default()
        };
        let a = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 10.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 10.0)],
        );
        let sym = SymbolicLu::analyze(&a, &opts).unwrap();
        // Diagonal collapses: threshold pivoting must now pick row 1 in
        // column 0, so the pinned order is invalid.
        let b = CsrMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 1e-9), (0, 1, 1.0), (1, 0, 5.0), (1, 1, 10.0)],
        );
        assert!(sym.try_refactor(&b).unwrap().is_none());
        let fast = sym.refactor(&b).unwrap();
        let full = SparseLu::factor(&b, &opts).unwrap();
        assert_same_factorization(&fast, &full, &b);
    }

    #[test]
    fn pattern_mismatch_rejected() {
        let a = grid_laplacian(4, 4);
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let wrong_shape = grid_laplacian(4, 5);
        assert!(matches!(
            sym.try_refactor(&wrong_shape),
            Err(SparseError::ShapeMismatch { .. })
        ));
        let wrong_pattern = CsrMatrix::identity(16);
        assert!(matches!(
            sym.try_refactor(&wrong_pattern),
            Err(SparseError::InvalidStructure(_))
        ));
    }

    #[test]
    fn singular_values_reported_via_fallback() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let mut b = a.clone();
        b.row_values_mut(1)[0] = 0.0; // second column all zero
        assert!(sym.try_refactor(&b).unwrap().is_none());
        assert!(matches!(
            sym.refactor(&b),
            Err(SparseError::Singular { .. })
        ));
    }

    #[test]
    fn analyze_rejects_bad_input() {
        assert!(matches!(
            SymbolicLu::analyze(&CsrMatrix::zeros(2, 3), &LuOptions::default()),
            Err(SparseError::NotSquare { .. })
        ));
        let nan = CsrMatrix::from_triplets(1, 1, &[(0, 0, f64::NAN)]);
        assert!(matches!(
            SymbolicLu::analyze(&nan, &LuOptions::default()),
            Err(SparseError::NotFinite)
        ));
    }

    #[test]
    fn empty_matrix_roundtrips() {
        let a = CsrMatrix::zeros(0, 0);
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let lu = sym.refactor(&a).unwrap();
        assert_eq!(lu.dim(), 0);
        assert!(lu.solve(&[]).is_empty());
    }

    #[test]
    fn level_scheduled_solve_is_bitwise_identical_to_serial() {
        // The determinism contract of `solve_into_par`: per-row gathers
        // replay the serial column scatter's exact operation order, so
        // the result matches bit-for-bit at every pool width.
        let a = grid_laplacian(23, 19);
        let n = a.nrows();
        for ordering in [OrderingKind::Amd, OrderingKind::Natural] {
            let opts = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            let lu = SparseLu::factor(&a, &opts).unwrap();
            let sched = lu.solve_schedule();
            assert!(sched.levels_l() >= 1 && sched.levels_u() >= 1);
            assert_eq!(sched.dim(), n);
            let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 29) as f64) - 14.0).collect();
            let mut serial = vec![0.0; n];
            let mut work = vec![0.0; n];
            lu.solve_into(&b, &mut serial, &mut work);
            for threads in [1usize, 2, 4] {
                let pool = ParPool::new(threads);
                let mut par = vec![0.0; n];
                lu.solve_into_par(&b, &mut par, &mut work, &sched, &pool);
                assert!(
                    serial
                        .iter()
                        .zip(&par)
                        .all(|(x, y)| x.to_bits() == y.to_bits()),
                    "{ordering:?}: {threads}-thread solve diverged from serial"
                );
            }
        }
    }

    #[test]
    fn level_solve_handles_zero_rhs_and_refactored_factors() {
        // Zero right-hand side exercises the zero-skip branches; a
        // replayed factorization exercises a schedule built from the
        // refactor path.
        let a = grid_laplacian(12, 12);
        let n = a.nrows();
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let lu = sym.refactor(&revalued(&a, 1.0)).unwrap();
        let sched = lu.solve_schedule();
        let pool = ParPool::new(3);
        let mut work = vec![0.0; n];
        let mut serial = vec![0.0; n];
        let mut par = vec![0.0; n];
        for b in [vec![0.0; n], (0..n).map(|i| (i as f64).cos()).collect()] {
            lu.solve_into(&b, &mut serial, &mut work);
            lu.solve_into_par(&b, &mut par, &mut work, &sched, &pool);
            assert!(serial
                .iter()
                .zip(&par)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }

    #[test]
    #[should_panic(expected = "different factorization")]
    fn level_solve_rejects_mismatched_schedule() {
        let a = grid_laplacian(6, 6);
        let b = grid_laplacian(6, 6);
        let lu_a = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let lu_b = SparseLu::factor(&revalued(&b, 2.5), &LuOptions::default()).unwrap();
        let sched = lu_b.solve_schedule();
        let pool = ParPool::new(2);
        let rhs = vec![1.0; 36];
        let (mut out, mut work) = (vec![0.0; 36], vec![0.0; 36]);
        // Same n, but entry counts differ (revalued keeps the pattern —
        // force a different fill by factoring a *different* matrix).
        let c = CsrMatrix::identity(36);
        let lu_c = SparseLu::factor(&c, &LuOptions::default()).unwrap();
        let _ = &lu_a;
        lu_c.solve_into_par(&rhs, &mut out, &mut work, &sched, &pool);
    }

    #[test]
    fn equilibration_scales_recomputed_per_refactor() {
        // Values spanning many decades: a correct refactor must compute
        // fresh scales for the *new* values, not reuse the analysis'.
        let a = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 1e-15),
                (0, 1, 2e-15),
                (1, 0, 1e-3),
                (1, 1, 5.0),
                (2, 2, 1e6),
            ],
        );
        let sym = SymbolicLu::analyze(&a, &LuOptions::default()).unwrap();
        let mut b = a.clone();
        for r in 0..3 {
            for v in b.row_values_mut(r) {
                *v *= 1e12; // shifts every power-of-two scale
            }
        }
        let fast = sym.refactor(&b).unwrap();
        let full = SparseLu::factor(&b, &LuOptions::default()).unwrap();
        assert_same_factorization(&fast, &full, &b);
    }
}
