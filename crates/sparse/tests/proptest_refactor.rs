//! Property-based contract of the two-phase factorization:
//! `SymbolicLu::analyze` + `refactor` must produce factors
//! indistinguishable — bitwise, via nnz counts and solves — from a fresh
//! `SparseLu::factor` of the same matrix, for every same-pattern value
//! fill, on both the replay fast path and the pivot-degradation
//! fallback.

use matex_sparse::{CooMatrix, CsrMatrix, LuOptions, OrderingKind, SparseLu, SymbolicLu};
use proptest::prelude::*;

/// Random diagonally-dominant sparse matrix (guaranteed nonsingular).
fn dd_matrix(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut row_sum = vec![0.0_f64; n];
    for &(r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r != c {
            coo.push(r, c, v);
            row_sum[r] += v.abs();
        }
    }
    for (i, &rs) in row_sum.iter().enumerate() {
        coo.push(i, i, rs + 1.0 + i as f64 * 0.01);
    }
    coo.to_csr()
}

/// Same pattern, different values: rescale every stored entry by a
/// positive per-position factor, then restore diagonal dominance so the
/// pinned pivot order stays valid (the fast-path regime).
fn refill_dominant(a: &CsrMatrix, seed: f64) -> CsrMatrix {
    let mut b = a.clone();
    let n = b.nrows();
    for r in 0..n {
        for (k, v) in b.row_values_mut(r).iter_mut().enumerate() {
            *v *= 0.5 + ((r * 31 + k * 7) as f64 * 0.13 + seed).sin().abs();
        }
    }
    // Re-dominate the diagonal against the rescaled off-diagonals.
    for r in 0..n {
        let off: f64 = b
            .row_indices(r)
            .iter()
            .zip(b.row_values(r))
            .filter(|(&c, _)| c != r)
            .map(|(_, v)| v.abs())
            .sum();
        let d = off + 1.0 + r as f64 * 0.01 + seed.abs();
        let idx = b.row_indices(r).iter().position(|&c| c == r).expect("diag");
        b.row_values_mut(r)[idx] = d;
    }
    b
}

fn assert_factors_identical(x: &SparseLu, y: &SparseLu, n: usize) {
    assert_eq!(x.nnz_l(), y.nnz_l(), "L nnz differs");
    assert_eq!(x.nnz_u(), y.nnz_u(), "U nnz differs");
    for probe in 0..3usize {
        let b: Vec<f64> = (0..n)
            .map(|i| ((i * 7 + probe * 13) % 9) as f64 - 4.0)
            .collect();
        // Bitwise: substitution through identical factors yields
        // identical floating-point results, not merely close ones.
        assert_eq!(x.solve(&b), y.solve(&b), "solve differs on probe {probe}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn refactor_is_bitwise_identical_to_factor(
        n in 2usize..35,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..110),
        ordering_pick in 0usize..3,
    ) {
        let a = dd_matrix(n, &entries);
        let ordering =
            [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural][ordering_pick];
        let opts = LuOptions { ordering, ..LuOptions::default() };
        let sym = SymbolicLu::analyze(&a, &opts).expect("dd matrices analyze");
        // Multiple value fills over one analysis, the analyzed values
        // included.
        let fills = [a.clone(), refill_dominant(&a, 0.4), refill_dominant(&a, 1.7)];
        for b in &fills {
            let fast = sym
                .try_refactor(b)
                .expect("same pattern")
                .expect("dominant diagonal keeps pinned pivots");
            let full = SparseLu::factor(b, &opts).expect("dd matrices factor");
            assert_factors_identical(&fast, &full, n);
        }
    }

    #[test]
    fn degraded_pivots_fall_back_and_still_match(
        n in 2usize..25,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 4..80),
        boost in 20.0..200.0_f64,
    ) {
        let a = dd_matrix(n, &entries);
        let opts = LuOptions::default();
        let sym = SymbolicLu::analyze(&a, &opts).expect("dd matrices analyze");
        // Invert the dominance: collapse the diagonal and boost the
        // off-diagonals so threshold pivoting re-routes somewhere (when
        // any off-diagonal exists — otherwise the replay stays valid).
        let mut b = a.clone();
        for r in 0..n {
            let row = b.row_indices(r).to_vec();
            for (k, &c) in row.iter().enumerate() {
                b.row_values_mut(r)[k] = if c == r {
                    1e-7 * (1.0 + r as f64)
                } else {
                    boost * (1.0 + (k as f64 + 1.0) * 0.1)
                };
            }
        }
        // Whichever path `refactor` takes, it must agree with `factor`.
        match (SparseLu::factor(&b, &opts), sym.refactor(&b)) {
            (Ok(full), Ok(two_phase)) => assert_factors_identical(&two_phase, &full, n),
            (Err(_), Err(_)) => {} // singular either way: consistent
            (full, two_phase) => prop_assert!(
                false,
                "paths disagree: factor={:?} refactor={:?}",
                full.map(|_| ()),
                two_phase.map(|_| ())
            ),
        }
    }
}
