//! Property-based contract of the Sherman–Morrison–Woodbury what-if
//! path: for random diagonally-dominant systems and random low-rank
//! edits, corrected solves must agree with a full refactorization of
//! the edited matrix to tight tolerance, be **bitwise** reproducible
//! across repeat solves and worker-pool widths, and reject exactly the
//! edits the fallback contract sends to a refactorization (over-rank
//! and singular/ill-conditioned captures).

use matex_par::ParPool;
use matex_sparse::{
    CooMatrix, CsrMatrix, LuOptions, SmwOptions, SmwRejection, SmwUpdate, SparseCol, SparseLu,
};
use proptest::prelude::*;

/// Random diagonally-dominant sparse matrix (guaranteed nonsingular),
/// with dominance slack > 1 so the small edits below cannot destroy it.
fn dd_matrix(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut row_sum = vec![0.0_f64; n];
    for &(r, c, v) in entries {
        let (r, c) = (r % n, c % n);
        if r != c {
            coo.push(r, c, v);
            row_sum[r] += v.abs();
        }
    }
    for (i, &rs) in row_sum.iter().enumerate() {
        coo.push(i, i, rs + 1.5 + i as f64 * 0.01);
    }
    coo.to_csr()
}

/// Builds a stamp-structured edit from raw proptest input: `k` distinct
/// touched rows, each with a few bounded deltas (U = unit columns,
/// V = delta rows). Total |delta| per row stays below the dominance
/// slack, so the edited matrix is still nonsingular.
fn stamp_edit(n: usize, raw: &[(usize, Vec<(usize, f64)>)]) -> (Vec<SparseCol>, Vec<SparseCol>) {
    let mut u_cols: Vec<SparseCol> = Vec::new();
    let mut v_cols: Vec<SparseCol> = Vec::new();
    let mut used_rows = Vec::new();
    for (row_pick, cols) in raw {
        let row = row_pick % n;
        if used_rows.contains(&row) {
            continue;
        }
        let mut v: SparseCol = Vec::new();
        for (col_pick, delta) in cols {
            let col = col_pick % n;
            if v.iter().any(|&(c, _)| c == col) || *delta == 0.0 {
                continue;
            }
            v.push((col, *delta));
        }
        if v.is_empty() {
            continue;
        }
        v.sort_by_key(|&(c, _)| c);
        used_rows.push(row);
        u_cols.push(vec![(row, 1.0)]);
        v_cols.push(v);
    }
    (u_cols, v_cols)
}

/// The edited matrix `A + U Vᵀ` assembled entry-by-entry.
fn apply_edit(a: &CsrMatrix, u_cols: &[SparseCol], v_cols: &[SparseCol]) -> CsrMatrix {
    let n = a.nrows();
    let mut coo = CooMatrix::new(n, n);
    for r in 0..n {
        for (&c, &v) in a.row_indices(r).iter().zip(a.row_values(r)) {
            coo.push(r, c, v);
        }
    }
    for (u, v) in u_cols.iter().zip(v_cols) {
        for &(r, uv) in u {
            for &(c, vv) in v {
                coo.push(r, c, uv * vv);
            }
        }
    }
    coo.to_csr()
}

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 29 % 13) as f64) * 0.5 - 3.0).collect()
}

/// A raw edit strategy: up to `rows` touched rows, up to 3 deltas each,
/// each delta bounded by 0.4 (total < 1.2 < the 1.5 dominance slack).
fn edit_strategy(rows: usize) -> impl Strategy<Value = Vec<(usize, Vec<(usize, f64)>)>> {
    prop::collection::vec(
        (
            0usize..1000,
            prop::collection::vec((0usize..1000, -0.4..0.4_f64), 1..4),
        ),
        1..rows + 1,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn smw_matches_full_refactorization(
        n in 3usize..28,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -4.0..4.0_f64), 0..90),
        raw_edit in edit_strategy(4),
    ) {
        let a = dd_matrix(n, &entries);
        let (u_cols, v_cols) = stamp_edit(n, &raw_edit);
        if u_cols.is_empty() {
            return; // all candidate deltas degenerated to zero — nothing to test
        }
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let smw = SmwUpdate::build(&lu, &u_cols, &v_cols, &SmwOptions::default())
            .expect("small dominance-preserving edits are accepted");
        prop_assert_eq!(smw.rank(), u_cols.len());
        let edited = apply_edit(&a, &u_cols, &v_cols);
        let lu_edited = SparseLu::factor(&edited, &LuOptions::default()).unwrap();
        let b = rhs(n);
        let corrected = smw.solve_smw(&lu, &b);
        let exact = lu_edited.solve(&b);
        for (p, q) in corrected.iter().zip(&exact) {
            prop_assert!(
                (p - q).abs() <= 1e-10 * q.abs().max(1.0),
                "corrected {p} vs refactored {q}"
            );
        }
    }

    #[test]
    fn corrected_solves_are_bitwise_across_repeats_and_pool_widths(
        n in 3usize..24,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -4.0..4.0_f64), 0..70),
        raw_edit in edit_strategy(3),
    ) {
        let a = dd_matrix(n, &entries);
        let (u_cols, v_cols) = stamp_edit(n, &raw_edit);
        if u_cols.is_empty() {
            return;
        }
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let smw = SmwUpdate::build(&lu, &u_cols, &v_cols, &SmwOptions::default()).unwrap();
        let b = rhs(n);
        // Serial reference: base substitution pair + correction.
        let reference = smw.solve_smw(&lu, &b);
        let again = smw.solve_smw(&lu, &b);
        prop_assert_eq!(&reference, &again, "repeat solves must be bitwise identical");
        // Pooled base solves are bitwise pool-width-invariant, and the
        // correction is a fixed-order post-pass — so the corrected
        // solve is too, at every width.
        let sched = lu.solve_schedule();
        for width in [1usize, 2, 4] {
            let pool = ParPool::new(width);
            let mut out = vec![0.0; n];
            let mut work = vec![0.0; n];
            lu.solve_into_par(&b, &mut out, &mut work, &sched, &pool);
            smw.correct_in_place(&mut out);
            prop_assert_eq!(&reference, &out, "pool width {} diverged", width);
        }
    }

    #[test]
    fn over_rank_edits_are_rejected_and_refactor_is_reproducible(
        n in 6usize..24,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -4.0..4.0_f64), 0..70),
        raw_edit in edit_strategy(5),
    ) {
        let a = dd_matrix(n, &entries);
        let (u_cols, v_cols) = stamp_edit(n, &raw_edit);
        if u_cols.len() < 2 {
            return;
        }
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let tight = SmwOptions { max_rank: u_cols.len() - 1, ..SmwOptions::default() };
        let err = SmwUpdate::build(&lu, &u_cols, &v_cols, &tight).err();
        prop_assert_eq!(
            err,
            Some(SmwRejection::RankExceeded {
                rank: u_cols.len(),
                max_rank: u_cols.len() - 1,
            })
        );
        // The fallback contract: a rejected edit is served by a full
        // factorization of the edited matrix, which is the bitwise
        // same result the never-corrected path produces.
        let edited = apply_edit(&a, &u_cols, &v_cols);
        let b = rhs(n);
        let first = SparseLu::factor(&edited, &LuOptions::default()).unwrap().solve(&b);
        let second = SparseLu::factor(&edited, &LuOptions::default()).unwrap().solve(&b);
        prop_assert_eq!(first, second);
    }

    #[test]
    fn singular_captures_are_rejected(
        n in 2usize..20,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -4.0..4.0_f64), 0..60),
        row_pick in 0usize..1000,
    ) {
        // A rank-1 edit that zeroes an entire row makes the edited
        // matrix singular; the capture determinant detects it
        // (det(A + UVᵀ) = det A · det S) and the build must reject.
        let a = dd_matrix(n, &entries);
        let row = row_pick % n;
        let v: SparseCol = a
            .row_indices(row)
            .iter()
            .zip(a.row_values(row))
            .map(|(&c, &val)| (c, -val))
            .collect();
        let lu = SparseLu::factor(&a, &LuOptions::default()).unwrap();
        let err = SmwUpdate::build(&lu, &[vec![(row, 1.0)]], &[v], &SmwOptions::default());
        prop_assert!(
            matches!(err, Err(SmwRejection::IllConditioned { .. })),
            "singular edit accepted: {err:?}"
        );
    }
}
