//! Property-based tests of the sparse substrate: LU correctness on random
//! structurally-nonsingular systems, format round-trips, ordering
//! validity, and linear-combination algebra.

use matex_sparse::{CooMatrix, CsrMatrix, LuOptions, OrderingKind, Permutation, SparseLu};
use proptest::prelude::*;

/// Strategy: a random diagonally-dominant sparse matrix (guaranteed
/// nonsingular) of dimension `n` with extra off-diagonal entries.
fn dd_matrix(n: usize, entries: Vec<(usize, usize, f64)>) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut row_sum = vec![0.0_f64; n];
    for &(r, c, v) in &entries {
        let (r, c) = (r % n, c % n);
        if r != c {
            coo.push(r, c, v);
            row_sum[r] += v.abs();
        }
    }
    for (i, &rs) in row_sum.iter().enumerate() {
        coo.push(i, i, rs + 1.0 + i as f64 * 0.01);
    }
    coo.to_csr()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lu_solves_random_dd_systems(
        n in 2usize..40,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..120),
        ordering_pick in 0usize..3,
    ) {
        let a = dd_matrix(n, entries);
        let ordering = [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural][ordering_pick];
        let opts = LuOptions { ordering, ..LuOptions::default() };
        let lu = SparseLu::factor(&a, &opts).expect("dd matrices factor");
        let x_true: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let b = a.matvec(&x_true);
        let x = lu.solve(&b);
        for (p, q) in x.iter().zip(&x_true) {
            prop_assert!((p - q).abs() < 1e-8, "{p} vs {q}");
        }
    }

    #[test]
    fn csr_csc_roundtrip(
        n in 1usize..30,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..80),
    ) {
        let a = dd_matrix(n, entries);
        let csc = a.to_csc();
        // Every stored entry agrees both ways.
        for r in 0..n {
            for (k, &c) in a.row_indices(r).iter().enumerate() {
                prop_assert_eq!(csc.get(r, c), a.row_values(r)[k]);
            }
        }
        prop_assert_eq!(csc.nnz(), a.nnz());
        // Matvec agreement on a generic vector.
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let ya = a.matvec(&x);
        let yc = csc.matvec(&x);
        for (p, q) in ya.iter().zip(&yc) {
            prop_assert!((p - q).abs() < 1e-12);
        }
    }

    #[test]
    fn transpose_is_involution_and_preserves_matvec_duality(
        n in 1usize..25,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..60),
    ) {
        let a = dd_matrix(n, entries);
        prop_assert_eq!(a.transpose().transpose(), a.clone());
        // x^T (A y) == (A^T x)^T y
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
        let y: Vec<f64> = (0..n).map(|i| (i as f64 * 0.3).sin()).collect();
        let lhs: f64 = x.iter().zip(a.matvec(&y)).map(|(p, q)| p * q).sum();
        let rhs: f64 = a.transpose().matvec(&x).iter().zip(&y).map(|(p, q)| p * q).sum();
        prop_assert!((lhs - rhs).abs() < 1e-9 * (lhs.abs().max(1.0)));
    }

    #[test]
    fn linear_combination_is_linear(
        n in 1usize..20,
        e1 in prop::collection::vec((0usize..1000, 0usize..1000, -3.0..3.0_f64), 0..40),
        e2 in prop::collection::vec((0usize..1000, 0usize..1000, -3.0..3.0_f64), 0..40),
        alpha in -10.0..10.0_f64,
        beta in -10.0..10.0_f64,
    ) {
        let a = dd_matrix(n, e1);
        let b = dd_matrix(n, e2);
        let combo = CsrMatrix::linear_combination(alpha, &a, beta, &b).expect("same shape");
        let x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.11).sin()).collect();
        let direct = combo.matvec(&x);
        let via_parts: Vec<f64> = a
            .matvec(&x)
            .iter()
            .zip(b.matvec(&x))
            .map(|(p, q)| alpha * p + beta * q)
            .collect();
        for (p, q) in direct.iter().zip(&via_parts) {
            prop_assert!((p - q).abs() < 1e-9 * q.abs().max(1.0));
        }
    }

    #[test]
    fn orderings_are_permutations(
        n in 1usize..40,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..100),
    ) {
        let a = dd_matrix(n, entries);
        for kind in [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural] {
            let p = kind.order(&a);
            prop_assert_eq!(p.len(), n);
            prop_assert!(Permutation::from_vec(p.as_slice().to_vec()).is_ok());
        }
    }

    #[test]
    fn coo_duplicate_order_is_irrelevant(
        n in 1usize..15,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 1..40),
    ) {
        let mut fwd = CooMatrix::new(n, n);
        let mut rev = CooMatrix::new(n, n);
        for &(r, c, v) in &entries {
            fwd.push(r % n, c % n, v);
        }
        for &(r, c, v) in entries.iter().rev() {
            rev.push(r % n, c % n, v);
        }
        let a = fwd.to_csr();
        let b = rev.to_csr();
        prop_assert_eq!(a.nnz(), b.nnz());
        let d = a.to_dense().max_abs_diff(&b.to_dense());
        prop_assert!(d < 1e-12, "order-dependent assembly: {d}");
    }

    #[test]
    fn refined_solve_never_hurts(
        n in 2usize..25,
        entries in prop::collection::vec(
            (0usize..1000, 0usize..1000, -5.0..5.0_f64), 0..60),
    ) {
        let a = dd_matrix(n, entries);
        let lu = SparseLu::factor(&a, &LuOptions::default()).expect("factors");
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).sin()).collect();
        let x0 = lu.solve(&b);
        let x1 = lu.solve_refined(&a, &b, 2);
        let r0 = lu.residual_norm(&a, &x0, &b);
        let r1 = lu.residual_norm(&a, &x1, &b);
        prop_assert!(r1 <= r0 * 10.0 + 1e-14, "refinement degraded: {r0:.2e} -> {r1:.2e}");
    }
}
