//! Benchmark harness for the MATEX paper reproduction.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index). This library holds the
//! shared pieces: the workload suite standing in for the IBM power-grid
//! benchmarks, stiff-mesh construction for Table 1, wall-clock helpers
//! and a plain-text table printer.
//!
//! Scale is controlled by the `MATEX_BENCH_SCALE` environment variable:
//! `ci` (default) finishes in minutes on a laptop; `paper` approaches the
//! paper's node counts (hundreds of thousands of unknowns) and takes
//! correspondingly longer.

use matex_circuit::ibmpg::load_ibmpg_netlist;
use matex_circuit::{CircuitError, MnaSystem, PdnBuilder, RcMeshBuilder};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

pub mod gate;

/// Benchmark scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids; the whole suite runs in minutes.
    Ci,
    /// Paper-approaching node counts.
    Paper,
}

impl Scale {
    /// Reads `MATEX_BENCH_SCALE` (defaults to `ci`).
    pub fn from_env() -> Scale {
        match std::env::var("MATEX_BENCH_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Ci,
        }
    }
}

/// One workload of the IBM-like suite.
#[derive(Debug, Clone)]
pub struct PgCase {
    /// Case name (`ibmpg1t`-like naming; the real name when a vendored
    /// benchmark file backs the case).
    pub name: String,
    /// The configured synthetic grid builder (the stand-in, and the
    /// fallback when no benchmark file is vendored).
    pub builder: PdnBuilder,
    /// Transient window (seconds) matching the paper's 10 ns runs.
    pub window: f64,
    /// A real `ibmpg<i>t` netlist backing this case, when found under
    /// `MATEX_PG_DIR` at `paper` scale.
    pub netlist_path: Option<PathBuf>,
}

impl PgCase {
    /// Builds the case's system: parses the vendored IBM netlist when
    /// one backs the case, the synthetic grid otherwise.
    ///
    /// # Errors
    ///
    /// Propagates parse/assembly failures from either path.
    pub fn build(&self) -> Result<MnaSystem, CircuitError> {
        match &self.netlist_path {
            Some(path) => {
                let parsed = load_ibmpg_netlist(path)?;
                MnaSystem::assemble(&parsed.netlist)
            }
            None => self.builder.build(),
        }
    }
}

/// Locates a vendored `ibmpg<i>t` netlist in `dir`, trying the common
/// extensions the suite is distributed with.
fn find_ibmpg_netlist(dir: &Path, index: usize) -> Option<PathBuf> {
    for ext in ["spice", "sp", "ckt", "net"] {
        let path = dir.join(format!("ibmpg{index}t.{ext}"));
        if path.is_file() {
            return Some(path);
        }
    }
    None
}

/// The six-grid suite standing in for `ibmpg1t…ibmpg6t`.
///
/// Node counts grow monotonically like the originals; each case has
/// thousands of pulse loads sharing ~`features` bump shapes, which is the
/// structure Table 3's "Group #" column counts.
///
/// At `paper` scale, setting `MATEX_PG_DIR` to a directory containing
/// the real (non-redistributable) `ibmpg1t…ibmpg6t` netlists swaps each
/// found case over to the vendored file ([`PgCase::build`] then parses
/// it); missing files fall back to the synthetic stand-in with a logged
/// notice, so the suite runs usefully either way.
pub fn pg_suite(scale: Scale) -> Vec<PgCase> {
    let window = 1e-8;
    let (dims, load_div, features): (&[usize], usize, usize) = match scale {
        Scale::Ci => (&[20, 28, 36, 44, 52, 60], 4, 8),
        Scale::Paper => (&[90, 130, 180, 220, 260, 320], 2, 32),
    };
    let pg_dir: Option<PathBuf> = match (scale, std::env::var_os("MATEX_PG_DIR")) {
        (Scale::Paper, Some(dir)) => Some(PathBuf::from(dir)),
        (Scale::Paper, None) => {
            eprintln!(
                "pg_suite: MATEX_PG_DIR not set — paper scale runs synthetic stand-ins \
                 (point it at the ibmpg1t…6t netlists to run the real benchmarks)"
            );
            None
        }
        _ => None,
    };
    dims.iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut builder = PdnBuilder::new(d, d)
                .num_loads((d * d / load_div).max(8))
                .num_features(features)
                .window(window)
                .cap_spread(30.0)
                .seed(1000 + i as u64);
            // The larger IBM cases are RLC grids: give pg4t–pg6t package
            // inductance (C becomes singular — the regularization-free
            // path of Sec. 3.3.3 is then load-bearing).
            if i >= 3 {
                builder = builder.pad_inductance(1e-11);
            }
            let netlist_path = pg_dir.as_deref().and_then(|dir| {
                let found = find_ibmpg_netlist(dir, i + 1);
                if found.is_none() {
                    eprintln!(
                        "pg_suite: ibmpg{}t not found under {} — using the synthetic stand-in",
                        i + 1,
                        dir.display()
                    );
                }
                found
            });
            PgCase {
                name: if netlist_path.is_some() {
                    format!("ibmpg{}t", i + 1)
                } else {
                    format!("pg{}t", i + 1)
                },
                builder,
                window,
                netlist_path,
            }
        })
        .collect()
}

/// Table-1-style stiff RC mesh for a target stiffness ratio.
///
/// The achieved stiffness of `−C⁻¹G` (measurable with
/// `matex_core::measure_stiffness` for small meshes) tracks the requested
/// cap ratio times the mesh's intrinsic spread.
pub fn stiff_rc_case(stiffness_ratio: f64, scale: Scale) -> RcMeshBuilder {
    let n = match scale {
        Scale::Ci => 12,
        Scale::Paper => 20,
    };
    RcMeshBuilder::new(n, n)
        .stiffness_ratio(stiffness_ratio)
        .segment_resistance(1.0)
        .node_capacitance(1e-15)
}

/// Times a closure, returning `(result, wall_time)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Formats a `Duration` in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A minimal fixed-width table printer for paper-style output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}", cell, w = width[c]));
                if c + 1 < ncol {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Ratio of two durations as a "Spdp"-style string (`12.3X`).
pub fn speedup(baseline: Duration, improved: Duration) -> String {
    let r = baseline.as_secs_f64() / improved.as_secs_f64().max(1e-12);
    format!("{r:.1}X")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_growing_cases() {
        let suite = pg_suite(Scale::Ci);
        assert_eq!(suite.len(), 6);
        let dims: Vec<usize> = suite.iter().map(|c| c.build().unwrap().dim()).collect();
        for w in dims.windows(2) {
            assert!(w[1] > w[0], "suite must grow: {dims:?}");
        }
    }

    #[test]
    fn netlist_backed_case_parses_the_vendored_file() {
        // Simulate a vendored ibmpg directory with a tiny valid netlist;
        // the helper must find it by the conventional name and build()
        // must parse it instead of the synthetic stand-in.
        let dir = std::env::temp_dir().join(format!("matex_pg_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ibmpg1t.spice");
        std::fs::write(
            &path,
            "* tiny stand-in\n\
             i1 0 n1_0_0 PULSE(0 1m 0.1n 50p 200p 50p)\n\
             r1 n1_0_0 0 1k\n\
             c1 n1_0_0 0 10f\n\
             .end\n",
        )
        .unwrap();
        assert_eq!(find_ibmpg_netlist(&dir, 1), Some(path.clone()));
        assert_eq!(find_ibmpg_netlist(&dir, 2), None);
        let mut case = pg_suite(Scale::Ci).remove(0);
        let synthetic_dim = case.build().unwrap().dim();
        case.netlist_path = Some(path);
        let real = case.build().unwrap();
        assert_eq!(real.dim(), 1);
        assert_ne!(real.dim(), synthetic_dim);
        // A broken vendored file surfaces as an error, not a fallback.
        case.netlist_path = Some(dir.join("ibmpg9t.spice"));
        assert!(case.build().is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("a  bb"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn speedup_format() {
        assert_eq!(
            speedup(Duration::from_secs(10), Duration::from_secs(2)),
            "5.0X"
        );
    }

    #[test]
    fn scale_default_is_ci() {
        // Cannot mutate the environment safely in tests; just check the
        // default path.
        assert_eq!(Scale::from_env(), Scale::Ci);
    }
}
