//! Benchmark harness for the MATEX paper reproduction.
//!
//! Each bench target under `benches/` regenerates one table or figure of
//! the paper (see DESIGN.md §4 for the index). This library holds the
//! shared pieces: the workload suite standing in for the IBM power-grid
//! benchmarks, stiff-mesh construction for Table 1, wall-clock helpers
//! and a plain-text table printer.
//!
//! Scale is controlled by the `MATEX_BENCH_SCALE` environment variable:
//! `ci` (default) finishes in minutes on a laptop; `paper` approaches the
//! paper's node counts (hundreds of thousands of unknowns) and takes
//! correspondingly longer.

use matex_circuit::{PdnBuilder, RcMeshBuilder};
use std::time::{Duration, Instant};

pub mod gate;

/// Benchmark scale selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids; the whole suite runs in minutes.
    Ci,
    /// Paper-approaching node counts.
    Paper,
}

impl Scale {
    /// Reads `MATEX_BENCH_SCALE` (defaults to `ci`).
    pub fn from_env() -> Scale {
        match std::env::var("MATEX_BENCH_SCALE").as_deref() {
            Ok("paper") | Ok("PAPER") => Scale::Paper,
            _ => Scale::Ci,
        }
    }
}

/// One workload of the IBM-like suite.
#[derive(Debug, Clone)]
pub struct PgCase {
    /// Case name (`ibmpg1t`-like naming).
    pub name: String,
    /// The configured grid builder.
    pub builder: PdnBuilder,
    /// Transient window (seconds) matching the paper's 10 ns runs.
    pub window: f64,
}

/// The six-grid suite standing in for `ibmpg1t…ibmpg6t`.
///
/// Node counts grow monotonically like the originals; each case has
/// thousands of pulse loads sharing ~`features` bump shapes, which is the
/// structure Table 3's "Group #" column counts.
pub fn pg_suite(scale: Scale) -> Vec<PgCase> {
    let window = 1e-8;
    let (dims, load_div, features): (&[usize], usize, usize) = match scale {
        Scale::Ci => (&[20, 28, 36, 44, 52, 60], 4, 8),
        Scale::Paper => (&[90, 130, 180, 220, 260, 320], 2, 32),
    };
    dims.iter()
        .enumerate()
        .map(|(i, &d)| {
            let mut builder = PdnBuilder::new(d, d)
                .num_loads((d * d / load_div).max(8))
                .num_features(features)
                .window(window)
                .cap_spread(30.0)
                .seed(1000 + i as u64);
            // The larger IBM cases are RLC grids: give pg4t–pg6t package
            // inductance (C becomes singular — the regularization-free
            // path of Sec. 3.3.3 is then load-bearing).
            if i >= 3 {
                builder = builder.pad_inductance(1e-11);
            }
            PgCase {
                name: format!("pg{}t", i + 1),
                builder,
                window,
            }
        })
        .collect()
}

/// Table-1-style stiff RC mesh for a target stiffness ratio.
///
/// The achieved stiffness of `−C⁻¹G` (measurable with
/// `matex_core::measure_stiffness` for small meshes) tracks the requested
/// cap ratio times the mesh's intrinsic spread.
pub fn stiff_rc_case(stiffness_ratio: f64, scale: Scale) -> RcMeshBuilder {
    let n = match scale {
        Scale::Ci => 12,
        Scale::Paper => 20,
    };
    RcMeshBuilder::new(n, n)
        .stiffness_ratio(stiffness_ratio)
        .segment_resistance(1.0)
        .node_capacitance(1e-15)
}

/// Times a closure, returning `(result, wall_time)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed())
}

/// Formats a `Duration` in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// A minimal fixed-width table printer for paper-style output.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics on column-count mismatch.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "table row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let ncol = self.header.len();
        let mut width = vec![0usize; ncol];
        for (c, h) in self.header.iter().enumerate() {
            width[c] = width[c].max(h.len());
        }
        for row in &self.rows {
            for (c, cell) in row.iter().enumerate() {
                width[c] = width[c].max(cell.len());
            }
        }
        let mut out = String::new();
        let line = |out: &mut String, cells: &[String]| {
            for (c, cell) in cells.iter().enumerate() {
                out.push_str(&format!("{:>w$}", cell, w = width[c]));
                if c + 1 < ncol {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        line(&mut out, &self.header);
        let total: usize = width.iter().sum::<usize>() + 2 * (ncol - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Ratio of two durations as a "Spdp"-style string (`12.3X`).
pub fn speedup(baseline: Duration, improved: Duration) -> String {
    let r = baseline.as_secs_f64() / improved.as_secs_f64().max(1e-12);
    format!("{r:.1}X")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_growing_cases() {
        let suite = pg_suite(Scale::Ci);
        assert_eq!(suite.len(), 6);
        let dims: Vec<usize> = suite
            .iter()
            .map(|c| c.builder.clone().build().unwrap().dim())
            .collect();
        for w in dims.windows(2) {
            assert!(w[1] > w[0], "suite must grow: {dims:?}");
        }
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("a  bb"));
        assert!(s.lines().count() == 3);
    }

    #[test]
    fn speedup_format() {
        assert_eq!(
            speedup(Duration::from_secs(10), Duration::from_secs(2)),
            "5.0X"
        );
    }

    #[test]
    fn scale_default_is_ci() {
        // Cannot mutate the environment safely in tests; just check the
        // default path.
        assert_eq!(Scale::from_env(), Scale::Ci);
    }
}
