//! Bench-regression gate: compares freshly emitted `BENCH_*.json`
//! artifacts against committed baselines and fails on slowdowns.
//!
//! The tracked metrics are the **speedup ratios** each bench exists to
//! demonstrate (`speedup` for the two-phase LU replay and for the
//! batched snapshot evaluation, `spdp4`/`spdp5` for the distributed
//! framework, `hit_speedup` for the scenario engine's cold-vs-warm
//! amortization, `whatif_speedup` for the SMW-corrected what-if path
//! vs the refactoring warm path, `p99_guard` for the margin by which
//! admission keeps the admitted-job p99 inside 2× the uncontended p99
//! under a 4× overload burst, `restart_speedup`/`bytes_ratio` for the
//! artifact store's warm restart and the binary frame encoding's wire
//! saving) — ratios of times measured in the same
//! process, so they stay comparable across runner generations where
//! absolute seconds would not. A metric regresses when the fresh value
//! drops more than the tolerance below its baseline (default
//! [`DEFAULT_TOLERANCE`] = 15%).
//!
//! The comparison logic lives here, in the library, so the injected-
//! regression behaviour is pinned by unit tests; `src/bin/bench_gate.rs`
//! is a thin CLI over [`parse_metrics`] / [`compare`].

use std::fmt::Write as _;

/// Relative drop below baseline that fails the gate (15%).
pub const DEFAULT_TOLERANCE: f64 = 0.15;

/// One tracked (design, metric) data point. All tracked metrics are
/// higher-is-better ratios.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Design the row belongs to (`pg1t` …).
    pub design: String,
    /// Metric key inside the row (`speedup`, `spdp4`, …).
    pub name: String,
    /// The measured value.
    pub value: f64,
}

/// One line of the gate report.
#[derive(Debug, Clone)]
pub struct GateRow {
    /// `design/metric` identity.
    pub design: String,
    /// Metric key.
    pub metric: String,
    /// Committed baseline value.
    pub baseline: f64,
    /// Freshly measured value (`None` when the fresh artifact lost the
    /// row — itself a failure).
    pub fresh: Option<f64>,
    /// Relative change, `fresh / baseline - 1`.
    pub delta: f64,
    /// Whether this row fails the gate.
    pub regressed: bool,
}

/// The before/after comparison of one bench artifact.
#[derive(Debug, Clone)]
pub struct GateReport {
    /// Bench name the artifact declared.
    pub bench: String,
    /// Per-(design, metric) rows in baseline order.
    pub rows: Vec<GateRow>,
}

impl GateReport {
    /// Number of failing rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Plain-text before/after table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "bench {}: {} regression(s)",
            self.bench,
            self.regressions()
        );
        for r in &self.rows {
            let fresh = r
                .fresh
                .map(|f| format!("{f:8.2}"))
                .unwrap_or_else(|| "missing".into());
            let _ = writeln!(
                out,
                "  {:6} {:8} base {:8.2} -> fresh {} ({:+6.1}%){}",
                r.design,
                r.metric,
                r.baseline,
                fresh,
                r.delta * 100.0,
                if r.regressed { "  << REGRESSION" } else { "" },
            );
        }
        out
    }

    /// GitHub-flavoured markdown table (for the job summary).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "### `{}` — {}\n",
            self.bench,
            if self.regressions() == 0 {
                "✅ no regressions".to_string()
            } else {
                format!("❌ {} regression(s)", self.regressions())
            }
        );
        let _ = writeln!(out, "| design | metric | baseline | fresh | Δ | |");
        let _ = writeln!(out, "|---|---|---|---|---|---|");
        for r in &self.rows {
            let fresh = r
                .fresh
                .map(|f| format!("{f:.2}"))
                .unwrap_or_else(|| "missing".into());
            let _ = writeln!(
                out,
                "| {} | {} | {:.2} | {} | {:+.1}% | {} |",
                r.design,
                r.metric,
                r.baseline,
                fresh,
                r.delta * 100.0,
                if r.regressed { "❌" } else { "✅" },
            );
        }
        out
    }
}

/// Extracts the tracked metrics from one emitted `BENCH_*.json`.
///
/// The artifacts are written by the benches themselves (flat objects
/// inside a `"rows"` array — see `benches/lu_refactor.rs`), so a small
/// purpose-built scanner is all the offline workspace needs.
///
/// # Errors
///
/// Returns a description when the text is not a recognized artifact.
pub fn parse_metrics(text: &str) -> Result<(String, Vec<Metric>), String> {
    let bench = extract_string_field(text, "bench")
        .ok_or_else(|| "artifact has no \"bench\" field".to_string())?;
    let tracked: &[&str] = match bench.as_str() {
        "lu_refactor" => &["speedup"],
        "table3_distributed" => &["spdp4", "spdp5"],
        "eval_batch" => &["speedup"],
        "serve_throughput" => &["hit_speedup"],
        "whatif" => &["whatif_speedup"],
        "overload" => &["p99_guard"],
        "store_restart" => &["restart_speedup", "bytes_ratio"],
        "faultbench" => &["recovery_determinism"],
        "obsbench" => &["overhead_guard"],
        other => return Err(format!("no tracked metrics for bench kind {other:?}")),
    };
    let rows_start = text
        .find("\"rows\"")
        .ok_or_else(|| "artifact has no \"rows\" array".to_string())?;
    let mut metrics = Vec::new();
    let mut rest = &text[rows_start..];
    while let Some(obj_start) = rest.find('{') {
        let obj_end = rest[obj_start..]
            .find('}')
            .ok_or_else(|| "unterminated row object".to_string())?;
        let obj = &rest[obj_start + 1..obj_start + obj_end];
        let design = extract_string_field(obj, "design")
            .ok_or_else(|| "row object has no \"design\" field".to_string())?;
        for &name in tracked {
            let value = extract_number_field(obj, name)
                .ok_or_else(|| format!("row {design:?} has no {name:?} field"))?;
            metrics.push(Metric {
                design: design.clone(),
                name: name.to_string(),
                value,
            });
        }
        rest = &rest[obj_start + obj_end + 1..];
    }
    if metrics.is_empty() {
        return Err("artifact has an empty \"rows\" array".to_string());
    }
    Ok((bench, metrics))
}

/// Compares fresh metrics against a baseline: a row fails when its value
/// drops more than `tolerance` below the baseline, or disappears.
pub fn compare(bench: &str, baseline: &[Metric], fresh: &[Metric], tolerance: f64) -> GateReport {
    let rows = baseline
        .iter()
        .map(|b| {
            let fresh_value = fresh
                .iter()
                .find(|f| f.design == b.design && f.name == b.name)
                .map(|f| f.value);
            let (delta, regressed) = match fresh_value {
                Some(f) => (
                    f / b.value - 1.0,
                    f < b.value * (1.0 - tolerance) || !f.is_finite(),
                ),
                None => (-1.0, true),
            };
            GateRow {
                design: b.design.clone(),
                metric: b.name.clone(),
                baseline: b.value,
                fresh: fresh_value,
                delta,
                regressed,
            }
        })
        .collect();
    GateReport {
        bench: bench.to_string(),
        rows,
    }
}

/// `"key": "value"` lookup in a flat JSON fragment.
fn extract_string_field(text: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)?;
    let rest = text[at + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// `"key": number` lookup in a flat JSON fragment.
fn extract_number_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\"");
    let at = text.find(&pat)?;
    let rest = text[at + pat.len()..].trim_start().strip_prefix(':')?;
    let rest = rest.trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LU_SAMPLE: &str = r#"{
  "bench": "lu_refactor",
  "scale": "ci",
  "gammas": 5,
  "rows": [
    {"design": "pg1t", "n": 433, "nnz": 2095, "full_s": 0.004612, "refactor_s": 0.001027, "speedup": 4.49},
    {"design": "pg2t", "n": 841, "nnz": 4143, "full_s": 0.014446, "refactor_s": 0.004565, "speedup": 3.16}
  ]
}"#;

    const EVAL_SAMPLE: &str = r#"{
  "bench": "eval_batch",
  "scale": "ci",
  "k": 48,
  "rows": [
    {"design": "pg1t", "n": 433, "m": 2, "k": 48, "fails": 0, "legacy_expms": 48, "batch_expms": 48, "legacy_s": 0.001406, "batch_s": 0.000440, "speedup": 3.20},
    {"design": "stiffrc", "n": 144, "m": 12, "k": 48, "fails": 4, "legacy_expms": 168, "batch_expms": 60, "legacy_s": 0.022975, "batch_s": 0.009271, "speedup": 2.48}
  ]
}"#;

    const SERVE_SAMPLE: &str = r#"{
  "bench": "serve_throughput",
  "scale": "ci",
  "service": {"clients": 4, "completed": 24, "jobs_per_s": 82.8, "p50_ms": 41.7, "p99_ms": 70.0, "warm_rate": 0.71, "deterministic": true},
  "rows": [
    {"design": "pg1s", "n": 841, "jobs": 13, "cold_s": 0.0136, "hit_s": 0.0029, "hit_speedup": 4.70, "max_dev": 0.0e0},
    {"design": "pg2s", "n": 1385, "jobs": 13, "cold_s": 0.0334, "hit_s": 0.0062, "hit_speedup": 5.40, "max_dev": 0.0e0}
  ]
}"#;

    const WHATIF_SAMPLE: &str = r#"{
  "bench": "whatif",
  "scale": "ci",
  "whatif": {"hits": 16, "avg_rank": 1.00, "fallback_bitwise": true},
  "rows": [
    {"design": "pg1w", "n": 841, "variants": 8, "cold_s": 0.0141, "hit_s": 0.0102, "whatif_s": 0.0031, "whatif_speedup": 3.29, "max_dev": 2.1e-12},
    {"design": "pg2w", "n": 1385, "variants": 8, "cold_s": 0.0350, "hit_s": 0.0258, "whatif_s": 0.0064, "whatif_speedup": 4.03, "max_dev": 3.4e-12}
  ]
}"#;

    const OVERLOAD_SAMPLE: &str = r#"{
  "bench": "overload",
  "scale": "ci",
  "deterministic": true,
  "rows": [
    {"design": "burst4x", "n": 256, "offered": 96, "admitted": 41, "rejected": 55, "shed_frac": 0.573, "uncontended_p99_ms": 4.1, "admitted_p99_ms": 5.2, "p99_guard": 1.58}
  ]
}"#;

    const STORE_SAMPLE: &str = r#"{
  "bench": "store_restart",
  "scale": "ci",
  "store": {"writes": 6, "hits": 6, "bitwise": true},
  "rows": [
    {"design": "pg1r", "n": 4097, "cold_s": 0.0151, "restart_s": 0.0032, "restart_speedup": 4.72, "json_bytes": 118342, "binary_bytes": 42100, "bytes_ratio": 2.81},
    {"design": "pg2r", "n": 5185, "cold_s": 0.0371, "restart_s": 0.0068, "restart_speedup": 5.46, "json_bytes": 151200, "binary_bytes": 53460, "bytes_ratio": 2.83}
  ]
}"#;

    const TABLE3_SAMPLE: &str = r#"{
  "bench": "table3_distributed",
  "scale": "ci",
  "rows": [
    {"design": "pg1t", "t1000_s": 0.0158, "groups": 9, "max_err": 1.070e-7, "spdp4": 14.60, "spdp5": 9.97},
    {"design": "pg2t", "t1000_s": 0.0450, "groups": 9, "max_err": 9.755e-8, "spdp4": 22.56, "spdp5": 13.18}
  ]
}"#;

    const FAULTS_SAMPLE: &str = r#"{
  "bench": "faultbench",
  "scale": "ci",
  "rows": [
    {"design": "dist", "n": 117, "faults": 3, "node_retries": 3, "engine_retries": 2, "store_errors": 8, "reconnects": 0, "recovery_determinism": 1},
    {"design": "fleet", "n": 117, "faults": 4, "node_retries": 0, "engine_retries": 3, "store_errors": 12, "reconnects": 2, "recovery_determinism": 1}
  ]
}"#;

    const OBS_SAMPLE: &str = r#"{
  "bench": "obsbench",
  "scale": "ci",
  "rows": [
    {"design": "solver", "n": 117, "runs": 20, "disabled_ms": 112.4, "enabled_ms": 113.1, "overhead_pct": 0.62, "spans": 4210, "overhead_guard": 1.000},
    {"design": "engine", "n": 117, "runs": 40, "disabled_ms": 96.3, "enabled_ms": 97.0, "overhead_pct": 0.73, "spans": 1680, "overhead_guard": 1.000}
  ]
}"#;

    fn reinject(text: &str, from: &str, to: &str) -> String {
        assert!(text.contains(from), "sample must contain {from}");
        text.replace(from, to)
    }

    #[test]
    fn parses_tracked_metrics_per_bench_kind() {
        let (bench, lu) = parse_metrics(LU_SAMPLE).unwrap();
        assert_eq!(bench, "lu_refactor");
        assert_eq!(lu.len(), 2); // speedup only
        assert_eq!(lu[0].design, "pg1t");
        assert_eq!(lu[0].value, 4.49);
        let (bench, t3) = parse_metrics(TABLE3_SAMPLE).unwrap();
        assert_eq!(bench, "table3_distributed");
        assert_eq!(t3.len(), 4); // spdp4 + spdp5 per design
        assert!(t3.iter().any(|m| m.name == "spdp5" && m.value == 13.18));
        let (bench, ev) = parse_metrics(EVAL_SAMPLE).unwrap();
        assert_eq!(bench, "eval_batch");
        assert_eq!(ev.len(), 2); // speedup per design
        assert!(ev.iter().any(|m| m.design == "stiffrc" && m.value == 2.48));
        let (bench, sv) = parse_metrics(SERVE_SAMPLE).unwrap();
        assert_eq!(bench, "serve_throughput");
        // The service summary object precedes "rows" and is not a row:
        // exactly one hit_speedup metric per design.
        assert_eq!(sv.len(), 2);
        assert!(sv.iter().any(|m| m.design == "pg2s" && m.value == 5.40));
        let (bench, wi) = parse_metrics(WHATIF_SAMPLE).unwrap();
        assert_eq!(bench, "whatif");
        // Likewise the whatif summary object is skipped by the scanner.
        assert_eq!(wi.len(), 2);
        assert!(wi.iter().any(|m| m.design == "pg1w" && m.value == 3.29));
        let (bench, ov) = parse_metrics(OVERLOAD_SAMPLE).unwrap();
        assert_eq!(bench, "overload");
        assert_eq!(ov.len(), 1); // p99_guard only
        assert!(ov.iter().any(|m| m.design == "burst4x" && m.value == 1.58));
        let (bench, st) = parse_metrics(STORE_SAMPLE).unwrap();
        assert_eq!(bench, "store_restart");
        // Two tracked metrics per design; the store summary object
        // before "rows" is not a row.
        assert_eq!(st.len(), 4);
        assert!(st
            .iter()
            .any(|m| m.design == "pg1r" && m.name == "restart_speedup" && m.value == 4.72));
        assert!(st
            .iter()
            .any(|m| m.design == "pg2r" && m.name == "bytes_ratio" && m.value == 2.83));
    }

    #[test]
    fn blown_observability_overhead_fails_the_gate() {
        let (bench, base) = parse_metrics(OBS_SAMPLE).unwrap();
        assert_eq!(bench, "obsbench");
        // overhead_guard is the only tracked metric: 1 per design.
        assert_eq!(base.len(), 2);
        assert!(base
            .iter()
            .all(|m| m.name == "overhead_guard" && m.value == 1.0));
        // An enabled run that blew its 2% budget reports the
        // disabled/enabled ratio instead of 1 — e.g. 0.8 for a 25%
        // overhead — which is a 20% slide, outside the 15% tolerance.
        let slow = reinject(
            OBS_SAMPLE,
            "\"spans\": 1680, \"overhead_guard\": 1.000",
            "\"spans\": 1680, \"overhead_guard\": 0.800",
        );
        let (_, fresh) = parse_metrics(&slow).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        let bad = report.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(bad.design, "engine");
        assert_eq!(bad.metric, "overhead_guard");
        // Within-budget runs pass exactly.
        let (_, same) = parse_metrics(OBS_SAMPLE).unwrap();
        assert_eq!(
            compare(&bench, &base, &same, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn lost_recovery_determinism_fails_the_gate() {
        let (bench, base) = parse_metrics(FAULTS_SAMPLE).unwrap();
        assert_eq!(bench, "faultbench");
        // recovery_determinism is binary: tracked per design, both 1.
        assert_eq!(base.len(), 2);
        assert!(base
            .iter()
            .all(|m| m.name == "recovery_determinism" && m.value == 1.0));
        // Either phase dropping to 0 — a recovered waveform diverging
        // from its fault-free reference — trips the gate: 0 is a 100%
        // drop, far outside any tolerance.
        let broken = reinject(
            FAULTS_SAMPLE,
            "\"reconnects\": 2, \"recovery_determinism\": 1",
            "\"reconnects\": 2, \"recovery_determinism\": 0",
        );
        let (_, fresh) = parse_metrics(&broken).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        let bad = report.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(bad.design, "fleet");
        assert_eq!(bad.metric, "recovery_determinism");
        // An intact run passes exactly.
        let (_, same) = parse_metrics(FAULTS_SAMPLE).unwrap();
        assert_eq!(
            compare(&bench, &base, &same, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn store_restart_regressions_fail_the_gate() {
        let (bench, base) = parse_metrics(STORE_SAMPLE).unwrap();
        // 4.72 → 3.20: the hydrated restart losing a third of its edge
        // must trip, even though 3.20 still clears the 3X acceptance
        // floor — the gate fires before the criterion is violated.
        let slowed = reinject(
            STORE_SAMPLE,
            "\"restart_speedup\": 4.72",
            "\"restart_speedup\": 3.20",
        );
        let (_, fresh) = parse_metrics(&slowed).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert_eq!(
            report.rows.iter().find(|r| r.regressed).unwrap().metric,
            "restart_speedup"
        );
        // A fattened wire encoding trips the bytes metric independently.
        let fattened = reinject(
            STORE_SAMPLE,
            "\"bytes_ratio\": 2.83",
            "\"bytes_ratio\": 1.90",
        );
        let (_, fresh) = parse_metrics(&fattened).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert_eq!(
            report.rows.iter().find(|r| r.regressed).unwrap().metric,
            "bytes_ratio"
        );
        // Within-tolerance wobble passes.
        let wobbled = reinject(
            STORE_SAMPLE,
            "\"restart_speedup\": 5.46",
            "\"restart_speedup\": 5.00",
        );
        let (_, fresh) = parse_metrics(&wobbled).unwrap();
        assert_eq!(
            compare(&bench, &base, &fresh, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn overload_p99_guard_regression_fails_the_gate() {
        let (bench, base) = parse_metrics(OVERLOAD_SAMPLE).unwrap();
        // 1.58 → 1.10: the admitted tail creeping toward the 2x bound
        // must trip the gate while still inside the hard floor — the
        // gate fires before the acceptance criterion is violated.
        let slipped = reinject(
            OVERLOAD_SAMPLE,
            "\"p99_guard\": 1.58",
            "\"p99_guard\": 1.10",
        );
        let (_, fresh) = parse_metrics(&slipped).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert_eq!(
            report.rows.iter().find(|r| r.regressed).unwrap().metric,
            "p99_guard"
        );
        // A within-tolerance wobble passes.
        let wobbled = reinject(
            OVERLOAD_SAMPLE,
            "\"p99_guard\": 1.58",
            "\"p99_guard\": 1.40",
        );
        let (_, fresh) = parse_metrics(&wobbled).unwrap();
        assert_eq!(
            compare(&bench, &base, &fresh, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn whatif_speedup_regression_fails_the_gate() {
        let (bench, base) = parse_metrics(WHATIF_SAMPLE).unwrap();
        // 4.03 → 2.00: the SMW path losing half its edge over the
        // refactoring warm path must trip, even though 2.00 still
        // clears the 2X acceptance floor in absolute terms.
        let slowed = reinject(
            WHATIF_SAMPLE,
            "\"whatif_speedup\": 4.03",
            "\"whatif_speedup\": 2.00",
        );
        let (_, fresh) = parse_metrics(&slowed).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert_eq!(
            report.rows.iter().find(|r| r.regressed).unwrap().design,
            "pg2w"
        );
        // A within-tolerance wobble on the other design passes.
        let wobbled = reinject(
            WHATIF_SAMPLE,
            "\"whatif_speedup\": 3.29",
            "\"whatif_speedup\": 3.00",
        );
        let (_, fresh) = parse_metrics(&wobbled).unwrap();
        assert_eq!(
            compare(&bench, &base, &fresh, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn serve_hit_speedup_regression_fails_the_gate() {
        let (bench, base) = parse_metrics(SERVE_SAMPLE).unwrap();
        // 4.70 → 3.20: the warm path losing a third of its edge must trip.
        let slowed = reinject(
            SERVE_SAMPLE,
            "\"hit_speedup\": 4.70",
            "\"hit_speedup\": 3.20",
        );
        let (_, fresh) = parse_metrics(&slowed).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert_eq!(
            report.rows.iter().find(|r| r.regressed).unwrap().design,
            "pg1s"
        );
    }

    #[test]
    fn eval_batch_regression_fails_the_gate() {
        let (bench, base) = parse_metrics(EVAL_SAMPLE).unwrap();
        // 2.48 → 1.40: the batched path losing its ≥1.5X edge must trip.
        let slowed = reinject(EVAL_SAMPLE, "\"speedup\": 2.48", "\"speedup\": 1.40");
        let (_, fresh) = parse_metrics(&slowed).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
    }

    #[test]
    fn identical_artifacts_pass() {
        let (bench, base) = parse_metrics(TABLE3_SAMPLE).unwrap();
        let report = compare(&bench, &base, &base, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 0);
        assert_eq!(report.rows.len(), 4);
        assert!(report.render_text().contains("0 regression(s)"));
    }

    #[test]
    fn injected_20_percent_slowdown_fails_the_gate() {
        // The acceptance-criterion scenario: a >15% drop in one tracked
        // metric must fail.
        let (bench, base) = parse_metrics(LU_SAMPLE).unwrap();
        let slowed = reinject(LU_SAMPLE, "\"speedup\": 3.16", "\"speedup\": 2.53");
        let (_, fresh) = parse_metrics(&slowed).unwrap();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        let bad = report.rows.iter().find(|r| r.regressed).unwrap();
        assert_eq!(
            (bad.design.as_str(), bad.metric.as_str()),
            ("pg2t", "speedup")
        );
        assert!(bad.delta < -0.15);
        assert!(report.render_markdown().contains("❌"));
    }

    #[test]
    fn slowdown_within_tolerance_passes() {
        let (bench, base) = parse_metrics(LU_SAMPLE).unwrap();
        // 4.49 → 4.00 is a 10.9% drop: noise, not a regression.
        let wobbled = reinject(LU_SAMPLE, "\"speedup\": 4.49", "\"speedup\": 4.00");
        let (_, fresh) = parse_metrics(&wobbled).unwrap();
        assert_eq!(
            compare(&bench, &base, &fresh, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn improvements_always_pass() {
        let (bench, base) = parse_metrics(TABLE3_SAMPLE).unwrap();
        let faster = reinject(TABLE3_SAMPLE, "\"spdp4\": 14.60", "\"spdp4\": 40.0");
        let (_, fresh) = parse_metrics(&faster).unwrap();
        assert_eq!(
            compare(&bench, &base, &fresh, DEFAULT_TOLERANCE).regressions(),
            0
        );
    }

    #[test]
    fn missing_design_in_fresh_artifact_fails() {
        let (bench, base) = parse_metrics(LU_SAMPLE).unwrap();
        let fresh: Vec<Metric> = base
            .iter()
            .filter(|m| m.design != "pg2t")
            .cloned()
            .collect();
        let report = compare(&bench, &base, &fresh, DEFAULT_TOLERANCE);
        assert_eq!(report.regressions(), 1);
        assert!(report.render_text().contains("missing"));
    }

    #[test]
    fn malformed_artifacts_are_rejected() {
        assert!(parse_metrics("{}").is_err());
        assert!(parse_metrics("{\"bench\": \"mystery\", \"rows\": []}").is_err());
        assert!(parse_metrics("{\"bench\": \"lu_refactor\"}").is_err());
        assert!(parse_metrics("{\"bench\": \"lu_refactor\", \"rows\": []}").is_err());
        // A row without the tracked metric.
        let broken = LU_SAMPLE.replace("\"speedup\": 4.49", "\"spd\": 4.49");
        assert!(parse_metrics(&broken).is_err());
    }
}
