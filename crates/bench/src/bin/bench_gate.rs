//! CI bench-regression gate.
//!
//! Compares the freshly emitted `BENCH_*.json` artifacts
//! (written to the repo root by the bench targets) against the committed
//! `baselines/BENCH_*.json`, printing a before/after table — also into
//! `$GITHUB_STEP_SUMMARY` when set — and exiting non-zero when any
//! tracked metric slid more than 15% below its baseline.
//!
//! ```text
//! bench_gate [--baseline-dir baselines] [--fresh-dir .] [--tolerance 0.15]
//! ```
//!
//! The comparison logic (and the injected-regression behaviour) is unit
//! tested in `matex_bench::gate`.

use matex_bench::gate::{compare, parse_metrics, GateReport, DEFAULT_TOLERANCE};
use std::path::Path;
use std::process::ExitCode;

const ARTIFACTS: [&str; 9] = [
    "BENCH_table3.json",
    "BENCH_lu.json",
    "BENCH_eval.json",
    "BENCH_serve.json",
    "BENCH_whatif.json",
    "BENCH_overload.json",
    "BENCH_store.json",
    "BENCH_faults.json",
    "BENCH_obs.json",
];

fn gate_one(
    name: &str,
    baseline_dir: &str,
    fresh_dir: &str,
    tolerance: f64,
) -> Result<GateReport, String> {
    let read = |dir: &str| {
        let path = Path::new(dir).join(name);
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))
    };
    let (bench, baseline) =
        parse_metrics(&read(baseline_dir)?).map_err(|e| format!("baseline {name}: {e}"))?;
    let (fresh_bench, fresh) =
        parse_metrics(&read(fresh_dir)?).map_err(|e| format!("fresh {name}: {e}"))?;
    if bench != fresh_bench {
        return Err(format!(
            "artifact kind mismatch for {name}: baseline {bench:?} vs fresh {fresh_bench:?}"
        ));
    }
    Ok(compare(&bench, &baseline, &fresh, tolerance))
}

fn main() -> ExitCode {
    let mut baseline_dir = "baselines".to_string();
    let mut fresh_dir = ".".to_string();
    let mut tolerance = DEFAULT_TOLERANCE;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--baseline-dir" => baseline_dir = take("--baseline-dir"),
            "--fresh-dir" => fresh_dir = take("--fresh-dir"),
            "--tolerance" => {
                tolerance = take("--tolerance")
                    .parse()
                    .expect("--tolerance takes a fraction, e.g. 0.15");
            }
            other => {
                eprintln!("unknown argument {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut regressions = 0usize;
    let mut summary = String::new();
    for name in ARTIFACTS {
        match gate_one(name, &baseline_dir, &fresh_dir, tolerance) {
            Ok(report) => {
                regressions += report.regressions();
                print!("{}", report.render_text());
                summary.push_str(&report.render_markdown());
                summary.push('\n');
            }
            Err(e) => {
                eprintln!("bench_gate: {e}");
                return ExitCode::from(2);
            }
        }
    }
    if let Ok(path) = std::env::var("GITHUB_STEP_SUMMARY") {
        use std::io::Write as _;
        if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&path) {
            let _ = writeln!(f, "## Bench gate (tolerance {:.0}%)\n", tolerance * 100.0);
            let _ = f.write_all(summary.as_bytes());
        }
    }
    if regressions > 0 {
        eprintln!(
            "bench_gate: {regressions} tracked metric(s) regressed >{:.0}%",
            tolerance * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!("bench_gate: all tracked metrics within tolerance");
        ExitCode::SUCCESS
    }
}
