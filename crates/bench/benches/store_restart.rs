//! **Artifact store restart** — cold analysis vs a store-hydrated
//! restart, plus the binary wire encoding's byte saving.
//!
//! The fleet scenario the store exists for: a service computes a
//! design's expensive artifacts (symbolic LU, numeric setup, DC
//! operating point) once, persists them, and is then restarted — or a
//! new engine joins pointed at the same directory. Two paths are timed
//! per design:
//!
//! * **cold** — a fresh engine over an empty store: symbolic analysis +
//!   factorization + DC + schedules + march (and the store write-back).
//! * **restart** — a *different* engine process-equivalent opened over
//!   the populated store: every artifact hydrates from disk, so only
//!   decode + the numeric march remain.
//!
//! Tracks `restart_speedup = cold_s / restart_s` (expected ≥ 3X) and
//! asserts the restarted waveform is **bitwise** identical to the run
//! that populated the store — persistence must not perturb a single
//! bit. The restart run must skip all symbolic analyses and setup
//! builds (`setup_misses == symbolic_misses == 0`).
//!
//! The same waveform is then framed both ways the TCP service can
//! stream it — protocol-v1 JSON text lines and protocol-v2 binary
//! [`WaveFrame`] records — and `bytes_ratio = json_bytes / binary_bytes`
//! (expected ≥ 2X) records the binary encoding's wire saving.
//!
//! Writes `BENCH_store.json` at the repo root; the `restart_speedup`
//! and `bytes_ratio` rows are gated by `bench_gate` against
//! `baselines/BENCH_store.json`.

use matex_bench::{Scale, Table};
use matex_core::TransientSpec;
use matex_serve::{EngineOptions, JobSpec, ScenarioEngine};
use matex_store::ArtifactStore;
use matex_waveform::WaveFrame;
use std::sync::Arc;
use std::time::Instant;

struct Row {
    design: String,
    n: usize,
    cold_s: f64,
    restart_s: f64,
    restart_speedup: f64,
    json_bytes: usize,
    binary_bytes: usize,
    bytes_ratio: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde). The
/// `store` summary object precedes `rows` so the gate's row scanner —
/// which starts at `"rows"` — sees only the per-design objects.
fn write_json(scale: Scale, writes: u64, hits: u64, bitwise: bool, rows: &[Row]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"store_restart\",\n  \"scale\": \"{}\",\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
    ));
    out.push_str(&format!(
        "  \"store\": {{\"writes\": {writes}, \"hits\": {hits}, \"bitwise\": {bitwise}}},\n",
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"cold_s\": {:.6}, \"restart_s\": {:.6}, \
             \"restart_speedup\": {:.2}, \"json_bytes\": {}, \"binary_bytes\": {}, \
             \"bytes_ratio\": {:.2}}}{}\n",
            r.design,
            r.n,
            r.cold_s,
            r.restart_s,
            r.restart_speedup,
            r.json_bytes,
            r.binary_bytes,
            r.bytes_ratio,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_store.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_store.json: {e}"),
    }
}

/// Frames the waveform exactly as the service streams it in each
/// encoding; returns `(json_bytes, binary_bytes)` for the whole run.
fn wire_bytes(times: &[f64], series: &[Vec<f64>], chunk: usize) -> (usize, usize) {
    let frames = times.len().div_ceil(chunk);
    let mut json = 0usize;
    let mut binary = 0usize;
    for f in 0..frames {
        let start = f * chunk;
        let end = (start + chunk).min(times.len());
        let mut line = format!(
            "{{\"ok\": true, \"frame\": {f}, \"start\": {start}, \"count\": {}, \"times\": [",
            end - start,
        );
        for (i, v) in times[start..end].iter().enumerate() {
            if i > 0 {
                line.push(',');
            }
            line.push_str(&format!("{v:e}"));
        }
        line.push_str("], \"series\": [");
        for (k, s) in series.iter().enumerate() {
            if k > 0 {
                line.push(',');
            }
            line.push('[');
            for (i, v) in s[start..end].iter().enumerate() {
                if i > 0 {
                    line.push(',');
                }
                line.push_str(&format!("{v:e}"));
            }
            line.push(']');
        }
        line.push_str("]}\n");
        json += line.len();

        let wf = WaveFrame {
            frame: f as u64,
            start: start as u64,
            times: times[start..end].to_vec(),
            series: series.iter().map(|s| s[start..end].to_vec()).collect(),
        };
        binary += wf.encode().len();
    }
    (json, binary)
}

fn main() {
    let scale = Scale::from_env();
    let (dims, window, dt) = match scale {
        // Grids where analysis + factorization dominate one march, so
        // the ratio measures what the store actually skips — the fleet
        // restart workload is "same designs, new process", not a fresh
        // sweep of never-seen structures.
        Scale::Ci => (vec![64usize, 72], 5e-10, 4e-11),
        Scale::Paper => (vec![60, 90], 5e-10, 4e-11),
    };

    println!("\n=== Artifact store: cold vs store-hydrated restart ===\n");
    let spec = TransientSpec::new(0.0, window, dt).expect("spec");
    let mut table = Table::new(&[
        "Design",
        "n",
        "cold(s)",
        "restart(s)",
        "Spdp",
        "json(B)",
        "bin(B)",
        "ratio",
    ]);
    let mut rows = Vec::new();
    let mut total_writes = 0u64;
    let mut total_hits = 0u64;
    let mut bitwise = true;
    let stamp = std::process::id();
    for (i, &d) in dims.iter().enumerate() {
        let sys = Arc::new(
            matex_circuit::PdnBuilder::new(d, d)
                .num_loads(d * d / 16)
                .num_features(2)
                .window(window)
                .cap_spread(30.0)
                .seed(5000 + i as u64)
                .build()
                .expect("grid builds"),
        );
        let n = sys.dim();
        let job = JobSpec::new(sys, spec.clone());

        let dir = std::env::temp_dir().join(format!("matex-bench-store-{stamp}-{i}"));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(ArtifactStore::open(&dir).expect("store opens"));

        // Engine A pays the full cold path and populates the store.
        let cold_engine = ScenarioEngine::new(EngineOptions {
            store: Some(store.clone()),
            ..EngineOptions::default()
        });
        let t0 = Instant::now();
        let cold = cold_engine.run(&job).expect("cold job");
        let cold_s = t0.elapsed().as_secs_f64();
        let cold_stats = cold_engine.stats();
        assert!(cold_stats.store_writes > 0, "cold run persisted nothing");
        total_writes += cold_stats.store_writes;
        drop(cold_engine);

        // Engine B is the restart: a fresh engine over the populated
        // directory. Everything expensive must hydrate from disk.
        let warm_engine = ScenarioEngine::new(EngineOptions {
            store: Some(store.clone()),
            ..EngineOptions::default()
        });
        let t0 = Instant::now();
        let warm = warm_engine.run(&job).expect("restart job");
        let restart_s = t0.elapsed().as_secs_f64();
        let warm_stats = warm_engine.stats();
        assert!(warm.cache.is_warm(), "restart did not run warm");
        assert_eq!(warm_stats.setup_misses, 0, "restart rebuilt a setup");
        assert_eq!(
            warm_stats.symbolic_misses, 0,
            "restart re-ran a symbolic analysis"
        );
        assert!(warm_stats.store_hits > 0, "restart never touched the store");
        total_hits += warm_stats.store_hits;
        bitwise &= warm.result.series() == cold.result.series();
        assert!(bitwise, "store round-trip perturbed the waveform");

        let restart_speedup = cold_s / restart_s.max(1e-12);
        let (json_bytes, binary_bytes) = wire_bytes(warm.result.times(), warm.result.series(), 25);
        let bytes_ratio = json_bytes as f64 / (binary_bytes as f64).max(1.0);
        table.row(vec![
            format!("pg{}r", i + 1),
            format!("{n}"),
            format!("{cold_s:.4}"),
            format!("{restart_s:.4}"),
            format!("{restart_speedup:.1}X"),
            format!("{json_bytes}"),
            format!("{binary_bytes}"),
            format!("{bytes_ratio:.2}X"),
        ]);
        rows.push(Row {
            design: format!("pg{}r", i + 1),
            n,
            cold_s,
            restart_s,
            restart_speedup,
            json_bytes,
            binary_bytes,
            bytes_ratio,
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
    table.print();
    println!("\nstore writes {total_writes}  restart hits {total_hits}  bitwise: {bitwise}");

    write_json(scale, total_writes, total_hits, bitwise, &rows);
    println!("\nshape check: the restart run skips the symbolic analysis, the");
    println!("numeric factorization, and the DC solve — only store decode and the");
    println!("march remain, so restart(s) sits well below cold(s); and the binary");
    println!("frame encoding carries each f64 in 8 bytes instead of its ~18-byte");
    println!("round-trip decimal, so json/binary stays comfortably above 2X.");
}
