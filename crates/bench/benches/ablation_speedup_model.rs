//! **Sec. 3.4 model** — predicted vs measured speedups (Eqs. (11)–(12)).
//!
//! Measures distributed MATEX against single-node MATEX and fixed-step TR
//! on one mid-size grid, then feeds the *measured* per-operation costs
//! into the paper's analytic model and compares predictions with
//! observations. Also sweeps the model over k and N to reproduce the
//! paper's scaling arguments (fixed-step speedup grows with the span;
//! decomposition speedup saturates as k → K).

use matex_bench::{pg_suite, timed, Scale, Table};
use matex_core::{MatexOptions, TransientEngine, TransientSpec, Trapezoidal};
use matex_dist::{run_distributed, DistributedOptions, SpeedupModel};
use matex_waveform::GroupingStrategy;

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Sec 3.4: speedup model vs measurement ===\n");
    let case = pg_suite(scale)
        .into_iter()
        .nth(2)
        .expect("suite has 6 cases");
    let sys = case.build().expect("grid builds");
    let rows: Vec<usize> = (0..sys.num_nodes()).step_by(13).collect();
    let spec = TransientSpec::new(0.0, case.window, case.window / 100.0)
        .expect("valid spec")
        .observing(rows);

    // Baseline TR at 10 ps.
    let (tr, _) = timed(|| Trapezoidal::new(1e-11).run(&sys, &spec).expect("TR run"));

    // Single-node MATEX (no decomposition).
    let single = run_distributed(
        &sys,
        &spec,
        &DistributedOptions {
            matex: MatexOptions::default(),
            strategy: GroupingStrategy::Single,
            workers: Some(1),
            ..DistributedOptions::default()
        },
    )
    .expect("single-node run");

    // Distributed by bump feature.
    let dist = run_distributed(
        &sys,
        &spec,
        &DistributedOptions {
            matex: MatexOptions::default(),
            strategy: GroupingStrategy::ByBumpFeature,
            workers: Some(1),
            ..DistributedOptions::default()
        },
    )
    .expect("distributed run");

    // Measured per-operation costs from the busiest node.
    let busy = dist
        .nodes
        .iter()
        .max_by_key(|n| n.stats.transient_time)
        .expect("nodes exist");
    let st = &busy.stats;
    let t_bs = tr.stats.transient_time.as_secs_f64() / tr.stats.substitution_pairs.max(1) as f64;
    let t_he = (st.transient_time.as_secs_f64() - st.substitution_pairs as f64 * t_bs).max(0.0)
        / st.expm_evals.max(1) as f64;
    let model = SpeedupModel {
        gts_points: dist.gts.len(),
        lts_points: busy.num_lts.max(1),
        m: st.krylov_dim_avg().max(1.0),
        fixed_steps: tr.stats.substitution_pairs,
        t_bs,
        t_h: t_he / 2.0,
        t_e: t_he / 2.0,
        t_serial: 0.0, // transient-only comparison, as in Eq. (12)
    };

    let meas_over_single =
        single.emulated_transient.as_secs_f64() / dist.emulated_transient.as_secs_f64().max(1e-12);
    let meas_over_tr =
        tr.stats.transient_time.as_secs_f64() / dist.emulated_transient.as_secs_f64().max(1e-12);
    let mut table = Table::new(&["Quantity", "Model", "Measured"]);
    table.row(vec![
        "Speedup vs single-node MATEX (Eq. 11)".into(),
        format!("{:.1}X", model.speedup_over_single()),
        format!("{meas_over_single:.1}X"),
    ]);
    table.row(vec![
        "Speedup vs fixed TR (Eq. 12)".into(),
        format!("{:.1}X", model.speedup_over_fixed()),
        format!("{meas_over_tr:.1}X"),
    ]);
    table.print();
    println!(
        "\nmodel inputs: K = {}, k = {}, m = {:.1}, N = {}, Tbs = {:.2e}s, TH+Te = {:.2e}s",
        model.gts_points, model.lts_points, model.m, model.fixed_steps, model.t_bs, t_he
    );

    // Analytic sweeps (paper's qualitative arguments).
    println!("\nEq. (12) sweep over span length (k fixed, N and K grow):");
    let mut sweep = Table::new(&["N", "K", "Spdp'"]);
    for mult in [1usize, 2, 4, 8] {
        let m2 = SpeedupModel {
            fixed_steps: model.fixed_steps * mult,
            gts_points: model.gts_points * mult,
            ..model
        };
        sweep.row(vec![
            format!("{}", m2.fixed_steps),
            format!("{}", m2.gts_points),
            format!("{:.1}X", m2.speedup_over_fixed()),
        ]);
    }
    sweep.print();
    println!("\nshape check: Spdp' grows with the simulation span (paper Sec. 3.4).");
}
