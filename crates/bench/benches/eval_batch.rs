//! **Batched snapshot evaluation** — legacy per-call eval vs the
//! `SnapshotEvaluator` engine (ISSUE 4).
//!
//! Measures the per-eval cost profile of MATEX's snapshot phase on a
//! window of eval times sharing one Krylov basis, excluding the basis
//! builds common to both paths:
//!
//! * `legacy` — the pre-batching per-call engine: one allocating full
//!   `expm(h·Hm)` per snapshot for value + estimate, a fresh halving
//!   trial (another full `expm`) per rejected distance, and the
//!   allocating per-call combination loop;
//! * `batch` — the batched engine on the serial path: allocation-free
//!   `expm_col0_into` weights for the whole window, the squaring
//!   ladder for rejected times (staged depths, estimate-driven early
//!   exit), one `Vᵀ·W` combination per round;
//! * `batch(1/2/4)` — the same with the combination on pools of width
//!   1/2/4. The bench **asserts** these are bitwise-identical to the
//!   serial path, and that the accepted-prefix values are bitwise the
//!   legacy values.
//!
//! Writes `BENCH_eval.json`; `speedup = legacy / batch` (single-thread)
//! is a gated metric — the ISSUE criterion is ≥ 1.5X at ci scale from
//! the ladder + allocation removal alone, so it holds on a 1-core host;
//! the pooled widths are recorded for multi-core hosts.

use matex_bench::{pg_suite, secs, stiff_rc_case, Scale, Table};
use matex_dense::expm;
use matex_krylov::{build_basis, ExpmParams, KrylovBasis, RationalOp, SnapshotEvaluator};
use matex_par::ParPool;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use std::time::{Duration, Instant};

const GAMMA: f64 = 1e-10;
/// Snapshot times per window.
const K: usize = 48;
/// Sub-step search depth (the solver's `max_substeps` default).
const S_MAX: usize = 30;
const REPS: usize = 3;
/// Windows per timing sample: lifts the small designs above timer noise.
const ROUNDS: usize = 10;

struct JsonRow {
    design: String,
    n: usize,
    m: usize,
    k: usize,
    fails: usize,
    legacy_expms: usize,
    batch_expms: usize,
    legacy_s: f64,
    batch_s: f64,
    batch1_s: f64,
    batch2_s: f64,
    batch4_s: f64,
    speedup: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde).
fn write_json(scale: Scale, rows: &[JsonRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"eval_batch\",\n  \"scale\": \"{}\",\n  \"k\": {},\n  \"rows\": [\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
        K,
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"m\": {}, \"k\": {}, \"fails\": {}, \
             \"legacy_expms\": {}, \"batch_expms\": {}, \
             \"legacy_s\": {:.6}, \"batch_s\": {:.6}, \"batch1_s\": {:.6}, \"batch2_s\": {:.6}, \
             \"batch4_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
            r.design,
            r.n,
            r.m,
            r.k,
            r.fails,
            r.legacy_expms,
            r.batch_expms,
            r.legacy_s,
            r.batch_s,
            r.batch1_s,
            r.batch2_s,
            r.batch4_s,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_eval.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_eval.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_eval.json: {e}"),
    }
}

fn best_of<T>(mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed());
        std::hint::black_box(&out);
    }
    best
}

/// Per-snapshot outcome: accepted at full step, resolved at halving
/// rung `s`, or best-effort after an exhausted search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Pass,
    Rung(usize),
    BestEffort,
}

/// The pre-batching per-call engine, reproduced verbatim: allocating
/// full `expm` per trial for value + estimate, halving search, and the
/// allocating combination loop; an exhausted search accepts the
/// best-effort full-step value (the legacy solver semantics).
fn legacy_window(
    basis: &KrylovBasis,
    hs: &[f64],
    tol_abs: f64,
    out: &mut [f64],
    outcomes: &mut [Outcome],
) -> usize {
    let n = basis.dim();
    let mut expms = 0usize;
    for (j, &h) in hs.iter().enumerate() {
        expms += 1;
        let full = expm(&basis.hm().scaled(h))
            .expect("finite projected exponential")
            .col(0);
        let mut outcome = Outcome::Pass;
        let col = if basis.residual_estimate(&full) <= tol_abs {
            full
        } else {
            let mut hs_trial = h * 0.5;
            let mut rung = 1usize;
            loop {
                if rung > S_MAX {
                    outcome = Outcome::BestEffort;
                    break full;
                }
                expms += 1;
                let col = expm(&basis.hm().scaled(hs_trial))
                    .expect("finite projected exponential")
                    .col(0);
                if basis.residual_estimate(&col) <= tol_abs {
                    outcome = Outcome::Rung(rung);
                    break col;
                }
                hs_trial *= 0.5;
                rung += 1;
            }
        };
        outcomes[j] = outcome;
        // The legacy combination loop (`KrylovBasis::eval_with_estimate`).
        let x = &mut out[j * n..(j + 1) * n];
        x.fill(0.0);
        for (ci, vi) in col.iter().zip(basis.vectors()) {
            let w = basis.beta() * ci;
            if w == 0.0 {
                continue;
            }
            for (xk, vk) in x.iter_mut().zip(vi) {
                *xk += w * vk;
            }
        }
    }
    expms
}

/// The batched engine: one weight batch for the whole window, pooled
/// combination of each contiguous run of passing snapshots, staged
/// squaring ladder per rejected time.
fn batched_window(
    ev: &mut SnapshotEvaluator,
    basis: &KrylovBasis,
    hs: &[f64],
    tol_abs: f64,
    pool: Option<&ParPool>,
    out: &mut [f64],
    outcomes: &mut [Outcome],
) -> usize {
    let n = basis.dim();
    ev.weights_many(basis, hs).expect("batch weights");
    let mut expms = hs.len();
    let mut j = 0usize;
    while j < hs.len() {
        if ev.estimates()[j] <= tol_abs {
            // Contiguous passing run → one pooled combination.
            let start = j;
            while j < hs.len() && ev.estimates()[j] <= tol_abs {
                outcomes[j] = Outcome::Pass;
                j += 1;
            }
            ev.combine_range(basis, start, j, pool, &mut out[start * n..j * n]);
            continue;
        }
        // Rejected: the squaring ladder replaces the halving search.
        let mut rung = None;
        for depth in [4usize, 12, S_MAX] {
            expms += 1;
            ev.eval_ladder(basis, hs[j], depth, tol_abs)
                .expect("ladder");
            rung = ev.best_rung(tol_abs);
            if rung.is_some() || depth == S_MAX {
                break;
            }
        }
        let x = &mut out[j * n..(j + 1) * n];
        match rung {
            Some(s) => {
                outcomes[j] = Outcome::Rung(s);
                ev.combine_rung(basis, s, pool, x);
            }
            None => {
                outcomes[j] = Outcome::BestEffort;
                ev.combine_one(basis, j, pool, x);
            }
        }
        j += 1;
    }
    expms
}

/// One bench case: `(name, C, G, window, basis target h, m cap)`.
struct Case {
    name: String,
    c: CsrMatrix,
    g: CsrMatrix,
    window: f64,
    h_build: f64,
    m_max: usize,
    tol: f64,
}

fn cases(scale: Scale) -> Vec<Case> {
    let mut out = Vec::new();
    for case in pg_suite(scale).into_iter().take(2) {
        let sys = case.build().expect("grid builds");
        out.push(Case {
            name: case.name,
            c: sys.c().clone(),
            g: sys.g().clone(),
            window: case.window,
            // Build for an early snapshot with a capped basis: the far
            // end of the window rejects, engaging the sub-step search —
            // the solver's exact reuse-vs-rebuild tension.
            h_build: case.window / 100.0,
            m_max: 24,
            tol: 1e-9,
        });
    }
    let sys = stiff_rc_case(1e6, scale).build().expect("mesh builds");
    out.push(Case {
        name: "stiffrc".into(),
        c: sys.c().clone(),
        g: sys.g().clone(),
        window: 3e-10,
        h_build: 3e-10 / 100.0,
        m_max: 12,
        tol: 1e-9,
    });
    out
}

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Batched snapshot evaluation: legacy per-call vs SnapshotEvaluator ===");
    println!("({K} snapshot times per window, sub-step depth {S_MAX})\n");
    let mut table = Table::new(&[
        "Design",
        "n",
        "m",
        "fails",
        "expms(L/B)",
        "legacy(s)",
        "batch(s)",
        "batch1(s)",
        "batch2(s)",
        "batch4(s)",
        "Spdp",
    ]);
    let mut json_rows = Vec::new();
    for case in cases(scale) {
        let shifted =
            CsrMatrix::linear_combination(1.0, &case.c, GAMMA, &case.g).expect("same shape");
        let lu = SparseLu::factor(&shifted, &LuOptions::default()).expect("factor");
        let op = RationalOp::new(&lu, &case.c, GAMMA);
        let n = shifted.nrows();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let params = ExpmParams {
            tol: case.tol,
            m_max: case.m_max,
            ..ExpmParams::default()
        };
        let built = build_basis(&op, &v, case.h_build, &params).expect("basis");
        let basis = built.basis;
        let tol_abs = params.tol * basis.beta();
        let hs: Vec<f64> = (1..=K).map(|j| case.window * j as f64 / K as f64).collect();

        // Correctness first: serial batch, pooled batches, legacy.
        let mut legacy = vec![0.0; n * K];
        let mut legacy_out = vec![Outcome::Pass; K];
        let legacy_expms = legacy_window(&basis, &hs, tol_abs, &mut legacy, &mut legacy_out);
        let mut ev = SnapshotEvaluator::new();
        let mut serial = vec![0.0; n * K];
        let mut batch_out = vec![Outcome::Pass; K];
        let batch_expms = batched_window(
            &mut ev,
            &basis,
            &hs,
            tol_abs,
            None,
            &mut serial,
            &mut batch_out,
        );
        let fails = batch_out.iter().filter(|&&o| o != Outcome::Pass).count();
        // Passing and best-effort snapshots are bitwise the legacy
        // values (same expm arithmetic, same combination order); a
        // ladder-resolved rung is the same value to rounding (the
        // ladder pins the degree-13 Padé kernel).
        for j in 0..K {
            let (a, b) = (&legacy[j * n..(j + 1) * n], &serial[j * n..(j + 1) * n]);
            match batch_out[j] {
                Outcome::Pass | Outcome::BestEffort => {
                    assert_eq!(
                        legacy_out[j], batch_out[j],
                        "[{}] snapshot {j} acceptance diverged",
                        case.name
                    );
                    assert!(
                        a.iter().zip(b).all(|(p, q)| p.to_bits() == q.to_bits()),
                        "[{}] snapshot {j} diverged from legacy bitwise",
                        case.name
                    );
                }
                Outcome::Rung(_) => {
                    let scale = a.iter().fold(1.0_f64, |m, v| m.max(v.abs()));
                    assert!(
                        a.iter().zip(b).all(|(p, q)| (p - q).abs() <= 1e-6 * scale),
                        "[{}] snapshot {j} rung value deviates from legacy",
                        case.name
                    );
                }
            }
        }
        let pools: Vec<ParPool> = [1usize, 2, 4].iter().map(|&t| ParPool::new(t)).collect();
        for pool in &pools {
            let mut pooled = vec![f64::NAN; n * K];
            batched_window(
                &mut ev,
                &basis,
                &hs,
                tol_abs,
                Some(pool),
                &mut pooled,
                &mut batch_out,
            );
            assert!(
                serial
                    .iter()
                    .zip(&pooled)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "[{}] pool width {} diverged from the serial batch",
                case.name,
                pool.threads(),
            );
        }

        // Timings: ROUNDS windows per sample so small designs measure
        // above clock noise.
        let legacy_t = best_of(|| {
            for _ in 0..ROUNDS {
                legacy_window(&basis, &hs, tol_abs, &mut legacy, &mut legacy_out);
            }
        });
        let batch_t = best_of(|| {
            for _ in 0..ROUNDS {
                batched_window(
                    &mut ev,
                    &basis,
                    &hs,
                    tol_abs,
                    None,
                    &mut serial,
                    &mut batch_out,
                );
            }
        });
        let mut pooled_t = Vec::new();
        for pool in &pools {
            pooled_t.push(best_of(|| {
                for _ in 0..ROUNDS {
                    batched_window(
                        &mut ev,
                        &basis,
                        &hs,
                        tol_abs,
                        Some(pool),
                        &mut serial,
                        &mut batch_out,
                    );
                }
            }));
        }
        let speedup = legacy_t.as_secs_f64() / batch_t.as_secs_f64().max(1e-12);
        table.row(vec![
            case.name.clone(),
            format!("{n}"),
            format!("{}", basis.m()),
            format!("{fails}/{K}"),
            format!("{legacy_expms}/{batch_expms}"),
            secs(legacy_t),
            secs(batch_t),
            secs(pooled_t[0]),
            secs(pooled_t[1]),
            secs(pooled_t[2]),
            format!("{speedup:.1}X"),
        ]);
        json_rows.push(JsonRow {
            design: case.name.clone(),
            n,
            m: basis.m(),
            k: K,
            fails,
            legacy_expms,
            batch_expms,
            legacy_s: legacy_t.as_secs_f64(),
            batch_s: batch_t.as_secs_f64(),
            batch1_s: pooled_t[0].as_secs_f64(),
            batch2_s: pooled_t[1].as_secs_f64(),
            batch4_s: pooled_t[2].as_secs_f64(),
            speedup,
        });
    }
    table.print();
    write_json(scale, &json_rows);
    println!("\nshape check: the single-thread batched path runs ≥ 1.5X over the legacy");
    println!("per-call engine (ladder + allocation removal — no parallelism needed);");
    println!("pooled widths are bitwise-identical and pay off on multi-core hosts.");
}
