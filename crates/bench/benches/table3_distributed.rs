//! **Table 3** — distributed MATEX (R-MATEX nodes) vs fixed-step TR.
//!
//! Paper columns per design: the TR transient time `t1000` (1000 pairs of
//! substitutions at h = 10 ps) and total `tt_total`; MATEX's group count,
//! max-node transient `trmatex` and total `tr_total`; Max./Avg. error
//! against a reference solution; Spdp4 = t1000/trmatex and Spdp5 =
//! tt_total/tr_total.
//!
//! Expected shape (paper): Spdp4 ≈ 11–15X, Spdp5 ≈ 5.6–7.9X, errors
//! ≈ 1e-4 and below.

use matex_bench::{pg_suite, secs, timed, Scale, Table};
use matex_core::{
    reference_solution, MatexOptions, ReferenceMethod, TransientEngine, TransientSpec, Trapezoidal,
};
use matex_dist::{run_distributed, DistributedOptions};
use matex_waveform::GroupingStrategy;

/// One emitted row of `BENCH_table3.json`.
struct JsonRow {
    design: String,
    t1000_s: f64,
    tt_total_s: f64,
    groups: usize,
    trmatex_s: f64,
    tr_total_s: f64,
    max_err: f64,
    avg_err: f64,
    spdp4: f64,
    spdp5: f64,
}

/// Writes the perf-trajectory artifact (hand-rolled JSON: the workspace
/// builds offline, without serde).
fn write_json(scale: Scale, rows: &[JsonRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"table3_distributed\",\n  \"scale\": \"{}\",\n  \"rows\": [\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        }
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"t1000_s\": {:.6}, \"tt_total_s\": {:.6}, \
             \"groups\": {}, \"trmatex_s\": {:.6}, \"tr_total_s\": {:.6}, \
             \"max_err\": {:.3e}, \"avg_err\": {:.3e}, \"spdp4\": {:.2}, \"spdp5\": {:.2}}}{}\n",
            r.design,
            r.t1000_s,
            r.tt_total_s,
            r.groups,
            r.trmatex_s,
            r.tr_total_s,
            r.max_err,
            r.avg_err,
            r.spdp4,
            r.spdp5,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    // Anchor at the workspace root regardless of cargo's bench CWD.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_table3.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_table3.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_table3.json: {e}"),
    }
}

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Table 3: distributed MATEX vs TR (h = 10ps) ===\n");
    let mut json_rows: Vec<JsonRow> = Vec::new();
    let mut table = Table::new(&[
        "Design",
        "t1000(s)",
        "tt_total(s)",
        "Group#",
        "trmatex(s)",
        "tr_total(s)",
        "Max.Err",
        "Avg.Err",
        "Spdp4",
        "Spdp5",
    ]);
    for case in pg_suite(scale) {
        let sys = case.build().expect("grid builds");
        let rows: Vec<usize> = (0..sys.num_nodes()).step_by(11).collect();
        // Output on 100 samples; TR *steps* at 10 ps (1000 pairs = t1000).
        let spec = TransientSpec::new(0.0, case.window, case.window / 100.0)
            .expect("valid spec")
            .observing(rows);

        let (tr, _) = timed(|| Trapezoidal::new(1e-11).run(&sys, &spec).expect("TR run"));
        let t1000 = tr.stats.transient_time;
        let tt_total = tr.stats.total_time();

        // Distributed MATEX; workers=1 gives uncontended per-node wall
        // times (the paper's dedicated-node emulation); the makespan is
        // the max over nodes either way.
        let opts = DistributedOptions {
            matex: MatexOptions::default(),
            strategy: GroupingStrategy::ByBumpFeature,
            workers: Some(1),
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).expect("distributed run");

        // Reference: fine TR (the IBM `.solution` stand-in; DESIGN.md §2).
        let reference = reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 20)
            .expect("reference run");
        let (max_err, avg_err) = run.result.error_vs(&reference).expect("comparable");

        let spdp4 = t1000.as_secs_f64() / run.emulated_transient.as_secs_f64().max(1e-9);
        let spdp5 = tt_total.as_secs_f64() / run.emulated_total.as_secs_f64().max(1e-9);
        table.row(vec![
            case.name.clone(),
            secs(t1000),
            secs(tt_total),
            format!("{}", run.num_groups()),
            secs(run.emulated_transient),
            secs(run.emulated_total),
            format!("{max_err:.1e}"),
            format!("{avg_err:.1e}"),
            format!("{spdp4:.1}X"),
            format!("{spdp5:.1}X"),
        ]);
        json_rows.push(JsonRow {
            design: case.name.clone(),
            t1000_s: t1000.as_secs_f64(),
            tt_total_s: tt_total.as_secs_f64(),
            groups: run.num_groups(),
            trmatex_s: run.emulated_transient.as_secs_f64(),
            tr_total_s: run.emulated_total.as_secs_f64(),
            max_err,
            avg_err,
            spdp4,
            spdp5,
        });
        eprintln!(
            "  [{}] GTS {} points; substitution pairs: TR {} vs max-node {}",
            case.name,
            run.gts.len(),
            tr.stats.substitution_pairs,
            run.nodes
                .iter()
                .map(|n| n.stats.substitution_pairs)
                .max()
                .unwrap_or(0),
        );
        // Fig. 13-style per-node decomposition: the snapshot phase's
        // T_H (small expm) vs T_e (basis combination) split, straight
        // from each node's RunStats record.
        let (th_sum, te_sum, th_max, te_max) = run.stats.groups.iter().fold(
            (0.0_f64, 0.0_f64, 0.0_f64, 0.0_f64),
            |(ts, es, tm, em), g| {
                (
                    ts + g.expm_time.as_secs_f64(),
                    es + g.combine_time.as_secs_f64(),
                    tm.max(g.expm_time.as_secs_f64()),
                    em.max(g.combine_time.as_secs_f64()),
                )
            },
        );
        eprintln!(
            "  [{}] snapshot split: T_H {:.3}ms / T_e {:.3}ms summed over nodes \
             (max node {:.3} / {:.3}ms)",
            case.name,
            th_sum * 1e3,
            te_sum * 1e3,
            th_max * 1e3,
            te_max * 1e3,
        );
    }
    table.print();
    write_json(scale, &json_rows);
    println!("\nshape check: Spdp4 ≈ 10X+ (paper 11.5–14.7X), Spdp5 > 1 and growing");
    println!("with design size (paper 5.6–7.9X); errors at the 1e-4 level or below.");
}
