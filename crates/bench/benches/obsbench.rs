//! **Observability overhead** — spans and histograms must be ~free.
//!
//! The ISSUE 10 acceptance criterion: threading `matex-obs` through the
//! solver and the scenario engine costs ≤ 2% wall time with recording
//! *enabled*, and exactly one branch per event when disabled (the
//! disabled path's zero-allocation proof lives in
//! `matex-core/tests/alloc_free.rs`; the bitwise-identity proof in
//! `matex-core/tests/obs_identity.rs` — this bench re-asserts identity
//! while timing).
//!
//! Two phases, each timed disabled-vs-enabled with interleaved repeats
//! (min-of-N, robust to scheduler noise):
//!
//! 1. *Solver*: repeated monolithic [`matex_core::MatexSolver`] runs —
//!    the per-window Arnoldi spans and phase histograms are the hot
//!    instrumentation.
//! 2. *Engine*: a warm [`matex_serve::ScenarioEngine`] fleet — job
//!    spans, hit-path counters, and queue-wait histograms on top.
//!
//! Writes `BENCH_obs.json`; the gated metric is `overhead_guard` — 1
//! when the enabled run stayed within 2% (plus a 2 ms absolute slack
//! floor, so sub-100 ms CI runs don't gate on timer jitter) of the
//! disabled run, else the disabled/enabled ratio (< 1, sliding the
//! gate).

use matex_bench::{secs, Scale};
use matex_circuit::PdnBuilder;
use matex_core::{MatexOptions, MatexSolver, TransientEngine, TransientSpec};
use matex_serve::{EngineOptions, JobSpec, ScenarioEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct ObsRow {
    design: String,
    n: usize,
    runs: usize,
    disabled_ms: f64,
    enabled_ms: f64,
    overhead_pct: f64,
    spans: usize,
    overhead_guard: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde). The
/// summary fields precede `rows` so the gate's row scanner — which
/// starts at `"rows"` — sees only the per-design objects.
fn write_json(scale: Scale, rows: &[ObsRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"obsbench\",\n  \"scale\": \"{}\",\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"runs\": {}, \"disabled_ms\": {:.3}, \
             \"enabled_ms\": {:.3}, \"overhead_pct\": {:.2}, \"spans\": {}, \
             \"overhead_guard\": {:.3}}}{}\n",
            r.design,
            r.n,
            r.runs,
            r.disabled_ms,
            r.enabled_ms,
            r.overhead_pct,
            r.spans,
            r.overhead_guard,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_obs.json ({} rows)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_obs.json: {e}"),
    }
}

/// `1.0` when `enabled` stayed within 2% + 2 ms of `disabled`, else the
/// disabled/enabled ratio (how far past the budget the enabled run ran).
fn guard(disabled: Duration, enabled: Duration) -> f64 {
    let budget = disabled.as_secs_f64() * 1.02 + 2e-3;
    if enabled.as_secs_f64() <= budget {
        1.0
    } else {
        disabled.as_secs_f64() / enabled.as_secs_f64()
    }
}

fn overhead_pct(disabled: Duration, enabled: Duration) -> f64 {
    (enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-12) - 1.0) * 100.0
}

fn main() {
    let scale = Scale::from_env();
    let (dim, solver_runs, engine_jobs) = match scale {
        Scale::Ci => (10usize, 4usize, 8usize),
        Scale::Paper => (16, 8, 24),
    };
    let sys = Arc::new(
        PdnBuilder::new(dim, dim)
            .num_loads(dim)
            .num_features(3)
            .window(1e-9)
            .seed(42)
            .build()
            .expect("grid builds"),
    );
    let spec = TransientSpec::new(0.0, 1e-9, 2e-11).expect("spec");
    let n = sys.dim();
    const REPEATS: usize = 5;

    println!("\n=== Observability overhead: ≤ 2% enabled, free disabled ===\n");

    // Phase 1: monolithic solver. Interleave disabled/enabled repeats
    // so drift (thermal, scheduler) hits both arms equally; keep the
    // minimum per arm. Bitwise identity is asserted on every pair.
    let mut solver_disabled = Duration::MAX;
    let mut solver_enabled = Duration::MAX;
    let enabled_obs = matex_obs::Obs::enabled();
    for _ in 0..REPEATS {
        let t0 = Instant::now();
        let mut reference = None;
        for _ in 0..solver_runs {
            let r = MatexSolver::new(MatexOptions::default())
                .run(&sys, &spec)
                .expect("disabled run");
            reference = Some(r);
        }
        solver_disabled = solver_disabled.min(t0.elapsed());

        let t0 = Instant::now();
        let mut observed = None;
        for _ in 0..solver_runs {
            let opts = MatexOptions {
                obs: enabled_obs.clone(),
                ..MatexOptions::default()
            };
            let r = MatexSolver::new(opts)
                .run(&sys, &spec)
                .expect("enabled run");
            observed = Some(r);
        }
        solver_enabled = solver_enabled.min(t0.elapsed());
        assert_eq!(
            reference.unwrap().series(),
            observed.unwrap().series(),
            "instrumentation changed the waveform"
        );
    }
    let solver_spans = enabled_obs.recorder().map(|r| r.span_count()).unwrap_or(0);
    println!(
        "solver  n={n}  disabled {}  enabled {}  ({:+.2}%, {} spans)",
        secs(solver_disabled),
        secs(solver_enabled),
        overhead_pct(solver_disabled, solver_enabled),
        solver_spans,
    );

    // Phase 2: warm engine fleet — one cold job populates the cache
    // outside the timed region, then the fleet replays it.
    let run_fleet = |obs: matex_obs::Obs| -> Duration {
        let engine = ScenarioEngine::new(EngineOptions {
            threads: Some(2),
            obs,
            ..EngineOptions::default()
        });
        let base = JobSpec::new(sys.clone(), spec.clone());
        engine.run(&base).expect("cold job");
        let t0 = Instant::now();
        for k in 0..engine_jobs {
            let job = base.clone().source_scale(1.0 + 0.03 * (k % 5) as f64);
            engine.run(&job).expect("warm job");
        }
        t0.elapsed()
    };
    let mut engine_disabled = Duration::MAX;
    let mut engine_enabled = Duration::MAX;
    let engine_obs = matex_obs::Obs::enabled();
    for _ in 0..REPEATS {
        engine_disabled = engine_disabled.min(run_fleet(matex_obs::Obs::disabled()));
        engine_enabled = engine_enabled.min(run_fleet(engine_obs.clone()));
    }
    let engine_spans = engine_obs.recorder().map(|r| r.span_count()).unwrap_or(0);
    println!(
        "engine  n={n}  disabled {}  enabled {}  ({:+.2}%, {} spans)",
        secs(engine_disabled),
        secs(engine_enabled),
        overhead_pct(engine_disabled, engine_enabled),
        engine_spans,
    );

    let rows = vec![
        ObsRow {
            design: "solver".into(),
            n,
            runs: solver_runs * REPEATS,
            disabled_ms: solver_disabled.as_secs_f64() * 1e3,
            enabled_ms: solver_enabled.as_secs_f64() * 1e3,
            overhead_pct: overhead_pct(solver_disabled, solver_enabled),
            spans: solver_spans,
            overhead_guard: guard(solver_disabled, solver_enabled),
        },
        ObsRow {
            design: "engine".into(),
            n,
            runs: engine_jobs * REPEATS,
            disabled_ms: engine_disabled.as_secs_f64() * 1e3,
            enabled_ms: engine_enabled.as_secs_f64() * 1e3,
            overhead_pct: overhead_pct(engine_disabled, engine_enabled),
            spans: engine_spans,
            overhead_guard: guard(engine_disabled, engine_enabled),
        },
    ];
    for r in &rows {
        assert!(
            r.overhead_guard >= 0.5,
            "{}: enabled overhead blew the budget twice over \
             (disabled {:.1}ms, enabled {:.1}ms)",
            r.design,
            r.disabled_ms,
            r.enabled_ms,
        );
    }
    write_json(scale, &rows);
}
