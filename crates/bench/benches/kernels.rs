//! Criterion micro-benchmarks of the kernels every table is built from:
//! sparse LU factorization and the forward/backward substitution pair
//! (`T_bs`), the dense Hessenberg exponential (`T_H`), and one Arnoldi
//! step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use matex_bench::{pg_suite, Scale};
use matex_dense::{expm, DMat};
use matex_krylov::{Arnoldi, RationalOp};
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};

fn bench_sparse_lu(c: &mut Criterion) {
    let case = pg_suite(Scale::Ci).into_iter().next().expect("case");
    let sys = case.build().expect("grid builds");
    let g = sys.g().clone();
    let mut group = c.benchmark_group("sparse_lu");
    group.sample_size(10);
    group.bench_function("factor_G", |b| {
        b.iter(|| SparseLu::factor(&g, &LuOptions::default()).expect("factorable"))
    });
    let lu = SparseLu::factor(&g, &LuOptions::default()).expect("factorable");
    let rhs: Vec<f64> = (0..g.nrows()).map(|i| (i as f64).cos()).collect();
    group.bench_function("substitution_pair", |b| {
        b.iter_batched(
            || (vec![0.0; g.nrows()], vec![0.0; g.nrows()]),
            |(mut x, mut w)| lu.solve_into(&rhs, &mut x, &mut w),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_dense_expm(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_expm");
    for m in [10usize, 30, 60] {
        // Hessenberg-like stable test matrix.
        let h = DMat::from_fn(m, m, |i, j| {
            if i == j {
                -1.0 - i as f64
            } else if i < j || i == j + 1 {
                0.1 / (1.0 + (i + j) as f64)
            } else {
                0.0
            }
        });
        group.bench_function(format!("expm_{m}x{m}"), |b| {
            b.iter(|| expm(&h).expect("expm ok"))
        });
    }
    group.finish();
}

fn bench_arnoldi_step(c: &mut Criterion) {
    let case = pg_suite(Scale::Ci).into_iter().next().expect("case");
    let sys = case.build().expect("grid builds");
    let gamma = 1e-10;
    let shifted = CsrMatrix::linear_combination(1.0, sys.c(), gamma, sys.g()).expect("same shape");
    let lu = SparseLu::factor(&shifted, &LuOptions::default()).expect("factorable");
    let op = RationalOp::new(&lu, sys.c(), gamma);
    let v: Vec<f64> = (0..sys.dim()).map(|i| 1.0 + (i as f64).sin()).collect();
    c.bench_function("arnoldi_10_steps_rational", |b| {
        b.iter(|| {
            let mut ar = Arnoldi::new(&op, &v, true).expect("nonzero start");
            for _ in 0..10 {
                ar.step().expect("step ok");
            }
            ar.m()
        })
    });
}

criterion_group!(
    kernels,
    bench_sparse_lu,
    bench_dense_expm,
    bench_arnoldi_step
);
criterion_main!(kernels);
