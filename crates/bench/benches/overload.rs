//! **Overload robustness** — admitted-job p99 under a 4× burst.
//!
//! The acceptance criterion of the admission scheduler: under a burst
//! offering 4× the engine's executor capacity, admission (bounded
//! queue + deadline triage over the calibrated cost model) must shed
//! the excess with `retry_after` hints while the jobs it *does* admit
//! keep a p99 within 2× of the uncontended p99 — overload degrades
//! throughput for the shed traffic, never latency for the admitted.
//!
//! Three phases, all through the real TCP service:
//!
//! 1. *Warm + calibrate*: one client runs the circuit fleet once, so
//!    the artifact cache is hot and every completion calibrates the
//!    engine's per-unit cost estimate.
//! 2. *Uncontended*: one client, steady mode — the reference p50/p99.
//! 3. *Overload*: `4 × executors` clients in synchronized burst waves,
//!    every submit carrying a deadline of ~1.5× the uncontended p99.
//!    Admission rejects what the estimate says cannot meet it.
//!
//! Writes `BENCH_overload.json`; the gated metric is
//! `p99_guard = 2 × uncontended_p99 / admitted_p99` — the margin by
//! which the admitted tail stays inside the 2× containment bound
//! (higher is better; ≥ 1 is the hard acceptance floor, asserted
//! here).

use matex_bench::{secs, Scale};
use matex_serve::{
    run_load, serve, EngineOptions, LoadJob, LoadMode, LoadReport, LoadSpec, Priority,
    ScenarioEngine, ServiceOptions,
};
use std::sync::Arc;

struct OverloadRow {
    design: String,
    n: usize,
    offered: usize,
    admitted: usize,
    rejected: usize,
    shed_frac: f64,
    uncontended_p99_ms: f64,
    admitted_p99_ms: f64,
    p99_guard: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde). The
/// summary fields precede `rows` so the gate's row scanner — which
/// starts at `"rows"` — sees only the per-design objects.
fn write_json(scale: Scale, deterministic: bool, rows: &[OverloadRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"overload\",\n  \"scale\": \"{}\",\n  \"deterministic\": {},\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
        deterministic,
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"offered\": {}, \"admitted\": {}, \
             \"rejected\": {}, \"shed_frac\": {:.3}, \"uncontended_p99_ms\": {:.3}, \
             \"admitted_p99_ms\": {:.3}, \"p99_guard\": {:.2}}}{}\n",
            r.design,
            r.n,
            r.offered,
            r.admitted,
            r.rejected,
            r.shed_frac,
            r.uncontended_p99_ms,
            r.admitted_p99_ms,
            r.p99_guard,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_overload.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_overload.json ({} rows)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_overload.json: {e}"),
    }
}

/// The warm fleet every phase runs: one circuit, exact repeats mixed
/// with scaled-source scenarios (all setup-cache hits after warmup).
/// Only a handful of rows are observed/streamed, so measured latency
/// is the solve the admission scheduler actually controls, not frame
/// I/O.
fn fleet(dim: usize, jobs: usize, window: f64, dt: f64) -> Vec<LoadJob> {
    (0..jobs)
        .map(|j| {
            let mut job = LoadJob::pdn(dim, dim, dim * dim / 8, 2, 4000).window(window, dt);
            job.submit_fields.push_str(", \"rows\": \"0,1,2,3\"");
            if j % 2 == 0 {
                job
            } else {
                job.scaled(0.8 + 0.1 * (j % 4) as f64)
            }
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    // Long windows (many transient steps) make a single warm job's
    // service time tens of milliseconds: large against scheduling
    // jitter, so the p99 ratio is a property of admission, not noise.
    let (dim, window, dt, waves) = match scale {
        Scale::Ci => (24usize, 12e-9, 4e-11, 12usize),
        Scale::Paper => (32, 12e-9, 4e-11, 16),
    };
    let executors = 2usize;
    let clients = 4 * executors; // the 4x-overload burst

    println!("\n=== Overload robustness: admission under a 4x burst ===\n");
    // Small queue on purpose: it is the safety valve under test. With
    // it, an admitted job waits at most max_queue service times; the
    // deadline triage below cuts that further.
    let engine = Arc::new(ScenarioEngine::new(EngineOptions {
        executors,
        threads: Some(executors),
        max_queue: 3,
        ..EngineOptions::default()
    }));
    let handle = serve(engine.clone(), &ServiceOptions::default()).expect("service binds");
    let addr = handle.addr().to_string();
    let n = dim * dim;

    // Phase 1: warm the cache and calibrate the cost model (the first
    // job is cold; its wall time would poison the reference p99).
    let warm =
        run_load(&LoadSpec::new(addr.clone(), 1, fleet(dim, 8, window, dt))).expect("warmup run");
    assert_eq!(warm.failed, 0, "warmup failed: {warm:?}");

    // Phase 2: the uncontended reference.
    let quiet = run_load(&LoadSpec::new(addr.clone(), 1, fleet(dim, 16, window, dt)))
        .expect("uncontended run");
    assert_eq!(
        quiet.failed + quiet.rejected,
        0,
        "uncontended shed: {quiet:?}"
    );
    let quiet_p99_ms = quiet.p99.as_secs_f64() * 1e3;
    println!(
        "uncontended: {} jobs  p50 {:.1}ms  p99 {:.1}ms",
        quiet.completed,
        quiet.p50.as_secs_f64() * 1e3,
        quiet_p99_ms,
    );

    // Phase 3: the burst. Every submit carries a deadline of ~1.25x the
    // uncontended p99: admission's triage refuses what its calibrated
    // estimate says cannot meet it, so what *is* admitted stays fast —
    // comfortably inside the 2x containment bound even after stream
    // drain and client-side overhead are added on top.
    let deadline_ms = (1.25 * quiet_p99_ms).max(2.0);
    let burst_jobs: Vec<LoadJob> = fleet(dim, waves, window, dt)
        .into_iter()
        .enumerate()
        .map(|(i, j)| {
            let j = j.deadline_ms(deadline_ms);
            // A mixed-class offered load: priority never changes bits,
            // only who wins the queue.
            if i % 3 == 0 {
                j.priority(Priority::High)
            } else {
                j
            }
        })
        .collect();
    let burst: LoadReport =
        run_load(&LoadSpec::new(addr, clients, burst_jobs).mode(LoadMode::Burst))
            .expect("burst run");
    handle.stop();

    let offered = clients * waves;
    let admitted_p99_ms = burst.p99.as_secs_f64() * 1e3;
    let shed_frac = (offered - burst.completed) as f64 / offered.max(1) as f64;
    let p99_guard = 2.0 * quiet_p99_ms / admitted_p99_ms.max(1e-9);
    println!(
        "burst: offered {offered} ({}x capacity)  admitted {}  rejected {} ({:.0}%)  failed {}",
        clients / executors,
        burst.completed,
        burst.rejected,
        burst.rejection_rate() * 1e2,
        burst.failed,
    );
    println!(
        "admitted p50 {:.1}ms  p99 {:.1}ms  (uncontended p99 {:.1}ms, guard {:.2})  wall {}s",
        burst.p50.as_secs_f64() * 1e3,
        admitted_p99_ms,
        quiet_p99_ms,
        p99_guard,
        secs(burst.wall),
    );
    println!("deterministic across clients: {}", burst.deterministic);

    // The overload contract, asserted hard:
    assert!(burst.completed > 0, "burst admitted nothing");
    assert!(
        burst.rejected > 0,
        "a 4x burst against a 4-deep queue must shed load"
    );
    assert_eq!(burst.failed, 0, "admitted jobs must not fail");
    assert!(
        burst.deterministic,
        "admitted jobs diverged across clients under pressure"
    );
    assert!(
        p99_guard >= 1.0,
        "admitted p99 {admitted_p99_ms:.1}ms exceeds 2x the uncontended {quiet_p99_ms:.1}ms"
    );

    let stats = engine.stats();
    println!(
        "engine counters: rejected {}  cancelled {}  deadline_misses {}  queue_depth {}",
        stats.rejected, stats.cancelled, stats.deadline_misses, stats.queue_depth,
    );

    write_json(
        scale,
        burst.deterministic,
        &[OverloadRow {
            design: "burst4x".into(),
            n,
            offered,
            admitted: burst.completed,
            rejected: burst.rejected,
            shed_frac,
            uncontended_p99_ms: quiet_p99_ms,
            admitted_p99_ms,
            p99_guard,
        }],
    );
    println!("\nshape check: the shed fraction absorbs the overload; the admitted");
    println!("tail stays inside 2x of the uncontended tail (p99_guard >= 1).");
}
