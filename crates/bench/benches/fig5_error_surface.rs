//! **Figure 5** — rational-Krylov error `|e^{hA}v − ‖v‖·V_m e^{hH_m}e₁|`
//! versus time step `h` and subspace dimension `m`.
//!
//! The paper's observation: with the shift-and-invert basis, the error
//! *decreases* as the step grows (large steps weight the small-magnitude
//! eigenvalues that the rational subspace captures best) — the property
//! that lets MATEX take huge reuse steps safely.
//!
//! The ground truth `e^{hA}v` uses the dense Padé `expm` on a small mesh
//! (the paper used MATLAB's `expm` the same way).

use matex_bench::Table;
use matex_circuit::RcMeshBuilder;
use matex_dense::{expm, DenseLu};
use matex_krylov::{Arnoldi, KrylovKind, RationalOp};
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};

fn main() {
    println!("\n=== Fig. 5: |e^(hA)v - bVm e^(hHm) e1| vs h and m (R-MATEX) ===\n");
    let sys = RcMeshBuilder::new(6, 6)
        .stiffness_ratio(1e6)
        .build()
        .expect("mesh builds");
    let n = sys.dim();
    let gamma = 1e-10;

    // Dense ground truth: A = -C^{-1} G.
    let cd = sys.c().to_dense();
    let gd = sys.g().to_dense();
    let a = DenseLu::factor(&cd)
        .and_then(|lu| lu.solve_mat(&gd))
        .expect("C nonsingular")
        .scaled(-1.0);

    // Rational operator and a fixed Arnoldi run (extend once, slice m).
    let shifted = CsrMatrix::linear_combination(1.0, sys.c(), gamma, sys.g()).expect("shapes");
    let lu_s = SparseLu::factor(&shifted, &LuOptions::default()).expect("factorable");
    let op = RationalOp::new(&lu_s, sys.c(), gamma);
    let v: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 7 % 13) as f64) / 13.0).collect();
    let beta = matex_dense::norm2(&v);
    let m_max = 10usize;
    let mut arnoldi = Arnoldi::new(&op, &v, true).expect("nonzero start");
    for _ in 0..m_max {
        arnoldi.step().expect("arnoldi step");
    }

    let hs: Vec<f64> = (0..=10)
        .map(|k| 1e-13 * 10f64.powf(k as f64 * 0.5))
        .collect();
    let mut header: Vec<String> = vec!["m\\h".to_string()];
    header.extend(hs.iter().map(|h| format!("{h:.0e}")));
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);

    let mut shrinks = 0usize;
    let mut total = 0usize;
    for m in [2usize, 4, 6, 8, 10] {
        let m = m.min(arnoldi.m());
        let h_hat = arnoldi.h_hat(m);
        let hm = match KrylovKind::Rational.map_hessenberg(&h_hat, gamma) {
            Ok(hm) => hm,
            Err(e) => {
                eprintln!("m = {m}: Hessenberg mapping failed ({e}); skipping row");
                continue;
            }
        };
        let basis = arnoldi.basis(m);
        let mut row = vec![format!("{m}")];
        let mut prev: Option<f64> = None;
        for &h in &hs {
            // Krylov approximation. A sign-flipped tiny Ritz value (an
            // inversion artifact at low m) can overflow the projected
            // exponential — render such cells as "of".
            let w = match expm(&hm.scaled(h)) {
                Ok(e) => e.col(0),
                Err(_) => {
                    row.push("of".to_string());
                    prev = None;
                    continue;
                }
            };
            let mut approx = vec![0.0; n];
            for (wi, vi) in w.iter().zip(basis) {
                for (ak, vk) in approx.iter_mut().zip(vi) {
                    *ak += beta * wi * vk;
                }
            }
            // Dense truth.
            let truth = expm(&a.scaled(h)).expect("dense expm").matvec(&v);
            let err = approx
                .iter()
                .zip(&truth)
                .fold(0.0_f64, |mx, (p, q)| mx.max((p - q).abs()));
            row.push(format!("{err:.1e}"));
            if let Some(p) = prev {
                total += 1;
                if err <= p * 1.001 {
                    shrinks += 1;
                }
            }
            prev = Some(err);
        }
        table.row(row);
    }
    table.print();
    println!("\nshape check: error is non-increasing in h for {shrinks}/{total} adjacent steps");
    println!("(paper Fig. 5: error reduces when h increases, for every m).");
}
