//! **What-if fast path** — low-rank SMW correction vs the plain
//! cache-hit path (which still refactors) vs cold.
//!
//! The workload the fast path exists for: a base PDN job followed by a
//! burst of single-node cap edits ("tune this decap") against the same
//! structure. Three paths are timed per design:
//!
//! * **cold** — first job ever: symbolic analysis + factorization +
//!   DC + schedules + march.
//! * **hit** — a changed-value job on an engine with the what-if path
//!   disabled: the pattern is warm (symbolic reused) but every edit
//!   pays a full numeric refactorization before the march.
//! * **whatif** — the same edits on an engine with the fast path on:
//!   the cached base factorization is corrected by a rank-k SMW update
//!   (k = touched-node count, here 1) and the march runs immediately.
//!
//! Tracks `whatif_speedup = hit_s / whatif_s` (expected ≥ 2X), asserts
//! the corrected waveforms agree with the full-refactor run to ≤ 1e-8,
//! and checks the fallback contract: an over-rank edit is served by a
//! full preparation whose waveform is **bitwise** identical to the
//! never-corrected engine's.
//!
//! Writes `BENCH_whatif.json` at the repo root; the `whatif_speedup`
//! rows are gated by `bench_gate` against `baselines/BENCH_whatif.json`.

use matex_bench::{Scale, Table};
use matex_core::TransientSpec;
use matex_serve::{EngineOptions, JobSpec, ScenarioEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Row {
    design: String,
    n: usize,
    variants: usize,
    cold_s: f64,
    hit_s: f64,
    whatif_s: f64,
    whatif_speedup: f64,
    max_dev: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde). The
/// `whatif` summary object precedes `rows` so the gate's row scanner —
/// which starts at `"rows"` — sees only the per-design objects.
fn write_json(scale: Scale, hits: u64, avg_rank: f64, fallback_bitwise: bool, rows: &[Row]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"whatif\",\n  \"scale\": \"{}\",\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
    ));
    out.push_str(&format!(
        "  \"whatif\": {{\"hits\": {hits}, \"avg_rank\": {avg_rank:.2}, \
         \"fallback_bitwise\": {fallback_bitwise}}},\n",
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"variants\": {}, \"cold_s\": {:.6}, \
             \"hit_s\": {:.6}, \"whatif_s\": {:.6}, \"whatif_speedup\": {:.2}, \
             \"max_dev\": {:.3e}}}{}\n",
            r.design,
            r.n,
            r.variants,
            r.cold_s,
            r.hit_s,
            r.whatif_s,
            r.whatif_speedup,
            r.max_dev,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_whatif.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_whatif.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_whatif.json: {e}"),
    }
}

fn main() {
    let scale = Scale::from_env();
    let (dims, window, dt, variants) = match scale {
        // Short interactive window + grids where numeric preparation
        // dominates a refactor job, so the SMW correction's edge is
        // what the ratio measures — the what-if workload is "tweak one
        // node, glance at the first nanosecond", not a full re-sweep.
        Scale::Ci => (vec![64usize, 72], 5e-10, 4e-11, 8usize),
        Scale::Paper => (vec![60, 90], 5e-10, 4e-11, 8),
    };

    println!("\n=== What-if fast path: SMW correction vs refactor vs cold ===\n");
    let spec = TransientSpec::new(0.0, window, dt).expect("spec");
    let mut table = Table::new(&[
        "Design",
        "n",
        "edits",
        "cold(s)",
        "hit(s)",
        "whatif(s)",
        "Spdp",
        "max dev",
    ]);
    let mut rows = Vec::new();
    let mut total_hits = 0u64;
    let mut total_rank = 0u64;
    let mut fallback_bitwise = true;
    for (i, &d) in dims.iter().enumerate() {
        let sys = Arc::new(
            matex_circuit::PdnBuilder::new(d, d)
                .num_loads(d * d / 16)
                .num_features(2)
                .window(window)
                .cap_spread(30.0)
                .seed(4000 + i as u64)
                .build()
                .expect("grid builds"),
        );
        let n = sys.dim();
        let base = JobSpec::new(sys.clone(), spec.clone());

        // The plain engine never corrects: every changed-value job pays
        // a full numeric preparation (the pre-fast-path behaviour).
        let plain = ScenarioEngine::new(EngineOptions {
            whatif_max_rank: 0,
            ..EngineOptions::default()
        });
        let t0 = Instant::now();
        plain.run(&base).expect("cold job");
        let cold_s = t0.elapsed().as_secs_f64();

        // The fast engine serves the same edits by SMW correction of
        // the base factorization it cached on this (untimed) base job.
        let fast = ScenarioEngine::new(EngineOptions::default());
        fast.run(&base).expect("base job plants the what-if base");

        // Distinct single-node cap edits: each is a fresh rank-1 what-if.
        let edits: Vec<JobSpec> = (0..variants)
            .map(|j| base.clone().cap_scale(2 + 3 * j, 1.25 + 0.25 * j as f64))
            .collect();

        let mut hit_total = Duration::ZERO;
        let mut whatif_total = Duration::ZERO;
        let mut max_dev = 0.0_f64;
        for job in &edits {
            let t0 = Instant::now();
            let refactored = plain.run(job).expect("refactor job");
            hit_total += t0.elapsed();
            assert!(
                !refactored.cache.is_whatif(),
                "disabled engine served a what-if"
            );

            let t0 = Instant::now();
            let corrected = fast.run(job).expect("whatif job");
            whatif_total += t0.elapsed();
            assert!(
                corrected.cache.is_whatif(),
                "edit missed the what-if fast path"
            );
            let (dev, _) = corrected
                .result
                .error_vs(&refactored.result)
                .expect("comparable waveforms");
            max_dev = max_dev.max(dev);
        }
        assert!(
            max_dev <= 1e-8,
            "corrected waveform deviates {max_dev:.3e} from the full-refactor run"
        );
        let hit_s = hit_total.as_secs_f64() / edits.len() as f64;
        let whatif_s = whatif_total.as_secs_f64() / edits.len() as f64;
        let whatif_speedup = hit_s / whatif_s.max(1e-12);
        let stats = fast.stats();
        assert_eq!(stats.whatif_hits, edits.len() as u64, "hit count mismatch");
        assert_eq!(stats.whatif_fallbacks, 0, "unexpected fallback");
        total_hits += stats.whatif_hits;
        total_rank += stats.whatif_rank;
        table.row(vec![
            format!("pg{}w", i + 1),
            format!("{n}"),
            format!("{}", edits.len()),
            format!("{cold_s:.4}"),
            format!("{hit_s:.4}"),
            format!("{whatif_s:.4}"),
            format!("{whatif_speedup:.1}X"),
            format!("{max_dev:.1e}"),
        ]);
        rows.push(Row {
            design: format!("pg{}w", i + 1),
            n,
            variants: edits.len(),
            cold_s,
            hit_s,
            whatif_s,
            whatif_speedup,
            max_dev,
        });

        // Fallback contract (first design only): a rank-2 edit on an
        // engine capped at rank 1 must refuse the correction and serve
        // a full preparation bitwise-identical to the plain engine's.
        if i == 0 {
            let capped = ScenarioEngine::new(EngineOptions {
                whatif_max_rank: 1,
                ..EngineOptions::default()
            });
            capped.run(&base).expect("base job");
            let two_rows = Arc::new(
                sys.with_cap_scaled(5, 2.0)
                    .expect("first cap edit")
                    .with_cap_scaled(17, 2.0)
                    .expect("second cap edit"),
            );
            let rank2 = JobSpec::new(two_rows, spec.clone());
            let fell_back = capped.run(&rank2).expect("over-rank job");
            assert!(!fell_back.cache.is_whatif(), "over-rank edit corrected");
            assert_eq!(capped.stats().whatif_fallbacks, 1, "fallback not counted");
            let reference = plain.run(&rank2).expect("reference job");
            fallback_bitwise = fell_back.result.series() == reference.result.series();
            assert!(
                fallback_bitwise,
                "fallback waveform is not bitwise-identical to the refactor path"
            );
        }
    }
    table.print();
    let avg_rank = total_rank as f64 / (total_hits as f64).max(1.0);
    println!(
        "\nwhatif hits {total_hits}  avg rank {avg_rank:.2}  fallback bitwise: {fallback_bitwise}"
    );

    write_json(scale, total_hits, avg_rank, fallback_bitwise, &rows);
    println!("\nshape check: a what-if edit skips the numeric refactorization the");
    println!("plain warm path still pays — only a rank-k capture solve and O(nk)");
    println!("per-solve correction remain on top of the march, so whatif(s) sits");
    println!("well below hit(s) and far below cold(s).");
}
