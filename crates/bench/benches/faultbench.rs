//! **Fault injection** — recovery without losing a bit.
//!
//! The robustness capstone: every recovery layer runs under a seeded,
//! deterministic fault schedule, and the recovered waveforms must hash
//! bitwise-equal to their fault-free references. Faults may cost time;
//! they may never cost bits, jobs, or the process.
//!
//! Two phases:
//!
//! 1. *Distributed recovery*: `run_distributed` under injected node
//!    panics (`"dist.node"`) and solver `NotFinite` failures
//!    (`"core.solver.run"`). The supervisor re-dispatches failed node
//!    groups to surviving workers; the superposed waveform must equal
//!    the fault-free run bit for bit. The same schedule then hits a
//!    `ScenarioEngine` backed by a store whose reads and writes fail
//!    half the time: retry + quarantine + compute-through must again
//!    reproduce the exact bytes.
//! 2. *Fleet under fire*: a TCP client fleet drives the real service
//!    while connections are killed mid-stream (`"loadgen.conn"`),
//!    solver attempts fail or panic inside the engine, and the store
//!    keeps failing. Zero process aborts, every job eventually
//!    completes, and the cross-client determinism vote — canonical
//!    frame hashes per job index — must hold across recovered and
//!    untouched clients alike.
//!
//! Writes `BENCH_faults.json`; the gated metric is
//! `recovery_determinism` — 1 when every recovered waveform matched its
//! fault-free reference bitwise (asserted hard here as well).

use matex_bench::{secs, Scale};
use matex_circuit::PdnBuilder;
use matex_core::{FaultHook, FaultKind, FaultPlan, TransientSpec};
use matex_dist::{run_distributed, DistributedOptions};
use matex_serve::{
    run_load, serve, EngineOptions, JobSpec, LoadJob, LoadSpec, ScenarioEngine, ServiceOptions,
};
use matex_store::{ArtifactStore, StoreOptions};
use std::sync::Arc;
use std::time::Instant;

struct FaultRow {
    design: String,
    n: usize,
    faults: u64,
    node_retries: usize,
    engine_retries: u64,
    store_errors: u64,
    reconnects: usize,
    recovery_determinism: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde). The
/// summary fields precede `rows` so the gate's row scanner — which
/// starts at `"rows"` — sees only the per-design objects.
fn write_json(scale: Scale, rows: &[FaultRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"faultbench\",\n  \"scale\": \"{}\",\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"faults\": {}, \"node_retries\": {}, \
             \"engine_retries\": {}, \"store_errors\": {}, \"reconnects\": {}, \
             \"recovery_determinism\": {}}}{}\n",
            r.design,
            r.n,
            r.faults,
            r.node_retries,
            r.engine_retries,
            r.store_errors,
            r.reconnects,
            r.recovery_determinism,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_faults.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_faults.json ({} rows)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_faults.json: {e}"),
    }
}

fn main() {
    let scale = Scale::from_env();
    let (dim, loads, features) = match scale {
        Scale::Ci => (10usize, 12usize, 3usize),
        Scale::Paper => (16, 24, 4),
    };
    let sys = Arc::new(
        PdnBuilder::new(dim, dim)
            .num_loads(loads)
            .num_features(features)
            .window(1e-9)
            .seed(77)
            .build()
            .expect("grid builds"),
    );
    let spec = TransientSpec::new(0.0, 1e-9, 2e-11).expect("spec");
    let n = sys.dim();

    println!("\n=== Fault injection: recovery is bitwise or it is broken ===\n");
    println!("(panic messages and backtraces below are injected faults being");
    println!("contained — the run aborts only if an assertion fails)\n");

    // Phase 1a: distributed supervision. The fault-free run is the
    // reference; the faulted run injects a node panic and a node error
    // at fixed schedule coordinates plus a NotFinite solver failure,
    // and must reproduce the reference exactly.
    let t0 = Instant::now();
    let clean = run_distributed(
        &sys,
        &spec,
        &DistributedOptions {
            workers: Some(4),
            ..DistributedOptions::default()
        },
    )
    .expect("fault-free distributed run");
    let mut faulted_opts = DistributedOptions {
        workers: Some(4),
        max_node_retries: 4,
        faults: FaultHook::new(
            FaultPlan::new()
                .fail_at("dist.node", 0, FaultKind::Panic)
                .fail_at("dist.node", 2, FaultKind::Error),
        ),
        ..DistributedOptions::default()
    };
    faulted_opts.matex.faults =
        FaultHook::new(FaultPlan::new().fail_at("core.solver.run", 1, FaultKind::Error));
    let faulted = run_distributed(&sys, &spec, &faulted_opts).expect("supervised run recovers");
    let dist_bitwise = clean
        .result
        .series()
        .iter()
        .zip(faulted.result.series())
        .all(|(a, b)| {
            a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
        });
    let dist_faults = faulted_opts.faults.injected() + faulted_opts.matex.faults.injected();
    println!(
        "distributed: {} groups  {} injected faults  {} node retries  bitwise: {}  ({}s)",
        faulted.num_groups(),
        dist_faults,
        faulted.node_retries,
        dist_bitwise,
        secs(t0.elapsed()),
    );
    assert!(dist_bitwise, "supervised recovery changed the waveform");
    assert!(
        faulted.node_retries >= 2,
        "the injected node faults never triggered a retry"
    );

    // Phase 1b: engine retry + quarantine over a half-broken store.
    // Reads and writes fail by seeded coin flip; solver attempts fail
    // at fixed occurrences. The engine's waveform must still equal the
    // plain solver-free-of-faults bytes.
    let t1 = Instant::now();
    let job = JobSpec::new(sys.clone(), spec.clone());
    let clean_engine = ScenarioEngine::new(EngineOptions::default());
    let reference = clean_engine.run(&job).expect("fault-free engine run");
    let store_dir = std::env::temp_dir().join(format!("matex-faultbench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let store = ArtifactStore::open_with(
        &store_dir,
        StoreOptions {
            faults: FaultHook::new(
                FaultPlan::new()
                    .seeded(0xFA17, 500, FaultKind::Error)
                    .on_sites(&["store.read", "store.write"]),
            ),
            ..StoreOptions::default()
        },
    )
    .expect("store opens");
    let engine = ScenarioEngine::new(EngineOptions {
        store: Some(Arc::new(store)),
        max_compute_retries: 3,
        retry_backoff: std::time::Duration::ZERO,
        faults: FaultHook::new(
            FaultPlan::new()
                .fail_at("core.solver.run", 0, FaultKind::Error)
                .fail_at("core.solver.run", 2, FaultKind::Panic),
        ),
        ..EngineOptions::default()
    });
    let first = engine.run(&job).expect("engine recovers the cold run");
    let second = engine.run(&job).expect("engine recovers the warm run");
    let engine_bitwise = [&first, &second].iter().all(|out| {
        out.result
            .series()
            .iter()
            .zip(reference.result.series())
            .all(|(a, b)| {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            })
    });
    let stats = engine.stats();
    println!(
        "engine: retries {}  panics {}  quarantined {}  store errors {}  bitwise: {}  ({}s)",
        stats.retries,
        stats.panics,
        stats.quarantined,
        stats.store_errors,
        engine_bitwise,
        secs(t1.elapsed()),
    );
    assert!(engine_bitwise, "engine recovery changed the waveform");
    assert!(
        stats.retries >= 2,
        "the injected solver faults never retried"
    );
    assert!(stats.panics >= 1, "the injected panic was not contained");
    assert!(
        stats.store_errors > 0,
        "the broken store was never exercised"
    );
    assert_eq!(stats.failed, 0, "recovery must absorb every injected fault");
    let _ = std::fs::remove_dir_all(&store_dir);

    // Phase 2: the fleet under fire. Solver faults and a half-broken
    // store inside the service, killed connections outside it. Every
    // job completes, nothing aborts, and the per-job canonical frame
    // vote spans recovered and untouched clients.
    let t2 = Instant::now();
    let fleet_dir =
        std::env::temp_dir().join(format!("matex-faultbench-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fleet_dir);
    let fleet_store = ArtifactStore::open_with(
        &fleet_dir,
        StoreOptions {
            faults: FaultHook::new(
                FaultPlan::new()
                    .seeded(0xBEEF, 500, FaultKind::Error)
                    .on_sites(&["store.read", "store.write"]),
            ),
            ..StoreOptions::default()
        },
    )
    .expect("fleet store opens");
    let fleet_engine = Arc::new(ScenarioEngine::new(EngineOptions {
        executors: 3,
        threads: Some(3),
        store: Some(Arc::new(fleet_store)),
        max_compute_retries: 3,
        retry_backoff: std::time::Duration::ZERO,
        faults: FaultHook::new(
            FaultPlan::new()
                .fail_at("core.solver.run", 1, FaultKind::Error)
                .fail_at("core.solver.run", 4, FaultKind::Panic)
                .fail_at("core.solver.run", 7, FaultKind::Error),
        ),
        ..EngineOptions::default()
    }));
    let handle = serve(fleet_engine.clone(), &ServiceOptions::default()).expect("service binds");
    let jobs = vec![
        LoadJob::pdn(dim, dim, loads, features, 77),
        LoadJob::pdn(dim, dim, loads, features, 77).scaled(1.25),
        LoadJob::pdn(dim, dim, loads, features, 77).scaled(0.75),
    ];
    let clients = 3;
    let report = run_load(
        &LoadSpec::new(handle.addr().to_string(), clients, jobs.clone())
            .retries(3)
            .faults(FaultHook::new(
                FaultPlan::new()
                    .fail_at("loadgen.conn", 1, FaultKind::Error)
                    .fail_at("loadgen.conn", 5, FaultKind::Error),
            )),
    )
    .expect("fleet survives the schedule");
    handle.stop();
    let fleet_stats = fleet_engine.stats();
    println!(
        "fleet: completed {}/{}  reconnects {}  engine retries {}  panics {}  store errors {}  \
         deterministic: {}  ({}s)",
        report.completed,
        clients * jobs.len(),
        report.reconnects,
        fleet_stats.retries,
        fleet_stats.panics,
        fleet_stats.store_errors,
        report.deterministic,
        secs(t2.elapsed()),
    );
    // The capstone contract: zero aborts (we are still running), every
    // job completed, and recovery reproduced the fault-free bytes.
    assert_eq!(
        report.completed,
        clients * jobs.len(),
        "jobs were lost under faults: {report:?}"
    );
    assert_eq!(report.failed, 0, "{report:?}");
    assert!(report.reconnects >= 2, "the connection kills never fired");
    assert!(
        report.deterministic,
        "recovered clients diverged from untouched ones"
    );
    let _ = std::fs::remove_dir_all(&fleet_dir);

    let recovery = f64::from(u8::from(
        dist_bitwise && engine_bitwise && report.deterministic,
    ));
    write_json(
        scale,
        &[
            FaultRow {
                design: "dist".into(),
                n,
                faults: dist_faults,
                node_retries: faulted.node_retries,
                engine_retries: stats.retries,
                store_errors: stats.store_errors,
                reconnects: 0,
                recovery_determinism: recovery,
            },
            FaultRow {
                design: "fleet".into(),
                n,
                faults: fleet_engine.stats().panics + fleet_stats.retries,
                node_retries: 0,
                engine_retries: fleet_stats.retries,
                store_errors: fleet_stats.store_errors,
                reconnects: report.reconnects,
                recovery_determinism: recovery,
            },
        ],
    );
    println!("\nshape check: every injected fault was absorbed by a recovery layer,");
    println!("and every recovered waveform hashed bitwise-equal to its fault-free run.");
}
