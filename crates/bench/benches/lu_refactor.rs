//! **Two-phase LU** — full factorization vs symbolic-reuse refactorization.
//!
//! Measures the γ-sweep hot path on the `pg_suite` grids: factor
//! `C + γG` for five γ values around the paper's operating point (γ "of
//! the order of the time steps used", 1e-10 for the IBM grids — pivots
//! survive the whole sweep, so every refactor is a pure replay), once
//! with `SparseLu::factor` per γ (the pre-two-phase cost) and once with
//! a single `SymbolicLu::analyze` followed by `refactor` per γ.
//! Verifies the two paths produce bitwise-identical solves, prints the
//! paper-style table, and writes `BENCH_lu.json` at the repo root (the
//! perf trajectory artifact).
//!
//! Expected shape: refactor ≥ 2x faster than full factorization — it
//! skips the AMD ordering, the Gilbert–Peierls reach DFS, and all
//! allocation growth, paying only for the numeric replay.

use matex_bench::{pg_suite, Scale, Table};
use matex_sparse::{CsrMatrix, LuOptions, SparseLu, SymbolicLu};
use std::time::{Duration, Instant};

const GAMMAS: [f64; 5] = [2.5e-11, 5e-11, 1e-10, 2e-10, 4e-10];
const REPS: usize = 3;

struct JsonRow {
    design: String,
    n: usize,
    nnz: usize,
    full_s: f64,
    analyze_s: f64,
    refactor_s: f64,
    speedup: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde).
fn write_json(scale: Scale, rows: &[JsonRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"lu_refactor\",\n  \"scale\": \"{}\",\n  \"gammas\": {},\n  \"rows\": [\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
        GAMMAS.len(),
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"nnz\": {}, \"full_s\": {:.6}, \
             \"analyze_s\": {:.6}, \"refactor_s\": {:.6}, \"speedup\": {:.2}}}{}\n",
            r.design,
            r.n,
            r.nnz,
            r.full_s,
            r.analyze_s,
            r.refactor_s,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lu.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_lu.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_lu.json: {e}"),
    }
}

/// Minimum wall time of `f` over `REPS` runs (forces the result so the
/// work is not optimized away).
fn best_of<T>(mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed());
        std::hint::black_box(&out);
    }
    best
}

fn main() {
    let scale = Scale::from_env();
    let opts = LuOptions::default();
    println!("\n=== Two-phase LU: full factor vs symbolic refactor (C + γG sweep) ===\n");
    let mut table = Table::new(&[
        "Design",
        "n",
        "nnz",
        "full(s)",
        "analyze(s)",
        "refactor(s)",
        "Spdp",
    ]);
    let mut json_rows = Vec::new();
    for case in pg_suite(scale) {
        let sys = case.build().expect("grid builds");
        let mats: Vec<CsrMatrix> = GAMMAS
            .iter()
            .map(|&g| CsrMatrix::linear_combination(1.0, sys.c(), g, sys.g()).expect("same shape"))
            .collect();

        // Correctness first: both paths must agree bitwise per γ.
        let sym = SymbolicLu::analyze(&mats[2], &opts).expect("analysis succeeds");
        let n = mats[0].nrows();
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let mut fast_paths = 0usize;
        for m in &mats {
            let full = SparseLu::factor(m, &opts).expect("full factor");
            fast_paths += usize::from(sym.try_refactor(m).expect("same pattern").is_some());
            let fast = sym.refactor(m).expect("refactor");
            assert_eq!(
                full.solve(&b),
                fast.solve(&b),
                "refactor diverged from full factorization"
            );
        }

        // Timings: the whole γ sweep per path, best of REPS.
        let full_t = best_of(|| {
            mats.iter()
                .map(|m| SparseLu::factor(m, &opts).expect("full factor"))
                .collect::<Vec<_>>()
        });
        let analyze_t = best_of(|| SymbolicLu::analyze(&mats[2], &opts).expect("analysis"));
        let refactor_t = best_of(|| {
            mats.iter()
                .map(|m| sym.refactor(m).expect("refactor"))
                .collect::<Vec<_>>()
        });
        let speedup = full_t.as_secs_f64() / refactor_t.as_secs_f64().max(1e-12);
        table.row(vec![
            case.name.clone(),
            format!("{n}"),
            format!("{}", mats[0].nnz()),
            format!("{:.4}", full_t.as_secs_f64()),
            format!("{:.4}", analyze_t.as_secs_f64()),
            format!("{:.4}", refactor_t.as_secs_f64()),
            format!("{speedup:.1}X"),
        ]);
        json_rows.push(JsonRow {
            design: case.name.clone(),
            n,
            nnz: mats[0].nnz(),
            full_s: full_t.as_secs_f64(),
            analyze_s: analyze_t.as_secs_f64(),
            refactor_s: refactor_t.as_secs_f64(),
            speedup,
        });
        eprintln!(
            "  [{}] {}/{} γ values took the replay fast path",
            case.name,
            fast_paths,
            GAMMAS.len()
        );
    }
    table.print();
    write_json(scale, &json_rows);
    println!("\nshape check: refactor ≥ 2X faster than full factorization on every");
    println!("design (it skips AMD, the reach DFS, and allocation growth).");
}
