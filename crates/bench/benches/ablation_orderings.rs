//! **Ablation** — fill-reducing ordering choice for the sparse LU.
//!
//! Every speedup in the paper is denominated in forward/backward
//! substitution pairs (`T_bs`), whose cost is set by the LU fill. This
//! ablation factors the MATEX matrices (`G` and `C + γG`) of a grid case
//! under AMD / RCM / natural orderings and reports fill, factor time and
//! solve time — justifying the default (AMD, as in UMFPACK's stack).

use matex_bench::{pg_suite, Scale, Table};
use matex_sparse::{CsrMatrix, LuOptions, OrderingKind, SparseLu};
use std::time::Instant;

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Ablation: ordering choice for the direct solver ===\n");
    let case = pg_suite(scale).into_iter().nth(3).expect("suite case");
    let sys = case.build().expect("grid builds");
    let gamma = 1e-10;
    let shifted = CsrMatrix::linear_combination(1.0, sys.c(), gamma, sys.g()).expect("same shape");

    let mut table = Table::new(&[
        "Matrix",
        "Ordering",
        "nnz(A)",
        "nnz(L+U)",
        "fill",
        "factor(ms)",
        "solve(µs)",
    ]);
    for (label, mat) in [("G", sys.g().clone()), ("C+γG", shifted)] {
        for ordering in [OrderingKind::Amd, OrderingKind::Rcm, OrderingKind::Natural] {
            let opts = LuOptions {
                ordering,
                ..LuOptions::default()
            };
            let t0 = Instant::now();
            let lu = SparseLu::factor(&mat, &opts).expect("factorable");
            let t_factor = t0.elapsed();
            // Average solve over repeated RHS.
            let b: Vec<f64> = (0..mat.nrows()).map(|i| (i as f64).sin()).collect();
            let reps = 50;
            let t1 = Instant::now();
            let mut x = vec![0.0; mat.nrows()];
            let mut w = vec![0.0; mat.nrows()];
            for _ in 0..reps {
                lu.solve_into(&b, &mut x, &mut w);
            }
            let t_solve = t1.elapsed() / reps;
            table.row(vec![
                label.to_string(),
                format!("{ordering:?}"),
                format!("{}", mat.nnz()),
                format!("{}", lu.nnz_l() + lu.nnz_u()),
                format!("{:.1}", lu.fill_factor(mat.nnz())),
                format!("{:.2}", t_factor.as_secs_f64() * 1e3),
                format!("{:.1}", t_solve.as_secs_f64() * 1e6),
            ]);
        }
    }
    table.print();
    println!("\nshape check: AMD fill << natural fill on mesh-like PDN matrices;");
    println!("solve time tracks fill — this is the T_bs every table depends on.");
}
