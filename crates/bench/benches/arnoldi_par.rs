//! **Parallel Krylov kernels** — serial vs pooled Arnoldi generation.
//!
//! Measures the intra-node hot path the TPDAA journal version of MATEX
//! parallelizes: one Krylov-subspace generation (rational operator
//! applies — `C` mat-vec plus a substitution pair against `LU(C + γG)` —
//! and the Gram–Schmidt orthogonalization) on the `pg_suite` grids.
//! Three paths per design:
//!
//! * `serial` — the legacy pool-less code (MGS + column-oriented
//!   substitutions), the baseline the ISSUE's ≥1.5X-at-4-threads target
//!   is stated against;
//! * `par(1)` — the tiled kernels on a one-thread pool (fused CGS2 +
//!   level-scheduled substitutions), the determinism reference;
//! * `par(2)` / `par(4)` — the same kernels on wider pools. The bench
//!   **asserts** these are bitwise-identical to `par(1)`.
//!
//! Writes `BENCH_par.json` at the repo root, annotated with the host's
//! available parallelism: on a single-core CI runner the wide-pool rows
//! measure pure dispatch overhead (speedup ≤ 1 is expected there — the
//! kernels can't beat physics), so this bench is reported, not gated.

use matex_bench::{pg_suite, secs, Scale, Table};
use matex_krylov::{Arnoldi, KrylovOp, ParApply, RationalOp};
use matex_par::ParPool;
use matex_sparse::{CsrMatrix, LuOptions, SparseLu};
use std::time::{Duration, Instant};

const GAMMA: f64 = 1e-10;
/// Arnoldi steps per measured generation (a stiff-grid R-MATEX node
/// rebuilds subspaces of this order at every transition spot).
const M_STEPS: usize = 40;
const REPS: usize = 3;

struct JsonRow {
    design: String,
    n: usize,
    nnz: usize,
    serial_s: f64,
    par1_s: f64,
    par2_s: f64,
    par4_s: f64,
    speedup4: f64,
}

/// Hand-rolled JSON (the workspace builds offline, without serde).
fn write_json(scale: Scale, host_threads: usize, rows: &[JsonRow]) {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"arnoldi_par\",\n  \"scale\": \"{}\",\n  \"m_steps\": {},\n  \
         \"host_threads\": {},\n  \"rows\": [\n",
        match scale {
            Scale::Ci => "ci",
            Scale::Paper => "paper",
        },
        M_STEPS,
        host_threads,
    ));
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"design\": \"{}\", \"n\": {}, \"nnz\": {}, \"serial_s\": {:.6}, \
             \"par1_s\": {:.6}, \"par2_s\": {:.6}, \"par4_s\": {:.6}, \"speedup4\": {:.2}}}{}\n",
            r.design,
            r.n,
            r.nnz,
            r.serial_s,
            r.par1_s,
            r.par2_s,
            r.par4_s,
            r.speedup4,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_par.json");
    match std::fs::write(path, &out) {
        Ok(()) => println!("\nwrote BENCH_par.json ({} designs)", rows.len()),
        Err(e) => eprintln!("\ncould not write BENCH_par.json: {e}"),
    }
}

/// Minimum wall time of `f` over `REPS` runs.
fn best_of<T>(mut f: impl FnMut() -> T) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..REPS {
        let t0 = Instant::now();
        let out = f();
        best = best.min(t0.elapsed());
        std::hint::black_box(&out);
    }
    best
}

/// One full Krylov generation; returns the last basis vector as the
/// bitwise-comparison witness (it transitively depends on every kernel
/// invocation of the run).
fn generate(op: &dyn KrylovOp, v: &[f64]) -> Vec<f64> {
    let mut ar = Arnoldi::new(op, v, true).expect("nonzero start vector");
    for _ in 0..M_STEPS {
        ar.step().expect("finite Arnoldi step");
    }
    let m = ar.m();
    ar.basis(m + usize::from(!ar.broke_down()))
        .last()
        .expect("basis nonempty")
        .clone()
}

fn main() {
    let scale = Scale::from_env();
    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("\n=== Parallel Krylov kernels: serial vs pooled Arnoldi ({M_STEPS} steps) ===");
    println!("host parallelism: {host_threads} thread(s)\n");
    let mut table = Table::new(&[
        "Design",
        "n",
        "nnz",
        "serial(s)",
        "par1(s)",
        "par2(s)",
        "par4(s)",
        "Spdp4",
    ]);
    let mut json_rows = Vec::new();
    for case in pg_suite(scale) {
        let sys = case.build().expect("grid builds");
        let shifted =
            CsrMatrix::linear_combination(1.0, sys.c(), GAMMA, sys.g()).expect("same shape");
        let lu = SparseLu::factor(&shifted, &LuOptions::default()).expect("factor");
        let sched = lu.solve_schedule();
        let n = shifted.nrows();
        let v: Vec<f64> = (0..n).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();

        // Correctness first: the pooled path must be bitwise-invariant
        // in the pool width.
        let pools: Vec<ParPool> = [1usize, 2, 4].iter().map(|&t| ParPool::new(t)).collect();
        let witness: Vec<Vec<f64>> = pools
            .iter()
            .map(|pool| {
                let op = RationalOp::new(&lu, sys.c(), GAMMA).with_parallelism(ParApply {
                    pool,
                    sched: &sched,
                });
                generate(&op, &v)
            })
            .collect();
        for (k, w) in witness.iter().enumerate().skip(1) {
            assert!(
                witness[0]
                    .iter()
                    .zip(w)
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "[{}] pool width {} diverged from width 1",
                case.name,
                pools[k].threads(),
            );
        }
        // And stay within rounding of the legacy serial path (CGS2 vs
        // MGS2 reassociation only).
        let serial_witness = generate(&RationalOp::new(&lu, sys.c(), GAMMA), &v);
        let max_dev = serial_witness
            .iter()
            .zip(&witness[0])
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()));
        assert!(
            max_dev < 1e-8,
            "[{}] pooled orthogonalization deviates from serial: {max_dev:.3e}",
            case.name
        );

        // Timings.
        let serial_t = best_of(|| generate(&RationalOp::new(&lu, sys.c(), GAMMA), &v));
        let mut pooled_t = Vec::new();
        for pool in &pools {
            pooled_t.push(best_of(|| {
                let op = RationalOp::new(&lu, sys.c(), GAMMA).with_parallelism(ParApply {
                    pool,
                    sched: &sched,
                });
                generate(&op, &v)
            }));
        }
        let speedup4 = serial_t.as_secs_f64() / pooled_t[2].as_secs_f64().max(1e-12);
        table.row(vec![
            case.name.clone(),
            format!("{n}"),
            format!("{}", shifted.nnz()),
            secs(serial_t),
            secs(pooled_t[0]),
            secs(pooled_t[1]),
            secs(pooled_t[2]),
            format!("{speedup4:.1}X"),
        ]);
        json_rows.push(JsonRow {
            design: case.name.clone(),
            n,
            nnz: shifted.nnz(),
            serial_s: serial_t.as_secs_f64(),
            par1_s: pooled_t[0].as_secs_f64(),
            par2_s: pooled_t[1].as_secs_f64(),
            par4_s: pooled_t[2].as_secs_f64(),
            speedup4,
        });
    }
    table.print();
    write_json(scale, host_threads, &json_rows);
    println!("\nshape check: with ≥ 4 physical cores the Krylov phase runs ≥ 1.5X faster");
    println!("at 4 threads (bitwise-identical waveforms); on a {host_threads}-thread host the");
    println!("wide-pool rows measure dispatch overhead only.");
}
