//! **Table 1** — MEXP vs I-MATEX vs R-MATEX on stiff RC meshes.
//!
//! Paper columns: average Krylov dimension `ma`, peak dimension `mp`,
//! relative error `Err(%)` against a fine backward-Euler reference, and
//! runtime speedup `Spdp` over MEXP, at three stiffness levels.
//!
//! Expected shape (paper): MEXP's dimensions explode with stiffness
//! (211/229 at 2.1e16) while I-/R-MATEX stay below ~15 with huge runtime
//! speedups; errors of I-/R-MATEX stay at the tolerance floor.

use matex_bench::{stiff_rc_case, timed, Scale, Table};
use matex_core::{
    measure_stiffness, reference_solution, KrylovKind, MatexOptions, MatexSolver, MatexSymbolic,
    ReferenceMethod, TransientEngine, TransientSpec,
};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Table 1: Comparisons among MEXP, I-MATEX and R-MATEX (RC meshes) ===");
    println!("(paper setup: transient in [0, 0.3ns], 5ps output steps, BE reference)\n");
    let spec = TransientSpec::new(0.0, 3e-10, 5e-12).expect("valid spec");

    // Calibrate: the mesh has an intrinsic eigenvalue spread; divide it
    // out so the *measured* stiffness lands near the paper's targets.
    let base = stiff_rc_case(1.0, scale).build().expect("mesh builds");
    let intrinsic = measure_stiffness(&base, 500).unwrap_or(1.0);

    let mut table = Table::new(&[
        "Method",
        "ma",
        "mp",
        "expm#",
        "substeps",
        "Err(%)",
        "Spdp",
        "Stiffness",
    ]);
    for &target in &[2.1e8, 2.1e12, 2.1e16] {
        let ratio = (target / intrinsic).max(1.0);
        let sys = stiff_rc_case(ratio, scale).build().expect("mesh builds");
        // Measured stiffness of -C^{-1}G (dense eig; meshes are small).
        let stiffness = measure_stiffness(&sys, 500)
            .map(|s| format!("{s:.1e}"))
            .unwrap_or_else(|_| format!("~{ratio:.1e}"));
        // Reference: fine BE (paper uses h = 0.05 ps => 100 sub-steps).
        let reference = reference_solution(&sys, &spec, ReferenceMethod::BackwardEuler, 100)
            .expect("reference run");
        let ref_peak = reference
            .series()
            .iter()
            .flat_map(|s| s.iter())
            .fold(0.0_f64, |m, &v| m.max(v.abs()))
            .max(1e-30);

        // One symbolic analysis per mesh, shared by all three variants:
        // every solver's G factorization (and the rational solver's
        // C + γG) replays it instead of re-running AMD + reach DFS.
        let symbolic = Arc::new(
            MatexSymbolic::analyze(&sys, &MatexOptions::new(KrylovKind::Rational).tol(1e-7))
                .expect("symbolic analysis"),
        );
        let mut mexp_time = None;
        for kind in [
            KrylovKind::Standard,
            KrylovKind::Inverted,
            KrylovKind::Rational,
        ] {
            let solver =
                MatexSolver::new(MatexOptions::new(kind).tol(1e-7)).with_symbolic(symbolic.clone());
            let (result, wall) = timed(|| solver.run(&sys, &spec).expect("solver run"));
            let (max_err, _) = result.error_vs(&reference).expect("comparable");
            let err_pct = 100.0 * max_err / ref_peak;
            let spdp = match kind {
                KrylovKind::Standard => {
                    mexp_time = Some(wall);
                    "--".to_string()
                }
                _ => format!(
                    "{:.0}X",
                    mexp_time.expect("MEXP ran first").as_secs_f64() / wall.as_secs_f64().max(1e-9)
                ),
            };
            table.row(vec![
                kind.label().to_string(),
                format!("{:.1}", result.stats.krylov_dim_avg()),
                format!("{}", result.stats.krylov_dim_peak),
                format!("{}", result.stats.expm_evals),
                format!("{}", result.stats.substeps),
                format!("{err_pct:.3}"),
                spdp,
                stiffness.clone(),
            ]);
        }
    }
    table.print();
    println!("\nshape check: MEXP's ma/mp grow with stiffness; I-/R-MATEX stay small");
    println!("expm# counts small-exponential evaluations: the squaring ladder folds a");
    println!("whole sub-step search into one, so expm# stays near the eval-point count");
    println!("even where substeps engage.");
    println!("and their Spdp over MEXP grows with stiffness (paper: up to ~2700X).");
}
