//! **Table 2** — adaptive trapezoidal vs I-MATEX vs R-MATEX on the
//! IBM-like grid suite.
//!
//! Paper columns: `DC(s)`, total runtime per engine, and the speedups
//! Spdp1 (I-MATEX / TR-adpt), Spdp2 (R-MATEX / TR-adpt) and Spdp3
//! (R-MATEX / I-MATEX).
//!
//! Expected shape (paper): R-MATEX 6–12.6X over adaptive TR; I-MATEX
//! in between (1.1–3.7X); speedups grow with case size because adaptive
//! TR re-factorizes on every step change while MATEX never does.

use matex_bench::{pg_suite, secs, timed, Scale, Table};
use matex_core::{
    KrylovKind, MatexOptions, MatexSolver, TransientEngine, TransientSpec, TrapezoidalAdaptive,
};

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Table 2: TR(adpt) vs I-MATEX vs R-MATEX (IBM-like suite) ===\n");
    let mut table = Table::new(&[
        "Design",
        "Nodes",
        "DC(s)",
        "TRadpt(s)",
        "IMATEX(s)",
        "RMATEX(s)",
        "Spdp1",
        "Spdp2",
        "Spdp3",
    ]);
    for case in pg_suite(scale) {
        let sys = case.build().expect("grid builds");
        // 100 output samples over the window; engines step as they wish.
        let rows: Vec<usize> = (0..sys.num_nodes()).step_by(11).collect();
        let spec = TransientSpec::new(0.0, case.window, case.window / 100.0)
            .expect("valid spec")
            .observing(rows);

        let (tr_adpt, tr_wall) = timed(|| {
            TrapezoidalAdaptive::new(5e-5, 1e-12)
                .run(&sys, &spec)
                .expect("adaptive run")
        });
        let (imatex, i_wall) = timed(|| {
            MatexSolver::new(MatexOptions::new(KrylovKind::Inverted))
                .run(&sys, &spec)
                .expect("I-MATEX run")
        });
        let (rmatex, r_wall) = timed(|| {
            MatexSolver::new(MatexOptions::new(KrylovKind::Rational))
                .run(&sys, &spec)
                .expect("R-MATEX run")
        });
        // Sanity: the engines agree on the solution.
        let (err_i, _) = imatex.error_vs(&rmatex).expect("comparable");
        assert!(
            err_i < 1e-2,
            "{}: engines disagree by {err_i:.3e}",
            case.name
        );
        table.row(vec![
            case.name.clone(),
            format!("{}", sys.dim()),
            secs(tr_adpt.stats.dc_time),
            secs(tr_wall),
            secs(i_wall),
            secs(r_wall),
            format!(
                "{:.1}X",
                tr_wall.as_secs_f64() / i_wall.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.1}X",
                tr_wall.as_secs_f64() / r_wall.as_secs_f64().max(1e-9)
            ),
            format!(
                "{:.1}X",
                i_wall.as_secs_f64() / r_wall.as_secs_f64().max(1e-9)
            ),
        ]);
        eprintln!(
            "  [{}] TR-adpt: {} steps / {} refactorizations; I-MATEX m_a {:.1}; R-MATEX m_a {:.1}",
            case.name,
            tr_adpt.stats.steps,
            tr_adpt.stats.factorizations,
            imatex.stats.krylov_dim_avg(),
            rmatex.stats.krylov_dim_avg(),
        );
    }
    table.print();
    println!("\nshape check: Spdp2 > Spdp1 > 1 on every case; speedups grow with size");
    println!("(paper: Spdp2 6.0–12.6X, Spdp1 1.1–3.7X, Spdp3 3.5–5.8X).");
}
