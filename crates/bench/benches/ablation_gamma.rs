//! **Ablation** — sensitivity of R-MATEX to the shift parameter γ.
//!
//! The paper (Sec. 3.3.2, citing van den Eshof & Hochbruck) claims the
//! shift-and-invert basis "is not very sensitive to γ, once it is set to
//! around the order [of the] time steps used", and uses γ = 1e-10 for the
//! IBM grids. This ablation sweeps γ across six decades and reports the
//! Krylov dimensions, accuracy and runtime.
//!
//! The sweep is also the two-phase LU showcase: every γ refactors the
//! same `C + γG` pattern, so one `MatexSymbolic::analyze` serves all of
//! them. Each γ runs both ways — fresh factorizations and symbolic
//! reuse — asserting the waveforms are **bitwise identical** while the
//! reused path's factor time drops.

use matex_bench::{pg_suite, secs, timed, Scale, Table};
use matex_core::{
    reference_solution, MatexOptions, MatexSolver, MatexSymbolic, ReferenceMethod, TransientEngine,
    TransientSpec,
};
use std::sync::Arc;

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Ablation: R-MATEX shift parameter γ (analyze-once γ sweep) ===\n");
    let case = pg_suite(scale).into_iter().next().expect("suite case");
    let sys = case.build().expect("grid builds");
    let rows: Vec<usize> = (0..sys.num_nodes()).step_by(7).collect();
    let spec = TransientSpec::new(0.0, case.window, case.window / 100.0)
        .expect("valid spec")
        .observing(rows);
    let reference =
        reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 20).expect("reference");

    // One symbolic analysis for the whole sweep (G and the C + γG
    // pattern, analyzed at the default γ).
    let (symbolic, analyze_wall) = timed(|| {
        Arc::new(MatexSymbolic::analyze(&sys, &MatexOptions::default()).expect("analysis"))
    });

    let mut table = Table::new(&[
        "gamma",
        "m_avg",
        "m_peak",
        "Max.Err",
        "transient(s)",
        "factor_full(s)",
        "factor_reuse(s)",
        "refac",
    ]);
    let mut dims = Vec::new();
    let mut full_factor = 0.0_f64;
    let mut reuse_factor = 0.0_f64;
    for &gamma in &[1e-12, 1e-11, 1e-10, 1e-9, 1e-8] {
        let opts = MatexOptions::default().gamma(gamma);
        let fresh = MatexSolver::new(opts.clone())
            .run(&sys, &spec)
            .expect("R-MATEX run");
        let (result, _) = timed(|| {
            MatexSolver::new(opts)
                .with_symbolic(symbolic.clone())
                .run(&sys, &spec)
                .expect("R-MATEX run (symbolic reuse)")
        });
        // The two-phase contract: reuse changes cost, never numerics.
        assert_eq!(
            fresh.series(),
            result.series(),
            "symbolic reuse changed the waveforms at γ = {gamma:.0e}"
        );
        assert_eq!(fresh.final_state(), result.final_state());
        full_factor += fresh.stats.factor_time.as_secs_f64() + fresh.stats.dc_time.as_secs_f64();
        reuse_factor += result.stats.factor_time.as_secs_f64() + result.stats.dc_time.as_secs_f64();
        let (max_err, _) = result.error_vs(&reference).expect("comparable");
        dims.push(result.stats.krylov_dim_avg());
        table.row(vec![
            format!("{gamma:.0e}"),
            format!("{:.1}", result.stats.krylov_dim_avg()),
            format!("{}", result.stats.krylov_dim_peak),
            format!("{max_err:.1e}"),
            secs(result.stats.transient_time),
            secs(fresh.stats.factor_time + fresh.stats.dc_time),
            secs(result.stats.factor_time + result.stats.dc_time),
            format!("{}", result.stats.refactorizations),
        ]);
    }
    table.print();
    let spread = dims.iter().cloned().fold(0.0_f64, f64::max)
        / dims.iter().cloned().fold(f64::INFINITY, f64::min).max(1.0);
    println!("\nshape check: m_avg varies only {spread:.1}x across six decades of γ");
    println!("(paper: R-MATEX is 'not very sensitive' near the step-size scale).");
    println!(
        "two-phase: one analysis ({}) then {:.4}s factor+DC across the sweep vs {:.4}s \
         fresh ({:.1}X) — waveforms bitwise identical.",
        secs(analyze_wall),
        reuse_factor,
        full_factor,
        full_factor / reuse_factor.max(1e-12),
    );
}
