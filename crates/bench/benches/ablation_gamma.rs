//! **Ablation** — sensitivity of R-MATEX to the shift parameter γ.
//!
//! The paper (Sec. 3.3.2, citing van den Eshof & Hochbruck) claims the
//! shift-and-invert basis "is not very sensitive to γ, once it is set to
//! around the order [of the] time steps used", and uses γ = 1e-10 for the
//! IBM grids. This ablation sweeps γ across six decades and reports the
//! Krylov dimensions, accuracy and runtime.

use matex_bench::{pg_suite, secs, timed, Scale, Table};
use matex_core::{
    reference_solution, MatexOptions, MatexSolver, ReferenceMethod, TransientEngine, TransientSpec,
};

fn main() {
    let scale = Scale::from_env();
    println!("\n=== Ablation: R-MATEX shift parameter γ ===\n");
    let case = pg_suite(scale).into_iter().next().expect("suite case");
    let sys = case.builder.build().expect("grid builds");
    let rows: Vec<usize> = (0..sys.num_nodes()).step_by(7).collect();
    let spec = TransientSpec::new(0.0, case.window, case.window / 100.0)
        .expect("valid spec")
        .observing(rows);
    let reference =
        reference_solution(&sys, &spec, ReferenceMethod::Trapezoidal, 20).expect("reference");

    let mut table = Table::new(&["gamma", "m_avg", "m_peak", "Max.Err", "transient(s)"]);
    let mut dims = Vec::new();
    for &gamma in &[1e-12, 1e-11, 1e-10, 1e-9, 1e-8] {
        let solver = MatexSolver::new(MatexOptions::default().gamma(gamma));
        let (result, _) = timed(|| solver.run(&sys, &spec).expect("R-MATEX run"));
        let (max_err, _) = result.error_vs(&reference).expect("comparable");
        dims.push(result.stats.krylov_dim_avg());
        table.row(vec![
            format!("{gamma:.0e}"),
            format!("{:.1}", result.stats.krylov_dim_avg()),
            format!("{}", result.stats.krylov_dim_peak),
            format!("{max_err:.1e}"),
            secs(result.stats.transient_time),
        ]);
    }
    table.print();
    let spread = dims.iter().cloned().fold(0.0_f64, f64::max)
        / dims.iter().cloned().fold(f64::INFINITY, f64::min).max(1.0);
    println!("\nshape check: m_avg varies only {spread:.1}x across six decades of γ");
    println!("(paper: R-MATEX is 'not very sensitive' near the step-size scale).");
}
