//! **Figures 1–3** — input-transition decomposition, illustrated.
//!
//! Reconstructs the paper's running example: three input sources whose
//! local transition spots (LTS) union into the global transition spots
//! (GTS); snapshots are where a subtask reuses its Krylov subspace
//! (Fig. 1); grouping by "bump" feature yields the four groups of Fig. 3
//! (two bumps of source #1 share timing with source #3's bump, etc. — we
//! model the paper's group structure with one waveform per group shape).

use matex_bench::Table;
use matex_waveform::{group_sources, GroupingStrategy, Pulse, Waveform};

fn main() {
    println!("\n=== Figs. 1-3: LTS / GTS / snapshots and bump grouping ===\n");
    // Fig. 3's cast: four distinct bump shapes across three "sources";
    // sources #1.2 and #3 share a shape (-> same group).
    let shape = |delay: f64| Pulse::new(0.0, 1e-3, delay, 1e-10, 2e-10, 1e-10).expect("valid");
    let late_shared = shape(3.0e-9);
    let sources = vec![
        Waveform::Pulse(shape(0.5e-9)), // #1.1 -> group 1
        Waveform::Pulse(shape(1.4e-9)), // #2.1 -> group 2
        Waveform::Pulse(shape(2.2e-9)), // #2.2 -> group 3
        Waveform::Pulse(late_shared),   // #1.2 -> group 4
        Waveform::Pulse(late_shared),   // #3   -> group 4 (shared shape)
    ];
    let t_end = 5e-9;
    let grouping = group_sources(&sources, t_end, GroupingStrategy::ByBumpFeature);

    println!("GTS ({} points):", grouping.gts.len());
    let fmt_spots = |spots: &[f64]| {
        spots
            .iter()
            .map(|t| format!("{:.2}ns", t * 1e9))
            .collect::<Vec<_>>()
            .join(" ")
    };
    println!("  {}\n", fmt_spots(grouping.gts.as_slice()));

    let mut table = Table::new(&["Group", "Sources", "LTS", "Snapshots(reused)"]);
    for g in &grouping.groups {
        if g.members.is_empty() {
            continue;
        }
        let snap = grouping.snapshots(g.id);
        table.row(vec![
            format!("{}", g.id),
            format!("{:?}", g.members),
            format!("{}", g.lts.len()),
            format!("{}", snap.len()),
        ]);
    }
    table.print();

    let active_groups = grouping
        .groups
        .iter()
        .filter(|g| !g.members.is_empty())
        .count();
    println!(
        "\nshape check: {} groups from 5 bump instances (paper Fig. 3: 4 groups",
        active_groups
    );
    println!("from 5 bumps, because two bumps share a feature); every group's");
    println!("snapshot count = GTS - LTS, i.e. the evaluations that reuse a subspace.");
    assert_eq!(active_groups, 4, "expected exactly the paper's 4 groups");
}
