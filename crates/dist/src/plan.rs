//! Pre-built group plans: the cacheable front half of a distributed run.
//!
//! [`run_distributed`](crate::run_distributed) spends its first phase on
//! pure functions of `(sources, window, strategy)`: partitioning the
//! sources into groups, deriving each group's local transition spots,
//! and ordering the groups longest-processing-time first. A
//! [`GroupPlan`] captures that phase as an immutable artifact, so a
//! scenario engine serving many transients of one circuit computes it
//! once ([`plan_groups`]) and injects it into every run
//! (`DistributedOptions::plan`). Injection is numerically invisible:
//! the plan is exactly what the run would have computed.

use crate::schedule::lpt_order;
use matex_circuit::MnaSystem;
use matex_core::TransientSpec;
use matex_sparse::{WireError, WireReader, WireWriter};
use matex_waveform::{group_sources, GroupingStrategy, SpotSet};

/// One schedulable subtask of a plan: a source group and its LTS.
#[derive(Debug, Clone)]
pub struct PlanJob {
    /// Group id (0 is the constant/supply group).
    pub group: usize,
    /// Source columns belonging to the group.
    pub members: Vec<usize>,
    /// The group's local transition spots, clipped to the window.
    pub lts: SpotSet,
}

/// The immutable scheduling plan of a distributed run: jobs, global
/// transition spots, and the LPT drain order.
///
/// # Example
///
/// ```
/// use matex_circuit::PdnBuilder;
/// use matex_core::TransientSpec;
/// use matex_dist::plan_groups;
/// use matex_waveform::GroupingStrategy;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let grid = PdnBuilder::new(8, 8).num_loads(10).num_features(3).window(2e-9).build()?;
/// let spec = TransientSpec::new(0.0, 2e-9, 4e-11)?;
/// let plan = plan_groups(&grid, &spec, GroupingStrategy::ByBumpFeature);
/// assert_eq!(plan.num_jobs(), 4); // 3 bump shapes + the supply group
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct GroupPlan {
    strategy: GroupingStrategy,
    t_start: f64,
    t_stop: f64,
    num_sources: usize,
    jobs: Vec<PlanJob>,
    gts: SpotSet,
    order: Vec<usize>,
}

impl GroupPlan {
    /// Number of schedulable subtasks (slave nodes).
    pub fn num_jobs(&self) -> usize {
        self.jobs.len()
    }

    /// The subtasks, in ascending group order.
    pub fn jobs(&self) -> &[PlanJob] {
        &self.jobs
    }

    /// Global transition spots (union of all LTS), clipped to the
    /// window.
    pub fn gts(&self) -> &SpotSet {
        &self.gts
    }

    /// Indices into [`GroupPlan::jobs`] in LPT schedule order — the
    /// dispatch *and* superposition order of the run.
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The strategy the plan was derived under.
    pub fn strategy(&self) -> GroupingStrategy {
        self.strategy
    }

    /// Verifies this plan fits a run. The source *waveforms* are the
    /// caller's contract (a scenario engine keys plans by the system's
    /// source fingerprint); the cheap invariants — source count and the
    /// exact window — are checked here.
    ///
    /// # Errors
    ///
    /// Returns a description of the first mismatch.
    pub fn check(
        &self,
        sys: &MnaSystem,
        spec: &TransientSpec,
        strategy: GroupingStrategy,
    ) -> Result<(), String> {
        if self.num_sources != sys.num_sources() {
            return Err(format!(
                "plan covers {} sources, system has {}",
                self.num_sources,
                sys.num_sources()
            ));
        }
        if self.strategy != strategy {
            return Err(format!(
                "plan derived under {:?}, run requested {:?}",
                self.strategy, strategy
            ));
        }
        if self.t_start.to_bits() != spec.t_start().to_bits()
            || self.t_stop.to_bits() != spec.t_stop().to_bits()
        {
            return Err(format!(
                "plan window [{}, {}] vs spec [{}, {}]",
                self.t_start,
                self.t_stop,
                spec.t_start(),
                spec.t_stop()
            ));
        }
        Ok(())
    }

    /// Appends the plan to `w` for the artifact store. A decoded plan
    /// dispatches the same jobs in the same LPT order over the same
    /// transition spots, so an injected decoded plan is numerically
    /// invisible — exactly like an injected fresh one.
    ///
    /// # Errors
    ///
    /// [`WireError::Invalid`] for a strategy this codec revision does
    /// not know a stable tag for.
    pub fn wire_encode(&self, w: &mut WireWriter) -> Result<(), WireError> {
        let (tag, k) = match self.strategy {
            GroupingStrategy::ByBumpFeature => (0u8, 0usize),
            GroupingStrategy::BySource => (1, 0),
            GroupingStrategy::Single => (2, 0),
            GroupingStrategy::MaxGroups(k) => (3, k),
            other => {
                return Err(WireError::Invalid(format!(
                    "strategy {other:?} has no wire tag"
                )))
            }
        };
        w.u8(tag);
        w.usize(k);
        w.f64(self.t_start);
        w.f64(self.t_stop);
        w.usize(self.num_sources);
        w.u64(self.jobs.len() as u64);
        for job in &self.jobs {
            w.usize(job.group);
            w.usizes(&job.members);
            w.f64s(job.lts.as_slice());
        }
        w.f64s(self.gts.as_slice());
        w.usizes(&self.order);
        Ok(())
    }

    /// Decodes a plan previously written by [`GroupPlan::wire_encode`].
    ///
    /// Spot sets rebuild through [`SpotSet::from_times`], whose
    /// sort-and-dedup is the identity on the already-canonical encoded
    /// data — the decoded spots are bitwise the encoded ones.
    ///
    /// # Errors
    ///
    /// [`WireError`] on truncation or an inconsistent schedule order.
    pub fn wire_decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let tag = r.u8()?;
        let k = r.usize()?;
        let strategy = match tag {
            0 => GroupingStrategy::ByBumpFeature,
            1 => GroupingStrategy::BySource,
            2 => GroupingStrategy::Single,
            3 => GroupingStrategy::MaxGroups(k),
            t => return Err(WireError::Invalid(format!("unknown strategy tag {t}"))),
        };
        let t_start = r.f64()?;
        let t_stop = r.f64()?;
        let num_sources = r.usize()?;
        let num_jobs = r.u64()?;
        if num_jobs > r.remaining() as u64 {
            return Err(WireError::Invalid(format!(
                "job count {num_jobs} exceeds the record"
            )));
        }
        let mut jobs = Vec::with_capacity(num_jobs as usize);
        for _ in 0..num_jobs {
            jobs.push(PlanJob {
                group: r.usize()?,
                members: r.usizes()?,
                lts: SpotSet::from_times(r.f64s()?),
            });
        }
        let gts = SpotSet::from_times(r.f64s()?);
        let order = r.usizes()?;
        if order.len() != jobs.len() || order.iter().any(|&i| i >= jobs.len()) {
            return Err(WireError::Invalid(
                "schedule order does not index the jobs".into(),
            ));
        }
        Ok(GroupPlan {
            strategy,
            t_start,
            t_stop,
            num_sources,
            jobs,
            gts,
            order,
        })
    }
}

/// Derives the group plan [`run_distributed`](crate::run_distributed)
/// would compute for `(sys, spec, strategy)`: group the sources, clip
/// each group's LTS to the window, and fix the LPT schedule order
/// (cost estimate: LTS count, ties on ascending group id).
///
/// A sourceless system yields one empty job, so the run still produces
/// a well-formed (zero) result grid.
pub fn plan_groups(sys: &MnaSystem, spec: &TransientSpec, strategy: GroupingStrategy) -> GroupPlan {
    let (t_start, t_stop) = (spec.t_start(), spec.t_stop());
    let grouping = group_sources(&sys.source_waveforms(), t_stop, strategy);
    let mut jobs: Vec<PlanJob> = grouping
        .groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| PlanJob {
            group: g.id,
            members: g.members.clone(),
            lts: g.lts.clip(t_start, t_stop),
        })
        .collect();
    if jobs.is_empty() {
        jobs.push(PlanJob {
            group: 0,
            members: Vec::new(),
            lts: SpotSet::new(),
        });
    }
    let costs: Vec<usize> = jobs.iter().map(|j| j.lts.len()).collect();
    let order = lpt_order(&costs);
    GroupPlan {
        strategy,
        t_start,
        t_stop,
        num_sources: sys.num_sources(),
        jobs,
        gts: grouping.gts.clip(t_start, t_stop),
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::PdnBuilder;

    fn grid() -> MnaSystem {
        PdnBuilder::new(6, 6)
            .num_loads(8)
            .num_features(3)
            .window(1e-9)
            .build()
            .unwrap()
    }

    #[test]
    fn plan_covers_every_source_once() {
        let sys = grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let plan = plan_groups(&sys, &spec, GroupingStrategy::ByBumpFeature);
        let covered: usize = plan.jobs().iter().map(|j| j.members.len()).sum();
        assert_eq!(covered, sys.num_sources());
        assert_eq!(plan.order().len(), plan.num_jobs());
        assert!(plan
            .check(&sys, &spec, GroupingStrategy::ByBumpFeature)
            .is_ok());
    }

    #[test]
    fn check_rejects_mismatches() {
        let sys = grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let plan = plan_groups(&sys, &spec, GroupingStrategy::ByBumpFeature);
        assert!(plan.check(&sys, &spec, GroupingStrategy::Single).is_err());
        let other_spec = TransientSpec::new(0.0, 2e-9, 2e-11).unwrap();
        assert!(plan
            .check(&sys, &other_spec, GroupingStrategy::ByBumpFeature)
            .is_err());
        let other_sys = PdnBuilder::new(6, 6)
            .num_loads(4)
            .num_features(2)
            .window(1e-9)
            .build()
            .unwrap();
        assert!(plan
            .check(&other_sys, &spec, GroupingStrategy::ByBumpFeature)
            .is_err());
    }
}
