//! The distributed MATEX framework (paper Sec. 3 / Fig. 4).
//!
//! The paper's headline speedups (Table 3) come from *decomposition*:
//! input sources are partitioned into groups — by bump feature, so every
//! group's members share their transition timing — and each group is
//! simulated independently by one "slave node" running a masked
//! [`MatexSolver`](matex_core::MatexSolver) with its own local transition
//! spots. Because the MNA system is linear, the node results superpose
//! into the full solution.
//!
//! This crate is the master of Fig. 4:
//!
//! * [`run_distributed`] — group, analyze the two-phase LU symbolics
//!   once and share them read-only with every node (each node's
//!   factorizations become cheap numeric replays), schedule onto a
//!   worker pool (longest-processing-time order over a
//!   [`std::thread::scope`]), run one masked solver per group against
//!   the shared immutable system, and **stream** each finished node's
//!   samples into the combined result in the fixed, worker-independent
//!   schedule order — numerics bitwise independent of the worker count,
//!   peak memory independent of the group count,
//! * [`DistributedRun`] — the combined result plus per-node accounting
//!   ([`NodeRun`]) and the paper's one-instance-per-node makespan
//!   emulation (`emulated_transient` / `emulated_total` are maxima over
//!   nodes, matching Table 3's `trmatex` / `tr_total` columns),
//! * [`RunStats`] — per-group predicted-vs-measured scheduling costs
//!   (the LTS-count proxy against `NodeRun::wall`), with
//!   [`list_schedule_makespan`] to bound the proxy's scheduling error,
//! * [`SpeedupModel`] — the Sec. 3.4 analytic model (Eqs. (11)–(12)).
//!
//! # Example
//!
//! ```
//! use matex_circuit::PdnBuilder;
//! use matex_core::TransientSpec;
//! use matex_dist::{run_distributed, DistributedOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let grid = PdnBuilder::new(8, 8).num_loads(10).num_features(3).window(2e-9).build()?;
//! let spec = TransientSpec::new(0.0, 2e-9, 4e-11)?;
//! let run = run_distributed(&grid, &spec, &DistributedOptions::default())?;
//! assert_eq!(run.num_groups(), 4); // 3 bump shapes + the supply group
//! assert_eq!(run.result.times().len(), 51);
//! # Ok(())
//! # }
//! ```

// Compile the README's examples as doctests so the documented recovery
// workflow can never drift from the code.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
struct ReadmeDoctests;

mod error;
mod options;
mod plan;
mod run;
mod schedule;
mod speedup;

pub use error::DistError;
pub use options::DistributedOptions;
pub use plan::{plan_groups, GroupPlan, PlanJob};
pub use run::{run_distributed, DistributedRun, NodeRun};
pub use schedule::{list_schedule_makespan, lpt_order, GroupCost, RunStats};
pub use speedup::SpeedupModel;
