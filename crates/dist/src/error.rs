use matex_core::CoreError;
use std::fmt;

/// Errors from the distributed scheduler.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DistError {
    /// A node's solver failed; carries the first failure in group order.
    Node {
        /// Group id of the failing subtask.
        group: usize,
        /// The underlying engine error.
        source: CoreError,
    },
    /// The superposition step failed (mismatched grids — an internal
    /// invariant violation, since every node shares one spec).
    Superposition(CoreError),
    /// The master's shared symbolic factorization analysis failed before
    /// any node was scheduled.
    Analyze(CoreError),
    /// An injected pre-built group plan does not match this run's
    /// system, spec, or grouping strategy.
    Plan(String),
    /// The run's cancel token was tripped; workers stopped between node
    /// runs and in-flight nodes gave up at a transient-step boundary.
    Cancelled,
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Node { group, source } => {
                write!(f, "distributed node for group {group} failed: {source}")
            }
            DistError::Superposition(e) => write!(f, "superposition failed: {e}"),
            DistError::Analyze(e) => write!(f, "symbolic analysis failed: {e}"),
            DistError::Plan(msg) => write!(f, "injected plan mismatch: {msg}"),
            DistError::Cancelled => write!(f, "distributed run cancelled"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Node { source, .. } => Some(source),
            DistError::Superposition(e) => Some(e),
            DistError::Analyze(e) => Some(e),
            DistError::Plan(_) | DistError::Cancelled => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_group() {
        let e = DistError::Node {
            group: 3,
            source: CoreError::InvalidSpec("x".into()),
        };
        assert!(e.to_string().contains("group 3"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
