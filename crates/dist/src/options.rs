use crate::GroupPlan;
use matex_core::{CancelToken, FaultHook, MatexOptions, MatexSetup, MatexSymbolic};
use matex_par::ParOptions;
use matex_waveform::GroupingStrategy;
use std::sync::Arc;

/// Options for a distributed run.
///
/// # Example
///
/// ```
/// use matex_dist::DistributedOptions;
/// use matex_waveform::GroupingStrategy;
///
/// let opts = DistributedOptions {
///     strategy: GroupingStrategy::BySource,
///     ..DistributedOptions::default()
/// };
/// assert_eq!(opts.workers, None); // None -> all available cores
/// ```
#[derive(Debug, Clone)]
pub struct DistributedOptions {
    /// Solver options handed to every node (the paper runs R-MATEX nodes;
    /// that is [`MatexOptions::default`]).
    pub matex: MatexOptions,
    /// How to partition the sources into subtasks (default: by bump
    /// feature, the paper's Sec. 3.2 decomposition).
    pub strategy: GroupingStrategy,
    /// Worker threads. `None` uses [`std::thread::available_parallelism`];
    /// `Some(1)` emulates the paper's dedicated-node cluster faithfully
    /// (every node's wall time is uncontended).
    pub workers: Option<usize>,
    /// Intra-node kernel parallelism (the total `MATEX_THREADS` budget).
    /// The budget is divided across the active workers — every worker
    /// gets a pool of `max(1, total / workers)` threads for its nodes —
    /// so a distributed run never oversubscribes the host. Off by
    /// default (`MATEX_THREADS` unset): the legacy serial kernels run.
    /// Node numerics are bitwise-invariant in both the worker count and
    /// the per-node budget, so enabling more workers never changes the
    /// superposed waveform.
    pub par: ParOptions,
    /// A pre-built shared symbolic analysis. `None` (default) analyzes
    /// on the master, exactly as before; `Some` skips the analysis (a
    /// scenario engine amortizes it across runs). Ignored when `setup`
    /// is also injected — the setup already embeds the factors.
    pub symbolic: Option<Arc<MatexSymbolic>>,
    /// A pre-built solver setup shared by **every node** (the node
    /// matrices are identical — masking only selects input columns).
    /// `None` (default) lets each node factor for itself; `Some` skips
    /// all per-node factorization. Must match `matex` (kind, γ) and the
    /// system, per [`MatexSetup::check`].
    pub setup: Option<Arc<MatexSetup>>,
    /// A pre-built group plan ([`crate::plan_groups`]). `None` (default)
    /// plans inside the run; `Some` must fit the run's system, spec, and
    /// `strategy` ([`GroupPlan::check`]) or the run fails with
    /// [`crate::DistError::Plan`].
    pub plan: Option<Arc<GroupPlan>>,
    /// A cooperative cancellation token. `None` (default) runs to
    /// completion. When tripped, workers stop dispatching further nodes
    /// and every in-flight node solver gives up at its next
    /// transient-step boundary; the run returns
    /// [`crate::DistError::Cancelled`]. Tokens never corrupt shared
    /// artifacts — nodes only read the shared symbolic/setup.
    pub cancel: Option<CancelToken>,
    /// Per-node retry budget: a node group whose solver fails or panics
    /// is re-dispatched to a surviving worker up to this many times
    /// before the run aborts with [`crate::DistError::Node`]. Retried
    /// nodes replay the identical pure computation against the shared
    /// read-only artifacts and superpose at their original schedule
    /// position, so recovery never changes the waveform. Default 1.
    /// Cancellations are never retried.
    pub max_node_retries: usize,
    /// Fault-injection hook consulted at `"dist.node"` once per node
    /// dispatch (including retries). Disarmed by default. Solver-level
    /// sites fire through `matex.faults` instead.
    pub faults: FaultHook,
    /// Observability handle for master-level events: the shared symbolic
    /// analysis span and one `dist.node` span per dispatch, labeled with
    /// group / worker / retry. Node-internal phases record through
    /// `matex.obs`; point both at one recorder for a unified timeline.
    /// Disabled by default (one branch per event).
    pub obs: matex_obs::Obs,
}

impl Default for DistributedOptions {
    fn default() -> Self {
        DistributedOptions {
            matex: MatexOptions::default(),
            strategy: GroupingStrategy::default(),
            workers: None,
            par: ParOptions::default(),
            symbolic: None,
            setup: None,
            plan: None,
            cancel: None,
            max_node_retries: 1,
            faults: FaultHook::default(),
            obs: matex_obs::Obs::disabled(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = DistributedOptions::default();
        assert_eq!(o.strategy, GroupingStrategy::ByBumpFeature);
        assert!(o.workers.is_none());
        assert!(matches!(o.matex.kind, matex_core::KrylovKind::Rational));
        assert_eq!(o.max_node_retries, 1);
        assert!(!o.faults.is_armed());
    }
}
