use matex_core::MatexOptions;
use matex_par::ParOptions;
use matex_waveform::GroupingStrategy;

/// Options for a distributed run.
///
/// # Example
///
/// ```
/// use matex_dist::DistributedOptions;
/// use matex_waveform::GroupingStrategy;
///
/// let opts = DistributedOptions {
///     strategy: GroupingStrategy::BySource,
///     ..DistributedOptions::default()
/// };
/// assert_eq!(opts.workers, None); // None -> all available cores
/// ```
#[derive(Debug, Clone, Default)]
pub struct DistributedOptions {
    /// Solver options handed to every node (the paper runs R-MATEX nodes;
    /// that is [`MatexOptions::default`]).
    pub matex: MatexOptions,
    /// How to partition the sources into subtasks (default: by bump
    /// feature, the paper's Sec. 3.2 decomposition).
    pub strategy: GroupingStrategy,
    /// Worker threads. `None` uses [`std::thread::available_parallelism`];
    /// `Some(1)` emulates the paper's dedicated-node cluster faithfully
    /// (every node's wall time is uncontended).
    pub workers: Option<usize>,
    /// Intra-node kernel parallelism (the total `MATEX_THREADS` budget).
    /// The budget is divided across the active workers — every worker
    /// gets a pool of `max(1, total / workers)` threads for its nodes —
    /// so a distributed run never oversubscribes the host. Off by
    /// default (`MATEX_THREADS` unset): the legacy serial kernels run.
    /// Node numerics are bitwise-invariant in both the worker count and
    /// the per-node budget, so enabling more workers never changes the
    /// superposed waveform.
    pub par: ParOptions,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let o = DistributedOptions::default();
        assert_eq!(o.strategy, GroupingStrategy::ByBumpFeature);
        assert!(o.workers.is_none());
        assert!(matches!(o.matex.kind, matex_core::KrylovKind::Rational));
    }
}
