//! The master node: grouping, scheduling, execution, superposition.

use crate::plan::{plan_groups, GroupPlan, PlanJob};
use crate::schedule::{NodeMeasurement, RunStats};
use crate::{DistError, DistributedOptions};
use matex_circuit::MnaSystem;
use matex_core::{
    CoreError, FaultKind, MatexSolver, MatexSymbolic, SolveStats, TransientEngine, TransientResult,
    TransientSpec,
};
use matex_par::ParPool;
use matex_waveform::SpotSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// One slave node's completed subtask (accounting only — the node's
/// sample series is superposed into the combined result as soon as the
/// node finishes, then dropped, so peak memory no longer scales with the
/// group count).
#[derive(Debug, Clone)]
pub struct NodeRun {
    /// Group id this node simulated (0 is the constant/supply group).
    pub group: usize,
    /// Number of member sources in the group.
    pub num_sources: usize,
    /// Local transition spots inside the simulation window — the number
    /// of fresh Krylov subspaces the node must generate, and therefore
    /// the scheduler's cost estimate for the group.
    pub num_lts: usize,
    /// Wall time of this node's solver run as measured on the worker
    /// thread (uncontended when `workers == Some(1)`).
    pub wall: Duration,
    /// The node's solver cost counters and timings.
    pub stats: SolveStats,
}

/// A completed distributed run.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The superposed full solution.
    pub result: TransientResult,
    /// Per-node accounting, in ascending group order.
    pub nodes: Vec<NodeRun>,
    /// Global transition spots (union of all LTS).
    pub gts: SpotSet,
    /// Scheduling accounting: per-group predicted-vs-measured cost and
    /// the master's symbolic-analysis time.
    pub stats: RunStats,
    /// Makespan of the pure transient phase: the *maximum* node transient
    /// time, per the paper's one-instance-per-node accounting (Table 3's
    /// `trmatex`).
    pub emulated_transient: Duration,
    /// Makespan including DC and factorization per node (Table 3's
    /// `tr_total`).
    pub emulated_total: Duration,
    /// Wall time of the streaming superposition work on the master.
    pub superposition_time: Duration,
    /// Actual wall time of the whole distributed run on this machine
    /// (contended when several workers share cores).
    pub wall_time: Duration,
    /// Node re-dispatches performed after solver failures or panics
    /// (0 on a healthy run). Each retry replays the identical pure
    /// computation, so a non-zero count never changes the waveform.
    pub node_retries: usize,
}

impl DistributedRun {
    /// Number of simulated groups (slave nodes).
    pub fn num_groups(&self) -> usize {
        self.nodes.len()
    }
}

/// What a worker hands the master per finished node.
type NodeOutcome = Result<(NodeRun, TransientResult), CoreError>;

/// Shared dispatch state: the LPT cursor plus the master's retry queue.
/// Workers drain retries before fresh schedule positions so a recovered
/// group lands while its superposition slot is still the drain frontier.
struct WorkQueue {
    next: usize,
    retry: Vec<usize>,
    done: bool,
}

/// Best-effort extraction of a panic payload's message (`&str` and
/// `String` payloads cover `panic!`/`assert!`/`unwrap` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Streaming accumulator: superposes node results **in ascending group
/// order** as they arrive, buffering only out-of-order completions, so
/// the combined numerics stay bitwise independent of the worker count
/// while full per-node series are dropped as soon as they are summed.
///
/// The summation order is the **LPT schedule order** — a fixed
/// permutation of the groups determined by the jobs alone, never by the
/// worker count (that fixedness is what makes the result bitwise
/// worker-invariant). Because workers also *dispatch* in that order,
/// completions arrive approximately in drain order and the out-of-order
/// buffer stays bounded by the in-flight worker count, instead of
/// growing with the group count as an ascending-group drain would when
/// LPT schedules a light group last.
struct Superposer {
    pending: Vec<Option<(NodeRun, TransientResult)>>,
    next: usize,
    acc: Option<TransientResult>,
    stats: SolveStats,
    engine: String,
    nodes: Vec<NodeRun>,
    spent: Duration,
}

impl Superposer {
    fn new(jobs: usize) -> Superposer {
        Superposer {
            pending: (0..jobs).map(|_| None).collect(),
            next: 0,
            acc: None,
            stats: SolveStats::default(),
            engine: String::new(),
            nodes: Vec::with_capacity(jobs),
            spent: Duration::ZERO,
        }
    }

    /// Accepts the payload of the node at schedule position `pos` and
    /// drains everything now contiguous in schedule order.
    fn push(&mut self, pos: usize, payload: (NodeRun, TransientResult)) -> Result<(), CoreError> {
        self.pending[pos] = Some(payload);
        while self.next < self.pending.len() {
            let Some((node, series)) = self.pending[self.next].take() else {
                break;
            };
            let t0 = Instant::now();
            if self.acc.is_none() {
                // "Zeros + add-all" in the fixed schedule order: every
                // node shares one grid, so any first node seeds it.
                self.acc = Some(series.zeros_like());
                self.engine = series.engine.clone();
            }
            self.acc
                .as_mut()
                .expect("accumulator present")
                .add_scaled(&series, 1.0)?;
            self.stats.absorb(&series.stats);
            self.spent += t0.elapsed();
            self.nodes.push(node);
            self.next += 1;
            // `series` dropped here: the streamed memory saving.
        }
        Ok(())
    }
}

/// Runs the distributed MATEX framework of paper Fig. 4.
///
/// Sources are partitioned under `opts.strategy`; each group becomes one
/// subtask running a masked [`MatexSolver`] with the group's LTS against
/// the shared immutable `sys`. The master performs the two-phase LU
/// analysis of `G` and `C + γG` **once** ([`MatexSymbolic`]) and shares
/// it read-only with every worker, so each node's factorizations are
/// cheap numeric replays. Subtasks are scheduled onto a scoped worker
/// pool in longest-processing-time order (cost estimate: LTS count) and
/// every finished node's samples are immediately superposed into the
/// combined result in that same fixed, worker-independent schedule
/// order, so the numerics are bitwise independent of `opts.workers`
/// while peak memory stays at one full series plus the in-flight
/// stragglers.
///
/// Workers are **supervised**: a node that panics or fails is
/// re-dispatched to a surviving worker up to `opts.max_node_retries`
/// times before the run aborts. A retried node replays the identical
/// pure computation against the shared read-only artifacts and
/// superposes at its original schedule position, so recovered runs are
/// bitwise-identical to fault-free ones ([`DistributedRun::node_retries`]
/// counts the re-dispatches).
///
/// # Errors
///
/// Returns [`DistError::Analyze`] when the shared symbolic analysis
/// fails, [`DistError::Node`] carrying the first terminal node failure
/// (retry budget exhausted; panics arrive as
/// [`CoreError::Panicked`]), or [`DistError::Superposition`] if result
/// grids mismatch (internal invariant violation).
pub fn run_distributed(
    sys: &MnaSystem,
    spec: &TransientSpec,
    opts: &DistributedOptions,
) -> Result<DistributedRun, DistError> {
    let wall0 = Instant::now();

    // The planning phase — grouping, LTS clipping, LPT ordering — either
    // injected (a scenario engine amortizes it across runs of one
    // circuit) or computed here. The plan is a pure function of
    // `(sources, window, strategy)`, so injection never changes the jobs
    // or their fixed summation order.
    let plan_storage;
    let plan: &GroupPlan = match &opts.plan {
        Some(shared) => {
            shared
                .check(sys, spec, opts.strategy)
                .map_err(DistError::Plan)?;
            shared.as_ref()
        }
        None => {
            plan_storage = plan_groups(sys, spec, opts.strategy);
            &plan_storage
        }
    };
    let jobs: &[PlanJob] = plan.jobs();
    let order: &[usize] = plan.order();

    // One symbolic analysis on the unmasked system; every node replays
    // it (the matrices are identical across nodes — masking only selects
    // input columns). An injected analysis — or an injected full setup,
    // which embeds the factors themselves — skips this master phase.
    let mut analyze_time = Duration::ZERO;
    let symbolic: Option<Arc<MatexSymbolic>> = if opts.setup.is_some() {
        None
    } else {
        match &opts.symbolic {
            Some(shared) => Some(shared.clone()),
            None => {
                let ta = Instant::now();
                let s =
                    Arc::new(MatexSymbolic::analyze(sys, &opts.matex).map_err(DistError::Analyze)?);
                analyze_time = ta.elapsed();
                opts.obs
                    .record_span("dist.analyze", opts.obs.job(), ta, analyze_time, &[]);
                opts.obs.observe("dist_analyze_seconds", analyze_time);
                Some(s)
            }
        }
    };

    // rank[job] = position in the schedule (and summation) order.
    let mut rank = vec![0usize; jobs.len()];
    for (k, &j) in order.iter().enumerate() {
        rank[j] = k;
    }

    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(jobs.len());

    // Nested-parallelism policy: one total kernel-thread budget
    // (`MATEX_THREADS` / `opts.par`), divided across the active workers
    // so node-level and kernel-level parallelism compose without
    // oversubscribing. Each worker owns one pool for all the nodes it
    // runs. Kernel results are bitwise-invariant in the pool width, so
    // the division (and the worker count) never changes the waveform.
    let kernel_budget = opts.par.resolve().map(|t| (t / workers).max(1));

    // Worker pool: a shared queue draining the LPT order (retries first);
    // finished subtasks stream back to the master, which superposes them
    // in group order and is the sole arbiter of failure: a failed or
    // panicked node is pushed back onto the queue for a surviving worker
    // (its retry replays the identical pure computation and superposes at
    // the original schedule position, so recovery is bitwise-invisible)
    // until its attempt budget runs out, at which point `done` stops the
    // pool from simulating groups whose results would be discarded.
    let work = (
        Mutex::new(WorkQueue {
            next: 0,
            retry: Vec::new(),
            done: false,
        }),
        Condvar::new(),
    );
    let (tx, rx) = mpsc::channel::<(usize, NodeOutcome)>();
    let mut sup = Superposer::new(jobs.len());
    let mut failures: Vec<(usize, CoreError)> = Vec::new();
    let mut attempts = vec![0usize; jobs.len()];
    let mut node_retries = 0usize;
    std::thread::scope(|scope| {
        let (work, symbolic) = (&work, &symbolic);
        for w in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || {
                let pool = kernel_budget.map(|b| Arc::new(ParPool::new(b)));
                let (queue, available) = work;
                loop {
                    // Take a retry if one is queued, else advance the LPT
                    // cursor, else wait for the master to queue a retry or
                    // declare the run over. Cooperative cancellation:
                    // stop dispatching the moment the token trips
                    // (running nodes give up at their own step boundaries
                    // via `with_cancel`).
                    let j = {
                        let mut q = queue.lock().expect("work queue poisoned");
                        loop {
                            if q.done || opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
                                break None;
                            }
                            if let Some(j) = q.retry.pop() {
                                break Some((j, true));
                            }
                            if let Some(&j) = order.get(q.next) {
                                q.next += 1;
                                break Some((j, false));
                            }
                            // Short timeout: the condvar has no waker for
                            // an externally tripped cancel token.
                            q = available
                                .wait_timeout(q, Duration::from_millis(5))
                                .expect("work queue poisoned")
                                .0;
                        }
                    };
                    let Some((j, was_retry)) = j else { break };
                    // One span per dispatch: the timeline shows which
                    // worker ran which group, and whether the dispatch
                    // was a retry of a failed node.
                    let mut node_span = opts.obs.span("dist.node");
                    if node_span.is_armed() {
                        node_span.label("group", jobs[j].group.to_string());
                        node_span.label("worker", w.to_string());
                        node_span.label("retry", if was_retry { "1" } else { "0" });
                    }
                    // Supervision: a panicking node unwinds into a node
                    // error (payload message preserved) instead of
                    // poisoning the scope and aborting the process.
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        match opts.faults.check("dist.node") {
                            Some(FaultKind::Panic) => {
                                panic!("injected fault: dist.node (group {})", jobs[j].group)
                            }
                            Some(FaultKind::Error) => {
                                return Err(CoreError::Injected {
                                    site: "dist.node".to_string(),
                                })
                            }
                            None => {}
                        }
                        run_node(sys, spec, opts, &jobs[j], symbolic.clone(), pool.clone())
                    }))
                    .unwrap_or_else(|payload| Err(CoreError::Panicked(panic_message(&*payload))));
                    node_span.label("ok", if outcome.is_ok() { "1" } else { "0" });
                    drop(node_span);
                    opts.obs.add_labeled(
                        "dist_nodes_total",
                        &[("outcome", if outcome.is_ok() { "ok" } else { "err" })],
                        1,
                    );
                    if tx.send((j, outcome)).is_err() {
                        break; // master gone (superposition error): stop
                    }
                }
            });
        }
        drop(tx);
        // The master thread superposes while workers keep producing, and
        // decides per failure: re-queue (budget remaining) or abort.
        while let Ok((j, outcome)) = rx.recv() {
            match outcome {
                Ok(payload) => {
                    if let Err(e) = sup.push(rank[j], payload) {
                        failures.push((j, e));
                        break;
                    }
                    if sup.next == jobs.len() {
                        break; // all drained; idle workers hold senders
                    }
                }
                Err(e) => {
                    let retryable =
                        !matches!(e, CoreError::Cancelled) && attempts[j] < opts.max_node_retries;
                    if retryable {
                        attempts[j] += 1;
                        node_retries += 1;
                        opts.obs.add("dist_node_retries_total", 1);
                        let (queue, available) = &work;
                        queue.lock().expect("work queue poisoned").retry.push(j);
                        available.notify_all();
                    } else {
                        failures.push((j, e));
                        break;
                    }
                }
            }
        }
        // Whatever ended the drain — completion, terminal failure or a
        // superposition mismatch — wake every waiting worker to exit.
        let (queue, available) = &work;
        queue.lock().expect("work queue poisoned").done = true;
        available.notify_all();
    });

    if let Some((j, source)) = failures.into_iter().min_by_key(|&(j, _)| j) {
        // First completed failure in group order. Distinguish internal
        // superposition mismatches from node solver failures, and fold
        // per-node cancellations into the run-level verdict.
        return Err(match source {
            CoreError::Cancelled => DistError::Cancelled,
            CoreError::Incomparable(_) => DistError::Superposition(source),
            _ => DistError::Node {
                group: jobs[j].group,
                source,
            },
        });
    }
    if sup.next != jobs.len() {
        // No node failed, yet jobs went unran: the only path is the
        // cancel token tripping before every node was dispatched.
        assert!(
            opts.cancel.as_ref().is_some_and(|c| c.is_cancelled()),
            "worker pool left a job unran without a failure or cancellation"
        );
        return Err(DistError::Cancelled);
    }
    let Superposer {
        mut nodes,
        stats,
        engine,
        acc,
        spent: superposition_time,
        ..
    } = sup;
    let mut result = acc.expect("at least one job ran");
    result.stats = stats;
    result.engine = format!("MATEX-dist[{} x {}]", nodes.len(), engine);
    // Drained in schedule order; the public accounting is group order.
    nodes.sort_by_key(|n| n.group);

    let run_stats = RunStats::from_measurements(
        &nodes
            .iter()
            .map(|n| NodeMeasurement {
                group: n.group,
                num_lts: n.num_lts,
                wall: n.wall,
                expm_time: n.stats.expm_time,
                combine_time: n.stats.combine_time,
            })
            .collect::<Vec<_>>(),
        analyze_time,
    );
    let emulated_transient = nodes
        .iter()
        .map(|n| n.stats.transient_time)
        .max()
        .unwrap_or_default();
    let emulated_total = nodes
        .iter()
        .map(|n| n.stats.total_time())
        .max()
        .unwrap_or_default();

    Ok(DistributedRun {
        result,
        nodes,
        gts: plan.gts().clone(),
        stats: run_stats,
        emulated_transient,
        emulated_total,
        superposition_time,
        wall_time: wall0.elapsed(),
        node_retries,
    })
}

/// Runs one group's masked solver (one slave node of Fig. 4).
fn run_node(
    sys: &MnaSystem,
    spec: &TransientSpec,
    opts: &DistributedOptions,
    job: &PlanJob,
    symbolic: Option<Arc<MatexSymbolic>>,
    pool: Option<Arc<ParPool>>,
) -> NodeOutcome {
    let t0 = Instant::now();
    let mut solver = MatexSolver::new(opts.matex.clone())
        .with_source_mask(job.members.clone())
        .with_lts(job.lts.clone());
    if let Some(setup) = &opts.setup {
        // Every node shares the one pre-built factorization set.
        solver = solver.with_setup(setup.clone());
    } else if let Some(sym) = symbolic {
        solver = solver.with_symbolic(sym);
    }
    if let Some(pool) = pool {
        solver = solver.with_parallelism(pool);
    }
    if let Some(token) = &opts.cancel {
        solver = solver.with_cancel(token.clone());
    }
    let result = solver.run(sys, spec)?;
    Ok((
        NodeRun {
            group: job.group,
            num_sources: job.members.len(),
            num_lts: job.lts.len(),
            wall: t0.elapsed(),
            stats: result.stats.clone(),
        },
        result,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::{Netlist, PdnBuilder};
    use matex_core::MatexOptions;
    use matex_waveform::{GroupingStrategy, Pulse, Waveform};

    fn small_grid() -> MnaSystem {
        PdnBuilder::new(6, 6)
            .num_loads(8)
            .num_features(3)
            .window(1e-9)
            .build()
            .expect("grid builds")
    }

    #[test]
    fn groups_cover_every_source_once() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        let covered: usize = run.nodes.iter().map(|n| n.num_sources).sum();
        assert_eq!(covered, sys.num_sources());
        // Ascending group order, starting with the supply group.
        for w in run.nodes.windows(2) {
            assert!(w[0].group < w[1].group);
        }
        assert_eq!(run.nodes[0].group, 0);
    }

    #[test]
    fn matches_monolithic_solver() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let opts = DistributedOptions {
            matex: MatexOptions::default().tol(1e-10),
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).unwrap();
        let mono = MatexSolver::new(MatexOptions::default().tol(1e-10))
            .run(&sys, &spec)
            .unwrap();
        let (max_err, _) = run.result.error_vs(&mono).unwrap();
        assert!(max_err < 1e-6, "superposition deviates: {max_err:.3e}");
    }

    #[test]
    fn nodes_replay_the_shared_symbolic_analysis() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        for node in &run.nodes {
            // Both per-node factorizations (G, C + γG) are replays of
            // the master's single analysis.
            assert_eq!(
                node.stats.refactorizations, node.stats.factorizations,
                "group {} did a full factorization despite the shared symbolic",
                node.group
            );
        }
        assert!(run.stats.analyze_time > Duration::ZERO);
    }

    #[test]
    fn run_stats_cover_every_group() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        assert_eq!(run.stats.groups.len(), run.num_groups());
        let p: f64 = run.stats.groups.iter().map(|g| g.predicted_share).sum();
        let m: f64 = run.stats.groups.iter().map(|g| g.measured_share).sum();
        assert!((p - 1.0).abs() < 1e-9 && (m - 1.0).abs() < 1e-9);
        for (g, n) in run.stats.groups.iter().zip(&run.nodes) {
            assert_eq!(g.group, n.group);
            assert_eq!(g.num_lts, n.num_lts);
            assert_eq!(g.wall, n.wall);
            // The Fig. 13-style T_H / T_e split rides along per node.
            assert_eq!(g.expm_time, n.stats.expm_time);
            assert_eq!(g.combine_time, n.stats.combine_time);
            assert!(g.expm_time + g.combine_time <= n.stats.transient_time);
        }
    }

    #[test]
    fn sourceless_system_yields_zero_result() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-10).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        assert_eq!(run.num_groups(), 1);
        assert!(run.result.series()[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_strategy_puts_loads_on_one_node() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let opts = DistributedOptions {
            strategy: GroupingStrategy::Single,
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).unwrap();
        assert_eq!(run.num_groups(), 2); // supplies + one load group
    }

    #[test]
    fn kernel_budget_never_changes_the_waveform() {
        // The nested-parallelism contract: any MATEX_THREADS budget (and
        // any worker count splitting it) produces bitwise-identical
        // superposed results, and stays close to the legacy serial path.
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let run_with = |threads: usize, workers: Option<usize>| {
            let opts = DistributedOptions {
                par: matex_par::ParOptions::with_threads(threads),
                workers,
                ..DistributedOptions::default()
            };
            run_distributed(&sys, &spec, &opts).unwrap()
        };
        let reference = run_with(1, Some(2));
        for (threads, workers) in [(2, Some(2)), (4, Some(1)), (7, Some(3))] {
            let run = run_with(threads, workers);
            assert_eq!(
                reference.result.series(),
                run.result.series(),
                "budget {threads} / workers {workers:?} changed the waveform"
            );
        }
        let legacy = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        let (max_err, _) = reference.result.error_vs(&legacy.result).unwrap();
        assert!(
            max_err < 1e-7,
            "pooled path deviates from legacy: {max_err:.3e}"
        );
    }

    #[test]
    fn injected_artifacts_are_bitwise_invisible() {
        // Pre-built plan / symbolic / setup — alone and together — must
        // reproduce the self-computing run bit for bit: each artifact is
        // exactly what the run would have derived.
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let base_opts = DistributedOptions::default();
        let reference = run_distributed(&sys, &spec, &base_opts).unwrap();

        let plan = Arc::new(crate::plan_groups(&sys, &spec, base_opts.strategy));
        let symbolic =
            Arc::new(matex_core::MatexSymbolic::analyze(&sys, &base_opts.matex).unwrap());
        let setup = Arc::new(
            matex_core::MatexSetup::prepare(&sys, &base_opts.matex, Some(&symbolic), false)
                .unwrap(),
        );
        let variants = [
            DistributedOptions {
                plan: Some(plan.clone()),
                ..base_opts.clone()
            },
            DistributedOptions {
                symbolic: Some(symbolic.clone()),
                ..base_opts.clone()
            },
            DistributedOptions {
                plan: Some(plan.clone()),
                symbolic: Some(symbolic.clone()),
                setup: Some(setup.clone()),
                ..base_opts.clone()
            },
        ];
        for (k, opts) in variants.iter().enumerate() {
            let run = run_distributed(&sys, &spec, opts).unwrap();
            assert_eq!(
                reference.result.series(),
                run.result.series(),
                "variant {k} changed the waveform"
            );
            assert_eq!(
                reference.result.final_state(),
                run.result.final_state(),
                "variant {k} changed the final state"
            );
            assert_eq!(reference.gts.as_slice(), run.gts.as_slice());
        }
        // Injected symbolic: the master skips its own analysis.
        let injected = run_distributed(
            &sys,
            &spec,
            &DistributedOptions {
                symbolic: Some(symbolic),
                ..base_opts.clone()
            },
        )
        .unwrap();
        assert_eq!(injected.stats.analyze_time, Duration::ZERO);

        // A plan for a different window is rejected, not silently used.
        let other_spec = TransientSpec::new(0.0, 2e-9, 2e-11).unwrap();
        let err = run_distributed(
            &sys,
            &other_spec,
            &DistributedOptions {
                plan: Some(plan),
                ..base_opts
            },
        );
        assert!(matches!(err, Err(DistError::Plan(_))));
    }

    #[test]
    fn panicked_and_failed_nodes_recover_bitwise() {
        // Two injected faults — one panic, one error — on different node
        // dispatches: both groups are re-dispatched and the recovered
        // waveform must be bitwise-identical to the fault-free run.
        use matex_core::{FaultHook, FaultKind, FaultPlan};
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let reference = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        assert_eq!(reference.node_retries, 0);
        let plan = FaultPlan::new()
            .fail_at("dist.node", 1, FaultKind::Panic)
            .fail_at("dist.node", 3, FaultKind::Error);
        for workers in [Some(1), Some(3)] {
            let opts = DistributedOptions {
                workers,
                // Budget 2: with retries interleaving into the occurrence
                // stream, both entries may land on the same group.
                max_node_retries: 2,
                faults: FaultHook::new(plan.clone()),
                ..DistributedOptions::default()
            };
            let run = run_distributed(&sys, &spec, &opts).unwrap();
            assert_eq!(run.node_retries, 2, "workers {workers:?}");
            assert_eq!(
                reference.result.series(),
                run.result.series(),
                "recovery changed the waveform (workers {workers:?})"
            );
            assert_eq!(reference.result.final_state(), run.result.final_state());
            assert_eq!(opts.faults.injected(), 2);
        }
    }

    #[test]
    fn solver_level_faults_recover_through_node_retry() {
        // Faults injected *inside* the node's solver (via MatexOptions)
        // surface as node failures and heal through the same re-dispatch.
        use matex_core::{FaultHook, FaultKind, FaultPlan};
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let reference = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        let matex = MatexOptions {
            faults: FaultHook::new(FaultPlan::new().fail_at(
                "core.solver.run",
                0,
                FaultKind::Error,
            )),
            ..MatexOptions::default()
        };
        let opts = DistributedOptions {
            matex,
            workers: Some(2),
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).unwrap();
        assert_eq!(run.node_retries, 1);
        assert_eq!(reference.result.series(), run.result.series());
    }

    #[test]
    fn exhausted_retry_budget_aborts_with_the_node_error() {
        use matex_core::{FaultHook, FaultKind, FaultPlan};
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        // Every dispatch fails: the budget runs out and the run reports
        // the injected fault as a node error instead of panicking or
        // hanging.
        let opts = DistributedOptions {
            workers: Some(2),
            max_node_retries: 1,
            faults: FaultHook::new(
                FaultPlan::new()
                    .seeded(9, 1000, FaultKind::Error)
                    .on_sites(&["dist.node"]),
            ),
            ..DistributedOptions::default()
        };
        match run_distributed(&sys, &spec, &opts) {
            Err(DistError::Node { source, .. }) => {
                assert!(matches!(source, CoreError::Injected { .. }), "{source}");
            }
            other => panic!("expected node error, got {other:?}"),
        }
    }

    #[test]
    fn node_panic_is_contained_and_reported() {
        use matex_core::{FaultHook, FaultKind, FaultPlan};
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let opts = DistributedOptions {
            workers: Some(1),
            max_node_retries: 0,
            faults: FaultHook::new(FaultPlan::new().fail_at("dist.node", 0, FaultKind::Panic)),
            ..DistributedOptions::default()
        };
        match run_distributed(&sys, &spec, &opts) {
            Err(DistError::Node { source, .. }) => match source {
                CoreError::Panicked(msg) => assert!(msg.contains("injected fault"), "{msg}"),
                other => panic!("expected preserved panic payload, got {other}"),
            },
            other => panic!("expected node error, got {other:?}"),
        }
    }

    #[test]
    fn lpt_order_is_deterministic() {
        // Groups with distinct LTS counts: heavier groups first, ties on id.
        let p = |d: f64| Waveform::Pulse(Pulse::new(0.0, 1e-3, d, 1e-11, 1e-10, 1e-11).unwrap());
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_resistor("r", a, Netlist::ground(), 10.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        nl.add_isource("i0", Netlist::ground(), a, p(1e-10))
            .unwrap();
        nl.add_isource("i1", Netlist::ground(), a, p(3e-10))
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let opts = DistributedOptions {
            strategy: GroupingStrategy::BySource,
            workers: Some(2),
            ..DistributedOptions::default()
        };
        let a_run = run_distributed(&sys, &spec, &opts).unwrap();
        let b_run = run_distributed(&sys, &spec, &opts).unwrap();
        assert_eq!(a_run.result.series(), b_run.result.series());
        assert_eq!(a_run.num_groups(), 2);
    }
}
