//! The master node: grouping, scheduling, execution, superposition.

use crate::{DistError, DistributedOptions};
use matex_circuit::MnaSystem;
use matex_core::{
    CoreError, MatexSolver, SolveStats, TransientEngine, TransientResult, TransientSpec,
};
use matex_waveform::{group_sources, SpotSet};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// One slave node's completed subtask.
#[derive(Debug, Clone)]
pub struct NodeRun {
    /// Group id this node simulated (0 is the constant/supply group).
    pub group: usize,
    /// Number of member sources in the group.
    pub num_sources: usize,
    /// Local transition spots inside the simulation window — the number
    /// of fresh Krylov subspaces the node must generate, and therefore
    /// the scheduler's cost estimate for the group.
    pub num_lts: usize,
    /// Wall time of this node's solver run as measured on the worker
    /// thread (uncontended when `workers == Some(1)`).
    pub wall: Duration,
    /// The node's (masked) transient result on the shared sample grid.
    pub result: TransientResult,
}

/// A completed distributed run.
#[derive(Debug, Clone)]
pub struct DistributedRun {
    /// The superposed full solution.
    pub result: TransientResult,
    /// Per-node accounting, in ascending group order.
    pub nodes: Vec<NodeRun>,
    /// Global transition spots (union of all LTS).
    pub gts: SpotSet,
    /// Makespan of the pure transient phase: the *maximum* node transient
    /// time, per the paper's one-instance-per-node accounting (Table 3's
    /// `trmatex`).
    pub emulated_transient: Duration,
    /// Makespan including DC and factorization per node (Table 3's
    /// `tr_total`).
    pub emulated_total: Duration,
    /// Wall time of the sequential superposition step on the master.
    pub superposition_time: Duration,
    /// Actual wall time of the whole distributed run on this machine
    /// (contended when several workers share cores).
    pub wall_time: Duration,
}

impl DistributedRun {
    /// Number of simulated groups (slave nodes).
    pub fn num_groups(&self) -> usize {
        self.nodes.len()
    }
}

/// One schedulable subtask.
struct Job {
    group: usize,
    members: Vec<usize>,
    lts: SpotSet,
}

/// Runs the distributed MATEX framework of paper Fig. 4.
///
/// Sources are partitioned under `opts.strategy`; each group becomes one
/// subtask running a masked [`MatexSolver`] with the group's LTS against
/// the shared immutable `sys`. Subtasks are scheduled onto a scoped
/// worker pool in longest-processing-time order (cost estimate: LTS
/// count). The results superpose in ascending group order, so the
/// combined numerics are bitwise independent of `opts.workers`.
///
/// # Errors
///
/// Returns [`DistError::Node`] carrying the first node failure in group
/// order, or [`DistError::Superposition`] if result grids mismatch
/// (internal invariant violation).
pub fn run_distributed(
    sys: &MnaSystem,
    spec: &TransientSpec,
    opts: &DistributedOptions,
) -> Result<DistributedRun, DistError> {
    let wall0 = Instant::now();
    let (t_start, t_stop) = (spec.t_start(), spec.t_stop());

    let grouping = group_sources(&sys.source_waveforms(), t_stop, opts.strategy);
    let mut jobs: Vec<Job> = grouping
        .groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| Job {
            group: g.id,
            members: g.members.clone(),
            lts: g.lts.clip(t_start, t_stop),
        })
        .collect();
    if jobs.is_empty() {
        // Sourceless system: one node computes the (zero) homogeneous
        // response so the run still has a well-formed result grid.
        jobs.push(Job {
            group: 0,
            members: Vec::new(),
            lts: SpotSet::new(),
        });
    }

    // Longest-processing-time order: a group's cost is dominated by its
    // Krylov generations, one per LTS. Ties break on group id so the
    // schedule itself is deterministic.
    let mut order: Vec<usize> = (0..jobs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].lts.len()), jobs[i].group));

    let workers = opts
        .workers
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(1)
        .min(jobs.len());

    // Worker pool: a shared cursor over the LPT order; every completed
    // subtask lands in its job's slot, so collection order below is group
    // order regardless of which worker ran what. A failed node trips the
    // abort flag so idle workers stop draining the queue instead of
    // simulating groups whose results will be discarded.
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let slots: Vec<OnceLock<Result<NodeRun, CoreError>>> =
        (0..jobs.len()).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let k = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(&j) = order.get(k) else { break };
                let job = &jobs[j];
                let outcome = run_node(sys, spec, opts, job);
                if outcome.is_err() {
                    abort.store(true, Ordering::Relaxed);
                }
                slots[j].set(outcome).expect("each job runs exactly once");
            });
        }
    });

    // Slots are in group order; after an abort some may be unset (their
    // jobs were skipped), so report the first *completed* failure.
    let mut nodes = Vec::with_capacity(jobs.len());
    for (slot, job) in slots.into_iter().zip(&jobs) {
        match slot.into_inner() {
            Some(Ok(node)) => nodes.push(node),
            Some(Err(source)) => {
                return Err(DistError::Node {
                    group: job.group,
                    source,
                })
            }
            None => {
                assert!(
                    abort.load(Ordering::Relaxed),
                    "worker pool left a job unran without aborting"
                );
            }
        }
    }

    // Superpose in ascending group order — fixed summation order keeps
    // the result bitwise independent of the worker count.
    let sup0 = Instant::now();
    let mut result = nodes[0].result.zeros_like();
    let mut stats = SolveStats::default();
    for node in &nodes {
        result
            .add_scaled(&node.result, 1.0)
            .map_err(DistError::Superposition)?;
        stats.absorb(&node.result.stats);
    }
    result.stats = stats;
    result.engine = format!("MATEX-dist[{} x {}]", nodes.len(), nodes[0].result.engine);
    let superposition_time = sup0.elapsed();

    let emulated_transient = nodes
        .iter()
        .map(|n| n.result.stats.transient_time)
        .max()
        .unwrap_or_default();
    let emulated_total = nodes
        .iter()
        .map(|n| n.result.stats.total_time())
        .max()
        .unwrap_or_default();

    Ok(DistributedRun {
        result,
        nodes,
        gts: grouping.gts.clip(t_start, t_stop),
        emulated_transient,
        emulated_total,
        superposition_time,
        wall_time: wall0.elapsed(),
    })
}

/// Runs one group's masked solver (one slave node of Fig. 4).
fn run_node(
    sys: &MnaSystem,
    spec: &TransientSpec,
    opts: &DistributedOptions,
    job: &Job,
) -> Result<NodeRun, CoreError> {
    let t0 = Instant::now();
    let solver = MatexSolver::new(opts.matex.clone())
        .with_source_mask(job.members.clone())
        .with_lts(job.lts.clone());
    let result = solver.run(sys, spec)?;
    Ok(NodeRun {
        group: job.group,
        num_sources: job.members.len(),
        num_lts: job.lts.len(),
        wall: t0.elapsed(),
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use matex_circuit::{Netlist, PdnBuilder};
    use matex_core::MatexOptions;
    use matex_waveform::{GroupingStrategy, Pulse, Waveform};

    fn small_grid() -> MnaSystem {
        PdnBuilder::new(6, 6)
            .num_loads(8)
            .num_features(3)
            .window(1e-9)
            .build()
            .expect("grid builds")
    }

    #[test]
    fn groups_cover_every_source_once() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        let covered: usize = run.nodes.iter().map(|n| n.num_sources).sum();
        assert_eq!(covered, sys.num_sources());
        // Ascending group order, starting with the supply group.
        for w in run.nodes.windows(2) {
            assert!(w[0].group < w[1].group);
        }
        assert_eq!(run.nodes[0].group, 0);
    }

    #[test]
    fn matches_monolithic_solver() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let opts = DistributedOptions {
            matex: MatexOptions::default().tol(1e-10),
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).unwrap();
        let mono = MatexSolver::new(MatexOptions::default().tol(1e-10))
            .run(&sys, &spec)
            .unwrap();
        let (max_err, _) = run.result.error_vs(&mono).unwrap();
        assert!(max_err < 1e-6, "superposition deviates: {max_err:.3e}");
    }

    #[test]
    fn sourceless_system_yields_zero_result() {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_resistor("r", a, Netlist::ground(), 1.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-12).unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-10).unwrap();
        let run = run_distributed(&sys, &spec, &DistributedOptions::default()).unwrap();
        assert_eq!(run.num_groups(), 1);
        assert!(run.result.series()[0].iter().all(|&v| v == 0.0));
    }

    #[test]
    fn single_strategy_puts_loads_on_one_node() {
        let sys = small_grid();
        let spec = TransientSpec::new(0.0, 1e-9, 2e-11).unwrap();
        let opts = DistributedOptions {
            strategy: GroupingStrategy::Single,
            ..DistributedOptions::default()
        };
        let run = run_distributed(&sys, &spec, &opts).unwrap();
        assert_eq!(run.num_groups(), 2); // supplies + one load group
    }

    #[test]
    fn lpt_order_is_deterministic() {
        // Groups with distinct LTS counts: heavier groups first, ties on id.
        let p = |d: f64| Waveform::Pulse(Pulse::new(0.0, 1e-3, d, 1e-11, 1e-10, 1e-11).unwrap());
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.add_resistor("r", a, Netlist::ground(), 10.0).unwrap();
        nl.add_capacitor("c", a, Netlist::ground(), 1e-13).unwrap();
        nl.add_isource("i0", Netlist::ground(), a, p(1e-10))
            .unwrap();
        nl.add_isource("i1", Netlist::ground(), a, p(3e-10))
            .unwrap();
        let sys = MnaSystem::assemble(&nl).unwrap();
        let spec = TransientSpec::new(0.0, 1e-9, 1e-11).unwrap();
        let opts = DistributedOptions {
            strategy: GroupingStrategy::BySource,
            workers: Some(2),
            ..DistributedOptions::default()
        };
        let a_run = run_distributed(&sys, &spec, &opts).unwrap();
        let b_run = run_distributed(&sys, &spec, &opts).unwrap();
        assert_eq!(a_run.result.series(), b_run.result.series());
        assert_eq!(a_run.num_groups(), 2);
    }
}
