//! The Sec. 3.4 analytic speedup model (Eqs. (11)–(12)).
//!
//! Cost units, as measured by [`SolveStats`](matex_core::SolveStats):
//!
//! * `T_bs` — one pair of forward/backward substitutions with the
//!   factored matrix,
//! * `T_H` — one Arnoldi/Hessenberg projection bookkeeping step,
//! * `T_e` — one small `e^{hH_m}` evaluation.
//!
//! A slave node with `k` local transition spots generates `k` Krylov
//! subspaces of average dimension `m` (cost `k·m·T_bs`) and evaluates the
//! projected exponential at all `K` global transition spots (cost
//! `K·(T_H + T_e)`). Single-node MATEX must generate a subspace at every
//! one of the `K` GTS points; fixed-step TR spends one substitution pair
//! per step over `N` steps.

/// Inputs to the paper's speedup model. All costs in seconds.
#[derive(Debug, Clone, Copy)]
pub struct SpeedupModel {
    /// `K` — number of global transition spots (total evaluation points).
    pub gts_points: usize,
    /// `k` — local transition spots of the busiest node.
    pub lts_points: usize,
    /// `m` — average Krylov subspace dimension.
    pub m: f64,
    /// `N` — substitution pairs spent by the fixed-step baseline.
    pub fixed_steps: usize,
    /// Cost of one substitution pair (`T_bs`).
    pub t_bs: f64,
    /// Cost of one Hessenberg projection step (`T_H`).
    pub t_h: f64,
    /// Cost of one small-exponential evaluation (`T_e`).
    pub t_e: f64,
    /// Serial overhead common to both sides (DC solve, factorization);
    /// zero for the pure-transient comparison of Eq. (12).
    pub t_serial: f64,
}

impl SpeedupModel {
    /// Modeled transient cost of the busiest distributed node:
    /// `k·m·T_bs + K·(T_H + T_e)`.
    pub fn node_cost(&self) -> f64 {
        self.lts_points as f64 * self.m * self.t_bs + self.gts_points as f64 * (self.t_h + self.t_e)
    }

    /// Modeled transient cost of single-node (undecomposed) MATEX:
    /// `K·(m·T_bs + T_H + T_e)`.
    pub fn single_node_cost(&self) -> f64 {
        self.gts_points as f64 * (self.m * self.t_bs + self.t_h + self.t_e)
    }

    /// Eq. (11): decomposition speedup over single-node MATEX.
    ///
    /// Saturates as `k → K` (no decomposition left to exploit) and
    /// approaches `K·(m·T_bs + T_H + T_e) / (K·(T_H + T_e))` as `k → 0`.
    pub fn speedup_over_single(&self) -> f64 {
        self.single_node_cost() / self.node_cost().max(f64::MIN_POSITIVE)
    }

    /// Eq. (12): speedup of the busiest distributed node over fixed-step
    /// TR, `(N·T_bs + T_serial) / (k·m·T_bs + K·(T_H + T_e) + T_serial)`.
    ///
    /// Grows with the simulation span: `N` and `K` scale with the window
    /// while `k` stays a per-group property.
    pub fn speedup_over_fixed(&self) -> f64 {
        (self.fixed_steps as f64 * self.t_bs + self.t_serial)
            / (self.node_cost() + self.t_serial).max(f64::MIN_POSITIVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SpeedupModel {
        SpeedupModel {
            gts_points: 100,
            lts_points: 10,
            m: 20.0,
            fixed_steps: 1000,
            t_bs: 1e-4,
            t_h: 1e-5,
            t_e: 1e-5,
            t_serial: 0.0,
        }
    }

    #[test]
    fn decomposition_speedup_saturates_as_k_grows() {
        let mut prev = f64::INFINITY;
        for k in [1usize, 10, 50, 100] {
            let s = SpeedupModel {
                lts_points: k,
                ..base()
            }
            .speedup_over_single();
            assert!(s < prev, "speedup must fall as k grows");
            prev = s;
        }
        // k == K: decomposition gains only the T_H/T_e sharing, so the
        // speedup is near (but above) 1.
        let s = SpeedupModel {
            lts_points: 100,
            ..base()
        }
        .speedup_over_single();
        assert!((1.0..1.5).contains(&s));
    }

    #[test]
    fn fixed_speedup_grows_with_span() {
        let short = base().speedup_over_fixed();
        let long = SpeedupModel {
            fixed_steps: base().fixed_steps * 8,
            gts_points: base().gts_points * 8,
            ..base()
        }
        .speedup_over_fixed();
        assert!(long > short, "Eq. (12) must grow with the span");
    }

    #[test]
    fn serial_overhead_damps_both_sides() {
        let pure = base().speedup_over_fixed();
        let damped = SpeedupModel {
            t_serial: 1.0,
            ..base()
        }
        .speedup_over_fixed();
        assert!(damped < pure);
        assert!(damped > 1.0 - 1e-9 || pure < 1.0);
    }
}
