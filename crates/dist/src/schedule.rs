//! Scheduling order and cost-proxy accounting.
//!
//! The master schedules subtasks in longest-processing-time (LPT) order
//! using each group's LTS count as the cost proxy: a node's runtime is
//! dominated by its Krylov generations, one per local transition spot.
//! This module holds the order itself, a list-scheduling simulator used
//! to bound the proxy's scheduling error against measured wall times
//! (see `tests/scheduler.rs`), and the per-group predicted-vs-actual
//! record published on every [`DistributedRun`](crate::DistributedRun).

use std::time::Duration;

/// LPT order over job costs: indices sorted by descending cost, ties
/// broken by ascending index so the schedule is deterministic.
pub fn lpt_order(costs: &[usize]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    order
}

/// Simulates list scheduling: jobs are taken in `order` and each is
/// assigned to the earliest-available worker; returns the makespan.
///
/// With `order` = LPT over the *true* costs this is the classic LPT
/// heuristic (≤ 4/3·OPT); with `order` derived from a cost *proxy* it is
/// still a list schedule, so Graham's bound guarantees a makespan within
/// `2 − 1/workers` of optimal regardless of how wrong the proxy is —
/// the error bound the LTS-count proxy is tested against.
///
/// # Panics
///
/// Panics when `workers == 0` or `order` indexes out of `costs`.
pub fn list_schedule_makespan(order: &[usize], costs: &[f64], workers: usize) -> f64 {
    assert!(workers > 0, "list schedule needs at least one worker");
    let mut load = vec![0.0_f64; workers];
    for &j in order {
        let w = load
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite loads"))
            .map(|(i, _)| i)
            .expect("workers > 0");
        load[w] += costs[j];
    }
    load.iter().cloned().fold(0.0, f64::max)
}

/// One group's predicted-vs-measured scheduling cost.
#[derive(Debug, Clone)]
pub struct GroupCost {
    /// Group id.
    pub group: usize,
    /// The scheduler's cost proxy: LTS count.
    pub num_lts: usize,
    /// Proxy cost as a share of the total proxy cost.
    pub predicted_share: f64,
    /// Measured wall time as a share of the total wall time.
    pub measured_share: f64,
    /// Measured wall time of the node run.
    pub wall: Duration,
    /// Of the node's transient time, the small-expm share (`T_H`: the
    /// per-snapshot `e^{h·Hm}e₁` columns and the sub-step ladder).
    pub expm_time: Duration,
    /// Of the node's transient time, the basis-combination share
    /// (`T_e`) including output recording.
    pub combine_time: Duration,
}

/// Scheduling accounting for one distributed run: the per-group
/// predicted-vs-actual record and the proxy's worst share error.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Per-group costs, ascending group order.
    pub groups: Vec<GroupCost>,
    /// `max_g |predicted_share − measured_share|` — 0 means the LTS
    /// proxy ranked the work exactly like the wall clock did.
    pub proxy_max_error: f64,
    /// Wall time of the master's one-off symbolic analysis that every
    /// node's refactorizations replay.
    pub analyze_time: Duration,
    /// Sum of the nodes' `T_H` (small-expm) wall times. Together with
    /// [`RunStats::combine_time_total`] this rolls the paper's
    /// `T_H`/`T_e` split up to the run level — previously the per-node
    /// splits were measured but dropped unless the Table 3 bench ran.
    pub expm_time_total: Duration,
    /// Sum of the nodes' `T_e` (combination) wall times.
    pub combine_time_total: Duration,
}

/// One node's raw scheduling measurement, fed to
/// [`RunStats::from_measurements`].
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct NodeMeasurement {
    pub group: usize,
    pub num_lts: usize,
    pub wall: Duration,
    /// The node solver's `T_H` wall time (`SolveStats::expm_time`).
    pub expm_time: Duration,
    /// The node solver's `T_e` wall time (`SolveStats::combine_time`).
    pub combine_time: Duration,
}

impl RunStats {
    /// Builds the record from per-node measurements.
    pub(crate) fn from_measurements(
        measurements: &[NodeMeasurement],
        analyze_time: Duration,
    ) -> RunStats {
        let total_lts: usize = measurements.iter().map(|m| m.num_lts).sum();
        let total_wall: f64 = measurements.iter().map(|m| m.wall.as_secs_f64()).sum();
        let even = 1.0 / measurements.len().max(1) as f64;
        let mut proxy_max_error = 0.0_f64;
        let groups = measurements
            .iter()
            .map(|m| {
                let predicted_share = if total_lts == 0 {
                    even
                } else {
                    m.num_lts as f64 / total_lts as f64
                };
                let measured_share = if total_wall <= 0.0 {
                    even
                } else {
                    m.wall.as_secs_f64() / total_wall
                };
                proxy_max_error = proxy_max_error.max((predicted_share - measured_share).abs());
                GroupCost {
                    group: m.group,
                    num_lts: m.num_lts,
                    predicted_share,
                    measured_share,
                    wall: m.wall,
                    expm_time: m.expm_time,
                    combine_time: m.combine_time,
                }
            })
            .collect();
        RunStats {
            groups,
            proxy_max_error,
            analyze_time,
            expm_time_total: measurements.iter().map(|m| m.expm_time).sum(),
            combine_time_total: measurements.iter().map(|m| m.combine_time).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lpt_order_descends_with_stable_ties() {
        assert_eq!(lpt_order(&[1, 5, 5, 0, 9]), vec![4, 1, 2, 0, 3]);
        assert!(lpt_order(&[]).is_empty());
    }

    #[test]
    fn list_schedule_balances() {
        // LPT on [5,4,3,3,3] with 2 workers: 5+4 vs ... -> loads 9 wait:
        // 5 | 4, then 3 -> worker1 (4+3=7), 3 -> worker0 (5+3=8), 3 ->
        // worker1 (7+3=10) => makespan 10? No: earliest-available picks
        // min load each time: 5|0 -> 5|4 -> 5|7 -> 8|7 -> 8|10.
        let order = lpt_order(&[5, 4, 3, 3, 3]);
        let costs = [5.0, 4.0, 3.0, 3.0, 3.0];
        assert_eq!(list_schedule_makespan(&order, &costs, 2), 10.0);
        // One worker: makespan is the sum.
        assert_eq!(list_schedule_makespan(&order, &costs, 1), 18.0);
        // Enough workers: makespan is the max.
        assert_eq!(list_schedule_makespan(&order, &costs, 5), 5.0);
    }

    fn m(group: usize, num_lts: usize, wall: Duration) -> NodeMeasurement {
        NodeMeasurement {
            group,
            num_lts,
            wall,
            ..NodeMeasurement::default()
        }
    }

    #[test]
    fn run_stats_shares_sum_to_one() {
        let m = [
            m(0, 0, Duration::from_millis(10)),
            m(1, 6, Duration::from_millis(50)),
            m(2, 3, Duration::from_millis(40)),
        ];
        let stats = RunStats::from_measurements(&m, Duration::ZERO);
        let p: f64 = stats.groups.iter().map(|g| g.predicted_share).sum();
        let w: f64 = stats.groups.iter().map(|g| g.measured_share).sum();
        assert!((p - 1.0).abs() < 1e-12);
        assert!((w - 1.0).abs() < 1e-12);
        assert!(stats.proxy_max_error <= 1.0);
    }

    #[test]
    fn expm_and_combine_rollups_sum_per_node_splits() {
        // Satellite: the per-node T_H/T_e measurements must survive into
        // run-level totals. Pinned exactly — Duration sums are integral.
        let m = [
            NodeMeasurement {
                group: 0,
                num_lts: 2,
                wall: Duration::from_millis(30),
                expm_time: Duration::from_micros(1_500),
                combine_time: Duration::from_micros(700),
            },
            NodeMeasurement {
                group: 1,
                num_lts: 4,
                wall: Duration::from_millis(60),
                expm_time: Duration::from_micros(2_500),
                combine_time: Duration::from_micros(1_300),
            },
        ];
        let stats = RunStats::from_measurements(&m, Duration::ZERO);
        assert_eq!(stats.expm_time_total, Duration::from_micros(4_000));
        assert_eq!(stats.combine_time_total, Duration::from_micros(2_000));
        // The per-group records carry the same splits they were fed.
        assert_eq!(stats.groups[0].expm_time, Duration::from_micros(1_500));
        assert_eq!(stats.groups[1].combine_time, Duration::from_micros(1_300));
    }

    #[test]
    fn degenerate_measurements_fall_back_to_even_shares() {
        let m = [m(0, 0, Duration::ZERO), m(1, 0, Duration::ZERO)];
        let stats = RunStats::from_measurements(&m, Duration::ZERO);
        for g in &stats.groups {
            assert_eq!(g.predicted_share, 0.5);
            assert_eq!(g.measured_share, 0.5);
        }
        assert_eq!(stats.proxy_max_error, 0.0);
    }
}
