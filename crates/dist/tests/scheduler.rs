//! Scheduler contracts of the distributed framework: worker-count
//! invariance of the numerics, the per-node factorization budget, the
//! paper's one-instance-per-node makespan accounting, and the LTS-count
//! cost proxy's list-scheduling error bound against measured wall times.

use matex_circuit::PdnBuilder;
use matex_core::{MatexOptions, TransientSpec};
use matex_dist::{
    list_schedule_makespan, lpt_order, run_distributed, DistributedOptions, DistributedRun,
};
use matex_waveform::GroupingStrategy;

fn grid_and_spec() -> (matex_circuit::MnaSystem, TransientSpec) {
    let sys = PdnBuilder::new(10, 10)
        .num_loads(16)
        .num_features(4)
        .window(2e-9)
        .seed(11)
        .build()
        .expect("grid builds");
    let spec = TransientSpec::new(0.0, 2e-9, 4e-11).expect("valid spec");
    (sys, spec)
}

fn run_with(workers: Option<usize>) -> DistributedRun {
    let (sys, spec) = grid_and_spec();
    let opts = DistributedOptions {
        matex: MatexOptions::default().tol(1e-8),
        strategy: GroupingStrategy::ByBumpFeature,
        workers,
        ..DistributedOptions::default()
    };
    run_distributed(&sys, &spec, &opts).expect("distributed run")
}

/// The combined result must be **bitwise** identical for any worker
/// count: scheduling order must never change the numerics, because the
/// streaming superposition sums in fixed group-index order.
#[test]
fn worker_count_does_not_change_results() {
    let one = run_with(Some(1));
    let four = run_with(Some(4));
    let auto = run_with(None);
    assert_eq!(one.result.times(), four.result.times());
    assert_eq!(one.result.series(), four.result.series());
    assert_eq!(one.result.series(), auto.result.series());
    assert_eq!(one.result.final_state(), four.result.final_state());
    assert_eq!(one.result.final_state(), auto.result.final_state());
    // Per-node numerics are identical too, node by node (cost counters
    // are deterministic; wall times are not compared).
    assert_eq!(one.num_groups(), four.num_groups());
    for (a, b) in one.nodes.iter().zip(&four.nodes) {
        assert_eq!(a.group, b.group);
        assert_eq!(a.stats.substitution_pairs, b.stats.substitution_pairs);
        assert_eq!(a.stats.krylov_bases, b.stats.krylov_bases);
        assert_eq!(a.stats.krylov_dim_sum, b.stats.krylov_dim_sum);
        assert_eq!(a.stats.factorizations, b.stats.factorizations);
        assert_eq!(a.stats.refactorizations, b.stats.refactorizations);
    }
}

/// Every node factors at most twice (G, and C + γG for R-MATEX) no
/// matter how many transition spots it marches through — the paper's
/// zero-refactorization contract, per node. With the shared symbolic
/// analysis, those factorizations are numeric replays.
#[test]
fn per_node_factorization_budget() {
    let run = run_with(Some(2));
    assert!(run.num_groups() >= 5, "expected 4 features + supplies");
    for node in &run.nodes {
        assert!(
            node.stats.factorizations <= 2,
            "group {} performed {} factorizations",
            node.group,
            node.stats.factorizations
        );
        assert_eq!(
            node.stats.refactorizations, node.stats.factorizations,
            "group {} skipped the shared symbolic analysis",
            node.group
        );
    }
}

/// `emulated_transient` / `emulated_total` are the *maxima* over nodes
/// (Table 3's one-MATLAB-instance-per-node accounting), not sums.
#[test]
fn makespan_is_max_over_nodes() {
    let run = run_with(Some(1));
    let max_transient = run
        .nodes
        .iter()
        .map(|n| n.stats.transient_time)
        .max()
        .expect("nodes exist");
    let max_total = run
        .nodes
        .iter()
        .map(|n| n.stats.total_time())
        .max()
        .expect("nodes exist");
    assert_eq!(run.emulated_transient, max_transient);
    assert_eq!(run.emulated_total, max_total);
    // The makespan can never exceed the sum of node times.
    let sum_transient: std::time::Duration = run.nodes.iter().map(|n| n.stats.transient_time).sum();
    assert!(run.emulated_transient <= sum_transient);
}

/// The scheduler must hand every group its own LTS: nodes with more
/// transition spots do more Krylov generations, and the busiest node's
/// substitution count stays far below a 10 ps fixed-step baseline's.
#[test]
fn lts_accounting_per_node() {
    let run = run_with(Some(1));
    for node in &run.nodes {
        if node.num_lts == 0 {
            // Constant group: no Krylov generations required beyond reuse.
            continue;
        }
        assert!(
            node.stats.krylov_bases >= 1,
            "group {} has {} LTS but built no subspace",
            node.group,
            node.num_lts
        );
    }
    let busiest = run
        .nodes
        .iter()
        .map(|n| n.stats.substitution_pairs)
        .max()
        .unwrap();
    // 2 ns window at 10 ps TR steps would be 200 pairs.
    assert!(busiest < 200, "busiest node spent {busiest} pairs");
}

/// Calibration of the LPT cost proxy: schedule the *measured* wall times
/// (uncontended, `workers = 1` run) in the order the LTS-count proxy
/// dictates, and compare the makespan against scheduling the measured
/// costs in their own LPT order. Any list schedule is within
/// `2 − 1/workers` of optimal (Graham), and measured-LPT is ≥ optimal,
/// so the proxy-ordered makespan may exceed the measured-ordered one by
/// at most a factor of 2 — the proxy's demonstrable error bound.
#[test]
fn lts_proxy_makespan_within_list_scheduling_bound() {
    let run = run_with(Some(1));
    let walls: Vec<f64> = run
        .stats
        .groups
        .iter()
        .map(|g| g.wall.as_secs_f64())
        .collect();
    let lts: Vec<usize> = run.stats.groups.iter().map(|g| g.num_lts).collect();
    assert!(walls.iter().all(|&w| w >= 0.0));
    let proxy_order = lpt_order(&lts);
    // Measured costs in their own LPT order (descending wall time).
    let scaled: Vec<usize> = walls.iter().map(|&w| (w * 1e9) as usize).collect();
    let measured_order = lpt_order(&scaled);
    for workers in [2usize, 3, 4] {
        let proxy = list_schedule_makespan(&proxy_order, &walls, workers);
        let measured = list_schedule_makespan(&measured_order, &walls, workers);
        let bound = 2.0 - 1.0 / workers as f64;
        assert!(
            proxy <= measured * bound + 1e-12,
            "workers={workers}: proxy makespan {proxy:.3e}s breaks the \
             {bound:.2}x list-scheduling bound over {measured:.3e}s"
        );
    }
    // The proxy record itself is published per group.
    assert!(run.stats.proxy_max_error <= 1.0);
    assert_eq!(run.stats.groups.len(), run.num_groups());
}
