use std::fmt;

/// Errors from waveform construction.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WaveformError {
    /// Timing parameters were inconsistent (negative durations,
    /// non-monotone PWL times, discontinuous pulse, ...).
    InvalidTiming(String),
}

impl fmt::Display for WaveformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaveformError::InvalidTiming(msg) => write!(f, "invalid waveform timing: {msg}"),
        }
    }
}

impl std::error::Error for WaveformError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_reason() {
        let e = WaveformError::InvalidTiming("negative rise".into());
        assert!(e.to_string().contains("negative rise"));
    }
}
