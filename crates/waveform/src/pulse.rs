//! SPICE-style pulse waveforms.

use crate::WaveformError;

/// A SPICE `PULSE(v1 v2 td tr tw tf [period])` source waveform.
///
/// The waveform starts at `v1`, stays there until `t_delay`, ramps linearly
/// to `v2` over `t_rise`, holds for `t_width`, ramps back over `t_fall`,
/// and (optionally) repeats with period `t_period`. This is the "bump"
/// shape of the paper's Fig. 3 — the unit from which PDN current loads are
/// built and by which MATEX groups its subtasks.
///
/// # Example
///
/// ```
/// use matex_waveform::Pulse;
///
/// # fn main() -> Result<(), matex_waveform::WaveformError> {
/// let p = Pulse::new(0.0, 1e-3, 1e-10, 2e-11, 5e-11, 2e-11)?;
/// assert_eq!(p.value(0.0), 0.0);            // before delay
/// assert_eq!(p.value(1.4e-10), 1e-3);       // on the plateau
/// assert!(p.value(1.1e-10) > 0.0);          // mid-rise
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pulse {
    /// Initial (baseline) value.
    pub v1: f64,
    /// Pulsed (peak) value.
    pub v2: f64,
    /// Initial delay before the first rise, seconds.
    pub t_delay: f64,
    /// Rise time, seconds.
    pub t_rise: f64,
    /// Plateau width, seconds.
    pub t_width: f64,
    /// Fall time, seconds.
    pub t_fall: f64,
    /// Repetition period; `None` for a one-shot pulse.
    pub t_period: Option<f64>,
}

impl Pulse {
    /// Creates a one-shot pulse.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidTiming`] when any duration is
    /// negative, both ramps are zero-length *and* `v1 != v2` (a true
    /// discontinuity cannot be represented as piecewise linear), or a
    /// parameter is not finite.
    pub fn new(
        v1: f64,
        v2: f64,
        t_delay: f64,
        t_rise: f64,
        t_width: f64,
        t_fall: f64,
    ) -> Result<Self, WaveformError> {
        let p = Pulse {
            v1,
            v2,
            t_delay,
            t_rise,
            t_width,
            t_fall,
            t_period: None,
        };
        p.validate()?;
        Ok(p)
    }

    /// Creates a periodic pulse train.
    ///
    /// # Errors
    ///
    /// As [`Pulse::new`]; additionally the period must cover the whole
    /// active shape (`t_rise + t_width + t_fall ≤ t_period`).
    pub fn periodic(
        v1: f64,
        v2: f64,
        t_delay: f64,
        t_rise: f64,
        t_width: f64,
        t_fall: f64,
        t_period: f64,
    ) -> Result<Self, WaveformError> {
        let p = Pulse {
            v1,
            v2,
            t_delay,
            t_rise,
            t_width,
            t_fall,
            t_period: Some(t_period),
        };
        p.validate()?;
        Ok(p)
    }

    fn validate(&self) -> Result<(), WaveformError> {
        let all = [
            self.v1,
            self.v2,
            self.t_delay,
            self.t_rise,
            self.t_width,
            self.t_fall,
        ];
        if all.iter().any(|v| !v.is_finite()) {
            return Err(WaveformError::InvalidTiming(
                "pulse parameter is not finite".into(),
            ));
        }
        if self.t_delay < 0.0 || self.t_rise < 0.0 || self.t_width < 0.0 || self.t_fall < 0.0 {
            return Err(WaveformError::InvalidTiming(
                "pulse durations must be non-negative".into(),
            ));
        }
        if self.v1 != self.v2 && (self.t_rise == 0.0 || self.t_fall == 0.0) {
            return Err(WaveformError::InvalidTiming(
                "zero rise/fall with distinct levels is a discontinuity; use a small ramp".into(),
            ));
        }
        if let Some(per) = self.t_period {
            if !per.is_finite() || per <= 0.0 {
                return Err(WaveformError::InvalidTiming(
                    "pulse period must be positive".into(),
                ));
            }
            if self.t_rise + self.t_width + self.t_fall > per {
                return Err(WaveformError::InvalidTiming(
                    "pulse shape longer than its period".into(),
                ));
            }
        }
        Ok(())
    }

    /// Duration of one active bump (rise + width + fall).
    pub fn shape_duration(&self) -> f64 {
        self.t_rise + self.t_width + self.t_fall
    }

    /// Value at time `t` (seconds).
    pub fn value(&self, t: f64) -> f64 {
        if t < self.t_delay {
            return self.v1;
        }
        let mut tau = t - self.t_delay;
        if let Some(per) = self.t_period {
            tau %= per;
        }
        if tau < self.t_rise {
            return self.v1 + (self.v2 - self.v1) * (tau / self.t_rise);
        }
        let tau = tau - self.t_rise;
        if tau < self.t_width {
            return self.v2;
        }
        let tau = tau - self.t_width;
        if tau < self.t_fall {
            return self.v2 + (self.v1 - self.v2) * (tau / self.t_fall);
        }
        self.v1
    }

    /// Transition spots (slope breakpoints) within `[0, t_end]`, sorted.
    ///
    /// These are the *local transition spots* (LTS) the paper assigns to
    /// each subtask: `{td, td+tr, td+tr+tw, td+tr+tw+tf}` for every period
    /// instance that intersects the window.
    pub fn transition_spots(&self, t_end: f64) -> Vec<f64> {
        let mut out = Vec::new();
        if t_end <= 0.0 {
            return out;
        }
        let base = [
            0.0,
            self.t_rise,
            self.t_rise + self.t_width,
            self.t_rise + self.t_width + self.t_fall,
        ];
        let mut start = self.t_delay;
        loop {
            for &b in &base {
                let t = start + b;
                if t <= t_end && t >= 0.0 {
                    out.push(t);
                }
            }
            match self.t_period {
                Some(per) => {
                    start += per;
                    if start > t_end {
                        break;
                    }
                }
                None => break,
            }
        }
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite spots"));
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Pulse {
        Pulse::new(0.0, 2.0, 10.0, 2.0, 4.0, 2.0).unwrap()
    }

    #[test]
    fn value_piecewise() {
        let p = sample();
        assert_eq!(p.value(0.0), 0.0);
        assert_eq!(p.value(9.999), 0.0);
        assert_eq!(p.value(11.0), 1.0); // mid-rise
        assert_eq!(p.value(12.0), 2.0); // plateau start
        assert_eq!(p.value(14.0), 2.0);
        assert_eq!(p.value(17.0), 1.0); // mid-fall
        assert_eq!(p.value(18.0), 0.0);
        assert_eq!(p.value(100.0), 0.0);
    }

    #[test]
    fn transition_spots_one_shot() {
        let p = sample();
        assert_eq!(p.transition_spots(100.0), vec![10.0, 12.0, 16.0, 18.0]);
        // Window cuts the shape.
        assert_eq!(p.transition_spots(12.5), vec![10.0, 12.0]);
        assert!(p.transition_spots(0.0).is_empty());
    }

    #[test]
    fn periodic_repeats() {
        let p = Pulse::periodic(0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0).unwrap();
        assert_eq!(p.value(2.5), 1.0);
        assert_eq!(p.value(12.5), 1.0); // next period
        assert_eq!(p.value(6.0), 0.0);
        let spots = p.transition_spots(25.0);
        assert_eq!(
            spots,
            vec![1.0, 2.0, 3.0, 4.0, 11.0, 12.0, 13.0, 14.0, 21.0, 22.0, 23.0, 24.0]
        );
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Pulse::new(0.0, 1.0, -1.0, 1.0, 1.0, 1.0).is_err());
        assert!(Pulse::new(0.0, 1.0, 0.0, 0.0, 1.0, 1.0).is_err()); // discontinuous rise
        assert!(Pulse::periodic(0.0, 1.0, 0.0, 1.0, 5.0, 1.0, 3.0).is_err()); // shape > period
        assert!(Pulse::new(0.0, f64::NAN, 0.0, 1.0, 1.0, 1.0).is_err());
    }

    #[test]
    fn flat_pulse_with_zero_ramps_allowed() {
        // v1 == v2 makes zero ramps fine (it is a constant).
        let p = Pulse::new(3.0, 3.0, 0.0, 0.0, 1.0, 0.0).unwrap();
        assert_eq!(p.value(0.5), 3.0);
    }

    #[test]
    fn shape_duration_sums() {
        assert_eq!(sample().shape_duration(), 8.0);
    }
}
