//! The unified waveform type.

use crate::{Pulse, Pwl};

/// A source waveform: constant, pulse, or piecewise linear.
///
/// All MATEX solvers assume inputs are piecewise linear in time (the
/// paper's Eq. (5) integrates the convolution term analytically under this
/// assumption); every variant of this enum satisfies that.
///
/// # Example
///
/// ```
/// use matex_waveform::{Waveform, Pulse};
///
/// # fn main() -> Result<(), matex_waveform::WaveformError> {
/// let w = Waveform::Pulse(Pulse::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0)?);
/// assert_eq!(w.value(1.5), 0.5);
/// assert_eq!(w.transition_spots(10.0), vec![1.0, 2.0, 3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value for all time.
    Dc(f64),
    /// SPICE-style pulse (the PDN "bump" shape).
    Pulse(Pulse),
    /// Piecewise-linear breakpoints.
    Pwl(Pwl),
}

impl Waveform {
    /// Constant-zero waveform (used to mask sources out of a subtask).
    pub fn zero() -> Self {
        Waveform::Dc(0.0)
    }

    /// Value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.value(t),
            Waveform::Pwl(w) => w.value(t),
        }
    }

    /// Time points in `[0, t_end]` at which the slope changes, sorted.
    ///
    /// These are the waveform's *local transition spots* (LTS). A DC
    /// waveform has none.
    pub fn transition_spots(&self, t_end: f64) -> Vec<f64> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Pulse(p) => p.transition_spots(t_end),
            Waveform::Pwl(w) => w.transition_spots(t_end),
        }
    }

    /// `true` if the waveform is identically zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Waveform::Dc(v) => *v == 0.0,
            Waveform::Pulse(p) => p.v1 == 0.0 && p.v2 == 0.0,
            Waveform::Pwl(w) => w.points().iter().all(|&(_, v)| v == 0.0),
        }
    }

    /// `true` if the waveform never changes (no transition spots ever).
    pub fn is_constant(&self) -> bool {
        match self {
            Waveform::Dc(_) => true,
            Waveform::Pulse(p) => p.v1 == p.v2,
            Waveform::Pwl(w) => w.points().len() <= 1,
        }
    }

    /// The value the waveform holds at `t = 0⁻` (used for DC analysis).
    pub fn initial_value(&self) -> f64 {
        self.value(0.0)
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::zero()
    }
}

impl From<Pulse> for Waveform {
    fn from(p: Pulse) -> Self {
        Waveform::Pulse(p)
    }
}

impl From<Pwl> for Waveform {
    fn from(w: Pwl) -> Self {
        Waveform::Pwl(w)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_has_no_spots() {
        let w = Waveform::Dc(1.8);
        assert_eq!(w.value(0.0), 1.8);
        assert_eq!(w.value(1e9), 1.8);
        assert!(w.transition_spots(1.0).is_empty());
        assert!(w.is_constant());
        assert!(!w.is_zero());
    }

    #[test]
    fn zero_detection() {
        assert!(Waveform::zero().is_zero());
        assert!(Waveform::Pulse(Pulse::new(0.0, 0.0, 0.0, 0.0, 1.0, 0.0).unwrap()).is_zero());
        assert!(!Waveform::Dc(0.1).is_zero());
    }

    #[test]
    fn conversions() {
        let w: Waveform = 2.5.into();
        assert_eq!(w.value(0.0), 2.5);
        let p: Waveform = Pulse::new(0.0, 1.0, 0.0, 1.0, 1.0, 1.0).unwrap().into();
        assert!(matches!(p, Waveform::Pulse(_)));
        let l: Waveform = Pwl::new(vec![(0.0, 1.0)]).unwrap().into();
        assert!(matches!(l, Waveform::Pwl(_)));
    }

    #[test]
    fn default_is_zero() {
        assert!(Waveform::default().is_zero());
    }

    #[test]
    fn constant_pulse_detected() {
        let p = Pulse::new(1.0, 1.0, 0.0, 0.0, 1.0, 0.0).unwrap();
        assert!(Waveform::Pulse(p).is_constant());
    }
}
