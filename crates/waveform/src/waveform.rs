//! The unified waveform type.

use crate::{Fnv64, Pulse, Pwl, WaveformError};

/// A source waveform: constant, pulse, or piecewise linear.
///
/// All MATEX solvers assume inputs are piecewise linear in time (the
/// paper's Eq. (5) integrates the convolution term analytically under this
/// assumption); every variant of this enum satisfies that.
///
/// # Example
///
/// ```
/// use matex_waveform::{Waveform, Pulse};
///
/// # fn main() -> Result<(), matex_waveform::WaveformError> {
/// let w = Waveform::Pulse(Pulse::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0)?);
/// assert_eq!(w.value(1.5), 0.5);
/// assert_eq!(w.transition_spots(10.0), vec![1.0, 2.0, 3.0, 4.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Waveform {
    /// Constant value for all time.
    Dc(f64),
    /// SPICE-style pulse (the PDN "bump" shape).
    Pulse(Pulse),
    /// Piecewise-linear breakpoints.
    Pwl(Pwl),
}

impl Waveform {
    /// Constant-zero waveform (used to mask sources out of a subtask).
    pub fn zero() -> Self {
        Waveform::Dc(0.0)
    }

    /// Value at time `t`.
    pub fn value(&self, t: f64) -> f64 {
        match self {
            Waveform::Dc(v) => *v,
            Waveform::Pulse(p) => p.value(t),
            Waveform::Pwl(w) => w.value(t),
        }
    }

    /// Time points in `[0, t_end]` at which the slope changes, sorted.
    ///
    /// These are the waveform's *local transition spots* (LTS). A DC
    /// waveform has none.
    pub fn transition_spots(&self, t_end: f64) -> Vec<f64> {
        match self {
            Waveform::Dc(_) => Vec::new(),
            Waveform::Pulse(p) => p.transition_spots(t_end),
            Waveform::Pwl(w) => w.transition_spots(t_end),
        }
    }

    /// `true` if the waveform is identically zero.
    pub fn is_zero(&self) -> bool {
        match self {
            Waveform::Dc(v) => *v == 0.0,
            Waveform::Pulse(p) => p.v1 == 0.0 && p.v2 == 0.0,
            Waveform::Pwl(w) => w.points().iter().all(|&(_, v)| v == 0.0),
        }
    }

    /// `true` if the waveform never changes (no transition spots ever).
    pub fn is_constant(&self) -> bool {
        match self {
            Waveform::Dc(_) => true,
            Waveform::Pulse(p) => p.v1 == p.v2,
            Waveform::Pwl(w) => w.points().len() <= 1,
        }
    }

    /// The value the waveform holds at `t = 0⁻` (used for DC analysis).
    pub fn initial_value(&self) -> f64 {
        self.value(0.0)
    }

    /// The waveform scaled by `k` in value: `w'(t) = k · w(t)`.
    ///
    /// Timing (and therefore every transition spot) is unchanged, which
    /// is what makes scaled-source scenarios structure-preserving: a
    /// scenario engine can replay the same grouping and factorization
    /// artifacts under any load scaling.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidTiming`] when `k` is not finite
    /// (the scaled levels re-validate through the variant constructors).
    pub fn scaled(&self, k: f64) -> Result<Waveform, WaveformError> {
        if !k.is_finite() {
            return Err(WaveformError::InvalidTiming(format!(
                "source scale {k} is not finite"
            )));
        }
        Ok(match self {
            Waveform::Dc(v) => {
                let scaled = v * k;
                if !scaled.is_finite() {
                    return Err(WaveformError::InvalidTiming(format!(
                        "scaled DC level {scaled} is not finite"
                    )));
                }
                Waveform::Dc(scaled)
            }
            Waveform::Pulse(p) => {
                // Through the validating constructors: a product that
                // overflows fails here, at the override boundary, not
                // as an Inf deep inside a solver run.
                let scaled = match p.t_period {
                    None => {
                        Pulse::new(p.v1 * k, p.v2 * k, p.t_delay, p.t_rise, p.t_width, p.t_fall)?
                    }
                    Some(per) => Pulse::periodic(
                        p.v1 * k,
                        p.v2 * k,
                        p.t_delay,
                        p.t_rise,
                        p.t_width,
                        p.t_fall,
                        per,
                    )?,
                };
                Waveform::Pulse(scaled)
            }
            Waveform::Pwl(w) => Waveform::Pwl(Pwl::new(
                w.points().iter().map(|&(t, v)| (t, v * k)).collect(),
            )?),
        })
    }

    /// Feeds the waveform's identity — variant tag plus every parameter's
    /// bit pattern — into a fingerprint hasher. Two waveforms fingerprint
    /// equal iff they evaluate bitwise-identically at every time.
    pub fn fingerprint(&self, h: &mut Fnv64) {
        match self {
            Waveform::Dc(v) => {
                h.write_u8(0);
                h.write_f64(*v);
            }
            Waveform::Pulse(p) => {
                h.write_u8(1);
                h.write_f64(p.v1);
                h.write_f64(p.v2);
                h.write_f64(p.t_delay);
                h.write_f64(p.t_rise);
                h.write_f64(p.t_width);
                h.write_f64(p.t_fall);
                match p.t_period {
                    None => h.write_u8(0),
                    Some(per) => {
                        h.write_u8(1);
                        h.write_f64(per);
                    }
                }
            }
            Waveform::Pwl(w) => {
                h.write_u8(2);
                h.write_usize(w.points().len());
                for &(t, v) in w.points() {
                    h.write_f64(t);
                    h.write_f64(v);
                }
            }
        }
    }
}

impl Default for Waveform {
    fn default() -> Self {
        Waveform::zero()
    }
}

impl From<Pulse> for Waveform {
    fn from(p: Pulse) -> Self {
        Waveform::Pulse(p)
    }
}

impl From<Pwl> for Waveform {
    fn from(w: Pwl) -> Self {
        Waveform::Pwl(w)
    }
}

impl From<f64> for Waveform {
    fn from(v: f64) -> Self {
        Waveform::Dc(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_has_no_spots() {
        let w = Waveform::Dc(1.8);
        assert_eq!(w.value(0.0), 1.8);
        assert_eq!(w.value(1e9), 1.8);
        assert!(w.transition_spots(1.0).is_empty());
        assert!(w.is_constant());
        assert!(!w.is_zero());
    }

    #[test]
    fn zero_detection() {
        assert!(Waveform::zero().is_zero());
        assert!(Waveform::Pulse(Pulse::new(0.0, 0.0, 0.0, 0.0, 1.0, 0.0).unwrap()).is_zero());
        assert!(!Waveform::Dc(0.1).is_zero());
    }

    #[test]
    fn conversions() {
        let w: Waveform = 2.5.into();
        assert_eq!(w.value(0.0), 2.5);
        let p: Waveform = Pulse::new(0.0, 1.0, 0.0, 1.0, 1.0, 1.0).unwrap().into();
        assert!(matches!(p, Waveform::Pulse(_)));
        let l: Waveform = Pwl::new(vec![(0.0, 1.0)]).unwrap().into();
        assert!(matches!(l, Waveform::Pwl(_)));
    }

    #[test]
    fn default_is_zero() {
        assert!(Waveform::default().is_zero());
    }

    #[test]
    fn constant_pulse_detected() {
        let p = Pulse::new(1.0, 1.0, 0.0, 0.0, 1.0, 0.0).unwrap();
        assert!(Waveform::Pulse(p).is_constant());
    }

    #[test]
    fn scaling_preserves_timing_and_scales_values() {
        let p = Waveform::Pulse(Pulse::new(0.0, 2.0, 1.0, 1.0, 2.0, 1.0).unwrap());
        let s = p.scaled(0.5).unwrap();
        assert_eq!(s.transition_spots(10.0), p.transition_spots(10.0));
        assert_eq!(s.value(2.5), 0.5 * p.value(2.5));
        let w = Waveform::Pwl(Pwl::new(vec![(0.0, 1.0), (1.0, -2.0)]).unwrap());
        assert_eq!(w.scaled(3.0).unwrap().value(1.0), -6.0);
        assert_eq!(Waveform::Dc(2.0).scaled(-1.0).unwrap().value(0.0), -2.0);
        assert!(p.scaled(f64::NAN).is_err());
        // Scaling to zero flattens the pulse without a validation trip
        // (v1 == v2 == 0 permits the zero-length ramps).
        assert!(p.scaled(0.0).unwrap().is_zero());
    }

    #[test]
    fn fingerprint_separates_waveforms() {
        let fp = |w: &Waveform| {
            let mut h = crate::Fnv64::new();
            w.fingerprint(&mut h);
            h.finish()
        };
        let p = Waveform::Pulse(Pulse::new(0.0, 2.0, 1.0, 1.0, 2.0, 1.0).unwrap());
        assert_eq!(fp(&p), fp(&p.clone()));
        assert_ne!(fp(&p), fp(&p.scaled(2.0).unwrap()));
        assert_ne!(fp(&Waveform::Dc(1.0)), fp(&Waveform::Dc(2.0)));
        // A periodic pulse must not collide with its one-shot shape.
        let per = Waveform::Pulse(Pulse::periodic(0.0, 2.0, 1.0, 1.0, 2.0, 1.0, 10.0).unwrap());
        assert_ne!(fp(&p), fp(&per));
    }
}
