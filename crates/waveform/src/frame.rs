//! Binary waveform stream frames (wire protocol v2).
//!
//! Protocol v1 streams waveform chunks as JSON text lines; the `{v:e}`
//! float formatting round-trips every `f64` bit pattern but costs ~3x
//! the bytes of the raw values. A [`WaveFrame`] is the shared frame
//! model for both encodings, and this module's binary codec is the v2
//! alternative a client negotiates with the `hello` handshake:
//! a little-endian length prefix followed by a fixed header and the raw
//! `f64` bit patterns of the chunk.
//!
//! Frames deliberately carry no job id (matching the v1 JSON frames),
//! so two clients streaming the same waveform can compare frame hashes
//! byte for byte. [`WaveFrame::content_hash`] feeds the *decoded*
//! content — header fields and value bits — into an [`Fnv64`], so the
//! hash is a pure function of the waveform chunk, identical across the
//! JSON and binary encodings.
//!
//! ```text
//! [payload_len: u64 LE]
//!   [frame: u64] [start: u64] [rows: u64] [count: u64]
//!   [times: count × f64 LE]
//!   [series: rows × count × f64 LE]
//! ```
//!
//! # Example
//!
//! ```
//! use matex_waveform::WaveFrame;
//!
//! let frame = WaveFrame {
//!     frame: 0,
//!     start: 0,
//!     times: vec![0.0, 1e-11],
//!     series: vec![vec![1.5, 2.5], vec![-0.5, 0.25]],
//! };
//! let bytes = frame.encode();
//! let (len, rest) = WaveFrame::decode_len(&bytes[..8]).unwrap();
//! assert_eq!(rest, 0);
//! let back = WaveFrame::decode_payload(&bytes[8..8 + len]).unwrap();
//! assert_eq!(back.content_hash(), frame.content_hash());
//! ```

use crate::Fnv64;

/// A frame decode failure (truncated or inconsistent bytes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameError(pub String);

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "frame decode error: {}", self.0)
    }
}

impl std::error::Error for FrameError {}

/// One streamed waveform chunk: `count` output points starting at
/// global point index `start`, for `rows` observed nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct WaveFrame {
    /// Frame index within the stream (0-based).
    pub frame: u64,
    /// Global index of the first point in this chunk.
    pub start: u64,
    /// Output times of the chunk (`count` entries).
    pub times: Vec<f64>,
    /// Per-row values, `rows × count`.
    pub series: Vec<Vec<f64>>,
}

impl WaveFrame {
    /// Points in this chunk.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Observed rows in this chunk.
    pub fn rows(&self) -> usize {
        self.series.len()
    }

    /// Encodes the frame as one length-prefixed binary record.
    pub fn encode(&self) -> Vec<u8> {
        let (rows, count) = (self.rows(), self.count());
        let payload_len = 8 * 4 + 8 * count + 8 * rows * count;
        let mut out = Vec::with_capacity(8 + payload_len);
        out.extend_from_slice(&(payload_len as u64).to_le_bytes());
        out.extend_from_slice(&self.frame.to_le_bytes());
        out.extend_from_slice(&self.start.to_le_bytes());
        out.extend_from_slice(&(rows as u64).to_le_bytes());
        out.extend_from_slice(&(count as u64).to_le_bytes());
        for &t in &self.times {
            out.extend_from_slice(&t.to_bits().to_le_bytes());
        }
        for row in &self.series {
            debug_assert_eq!(row.len(), count, "ragged frame row");
            for &v in row {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        out
    }

    /// Reads the 8-byte length prefix, returning the payload length and
    /// the leftover byte count of the input (0 when exactly a prefix was
    /// passed).
    ///
    /// # Errors
    ///
    /// [`FrameError`] when fewer than 8 bytes are available or the
    /// length is implausibly large (> 1 GiB — a corrupt prefix must not
    /// trigger a giant read).
    pub fn decode_len(buf: &[u8]) -> Result<(usize, usize), FrameError> {
        if buf.len() < 8 {
            return Err(FrameError("length prefix truncated".into()));
        }
        let len = u64::from_le_bytes(buf[..8].try_into().expect("8 bytes"));
        if len > 1 << 30 {
            return Err(FrameError(format!("implausible frame length {len}")));
        }
        Ok((len as usize, buf.len() - 8))
    }

    /// Decodes a frame payload (the bytes *after* the length prefix).
    ///
    /// # Errors
    ///
    /// [`FrameError`] when the payload size disagrees with its header.
    pub fn decode_payload(buf: &[u8]) -> Result<WaveFrame, FrameError> {
        if buf.len() < 32 {
            return Err(FrameError("frame header truncated".into()));
        }
        let u64_at =
            |i: usize| u64::from_le_bytes(buf[8 * i..8 * i + 8].try_into().expect("8 bytes"));
        let frame = u64_at(0);
        let start = u64_at(1);
        let rows = u64_at(2) as usize;
        let count = u64_at(3) as usize;
        let expect = 8 * (4 + count + rows.checked_mul(count).unwrap_or(usize::MAX / 16));
        if buf.len() != expect {
            return Err(FrameError(format!(
                "frame payload is {} bytes, header promises {expect}",
                buf.len()
            )));
        }
        let f64_at = |i: usize| f64::from_bits(u64_at(i));
        let times: Vec<f64> = (4..4 + count).map(f64_at).collect();
        let series: Vec<Vec<f64>> = (0..rows)
            .map(|r| {
                let base = 4 + count + r * count;
                (base..base + count).map(f64_at).collect()
            })
            .collect();
        Ok(WaveFrame {
            frame,
            start,
            times,
            series,
        })
    }

    /// The canonical FNV-1a content hash of the decoded frame: header
    /// fields, then time and value bit patterns. Both wire encodings of
    /// one chunk hash identically.
    pub fn content_hash(&self) -> u64 {
        let mut h = Fnv64::new();
        self.feed(&mut h);
        h.finish()
    }

    /// Feeds the canonical content into an existing hasher (for
    /// stream-wide running hashes).
    pub fn feed(&self, h: &mut Fnv64) {
        h.write_u64(self.frame);
        h.write_u64(self.start);
        h.write_usize(self.rows());
        h.write_usize(self.count());
        h.write_f64s(&self.times);
        for row in &self.series {
            h.write_f64s(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WaveFrame {
        WaveFrame {
            frame: 3,
            start: 96,
            times: vec![0.0, -0.0, 1.5e-10],
            series: vec![vec![1.0, 2.0, 3.0], vec![-1.0, f64::MIN_POSITIVE, 0.25]],
        }
    }

    #[test]
    fn encode_decode_round_trips_bitwise() {
        let f = sample();
        let bytes = f.encode();
        let (len, _) = WaveFrame::decode_len(&bytes[..8]).unwrap();
        assert_eq!(8 + len, bytes.len());
        let back = WaveFrame::decode_payload(&bytes[8..]).unwrap();
        assert_eq!(back.frame, f.frame);
        assert_eq!(back.start, f.start);
        assert!(back
            .times
            .iter()
            .zip(&f.times)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
        for (br, fr) in back.series.iter().zip(&f.series) {
            assert!(br.iter().zip(fr).all(|(a, b)| a.to_bits() == b.to_bits()));
        }
        assert_eq!(back.content_hash(), f.content_hash());
    }

    #[test]
    fn binary_is_at_least_2x_smaller_than_json_e_format() {
        // The acceptance criterion in miniature: the `{v:e}` text form
        // of a typical waveform chunk is ≥ 2x the binary bytes.
        let f = WaveFrame {
            frame: 0,
            start: 0,
            times: (0..32).map(|i| i as f64 * 2.4e-11).collect(),
            // Full-precision doubles, as a solve produces them — not
            // short decimal literals that happen to format compactly.
            series: vec![
                (0..32)
                    .map(|i| 1.8 * (0.3 + i as f64 * 0.07).sin())
                    .collect();
                4
            ],
        };
        let binary = f.encode().len();
        let mut json = String::from("{\"ok\": true, \"frame\": 0, \"start\": 0, \"times\": [");
        for t in &f.times {
            json.push_str(&format!("{t:e},"));
        }
        json.push_str("], \"series\": [");
        for row in &f.series {
            json.push('[');
            for v in row {
                json.push_str(&format!("{v:e},"));
            }
            json.push_str("],");
        }
        json.push_str("]}");
        assert!(
            json.len() >= 2 * binary,
            "json {} vs binary {binary}",
            json.len()
        );
    }

    #[test]
    fn truncation_and_size_lies_are_errors() {
        let bytes = sample().encode();
        assert!(WaveFrame::decode_len(&bytes[..4]).is_err());
        assert!(WaveFrame::decode_payload(&bytes[8..bytes.len() - 1]).is_err());
        assert!(WaveFrame::decode_payload(&bytes[8..16]).is_err());
        // An absurd length prefix is rejected before any read.
        let huge = (u64::MAX / 2).to_le_bytes();
        assert!(WaveFrame::decode_len(&huge).is_err());
    }

    #[test]
    fn content_hash_is_encoding_independent_but_content_sensitive() {
        let f = sample();
        let same = WaveFrame::decode_payload(&f.encode()[8..]).unwrap();
        assert_eq!(f.content_hash(), same.content_hash());
        let mut other = f.clone();
        other.series[1][2] = 0.250000001;
        assert_ne!(f.content_hash(), other.content_hash());
        let mut moved = f.clone();
        moved.start += 1;
        assert_ne!(f.content_hash(), moved.content_hash());
    }
}
