//! Deterministic 64-bit fingerprinting for scenario caches.
//!
//! The service layer (`matex-serve`) keys its reusable artifacts —
//! symbolic analyses, numeric factorizations, DC solutions, group
//! schedules — by content fingerprints of the structures they were
//! derived from. [`Fnv64`] is the shared hasher: FNV-1a over explicit
//! byte feeds, so a fingerprint is a pure function of the fed data
//! (process- and platform-independent), unlike `std`'s randomized
//! `HashMap` hashing.

/// An FNV-1a 64-bit streaming hasher.
///
/// # Example
///
/// ```
/// use matex_waveform::Fnv64;
///
/// let mut a = Fnv64::new();
/// a.write_f64(1.5);
/// a.write_u64(7);
/// let mut b = Fnv64::new();
/// b.write_f64(1.5);
/// b.write_u64(7);
/// assert_eq!(a.finish(), b.finish());
/// ```
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x100_0000_01b3;

    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(Self::OFFSET)
    }

    /// Feeds raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
    }

    /// Feeds one byte (tag bytes for enum variants).
    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    /// Feeds a `u64` (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` (widened to 64 bits first).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern, so `-0.0` and `0.0`
    /// fingerprint differently and NaN payloads are preserved — the
    /// fingerprint distinguishes exactly what bitwise replay
    /// distinguishes.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feeds a whole `f64` slice (length-prefixed).
    pub fn write_f64s(&mut self, vs: &[f64]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_f64(v);
        }
    }

    /// Feeds a whole `usize` slice (length-prefixed).
    pub fn write_usizes(&mut self, vs: &[usize]) {
        self.write_usize(vs.len());
        for &v in vs {
            self.write_usize(v);
        }
    }

    /// The accumulated 64-bit fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_order_sensitive() {
        let mut a = Fnv64::new();
        a.write_u64(1);
        a.write_u64(2);
        let mut b = Fnv64::new();
        b.write_u64(2);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
        let mut c = Fnv64::new();
        c.write_u64(1);
        c.write_u64(2);
        assert_eq!(a.finish(), c.finish());
    }

    #[test]
    fn empty_is_offset_basis() {
        assert_eq!(Fnv64::new().finish(), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn float_bits_distinguish_signed_zero() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn slices_are_length_prefixed() {
        // [1.0] ++ [] must differ from [] ++ [1.0].
        let mut a = Fnv64::new();
        a.write_f64s(&[1.0]);
        a.write_f64s(&[]);
        let mut b = Fnv64::new();
        b.write_f64s(&[]);
        b.write_f64s(&[1.0]);
        assert_ne!(a.finish(), b.finish());
    }
}
