//! Transition-spot sets: LTS, GTS, snapshots.
//!
//! The paper's decomposition vocabulary (Sec. 3.1):
//!
//! * **LTS** (local transition spots) — the slope breakpoints of one input
//!   source (or one group of sources),
//! * **GTS** (global transition spots) — the union of all LTS,
//! * **snapshots** — `GTS \ LTS_k`: the points where subtask `k` must
//!   evaluate its solution (for later superposition) but may *reuse* the
//!   Krylov subspace generated at its most recent LTS.

/// A sorted, deduplicated set of time points.
///
/// Duplicate detection uses a relative tolerance because the spots come
/// from floating-point arithmetic on waveform parameters.
///
/// # Example
///
/// ```
/// use matex_waveform::SpotSet;
///
/// let a = SpotSet::from_times(vec![0.0, 1e-9, 2e-9]);
/// let b = SpotSet::from_times(vec![1e-9, 3e-9]);
/// let gts = SpotSet::union(&[a.clone(), b.clone()]);
/// assert_eq!(gts.len(), 4);
/// let snap = gts.difference(&a);
/// assert_eq!(snap.as_slice(), &[3e-9]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SpotSet {
    times: Vec<f64>,
}

/// Relative tolerance used to consider two spots identical.
const REL_TOL: f64 = 1e-9;

fn same_spot(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs());
    (a - b).abs() <= REL_TOL * scale
}

impl SpotSet {
    /// An empty spot set.
    pub fn new() -> Self {
        SpotSet { times: Vec::new() }
    }

    /// Builds a set from arbitrary times (sorted and deduplicated).
    ///
    /// Non-finite values are discarded.
    pub fn from_times(mut times: Vec<f64>) -> Self {
        times.retain(|t| t.is_finite());
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        times.dedup_by(|a, b| same_spot(*a, *b));
        SpotSet { times }
    }

    /// Number of spots.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// `true` when there are no spots.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// The sorted spots.
    pub fn as_slice(&self) -> &[f64] {
        &self.times
    }

    /// Iterator over spots.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.times.iter()
    }

    /// `true` if `t` is in the set (within tolerance).
    pub fn contains(&self, t: f64) -> bool {
        self.position(t).is_some()
    }

    /// Index of `t` in the set, if present (within tolerance).
    pub fn position(&self, t: f64) -> Option<usize> {
        match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => Some(i),
            Err(i) => {
                if i < self.times.len() && same_spot(self.times[i], t) {
                    Some(i)
                } else if i > 0 && same_spot(self.times[i - 1], t) {
                    Some(i - 1)
                } else {
                    None
                }
            }
        }
    }

    /// The smallest spot strictly greater than `t`, if any.
    ///
    /// This is the paper's "maximum allowed step": from time `t` a MATEX
    /// node may step at most to `next_after(t)`.
    pub fn next_after(&self, t: f64) -> Option<f64> {
        let idx = match self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
        {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        // Skip spots equal to t within tolerance.
        let mut k = idx;
        while k < self.times.len() && same_spot(self.times[k], t) {
            k += 1;
        }
        self.times.get(k).copied()
    }

    /// Union of several spot sets.
    pub fn union(sets: &[SpotSet]) -> SpotSet {
        let mut all: Vec<f64> = sets.iter().flat_map(|s| s.times.iter().copied()).collect();
        all.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        all.dedup_by(|a, b| same_spot(*a, *b));
        SpotSet { times: all }
    }

    /// Spots of `self` that are *not* in `other` — the snapshot set
    /// `self \ other`.
    pub fn difference(&self, other: &SpotSet) -> SpotSet {
        SpotSet {
            times: self
                .times
                .iter()
                .copied()
                .filter(|&t| !other.contains(t))
                .collect(),
        }
    }

    /// Restricts to the window `[t0, t1]`.
    pub fn clip(&self, t0: f64, t1: f64) -> SpotSet {
        SpotSet {
            times: self
                .times
                .iter()
                .copied()
                .filter(|&t| t >= t0 && t <= t1)
                .collect(),
        }
    }

    /// Inserts a spot (keeping order, ignoring near-duplicates).
    pub fn insert(&mut self, t: f64) {
        if !t.is_finite() || self.contains(t) {
            return;
        }
        let idx = self
            .times
            .binary_search_by(|x| x.partial_cmp(&t).expect("finite"))
            .unwrap_err();
        self.times.insert(idx, t);
    }
}

impl FromIterator<f64> for SpotSet {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        SpotSet::from_times(iter.into_iter().collect())
    }
}

impl<'a> IntoIterator for &'a SpotSet {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.times.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_times_sorts_and_dedups() {
        let s = SpotSet::from_times(vec![3.0, 1.0, 2.0, 1.0 + 1e-12]);
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn union_is_gts() {
        let a = SpotSet::from_times(vec![1.0, 2.0]);
        let b = SpotSet::from_times(vec![2.0, 3.0]);
        let c = SpotSet::from_times(vec![0.5]);
        let u = SpotSet::union(&[a, b, c]);
        assert_eq!(u.as_slice(), &[0.5, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn difference_is_snapshot() {
        let gts = SpotSet::from_times(vec![0.5, 1.0, 2.0, 3.0]);
        let lts = SpotSet::from_times(vec![1.0, 3.0]);
        assert_eq!(gts.difference(&lts).as_slice(), &[0.5, 2.0]);
    }

    #[test]
    fn next_after_steps_forward() {
        let s = SpotSet::from_times(vec![1.0, 2.0, 3.0]);
        assert_eq!(s.next_after(0.0), Some(1.0));
        assert_eq!(s.next_after(1.0), Some(2.0));
        assert_eq!(s.next_after(2.5), Some(3.0));
        assert_eq!(s.next_after(3.0), None);
        // Tolerance: a point epsilon below 1.0 still advances past it.
        assert_eq!(s.next_after(1.0 - 1e-13), Some(2.0));
    }

    #[test]
    fn contains_with_tolerance() {
        let s = SpotSet::from_times(vec![1e-9]);
        assert!(s.contains(1e-9 * (1.0 + 1e-12)));
        assert!(!s.contains(1.0001e-9));
    }

    #[test]
    fn clip_window() {
        let s = SpotSet::from_times(vec![0.0, 1.0, 2.0, 3.0]);
        assert_eq!(s.clip(0.5, 2.5).as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn insert_keeps_invariants() {
        let mut s = SpotSet::from_times(vec![1.0, 3.0]);
        s.insert(2.0);
        s.insert(2.0); // duplicate ignored
        s.insert(f64::NAN); // ignored
        assert_eq!(s.as_slice(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn non_finite_inputs_discarded() {
        let s = SpotSet::from_times(vec![f64::INFINITY, 1.0, f64::NAN]);
        assert_eq!(s.as_slice(), &[1.0]);
    }
}
