//! Source waveforms and input-transition analysis for MATEX.
//!
//! A power distribution network is driven by thousands of current sources
//! with pulse-like ("bump") waveforms plus a handful of DC supplies. MATEX's
//! distributed decomposition (paper Sec. 3) is entirely a statement about
//! these inputs:
//!
//! * each waveform contributes *local transition spots* ([`Waveform::transition_spots`]),
//! * their union is the *global transition spots* set,
//! * sources sharing a timing shape ([`FeatureKey`]) are grouped into one
//!   subtask ([`group_sources`]), whose snapshot points
//!   ([`Grouping::snapshots`]) can reuse Krylov subspaces.
//!
//! # Example
//!
//! ```
//! use matex_waveform::{group_sources, GroupingStrategy, Pulse, Waveform};
//!
//! # fn main() -> Result<(), matex_waveform::WaveformError> {
//! // Three loads, two distinct bump shapes (paper Fig. 3 in miniature).
//! let early = Pulse::new(0.0, 1e-3, 1e-10, 2e-11, 4e-11, 2e-11)?;
//! let late = Pulse::new(0.0, 2e-3, 5e-10, 2e-11, 4e-11, 2e-11)?;
//! let sources = vec![
//!     Waveform::Pulse(early),
//!     Waveform::Pulse(late),
//!     Waveform::Pulse(early), // same shape as #0
//! ];
//! let grouping = group_sources(&sources, 1e-9, GroupingStrategy::ByBumpFeature);
//! assert_eq!(grouping.num_groups(), 3); // constants + 2 shapes
//! assert_eq!(grouping.gts.len(), 8);    // 4 spots per distinct shape
//! # Ok(())
//! # }
//! ```

mod error;
mod features;
mod fingerprint;
mod frame;
mod grouping;
mod pulse;
mod pwl;
mod spots;
mod waveform;

pub use error::WaveformError;
pub use features::FeatureKey;
pub use fingerprint::Fnv64;
pub use frame::{FrameError, WaveFrame};
pub use grouping::{group_sources, Grouping, GroupingStrategy, SourceGroup};
pub use pulse::Pulse;
pub use pwl::Pwl;
pub use spots::SpotSet;
pub use waveform::Waveform;
