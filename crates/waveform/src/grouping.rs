//! Source grouping: partitioning inputs into MATEX subtasks.

use crate::{FeatureKey, SpotSet, Waveform};
use std::collections::HashMap;

/// How to partition input sources into subtasks (paper Sec. 3.1–3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum GroupingStrategy {
    /// Group sources sharing a bump feature (the paper's default): every
    /// group's members have identical transition spots.
    #[default]
    ByBumpFeature,
    /// One group per (non-constant) source — the paper's first, less
    /// aggressive decomposition.
    BySource,
    /// No decomposition: all sources in a single group (single-node MATEX).
    Single,
    /// Feature grouping, then balanced merging down to at most this many
    /// groups (models a bounded cluster).
    MaxGroups(usize),
}

/// One subtask's share of the input sources.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceGroup {
    /// Group index (0-based; group 0 carries all constant sources).
    pub id: usize,
    /// Indices into the original source list.
    pub members: Vec<usize>,
    /// Union of the members' transition spots — this subtask's LTS.
    pub lts: SpotSet,
}

impl SourceGroup {
    /// Number of member sources.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the group has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

/// Result of grouping: the groups plus the global transition spots.
#[derive(Debug, Clone, PartialEq)]
pub struct Grouping {
    /// The subtask groups. Group 0 always exists and holds every source
    /// with no transitions (DC supplies, constant loads); it may be empty.
    pub groups: Vec<SourceGroup>,
    /// Global transition spots: union of all LTS.
    pub gts: SpotSet,
}

impl Grouping {
    /// Number of groups (including the constant group 0).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Snapshot set of group `k`: `GTS \ LTS_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn snapshots(&self, k: usize) -> SpotSet {
        self.gts.difference(&self.groups[k].lts)
    }
}

/// Partitions sources into groups under the given strategy.
///
/// `waveforms[i]` is the waveform of source `i`; spots are collected over
/// the window `[0, t_end]`.
///
/// # Example
///
/// ```
/// use matex_waveform::{group_sources, GroupingStrategy, Pulse, Waveform};
///
/// # fn main() -> Result<(), matex_waveform::WaveformError> {
/// let shape_a = Pulse::new(0.0, 1.0, 1e-10, 1e-11, 1e-11, 1e-11)?;
/// let shape_b = Pulse::new(0.0, 2.0, 3e-10, 1e-11, 1e-11, 1e-11)?;
/// let sources = vec![
///     Waveform::Dc(1.0),          // supply -> group 0
///     Waveform::Pulse(shape_a),   // group 1
///     Waveform::Pulse(shape_a),   // group 1 (same feature)
///     Waveform::Pulse(shape_b),   // group 2
/// ];
/// let g = group_sources(&sources, 1e-9, GroupingStrategy::ByBumpFeature);
/// assert_eq!(g.num_groups(), 3);
/// assert_eq!(g.groups[1].members, vec![1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn group_sources(waveforms: &[Waveform], t_end: f64, strategy: GroupingStrategy) -> Grouping {
    let lts_of = |idx: &[usize]| -> SpotSet {
        SpotSet::union(
            &idx.iter()
                .map(|&i| SpotSet::from_times(waveforms[i].transition_spots(t_end)))
                .collect::<Vec<_>>(),
        )
    };

    // Split constant sources (no transitions in window) from active ones.
    let mut constant: Vec<usize> = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for (i, w) in waveforms.iter().enumerate() {
        if w.transition_spots(t_end).is_empty() {
            constant.push(i);
        } else {
            active.push(i);
        }
    }

    let mut member_sets: Vec<Vec<usize>> = match strategy {
        GroupingStrategy::Single => {
            if active.is_empty() {
                Vec::new()
            } else {
                vec![active]
            }
        }
        GroupingStrategy::BySource => active.into_iter().map(|i| vec![i]).collect(),
        GroupingStrategy::ByBumpFeature => by_feature(waveforms, &active),
        GroupingStrategy::MaxGroups(k) => {
            let by_feat = by_feature(waveforms, &active);
            merge_balanced(by_feat, k.max(1), waveforms, t_end)
        }
    };

    // Deterministic order: by smallest member index.
    member_sets.sort_by_key(|m| m.first().copied().unwrap_or(usize::MAX));

    let mut groups = Vec::with_capacity(member_sets.len() + 1);
    groups.push(SourceGroup {
        id: 0,
        members: constant,
        lts: SpotSet::new(),
    });
    for members in member_sets {
        let lts = lts_of(&members);
        groups.push(SourceGroup {
            id: groups.len(),
            members,
            lts,
        });
    }
    let gts = SpotSet::union(&groups.iter().map(|g| g.lts.clone()).collect::<Vec<_>>());
    Grouping { groups, gts }
}

/// Groups active sources by their feature key.
fn by_feature(waveforms: &[Waveform], active: &[usize]) -> Vec<Vec<usize>> {
    let mut map: HashMap<FeatureKey, Vec<usize>> = HashMap::new();
    for &i in active {
        map.entry(FeatureKey::of(&waveforms[i]))
            .or_default()
            .push(i);
    }
    let mut sets: Vec<Vec<usize>> = map.into_values().collect();
    sets.sort_by_key(|m| m.first().copied().unwrap_or(usize::MAX));
    sets
}

/// Greedy balanced merge of feature groups into at most `k` bins,
/// minimizing the largest per-bin LTS count (the quantity that drives each
/// node's Krylov-subspace generations).
fn merge_balanced(
    sets: Vec<Vec<usize>>,
    k: usize,
    waveforms: &[Waveform],
    t_end: f64,
) -> Vec<Vec<usize>> {
    if sets.len() <= k {
        return sets;
    }
    // Weigh each feature group by its LTS count.
    let mut weighted: Vec<(usize, Vec<usize>)> = sets
        .into_iter()
        .map(|m| {
            let w = SpotSet::union(
                &m.iter()
                    .map(|&i| SpotSet::from_times(waveforms[i].transition_spots(t_end)))
                    .collect::<Vec<_>>(),
            )
            .len();
            (w, m)
        })
        .collect();
    // Largest first into the currently lightest bin.
    weighted.sort_by_key(|&(w, _)| std::cmp::Reverse(w));
    let mut bins: Vec<(usize, Vec<usize>)> = vec![(0, Vec::new()); k];
    for (w, mut m) in weighted {
        let lightest = bins
            .iter_mut()
            .min_by_key(|(bw, _)| *bw)
            .expect("k >= 1 bins");
        lightest.0 += w;
        lightest.1.append(&mut m);
    }
    bins.into_iter()
        .map(|(_, mut m)| {
            m.sort_unstable();
            m
        })
        .filter(|m| !m.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Pulse;

    fn pulse(delay: f64) -> Waveform {
        Waveform::Pulse(Pulse::new(0.0, 1.0, delay, 1.0, 1.0, 1.0).unwrap())
    }

    #[test]
    fn feature_grouping_merges_identical_shapes() {
        let src = vec![pulse(1.0), pulse(2.0), pulse(1.0), Waveform::Dc(5.0)];
        let g = group_sources(&src, 100.0, GroupingStrategy::ByBumpFeature);
        // group 0 = constants, then {0, 2}, {1}
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.groups[0].members, vec![3]);
        assert_eq!(g.groups[1].members, vec![0, 2]);
        assert_eq!(g.groups[2].members, vec![1]);
        // Group 1 LTS = spots of the shared shape.
        assert_eq!(g.groups[1].lts.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
        // GTS = union: {1,2,3,4} ∪ {2,3,4,5} = {1,2,3,4,5}.
        assert_eq!(g.gts.as_slice(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    fn snapshots_are_gts_minus_lts() {
        let src = vec![pulse(1.0), pulse(10.0)];
        let g = group_sources(&src, 100.0, GroupingStrategy::ByBumpFeature);
        let snap = g.snapshots(1);
        assert_eq!(snap.as_slice(), &[10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn by_source_isolates_each() {
        let src = vec![pulse(1.0), pulse(1.0)];
        let g = group_sources(&src, 100.0, GroupingStrategy::BySource);
        assert_eq!(g.num_groups(), 3);
        assert_eq!(g.groups[1].members, vec![0]);
        assert_eq!(g.groups[2].members, vec![1]);
    }

    #[test]
    fn single_strategy_one_active_group() {
        let src = vec![pulse(1.0), pulse(5.0), Waveform::Dc(2.0)];
        let g = group_sources(&src, 100.0, GroupingStrategy::Single);
        assert_eq!(g.num_groups(), 2);
        assert_eq!(g.groups[1].members, vec![0, 1]);
        assert_eq!(g.groups[1].lts.len(), 8);
    }

    #[test]
    fn max_groups_caps_count() {
        let src: Vec<Waveform> = (0..10).map(|i| pulse(i as f64)).collect();
        let g = group_sources(&src, 100.0, GroupingStrategy::MaxGroups(3));
        assert!(g.num_groups() <= 4); // 3 active + constants
                                      // All sources still covered exactly once.
        let mut seen: Vec<usize> = g.groups.iter().flat_map(|g| g.members.clone()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_yields_constant_group_only() {
        let g = group_sources(&[], 1.0, GroupingStrategy::ByBumpFeature);
        assert_eq!(g.num_groups(), 1);
        assert!(g.groups[0].is_empty());
        assert!(g.gts.is_empty());
    }

    #[test]
    fn spots_outside_window_ignored() {
        let src = vec![pulse(50.0)];
        let g = group_sources(&src, 10.0, GroupingStrategy::ByBumpFeature);
        // Pulse entirely after the window: treated as constant.
        assert_eq!(g.num_groups(), 1);
        assert_eq!(g.groups[0].members, vec![0]);
    }
}
