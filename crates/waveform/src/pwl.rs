//! Piecewise-linear waveforms.

use crate::WaveformError;

/// A piecewise-linear waveform given by `(time, value)` breakpoints.
///
/// Before the first breakpoint the waveform holds the first value; after
/// the last it holds the last value (SPICE `PWL` semantics).
///
/// # Example
///
/// ```
/// use matex_waveform::Pwl;
///
/// # fn main() -> Result<(), matex_waveform::WaveformError> {
/// let w = Pwl::new(vec![(0.0, 0.0), (1.0, 2.0), (3.0, 2.0)])?;
/// assert_eq!(w.value(-5.0), 0.0);
/// assert_eq!(w.value(0.5), 1.0);
/// assert_eq!(w.value(10.0), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pwl {
    points: Vec<(f64, f64)>,
}

impl Pwl {
    /// Creates a PWL waveform from breakpoints.
    ///
    /// # Errors
    ///
    /// Returns [`WaveformError::InvalidTiming`] when fewer than one point
    /// is given, times are not strictly increasing, or any coordinate is
    /// not finite.
    pub fn new(points: Vec<(f64, f64)>) -> Result<Self, WaveformError> {
        if points.is_empty() {
            return Err(WaveformError::InvalidTiming(
                "pwl requires at least one breakpoint".into(),
            ));
        }
        for w in points.windows(2) {
            if w[1].0 <= w[0].0 {
                return Err(WaveformError::InvalidTiming(format!(
                    "pwl times not strictly increasing at t={}",
                    w[1].0
                )));
            }
        }
        if points
            .iter()
            .any(|&(t, v)| !t.is_finite() || !v.is_finite())
        {
            return Err(WaveformError::InvalidTiming(
                "pwl coordinate is not finite".into(),
            ));
        }
        Ok(Pwl { points })
    }

    /// The breakpoints.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Value at time `t` (linear interpolation, clamped ends).
    pub fn value(&self, t: f64) -> f64 {
        let pts = &self.points;
        if t <= pts[0].0 {
            return pts[0].1;
        }
        if t >= pts[pts.len() - 1].0 {
            return pts[pts.len() - 1].1;
        }
        // Binary search for the segment containing t.
        let mut lo = 0;
        let mut hi = pts.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if pts[mid].0 <= t {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (t0, v0) = pts[lo];
        let (t1, v1) = pts[hi];
        v0 + (v1 - v0) * (t - t0) / (t1 - t0)
    }

    /// Transition spots (slope breakpoints) within `[0, t_end]`, sorted.
    pub fn transition_spots(&self, t_end: f64) -> Vec<f64> {
        self.points
            .iter()
            .map(|&(t, _)| t)
            .filter(|&t| t >= 0.0 && t <= t_end)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_and_clamping() {
        let w = Pwl::new(vec![(1.0, 0.0), (2.0, 10.0), (4.0, -10.0)]).unwrap();
        assert_eq!(w.value(0.0), 0.0);
        assert_eq!(w.value(1.5), 5.0);
        assert_eq!(w.value(2.0), 10.0);
        assert_eq!(w.value(3.0), 0.0);
        assert_eq!(w.value(99.0), -10.0);
    }

    #[test]
    fn single_point_is_constant() {
        let w = Pwl::new(vec![(5.0, 7.0)]).unwrap();
        assert_eq!(w.value(0.0), 7.0);
        assert_eq!(w.value(100.0), 7.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Pwl::new(vec![]).is_err());
        assert!(Pwl::new(vec![(0.0, 1.0), (0.0, 2.0)]).is_err());
        assert!(Pwl::new(vec![(1.0, 1.0), (0.5, 2.0)]).is_err());
        assert!(Pwl::new(vec![(0.0, f64::INFINITY)]).is_err());
    }

    #[test]
    fn spots_window() {
        let w = Pwl::new(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.0)]).unwrap();
        assert_eq!(w.transition_spots(1.5), vec![0.0, 1.0]);
        assert_eq!(w.transition_spots(5.0), vec![0.0, 1.0, 2.0]);
    }
}
