//! Bump-feature extraction for subtask grouping.
//!
//! The paper decomposes the simulation "more aggressively" than one task
//! per source: pulse sources that share the same
//! `(t_delay, t_rise, t_fall, t_width, t_period)` tuple produce *identical
//! transition spots*, so simulating them together costs no extra Krylov
//! subspace generations (Fig. 3). [`FeatureKey`] is the grouping key.

use crate::Waveform;

/// A hashable identity of a waveform's *timing shape* (not its amplitude).
///
/// Two sources with equal `FeatureKey`s have exactly the same transition
/// spots and can share a MATEX subtask for free.
///
/// Keys compare by exact bit pattern of the timing parameters: workload
/// generators that stamp many loads from one template produce identical
/// bits, which is precisely the structure the paper's grouping exploits.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FeatureKey {
    /// Constant waveform — never produces transition spots.
    Constant,
    /// Pulse timing tuple `(delay, rise, width, fall, period)` as raw bits.
    Bump([u64; 5]),
    /// PWL breakpoint times as raw bits.
    PwlTimes(Vec<u64>),
}

impl FeatureKey {
    /// Extracts the feature key of a waveform.
    ///
    /// # Example
    ///
    /// ```
    /// use matex_waveform::{FeatureKey, Pulse, Waveform};
    ///
    /// # fn main() -> Result<(), matex_waveform::WaveformError> {
    /// let a = Waveform::Pulse(Pulse::new(0.0, 1.0, 1e-10, 2e-11, 5e-11, 2e-11)?);
    /// let b = Waveform::Pulse(Pulse::new(0.0, 3.0, 1e-10, 2e-11, 5e-11, 2e-11)?);
    /// // Same timing, different amplitude: same key.
    /// assert_eq!(FeatureKey::of(&a), FeatureKey::of(&b));
    /// # Ok(())
    /// # }
    /// ```
    pub fn of(w: &Waveform) -> FeatureKey {
        if w.is_constant() {
            return FeatureKey::Constant;
        }
        match w {
            Waveform::Dc(_) => FeatureKey::Constant,
            Waveform::Pulse(p) => FeatureKey::Bump([
                p.t_delay.to_bits(),
                p.t_rise.to_bits(),
                p.t_width.to_bits(),
                p.t_fall.to_bits(),
                p.t_period.unwrap_or(0.0).to_bits(),
            ]),
            Waveform::Pwl(w) => {
                FeatureKey::PwlTimes(w.points().iter().map(|&(t, _)| t.to_bits()).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pulse, Pwl};

    #[test]
    fn amplitude_does_not_affect_key() {
        let a = Waveform::Pulse(Pulse::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0).unwrap());
        let b = Waveform::Pulse(Pulse::new(-2.0, 5.0, 1.0, 1.0, 1.0, 1.0).unwrap());
        assert_eq!(FeatureKey::of(&a), FeatureKey::of(&b));
    }

    #[test]
    fn timing_affects_key() {
        let a = Waveform::Pulse(Pulse::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0).unwrap());
        let b = Waveform::Pulse(Pulse::new(0.0, 1.0, 2.0, 1.0, 1.0, 1.0).unwrap());
        assert_ne!(FeatureKey::of(&a), FeatureKey::of(&b));
    }

    #[test]
    fn constants_collapse() {
        assert_eq!(FeatureKey::of(&Waveform::Dc(1.0)), FeatureKey::Constant);
        assert_eq!(FeatureKey::of(&Waveform::Dc(-3.0)), FeatureKey::Constant);
        let flat = Waveform::Pulse(Pulse::new(2.0, 2.0, 1.0, 0.0, 1.0, 0.0).unwrap());
        assert_eq!(FeatureKey::of(&flat), FeatureKey::Constant);
    }

    #[test]
    fn pwl_keys_by_times() {
        let a = Waveform::Pwl(Pwl::new(vec![(0.0, 1.0), (1.0, 2.0)]).unwrap());
        let b = Waveform::Pwl(Pwl::new(vec![(0.0, -1.0), (1.0, 7.0)]).unwrap());
        let c = Waveform::Pwl(Pwl::new(vec![(0.0, 1.0), (2.0, 2.0)]).unwrap());
        assert_eq!(FeatureKey::of(&a), FeatureKey::of(&b));
        assert_ne!(FeatureKey::of(&a), FeatureKey::of(&c));
    }

    #[test]
    fn periodic_vs_oneshot_differ() {
        let a = Waveform::Pulse(Pulse::new(0.0, 1.0, 1.0, 1.0, 1.0, 1.0).unwrap());
        let b = Waveform::Pulse(Pulse::periodic(0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 10.0).unwrap());
        assert_ne!(FeatureKey::of(&a), FeatureKey::of(&b));
    }
}
