//! Property-based tests of waveforms and the decomposition machinery.

use matex_waveform::{group_sources, GroupingStrategy, Pulse, Pwl, SpotSet, Waveform};
use proptest::prelude::*;

fn arb_pulse() -> impl Strategy<Value = Pulse> {
    (
        -1e-3..1e-3_f64,  // v1
        -1e-3..1e-3_f64,  // v2
        0.0..5e-9_f64,    // delay
        1e-12..1e-10_f64, // rise
        0.0..1e-9_f64,    // width
        1e-12..1e-10_f64, // fall
    )
        .prop_map(|(v1, v2, d, r, w, f)| Pulse::new(v1, v2, d, r, w, f).expect("valid params"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pulse_is_piecewise_linear_between_spots(p in arb_pulse()) {
        // Between adjacent transition spots the value is exactly linear:
        // the midpoint equals the average of the endpoints.
        let t_end = 1e-8;
        let w = Waveform::Pulse(p);
        let mut spots = vec![0.0];
        spots.extend(w.transition_spots(t_end));
        spots.push(t_end);
        // Tolerance scales with amplitude: a 1-ulp slip across a
        // breakpoint evaluates on the neighbouring ramp.
        let amp = p.v1.abs().max(p.v2.abs()).max(1e-12);
        for seg in spots.windows(2) {
            let (a, b) = (seg[0], seg[1]);
            if b - a < 1e-15 {
                continue;
            }
            let mid = 0.5 * (a + b);
            let lin = 0.5 * (w.value(a) + w.value(b));
            prop_assert!(
                (w.value(mid) - lin).abs() < 1e-9 * amp,
                "nonlinear inside segment [{a}, {b}]"
            );
        }
    }

    #[test]
    fn pulse_bounded_by_levels(p in arb_pulse(), t in 0.0..1e-8_f64) {
        let lo = p.v1.min(p.v2) - 1e-15;
        let hi = p.v1.max(p.v2) + 1e-15;
        let v = p.value(t);
        prop_assert!(v >= lo && v <= hi, "value {v} outside [{lo}, {hi}]");
    }

    #[test]
    fn spot_set_union_is_superset(
        a in prop::collection::vec(0.0..1e-8_f64, 0..20),
        b in prop::collection::vec(0.0..1e-8_f64, 0..20),
    ) {
        let sa = SpotSet::from_times(a);
        let sb = SpotSet::from_times(b);
        let u = SpotSet::union(&[sa.clone(), sb.clone()]);
        for &t in sa.iter().chain(sb.iter()) {
            prop_assert!(u.contains(t), "union lost spot {t}");
        }
        // Difference is disjoint from the subtrahend.
        let d = u.difference(&sa);
        for &t in d.iter() {
            prop_assert!(!sa.contains(t));
        }
    }

    #[test]
    fn next_after_is_strictly_increasing_walk(
        times in prop::collection::vec(0.0..1e-8_f64, 1..30),
    ) {
        let s = SpotSet::from_times(times);
        let mut t = -1.0;
        let mut visited = 0;
        while let Some(next) = s.next_after(t) {
            prop_assert!(next > t);
            t = next;
            visited += 1;
            prop_assert!(visited <= s.len(), "walk exceeded set size");
        }
        prop_assert_eq!(visited, s.len(), "walk must visit every spot once");
    }

    #[test]
    fn grouping_partitions_sources(
        delays in prop::collection::vec(0.0..4e-9_f64, 1..12),
        strategy_pick in 0usize..3,
    ) {
        let sources: Vec<Waveform> = delays
            .iter()
            .map(|&d| {
                Waveform::Pulse(Pulse::new(0.0, 1e-3, d, 1e-11, 1e-10, 1e-11).expect("valid"))
            })
            .collect();
        let strategy = [
            GroupingStrategy::ByBumpFeature,
            GroupingStrategy::BySource,
            GroupingStrategy::MaxGroups(3),
        ][strategy_pick];
        let g = group_sources(&sources, 1e-8, strategy);
        // Partition: every source in exactly one group.
        let mut seen: Vec<usize> = g.groups.iter().flat_map(|gr| gr.members.clone()).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..sources.len()).collect::<Vec<_>>());
        // GTS covers every group's LTS.
        for gr in &g.groups {
            for &t in gr.lts.iter() {
                prop_assert!(g.gts.contains(t), "GTS missing {t}");
            }
        }
        // Snapshots are disjoint from the group's own LTS.
        for gr in &g.groups {
            let snap = g.snapshots(gr.id);
            for &t in snap.iter() {
                prop_assert!(!gr.lts.contains(t));
            }
        }
    }

    #[test]
    fn pwl_value_between_breakpoint_values(
        pts in prop::collection::vec((-1.0..1.0_f64,), 2..12),
        q in 0.0..1.0_f64,
    ) {
        // Build strictly increasing times 0, 1, 2, ... with given values.
        let points: Vec<(f64, f64)> = pts
            .iter()
            .enumerate()
            .map(|(i, &(v,))| (i as f64, v))
            .collect();
        let lo = points.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let w = Pwl::new(points.clone()).expect("valid pwl");
        let t = q * (points.len() as f64 - 1.0);
        let v = w.value(t);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}
