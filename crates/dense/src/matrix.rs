//! Row-major dense matrix type.

use crate::{DenseError, Result};
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Neg, Sub};

/// A dense, row-major `f64` matrix.
///
/// `DMat` is the workhorse for all *projected* (small) computations in
/// MATEX: Hessenberg matrices from Arnoldi, their inverses, and matrix
/// exponentials. Sizes are typically below a few hundred, so the
/// implementation favours clarity and numerical robustness over blocking.
///
/// # Example
///
/// ```
/// use matex_dense::DMat;
///
/// let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let x = vec![1.0, 1.0];
/// assert_eq!(a.matvec(&x), vec![3.0, 7.0]);
/// ```
#[derive(Clone, PartialEq)]
pub struct DMat {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates an `nrows × ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        DMat {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        DMat { nrows, ncols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(nrows: usize, ncols: usize, mut f: F) -> Self {
        let mut m = DMat::zeros(nrows, ncols);
        for i in 0..nrows {
            for j in 0..ncols {
                m.data[i * ncols + j] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from a row-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != nrows * ncols`.
    pub fn from_row_major(nrows: usize, ncols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), nrows * ncols, "from_row_major: length mismatch");
        DMat { nrows, ncols, data }
    }

    /// Builds a diagonal matrix from the given diagonal entries.
    pub fn from_diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = DMat::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m.data[i * n + i] = d;
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.nrows == self.ncols
    }

    /// Borrow of the underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Overwrites this matrix with `src` (same shape, no allocation).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn copy_from(&mut self, src: &DMat) {
        assert_eq!(
            (self.nrows, self.ncols),
            (src.nrows, src.ncols),
            "copy_from: shape mismatch"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.nrows, "row index out of bounds");
        &self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.nrows, "row index out of bounds");
        &mut self.data[i * self.ncols..(i + 1) * self.ncols]
    }

    /// Column `j` copied into a new vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.ncols, "column index out of bounds");
        (0..self.nrows)
            .map(|i| self.data[i * self.ncols + j])
            .collect()
    }

    /// Overwrites column `j` with `v`.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds or `v.len() != nrows`.
    pub fn set_col(&mut self, j: usize, v: &[f64]) {
        assert!(j < self.ncols, "column index out of bounds");
        assert_eq!(v.len(), self.nrows, "set_col: length mismatch");
        for (i, &x) in v.iter().enumerate() {
            self.data[i * self.ncols + j] = x;
        }
    }

    /// Swaps rows `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.nrows && b < self.nrows, "row index out of bounds");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * self.ncols);
        head[lo * self.ncols..(lo + 1) * self.ncols].swap_with_slice(&mut tail[..self.ncols]);
    }

    /// Matrix-vector product `A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "matvec: length mismatch");
        let mut y = vec![0.0; self.nrows];
        for i in 0..self.nrows {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            y[i] = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        y
    }

    /// Transposed matrix-vector product `Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows`.
    pub fn matvec_t(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.nrows, "matvec_t: length mismatch");
        let mut y = vec![0.0; self.ncols];
        for i in 0..self.nrows {
            let row = &self.data[i * self.ncols..(i + 1) * self.ncols];
            for (yj, a) in y.iter_mut().zip(row) {
                *yj += a * x[i];
            }
        }
        y
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`DenseError::ShapeMismatch`] when `self.ncols != b.nrows`.
    pub fn matmul(&self, b: &DMat) -> Result<DMat> {
        if self.ncols != b.nrows {
            return Err(DenseError::ShapeMismatch {
                left: (self.nrows, self.ncols),
                right: (b.nrows, b.ncols),
            });
        }
        let mut c = DMat::zeros(self.nrows, b.ncols);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.data[i * self.ncols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.ncols..(k + 1) * b.ncols];
                let crow = &mut c.data[i * b.ncols..(i + 1) * b.ncols];
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
        Ok(c)
    }

    /// Matrix product `A B` written into `out` (no allocation).
    ///
    /// Performs bit-for-bit the arithmetic of [`DMat::matmul`] — the
    /// same skip-zero inner loop in the same order — so into-style
    /// callers (the expm scratch kernels) produce identical results.
    ///
    /// # Panics
    ///
    /// Panics when `self.ncols != b.nrows` or `out` is not
    /// `self.nrows × b.ncols`.
    pub fn matmul_into(&self, b: &DMat, out: &mut DMat) {
        assert_eq!(self.ncols, b.nrows, "matmul_into: inner dim mismatch");
        assert_eq!(
            (out.nrows, out.ncols),
            (self.nrows, b.ncols),
            "matmul_into: output shape mismatch"
        );
        out.data.fill(0.0);
        for i in 0..self.nrows {
            for k in 0..self.ncols {
                let aik = self.data[i * self.ncols + k];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b.data[k * b.ncols..(k + 1) * b.ncols];
                let crow = &mut out.data[i * b.ncols..(i + 1) * b.ncols];
                for (cij, bkj) in crow.iter_mut().zip(brow) {
                    *cij += aik * bkj;
                }
            }
        }
    }

    /// Transpose as a new matrix.
    pub fn transpose(&self) -> DMat {
        let mut t = DMat::zeros(self.ncols, self.nrows);
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                t.data[j * self.nrows + i] = self.data[i * self.ncols + j];
            }
        }
        t
    }

    /// Returns `a·self` as a new matrix.
    pub fn scaled(&self, a: f64) -> DMat {
        DMat {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|v| a * v).collect(),
        }
    }

    /// Writes `a·self` into `out` (same shape, no allocation).
    ///
    /// Bit-for-bit the arithmetic of [`DMat::scaled`].
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn scaled_into(&self, a: f64, out: &mut DMat) {
        assert_eq!(
            (self.nrows, self.ncols),
            (out.nrows, out.ncols),
            "scaled_into: shape mismatch"
        );
        for (o, v) in out.data.iter_mut().zip(&self.data) {
            *o = a * v;
        }
    }

    /// Applies `f` to every entry, returning a new matrix.
    pub fn map<F: FnMut(f64) -> f64>(&self, mut f: F) -> DMat {
        DMat {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Leading principal `m × m` submatrix.
    ///
    /// Used to truncate an Arnoldi Hessenberg matrix to the converged
    /// dimension.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds either dimension.
    pub fn principal(&self, m: usize) -> DMat {
        assert!(m <= self.nrows && m <= self.ncols, "principal: m too large");
        DMat::from_fn(m, m, |i, j| self.data[i * self.ncols + j])
    }

    /// One-norm (maximum absolute column sum).
    pub fn norm_one(&self) -> f64 {
        let mut best = 0.0_f64;
        for j in 0..self.ncols {
            let s: f64 = (0..self.nrows)
                .map(|i| self.data[i * self.ncols + j].abs())
                .sum();
            best = best.max(s);
        }
        best
    }

    /// Infinity-norm (maximum absolute row sum).
    pub fn norm_inf(&self) -> f64 {
        (0..self.nrows)
            .map(|i| self.row(i).iter().map(|v| v.abs()).sum::<f64>())
            .fold(0.0_f64, f64::max)
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &DMat) -> f64 {
        assert_eq!(
            (self.nrows, self.ncols),
            (other.nrows, other.ncols),
            "max_abs_diff: shape mismatch"
        );
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0_f64, |m, (a, b)| m.max((a - b).abs()))
    }

    /// `true` when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &self.data[i * self.ncols + j]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.nrows && j < self.ncols, "index out of bounds");
        &mut self.data[i * self.ncols + j]
    }
}

impl Add for &DMat {
    type Output = DMat;

    fn add(self, rhs: &DMat) -> DMat {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "add: shape mismatch"
        );
        DMat {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &DMat {
    type Output = DMat;

    fn sub(self, rhs: &DMat) -> DMat {
        assert_eq!(
            (self.nrows, self.ncols),
            (rhs.nrows, rhs.ncols),
            "sub: shape mismatch"
        );
        DMat {
            nrows: self.nrows,
            ncols: self.ncols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &DMat {
    type Output = DMat;

    fn mul(self, rhs: f64) -> DMat {
        self.scaled(rhs)
    }
}

impl Neg for &DMat {
    type Output = DMat;

    fn neg(self) -> DMat {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DMat {}x{} [", self.nrows, self.ncols)?;
        for i in 0..self.nrows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.ncols.min(8) {
                write!(f, "{:>12.5e}", self[(i, j)])?;
                if j + 1 < self.ncols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.ncols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.nrows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_identity() {
        let i3 = DMat::identity(3);
        let x = vec![1.0, -2.0, 3.0];
        assert_eq!(i3.matvec(&x), x);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c, DMat::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_shape_mismatch_errors() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(DenseError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.matvec_t(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn norms_on_known_matrix() {
        let a = DMat::from_rows(&[&[1.0, -2.0], &[-3.0, 4.0]]);
        assert_eq!(a.norm_one(), 6.0); // col 1: 1+3=4, col 2: 2+4=6
        assert_eq!(a.norm_inf(), 7.0); // row 2: 3+4=7
        assert!((a.norm_fro() - 30.0_f64.sqrt()).abs() < 1e-15);
    }

    #[test]
    fn principal_truncates() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        let p = a.principal(2);
        assert_eq!(p, DMat::from_rows(&[&[1.0, 2.0], &[4.0, 5.0]]));
    }

    #[test]
    fn swap_rows_swaps() {
        let mut a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        a.swap_rows(0, 1);
        assert_eq!(a, DMat::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]));
        a.swap_rows(1, 1); // no-op
        assert_eq!(a.row(1), &[1.0, 2.0]);
    }

    #[test]
    fn operators_work() {
        let a = DMat::identity(2);
        let b = DMat::from_diag(&[2.0, 3.0]);
        assert_eq!((&a + &b)[(0, 0)], 3.0);
        assert_eq!((&b - &a)[(1, 1)], 2.0);
        assert_eq!((&a * 4.0)[(1, 1)], 4.0);
        assert_eq!((-&b)[(0, 0)], -2.0);
    }

    #[test]
    fn col_roundtrip() {
        let mut a = DMat::zeros(3, 2);
        a.set_col(1, &[1.0, 2.0, 3.0]);
        assert_eq!(a.col(1), vec![1.0, 2.0, 3.0]);
        assert_eq!(a.col(0), vec![0.0; 3]);
    }

    #[test]
    fn matmul_into_matches_matmul_bitwise() {
        let a = DMat::from_rows(&[&[1.0, 0.0, 2.5], &[-0.3, 4.0, 0.0]]);
        let b = DMat::from_rows(&[&[0.1, 7.0], &[0.0, -2.0], &[3.0, 0.25]]);
        let alloc = a.matmul(&b).unwrap();
        let mut out = DMat::zeros(2, 2);
        a.matmul_into(&b, &mut out);
        for (p, q) in alloc.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn scaled_into_matches_scaled_bitwise() {
        let a = DMat::from_rows(&[&[1.0, -2.0], &[0.3, 4.0]]);
        let alloc = a.scaled(0.37);
        let mut out = DMat::zeros(2, 2);
        a.scaled_into(0.37, &mut out);
        for (p, q) in alloc.as_slice().iter().zip(out.as_slice()) {
            assert_eq!(p.to_bits(), q.to_bits());
        }
    }

    #[test]
    fn copy_from_copies() {
        let a = DMat::from_diag(&[1.0, 2.0]);
        let mut b = DMat::zeros(2, 2);
        b.copy_from(&a);
        assert_eq!(a, b);
    }

    #[test]
    fn debug_is_nonempty() {
        let s = format!("{:?}", DMat::zeros(1, 1));
        assert!(s.contains("DMat 1x1"));
    }
}
